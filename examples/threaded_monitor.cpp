// Deployment-style monitoring over the threaded runtime.
//
// Unlike the other examples (which use the deterministic simulator), this
// one runs every node on a real thread: nodes gossip on their own wall-clock
// timers through the in-process network, with the same Adam2Agent objects a
// simulator hosts. A "monitoring console" (the main thread) periodically
// asks one node for its current view of the memory distribution — the kind
// of integration a real service would embed.
#include <chrono>
#include <cstdio>
#include <thread>

#include "adam2.hpp"

using namespace adam2;
using namespace std::chrono_literals;

int main() {
  constexpr std::size_t kNodes = 24;

  rng::Rng data_rng(41);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, kNodes, data_rng);
  const stats::EmpiricalCdf truth{values};

  core::Adam2Config protocol;
  protocol.lambda = 16;
  protocol.instance_ttl = 80;
  protocol.bootstrap = core::BootstrapPoints::kUniform;
  // Autonomous operation: nodes self-select as instance initiators with
  // Ps = 1/(Np*R) — no coordinator, exactly as a deployment would run.
  protocol.restart_every_r = 100.0;
  protocol.initial_n_estimate = kNodes;

  runtime::ClusterConfig config;
  config.gossip_period = 4ms;
  config.response_timeout = 40ms;
  config.seed = 77;

  runtime::Cluster cluster(config, values, [protocol](const host::AgentContext&) {
    return std::make_unique<core::Adam2Agent>(protocol);
  });
  cluster.start();
  std::printf("started %zu node threads; polling node 0's view...\n\n",
              cluster.size());

  for (int poll = 1; poll <= 6; ++poll) {
    std::this_thread::sleep_for(400ms);
    cluster.run_on_node(0, [&](host::NodeAgent& agent, host::AgentContext&) {
      const auto& a2 = dynamic_cast<const core::Adam2Agent&>(agent);
      if (!a2.estimate()) {
        std::printf("poll %d: no estimate yet (%zu instances active)\n", poll,
                    a2.active_instance_count());
        return;
      }
      const core::Estimate& est = *a2.estimate();
      std::printf("poll %d: N~=%.1f  F(512)=%.3f (true %.3f)  "
                  "F(2048)=%.3f (true %.3f)\n",
                  poll, est.n_estimate, est.cdf(512.5), truth(512.5),
                  est.cdf(2048.5), truth(2048.5));
    });
  }

  cluster.stop();
  const auto traffic = cluster.total_traffic();
  std::printf("\nstopped. aggregation traffic: %llu messages, %.1f kB; "
              "busy rejections: %llu\n",
              static_cast<unsigned long long>(
                  traffic.on(host::Channel::kAggregation).messages_sent),
              static_cast<double>(
                  traffic.on(host::Channel::kAggregation).bytes_sent) /
                  1024.0,
              static_cast<unsigned long long>(traffic.busy_rejections));
  return 0;
}
