// Decentralised load-balancing monitor (the motivating scenario of §I).
//
// Every node runs a load-generating workload and participates in Adam2.
// Each node independently detects global load imbalance by looking at the
// estimated load distribution: if the inter-quartile spread of the CDF is
// wide, the system is imbalanced and lightly loaded nodes should volunteer
// to take work from the most loaded decile. No coordinator is involved —
// every decision below is taken from a node's *own* CDF estimate.
//
// The example runs two eras: a balanced system, then a skewed one (a hot
// partition of nodes gets 10x the load), and shows how any single node
// detects the change, quantifies it, and identifies its own rank.
#include <cstdio>

#include "adam2.hpp"

using namespace adam2;

namespace {

/// What one node concludes from its own estimate, with no global knowledge.
void report_from_node(core::Adam2System& system, host::NodeId node) {
  const core::Adam2Agent& agent = system.agent_of(node);
  if (!agent.estimate()) {
    std::printf("node %llu has no estimate yet\n",
                static_cast<unsigned long long>(node));
    return;
  }
  const core::Estimate& est = *agent.estimate();
  const double q25 = est.cdf.inverse(0.25);
  const double median = est.cdf.inverse(0.50);
  const double q75 = est.cdf.inverse(0.75);
  const double p90 = est.cdf.inverse(0.90);
  // Tail-to-median spread: a heavy top decile signals a hot partition even
  // when the bulk of the system looks calm.
  const double spread = (p90 - median) / (median > 0 ? median : 1.0);

  const double own_load =
      static_cast<double>(system.engine().node(node).attribute);
  const double own_rank = est.cdf(own_load);

  std::printf("  observer node %llu (load %.0f, rank %.0f%%):\n",
              static_cast<unsigned long long>(node), own_load,
              own_rank * 100.0);
  std::printf("    estimated N=%.0f, load quartiles %.0f / %.0f / %.0f, "
              "p90 %.0f\n",
              est.n_estimate, q25, median, q75, p90);
  std::printf("    IQR %.0f-%.0f; tail spread (p90-median)/median: %.2f -> %s\n",
              q25, q75, spread,
              spread > 1.0 ? "IMBALANCED: low-rank nodes should pull work"
                           : "balanced");
  if (own_rank < 0.25 && spread > 1.0) {
    std::printf("    action: this node is in the idle quartile; "
                "volunteering for work from loads above %.0f\n", p90);
  }
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 2000;
  rng::Rng rng(21);

  // Era 1: balanced load around 100 units.
  std::vector<stats::Value> loads;
  loads.reserve(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    loads.push_back(static_cast<stats::Value>(rng.normal(100.0, 15.0)));
  }

  core::SystemConfig config;
  config.engine.seed = 3;
  config.protocol.lambda = 40;
  config.protocol.heuristic = core::SelectionHeuristic::kLCut;
  core::Adam2System system(config, loads);

  std::printf("era 1: balanced workload\n");
  for (int i = 0; i < 2; ++i) system.run_instance();
  report_from_node(system, system.engine().live_ids().front());

  // Era 2: a hot partition appears — 15% of nodes take 10x the load.
  // Attributes change *between* instances; nodes re-evaluate them when the
  // next aggregation instance starts (§VII-F).
  for (host::NodeId id : system.engine().live_ids()) {
    if (rng.bernoulli(0.15)) {
      system.engine().set_attribute(
          id, static_cast<stats::Value>(rng.normal(1000.0, 150.0)));
    }
  }
  std::printf("\nera 2: hot partition (15%% of nodes at ~10x load)\n");
  for (int i = 0; i < 2; ++i) system.run_instance();
  report_from_node(system, system.engine().live_ids().front());

  // Cross-check against ground truth.
  const auto errors = system.errors();
  std::printf("\nestimation quality vs ground truth: Errm=%.4f Erra=%.5f\n",
              errors.max_err, errors.avg_err);
  return 0;
}
