// Multi-attribute capacity planning with self-tuning accuracy (§I + §VI).
//
// A volunteer-computing coordinator-less grid wants, at every node, a live
// picture of the resource distributions (CPU, RAM, disk) to decide which
// job classes the system can accept. Each attribute runs its own Adam2
// protocol with verification points, and the adaptive controller tunes the
// number of interpolation points per attribute until the self-assessed
// accuracy meets the target — more points for the stepped RAM curve, fewer
// for the smooth CPU curve.
#include <cstdio>

#include "adam2.hpp"

using namespace adam2;

namespace {

struct JobClass {
  const char* name;
  double min_cpu_mflops;
  double min_ram_mb;
  double min_disk_gb;
};

}  // namespace

int main() {
  constexpr std::size_t kNodes = 3000;
  rng::Rng rng(5);
  const auto trace = data::filter_faulty(data::synthesize_trace(kNodes, rng));

  const data::Attribute attributes[] = {data::Attribute::kCpuMflops,
                                        data::Attribute::kRamMb,
                                        data::Attribute::kDiskGb};

  // One Adam2 system per attribute (a deployment would multiplex the
  // instances over one overlay; separate systems keep the example readable).
  std::vector<std::unique_ptr<core::Adam2System>> systems;
  for (data::Attribute attribute : attributes) {
    core::SystemConfig config;
    config.engine.seed = 100 + static_cast<std::uint64_t>(attribute);
    config.protocol.lambda = 20;  // Start cheap; let self-tuning grow it.
    config.protocol.heuristic = core::SelectionHeuristic::kMinMax;
    config.protocol.verification_points = 20;
    core::AdaptiveTuning tuning;
    tuning.target_avg_error = 0.002;
    tuning.min_lambda = 10;
    tuning.max_lambda = 120;
    config.protocol.adaptive = tuning;
    systems.push_back(std::make_unique<core::Adam2System>(
        config, data::attribute_column(trace, attribute)));
  }

  // Run four instances per attribute; lambda adapts in between.
  for (int round = 0; round < 4; ++round) {
    for (auto& system : systems) system->run_instance();
  }

  std::printf("self-tuned configuration after 4 instances "
              "(target EstErra = 0.002):\n");
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const host::NodeId node = systems[i]->engine().live_ids().front();
    const auto& agent = systems[i]->agent_of(node);
    std::printf("  %-14s lambda: 20 -> %-3zu  (self-assessed avg err %.5f)\n",
                std::string(data::attribute_name(attributes[i])).c_str(),
                agent.current_lambda(),
                agent.estimate()->self_assessment->avg_err);
  }

  // Capacity question: what fraction of the grid can run each job class?
  const JobClass classes[] = {
      {"small-batch", 500, 256, 10},
      {"standard", 2000, 1024, 50},
      {"memory-heavy", 2000, 3500, 50},
      {"archival", 800, 512, 400},
  };
  const host::NodeId observer = systems[0]->engine().live_ids().front();
  std::printf("\ncapacity report computed locally at node %llu:\n",
              static_cast<unsigned long long>(observer));
  std::printf("  %-14s %10s %10s %10s %12s\n", "job class", "cpu_ok",
              "ram_ok", "disk_ok", "est_nodes");
  for (const JobClass& job : classes) {
    // Independence approximation: multiply marginal fractions.
    const auto& cpu = *systems[0]->agent_of(observer).estimate();
    const auto& ram = *systems[1]->agent_of(observer).estimate();
    const auto& disk = *systems[2]->agent_of(observer).estimate();
    const double cpu_ok = 1.0 - cpu.cdf(job.min_cpu_mflops);
    const double ram_ok = 1.0 - ram.cdf(job.min_ram_mb);
    const double disk_ok = 1.0 - disk.cdf(job.min_disk_gb);
    const double nodes = cpu_ok * ram_ok * disk_ok * cpu.n_estimate;
    std::printf("  %-14s %9.1f%% %9.1f%% %9.1f%% %12.0f\n", job.name,
                cpu_ok * 100, ram_ok * 100, disk_ok * 100, nodes);
  }

  // Sanity: compare one marginal against ground truth. 1024 MB is a step of
  // the RAM CDF, so probe just past it — the interpolated curve crosses the
  // step *at* the threshold and is exact immediately after.
  const auto truth = systems[1]->truth();
  const auto& ram_est = *systems[1]->agent_of(observer).estimate();
  std::printf("\nRAM marginal check (estimate vs truth): F(1024.5) = %.3f vs "
              "%.3f\n",
              ram_est.cdf(1024.5), truth(1024.5));
  return 0;
}
