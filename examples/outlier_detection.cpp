// Distribution-based outlier and cluster detection (§I: "estimating the
// statistical distribution of attribute values also allows identifying
// outliers and clusters, which can be used to detect hardware and software
// defects or intrusion attempts").
//
// Nodes report their request-latency attribute. A small fraction of nodes
// is defective (two orders of magnitude slower). Every healthy node can,
// from its own CDF estimate alone:
//   1. spot the outlier cluster as a plateau followed by a far-away tail;
//   2. estimate how many nodes are affected (N * tail fraction);
//   3. classify itself.
#include <cstdio>
#include <vector>

#include "adam2.hpp"

using namespace adam2;

namespace {

struct TailReport {
  double cutoff = 0.0;      ///< Latency above which nodes count as outliers.
  double fraction = 0.0;    ///< Estimated fraction of outlier nodes.
  double affected = 0.0;    ///< Estimated number of affected nodes.
};

/// Finds the widest horizontal gap in the estimated CDF; values beyond it
/// form the outlier cluster.
TailReport find_outlier_tail(const core::Estimate& est) {
  TailReport report;
  const auto knots = est.cdf.knots();
  double widest = 0.0;
  for (std::size_t i = 1; i < knots.size(); ++i) {
    const double gap = knots[i].t - knots[i - 1].t;
    // Only consider gaps above the bulk of the mass: an outlier tail is a
    // small fraction of nodes far to the right of everyone else.
    if (gap > widest && knots[i - 1].f >= 0.5) {
      widest = gap;
      report.cutoff = knots[i - 1].t + gap / 2.0;
      report.fraction = 1.0 - knots[i - 1].f;
    }
  }
  report.affected = report.fraction * est.n_estimate;
  return report;
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 3000;
  constexpr double kDefectRate = 0.02;
  rng::Rng rng(11);

  // Healthy nodes: ~20 ms median latency, lognormal. Defective nodes: ~2 s.
  std::vector<stats::Value> latencies_ms;
  std::size_t true_defective = 0;
  latencies_ms.reserve(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (rng.bernoulli(kDefectRate)) {
      latencies_ms.push_back(
          static_cast<stats::Value>(rng.lognormal(7.6, 0.3)));  // ~2000 ms
      ++true_defective;
    } else {
      latencies_ms.push_back(
          static_cast<stats::Value>(rng.lognormal(3.0, 0.4)));  // ~20 ms
    }
  }

  core::SystemConfig config;
  config.engine.seed = 17;
  config.protocol.lambda = 50;
  config.protocol.heuristic = core::SelectionHeuristic::kMinMax;
  config.protocol.verification_points = 20;
  core::Adam2System system(config, latencies_ms);

  for (int i = 0; i < 3; ++i) system.run_instance();

  // Any node can run the detector; take three observers.
  std::printf("true state: %zu defective nodes of %zu (%.1f%%)\n\n",
              true_defective, kNodes,
              100.0 * static_cast<double>(true_defective) / kNodes);
  int shown = 0;
  for (host::NodeId node : system.engine().live_ids()) {
    if (shown++ >= 3) break;
    const core::Adam2Agent& agent = system.agent_of(node);
    const core::Estimate& est = *agent.estimate();
    const TailReport tail = find_outlier_tail(est);
    const double own =
        static_cast<double>(system.engine().node(node).attribute);
    std::printf("observer %llu: outlier cutoff ~%.0f ms, estimated %.2f%% "
                "affected (~%.0f nodes); self=%.0f ms -> %s\n",
                static_cast<unsigned long long>(node), tail.cutoff,
                tail.fraction * 100.0, tail.affected, own,
                tail.fraction > 0.0 && own > tail.cutoff
                    ? "DEFECTIVE (self-report for repair)"
                    : "healthy");
    if (est.self_assessment) {
      std::printf("           (self-assessed avg CDF error: %.4f)\n",
                  est.self_assessment->avg_err);
    }
  }
  return 0;
}
