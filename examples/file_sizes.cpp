// Multi-value-per-node extension (§IV, "Multiple Attribute Values per
// Node"): estimating the distribution of *file sizes* across the system,
// where each node contributes its whole set of file sizes rather than one
// attribute value.
//
// The estimated CDF is over the union of all files; nodes with more files
// contribute proportionally more mass (f_i = avg_i / avg).
#include <cmath>
#include <cstdio>

#include "adam2.hpp"

using namespace adam2;

int main() {
  constexpr std::size_t kNodes = 1500;
  rng::Rng rng(13);

  // Each node stores between 1 and ~60 files; sizes follow a lognormal in
  // KiB with a heavy tail (media files).
  std::vector<std::vector<stats::Value>> file_sets;
  std::vector<stats::Value> all_files;
  file_sets.reserve(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    const std::size_t count = 1 + rng.below(60);
    std::vector<stats::Value> files;
    files.reserve(count);
    for (std::size_t f = 0; f < count; ++f) {
      const double kib = rng.bernoulli(0.1) ? rng.lognormal(12.0, 1.0)   // media
                                            : rng.lognormal(5.0, 1.5);   // docs
      files.push_back(static_cast<stats::Value>(std::llround(kib)) + 1);
    }
    all_files.insert(all_files.end(), files.begin(), files.end());
    file_sets.push_back(std::move(files));
  }

  core::Adam2Config protocol;
  protocol.lambda = 50;
  protocol.instance_ttl = 30;
  protocol.heuristic = core::SelectionHeuristic::kLCut;

  // Build the engine with one MultiValueAdam2Agent per node.
  std::vector<stats::Value> engine_attributes;
  engine_attributes.reserve(kNodes);
  for (const auto& files : file_sets) engine_attributes.push_back(files.front());
  auto shared_sets =
      std::make_shared<std::vector<std::vector<stats::Value>>>(std::move(file_sets));
  sim::EngineConfig engine_config;
  engine_config.seed = 29;
  sim::Engine engine(
      engine_config, engine_attributes,
      core::make_overlay(core::OverlayKind::kCyclon, 20),
      [shared_sets, protocol](const host::AgentContext& ctx) {
        return std::make_unique<core::MultiValueAdam2Agent>(
            protocol, (*shared_sets)[static_cast<std::size_t>(ctx.self)]);
      },
      nullptr);

  // Two instances: bootstrap, then LCut refinement over the union range.
  for (int i = 0; i < 2; ++i) {
    const host::NodeId initiator = engine.random_live_node();
    auto ctx = engine.context_for(initiator);
    dynamic_cast<core::Adam2Agent&>(engine.agent(initiator)).start_instance(ctx);
    engine.run_rounds(protocol.instance_ttl + 1u);
  }

  const stats::EmpiricalCdf truth{all_files};
  const host::NodeId observer = engine.live_ids().front();
  const auto& estimate =
      *dynamic_cast<core::Adam2Agent&>(engine.agent(observer)).estimate();

  std::printf("file population: %zu files on %zu nodes\n", all_files.size(),
              kNodes);
  std::printf("\n%14s %14s %14s\n", "size (KiB)", "estimated F", "true F");
  for (double size : {16.0, 64.0, 256.0, 1024.0, 16384.0, 262144.0}) {
    std::printf("%14.0f %14.4f %14.4f\n", size, estimate.cdf(size),
                truth(size));
  }
  std::printf("\nmedian file size: estimated %.0f KiB, true %lld KiB\n",
              estimate.cdf.inverse(0.5),
              static_cast<long long>(truth.quantile(0.5)));
  const auto errors = stats::discrete_errors(truth, estimate.cdf);
  std::printf("errors vs truth: Errm=%.4f Erra=%.6f\n", errors.max_err,
              errors.avg_err);
  return 0;
}
