// Quickstart: estimate the CDF of an attribute across a 2,000-node system.
//
// Builds an Adam2System over a synthetic RAM-size population, runs three
// aggregation instances (the paper's recommendation for convergence), and
// prints the estimated CDF of one node next to the ground truth.
#include <cstdio>

#include "adam2.hpp"

using namespace adam2;

int main() {
  // 1. A population of 2,000 nodes, each holding one attribute value.
  rng::Rng data_rng(7);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, 2000, data_rng);

  // 2. Configure the system: lambda = 50 interpolation points, 25-round
  //    instances, MinMax refinement, neighbour-based bootstrap.
  core::SystemConfig config;
  config.engine.seed = 1;
  config.protocol.lambda = 50;
  config.protocol.instance_ttl = 25;
  config.protocol.heuristic = core::SelectionHeuristic::kMinMax;
  config.protocol.verification_points = 20;  // Enables self-assessment.

  core::Adam2System system(config, values);

  // 3. Run three aggregation instances. Each one refines the interpolation
  //    points chosen by the previous one.
  for (int i = 0; i < 3; ++i) system.run_instance();

  // 4. Every node now holds (nearly identical) estimates. Inspect one.
  const host::NodeId node = system.engine().live_ids().front();
  const core::Adam2Agent& agent = system.agent_of(node);
  const core::Estimate& estimate = *agent.estimate();

  std::printf("node %llu estimates: N ~= %.1f, attribute range [%g, %g]\n",
              static_cast<unsigned long long>(node), estimate.n_estimate,
              estimate.min_value, estimate.max_value);
  if (estimate.self_assessment) {
    std::printf("self-assessed avg error (EstErra): %.5f\n",
                estimate.self_assessment->avg_err);
  }

  const stats::EmpiricalCdf truth{values};
  std::printf("\n%10s %12s %12s\n", "RAM (MB)", "estimated F", "true F");
  for (stats::Value x : {256, 512, 1024, 2048, 4096, 8192}) {
    std::printf("%10lld %12.4f %12.4f\n", static_cast<long long>(x),
                estimate.cdf(static_cast<double>(x)),
                truth(static_cast<double>(x)));
  }

  // 5. Population-wide accuracy (the paper's Errm / Erra).
  const auto errors = system.errors();
  std::printf("\npopulation errors: Errm=%.5f Erra=%.6f over %zu peers\n",
              errors.max_err, errors.avg_err, errors.peers);
  return 0;
}
