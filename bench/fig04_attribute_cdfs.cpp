// Figure 4: actual attribute CDFs from the (synthetic) BOINC population.
//
// Prints F(x) for each attribute over a log-spaced grid of attribute values,
// reproducing the two curves of the paper's Figure 4 (CPU: smooth; RAM:
// heavily stepped) plus the two attributes the paper summarises in text.
#include <cmath>
#include <cstdio>

#include <string>

#include "common.hpp"
#include "stats/cdf.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env();
  bench::open_report("fig04_attribute_cdfs", env);
  bench::print_banner("Figure 4: actual attribute distributions F", env);

  for (data::Attribute kind : data::kAllAttributes) {
    const auto values = bench::population(kind, env.n, env.seed);
    const stats::EmpiricalCdf cdf{values};
    std::printf("\n## %s (min=%lld max=%lld distinct=%zu)\n",
                std::string(data::attribute_name(kind)).c_str(),
                static_cast<long long>(cdf.min()),
                static_cast<long long>(cdf.max()),
                cdf.distinct_values().size());
    bench::print_header("attribute_value", {"fraction_of_nodes"});
    const double lo = std::log10(static_cast<double>(cdf.min()));
    const double hi = std::log10(static_cast<double>(cdf.max()));
    const int steps = 40;
    for (int i = 0; i <= steps; ++i) {
      const double x =
          std::pow(10.0, lo + (hi - lo) * static_cast<double>(i) / steps);
      bench::print_row(std::to_string(static_cast<long long>(x)), {cdf(x)});
    }
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
