// §VII-I cost evaluation: the in-text cost table.
//
// Reproduces the paper's numbers:
//   * gossip message size ~800 B at lambda = 50;
//   * ~40 kB sent (and ~40 kB received) per node per instance (25 rounds,
//     ~2 messages sent per round);
//   * ~120 kB per node for an accurate CDF (3 instances), independent of N;
//   * at a 1 s gossip period: ~75 s per CDF at ~1.6 kB/s upstream;
//   * EquiDepth costs are very similar;
//   * random sampling needs 1,000-10,000 messages per node — an order of
//     magnitude more.
#include <cstdio>

#include "baselines/sampling.hpp"
#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"
#include "wire/messages.hpp"

using namespace adam2;

namespace {

struct CostRow {
  double message_bytes;
  double sent_kb_per_node;
  double received_kb_per_node;
  double messages_per_node;
};

CostRow adam2_cost(const bench::BenchEnv& env, std::size_t n,
                   std::size_t instances) {
  const auto values =
      bench::population(data::Attribute::kRamMb, n, env.seed);
  bench::BenchEnv sized = env;
  sized.n = n;
  core::SystemConfig config = bench::default_system(sized);
  core::Adam2System system(config, values);
  for (std::size_t i = 0; i < instances; ++i) system.run_instance();
  const auto& agg =
      system.engine().total_traffic().on(host::Channel::kAggregation);
  CostRow row;
  row.message_bytes = static_cast<double>(agg.bytes_sent) /
                      static_cast<double>(agg.messages_sent);
  row.sent_kb_per_node =
      static_cast<double>(agg.bytes_sent) / static_cast<double>(n) / 1024.0;
  row.received_kb_per_node = static_cast<double>(agg.bytes_received) /
                             static_cast<double>(n) / 1024.0;
  row.messages_per_node =
      static_cast<double>(agg.messages_sent) / static_cast<double>(n);
  return row;
}

CostRow equidepth_cost(const bench::BenchEnv& env, std::size_t n,
                       std::size_t phases) {
  const auto values = bench::population(data::Attribute::kRamMb, n, env.seed);
  baselines::EquiDepthConfig config;
  config.bins = 50;
  sim::EngineConfig engine_config;
  engine_config.seed = env.seed;
  // Run the phases through the shared driver, then read the traffic off a
  // fresh engine run (the driver owns its engine, so rebuild here).
  sim::Engine engine(
      engine_config, values, core::make_overlay(core::OverlayKind::kCyclon, 20),
      [config](const host::AgentContext&) {
        return std::make_unique<baselines::EquiDepthAgent>(config);
      },
      nullptr);
  for (std::size_t i = 0; i < phases; ++i) {
    const auto initiator = engine.random_live_node();
    auto ctx = engine.context_for(initiator);
    dynamic_cast<baselines::EquiDepthAgent&>(engine.agent(initiator))
        .start_phase(ctx);
    engine.run_rounds(config.phase_ttl + 1u);
  }
  const auto& agg = engine.total_traffic().on(host::Channel::kAggregation);
  CostRow row;
  row.message_bytes = static_cast<double>(agg.bytes_sent) /
                      static_cast<double>(agg.messages_sent);
  row.sent_kb_per_node =
      static_cast<double>(agg.bytes_sent) / static_cast<double>(n) / 1024.0;
  row.received_kb_per_node = static_cast<double>(agg.bytes_received) /
                             static_cast<double>(n) / 1024.0;
  row.messages_per_node =
      static_cast<double>(agg.messages_sent) / static_cast<double>(n);
  return row;
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env(10000);
  bench::open_report("tab_cost", env);
  bench::print_banner("Section VII-I: cost evaluation", env);

  // Message size directly from the wire format.
  wire::Adam2Message message;
  wire::InstancePayload payload;
  for (int i = 0; i < 50; ++i) payload.points.push_back({1.0 * i, 0.5});
  message.instances = {payload};
  std::printf("\nencoded gossip message size at lambda=50: %zu bytes "
              "(paper: ~800 B)\n",
              message.encoded_size());

  std::printf("\n## Adam2 traffic per node (lambda=50, 25-round instances)\n");
  bench::print_header("config", {"msg_bytes", "sent_kB", "recv_kB",
                                 "msgs_sent"});
  for (std::size_t instances : {1u, 3u}) {
    const CostRow row = adam2_cost(env, env.n, instances);
    bench::print_row("N=" + std::to_string(env.n) + " x" +
                         std::to_string(instances) + "inst",
                     {row.message_bytes, row.sent_kb_per_node,
                      row.received_kb_per_node, row.messages_per_node});
  }
  // Independence of system size.
  for (std::size_t n : {env.n / 4, env.n}) {
    const CostRow row = adam2_cost(env, n, 1);
    bench::print_row("N=" + std::to_string(n) + " x1inst",
                     {row.message_bytes, row.sent_kb_per_node,
                      row.received_kb_per_node, row.messages_per_node});
  }

  std::printf("\n## EquiDepth traffic per node (50 bins, 25-round phases)\n");
  bench::print_header("config", {"msg_bytes", "sent_kB", "recv_kB",
                                 "msgs_sent"});
  const CostRow ed = equidepth_cost(env, env.n, 3);
  bench::print_row("N=" + std::to_string(env.n) + " x3phase",
                   {ed.message_bytes, ed.sent_kb_per_node,
                    ed.received_kb_per_node, ed.messages_per_node});

  std::printf("\n## Random sampling cost to match Adam2 (random walks)\n");
  bench::print_header("samples", {"messages", "approx_kB", "RAM_Erra"});
  const auto values = bench::population(data::Attribute::kRamMb, env.n, env.seed);
  rng::Rng rng(env.seed);
  for (std::size_t samples : {1000u, 10000u}) {
    baselines::SamplingConfig config;
    config.sample_size = samples;
    const auto result = baselines::estimate_by_sampling(values, config, rng);
    bench::print_row(std::to_string(samples),
                     {static_cast<double>(result.messages),
                      static_cast<double>(result.bytes_estimate) / 1024.0,
                      result.errors.avg_err});
  }

  std::printf("\n## Derived deployment figures (1 s gossip period)\n");
  const CostRow three = adam2_cost(env, env.n, 3);
  std::printf("time to accurate CDF: ~%d s; upstream bandwidth: %.2f kB/s\n",
              3 * 25, three.sent_kb_per_node * 1024.0 / (3 * 25) / 1024.0);
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
