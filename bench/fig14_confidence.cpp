// Figure 14: accuracy-estimation (confidence) error for MinMax.
//
// Sweeps the number of verification points from 5 to 100 and reports the
// mean relative error of the nodes' self-assessment:
//   (a) |Errm - EstErrm| / Errm with bisection-placed verification points,
//   (b) |Erra - EstErra| / Erra with uniform verification points.
// Expected shape: ~20 uniform points estimate Erra within ~10% (at paper
// scale); Errm is harder and needs more points. Verification points add
// proportional traffic overhead (~40% at 20 points over lambda = 50).
#include <cstdio>

#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"

using namespace adam2;

namespace {

double run_confidence(const bench::BenchEnv& env, data::Attribute attribute,
                      core::VerificationMode mode, std::size_t points) {
  const auto values = bench::population(attribute, env.n, env.seed);
  core::SystemConfig config = bench::default_system(env);
  config.protocol.heuristic = core::SelectionHeuristic::kMinMax;
  config.protocol.verification_points = points;
  config.protocol.verification_mode = mode;
  core::Adam2System system(config, values);
  system.run_rounds(5);
  for (int i = 0; i < 3; ++i) system.run_instance();

  core::EvaluationOptions options;
  options.peer_sample = env.peer_sample;
  const stats::EmpiricalCdf truth{values};
  const bool use_max = mode == core::VerificationMode::kBisection;
  return core::confidence_estimation_error(system.engine(), truth, use_max,
                                           options);
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env(10000);
  bench::open_report("fig14_confidence", env);
  bench::print_banner("Figure 14: accuracy-estimation error for MinMax", env);

  bench::print_header("verif_points", {"CPU_Errm_est", "RAM_Errm_est",
                                       "CPU_Erra_est", "RAM_Erra_est"});
  for (std::size_t points : {5u, 10u, 20u, 30u, 50u, 70u, 100u}) {
    const double cpu_m = run_confidence(env, data::Attribute::kCpuMflops,
                                        core::VerificationMode::kBisection,
                                        points);
    const double ram_m = run_confidence(env, data::Attribute::kRamMb,
                                        core::VerificationMode::kBisection,
                                        points);
    const double cpu_a = run_confidence(env, data::Attribute::kCpuMflops,
                                        core::VerificationMode::kUniform,
                                        points);
    const double ram_a = run_confidence(env, data::Attribute::kRamMb,
                                        core::VerificationMode::kUniform,
                                        points);
    bench::print_row(std::to_string(points), {cpu_m, ram_m, cpu_a, ram_a});
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
