// Figure 6: approximation accuracy over one aggregation instance (RAM).
//
// (a) Adam2: per-round max/avg error at the interpolation points and over
//     the entire CDF. The error starts at 1 while the instance spreads,
//     then the point error decays exponentially towards rounding noise,
//     while the entire-CDF error floors at the interpolation error.
// (b) EquiDepth in identical settings: the bin error never improves.
#include <cstdio>

#include "baselines/equidepth.hpp"
#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"

using namespace adam2;

namespace {

constexpr std::size_t kRounds = 80;

void run_adam2(const bench::BenchEnv& env,
               const std::vector<stats::Value>& values,
               const stats::EmpiricalCdf& truth) {
  core::SystemConfig config = bench::default_system(env);
  config.protocol.instance_ttl = kRounds + 2;  // Keep it alive for the plot.
  core::Adam2System system(config, values);
  system.run_rounds(5);
  const auto id = system.start_instance();

  std::printf("\n## (a) Adam2, single instance, RAM\n");
  bench::print_header("round", {"max_points", "avg_points", "max_entire",
                                "avg_entire"});
  core::EvaluationOptions options;
  options.peer_sample = env.peer_sample;
  for (std::size_t round = 1; round <= kRounds; ++round) {
    system.run_rounds(1);
    const auto points =
        core::evaluate_instance_points(system.engine(), id, truth, options);
    const auto entire =
        core::evaluate_instance_cdf(system.engine(), id, truth, options);
    bench::print_row(std::to_string(round),
                     {points.max_err, points.avg_err, entire.max_err,
                      entire.avg_err});
  }
}

void run_equidepth(const bench::BenchEnv& env,
                   const std::vector<stats::Value>& values,
                   const stats::EmpiricalCdf& truth) {
  baselines::EquiDepthConfig config;
  config.bins = 50;
  config.phase_ttl = kRounds + 2;
  sim::EngineConfig engine_config;
  engine_config.seed = env.seed;
  sim::Engine engine(
      engine_config, values, core::make_overlay(core::OverlayKind::kCyclon, 20),
      [config](const host::AgentContext&) {
        return std::make_unique<baselines::EquiDepthAgent>(config);
      },
      nullptr);
  engine.run_rounds(5);
  const auto initiator = engine.random_live_node();
  auto ctx = engine.context_for(initiator);
  const auto phase =
      dynamic_cast<baselines::EquiDepthAgent&>(engine.agent(initiator))
          .start_phase(ctx);

  std::printf("\n## (b) EquiDepth, single phase, RAM\n");
  bench::print_header("round",
                      {"max_bins", "avg_bins", "max_entire", "avg_entire"});
  for (std::size_t round = 1; round <= kRounds; ++round) {
    engine.run_rounds(1);
    const auto errors = baselines::evaluate_equidepth_phase(
        engine, phase, truth, env.peer_sample);
    bench::print_row(std::to_string(round),
                     {errors.at_bins.max_err, errors.at_bins.avg_err,
                      errors.entire.max_err, errors.entire.avg_err});
  }
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env();
  bench::open_report("fig06_single_instance", env);
  bench::print_banner(
      "Figure 6: approximation accuracy over one aggregation instance (RAM)",
      env);
  const auto values = bench::population(data::Attribute::kRamMb, env.n, env.seed);
  const stats::EmpiricalCdf truth{values};
  run_adam2(env, values, truth);
  run_equidepth(env, values, truth);
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
