// Figure 11: influence of the system size on approximation accuracy.
//
// Errm (MinMax) and Erra (LCut) after 3 instances for system sizes from 100
// to 100,000 nodes (capped at 10x the configured bench size by default; run
// with ADAM2_BENCH_FULL=1 for paper scale). Expected shape: Errm stays in
// the same order of magnitude across sizes; Erra *decreases* with size
// because larger populations have longer, easily-interpolated tails.
#include <cstdio>

#include "common.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env();
  bench::print_banner("Figure 11: influence of the system size", env);

  constexpr std::size_t kInstances = 3;
  std::vector<std::size_t> sizes{100, 316, 1000, 3162, 10000, 31623, 100000};
  std::erase_if(sizes, [&](std::size_t n) { return n > 5 * env.n; });

  bench::print_header("nodes", {"CPU_Errm", "RAM_Errm", "CPU_Erra",
                                "RAM_Erra"});
  for (std::size_t n : sizes) {
    bench::BenchEnv sized = env;
    sized.n = n;
    double errm[2];
    double erra[2];
    int idx = 0;
    for (data::Attribute attribute :
         {data::Attribute::kCpuMflops, data::Attribute::kRamMb}) {
      const auto values = bench::population(attribute, n, env.seed);

      core::SystemConfig mm = bench::default_system(sized);
      mm.protocol.heuristic = core::SelectionHeuristic::kMinMax;
      errm[idx] = bench::run_adam2_series(mm, values, kInstances, sized)
                      .back()
                      .entire.max_err;

      core::SystemConfig lc = bench::default_system(sized);
      lc.protocol.heuristic = core::SelectionHeuristic::kLCut;
      erra[idx] = bench::run_adam2_series(lc, values, kInstances, sized)
                      .back()
                      .entire.avg_err;
      ++idx;
    }
    bench::print_row(std::to_string(n), {errm[0], errm[1], erra[0], erra[1]});
  }
  return 0;
}
