// Figure 11: influence of the system size on approximation accuracy.
//
// Errm (MinMax) and Erra (LCut) after 3 instances for system sizes from 100
// to 100,000 nodes (capped at 10x the configured bench size by default; run
// with ADAM2_BENCH_FULL=1 for paper scale). Expected shape: Errm stays in
// the same order of magnitude across sizes; Erra *decreases* with size
// because larger populations have longer, easily-interpolated tails.
//
// With ADAM2_BENCH_THREADS=<t> (t > 1) each row runs on the sharded
// ParallelEngine and is re-run serially for comparison: the row gains a
// speedup column plus a `match` flag checking that the parallel errors are
// bit-identical to the serial ones (the engine's determinism contract).
//
// With ADAM2_BENCH_HIGHN=<maxN> an additional high-N sweep runs one
// instance per size on sizes up to 1,000,000 (capped at maxN), with sampled
// evaluation only: it records a per-round wall-clock series for every size
// plus peak RSS after each row, profiling memory-layout behaviour at
// million-node rounds rather than accuracy (which the main sweep covers).
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <stdexcept>
#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"
#include "host/snapshot.hpp"

using namespace adam2;

namespace {

struct RowResult {
  double errm[2];
  double erra[2];
  double wall_s = 0.0;
};

RowResult run_row(const bench::BenchEnv& sized, std::size_t n,
                  std::uint64_t seed, std::size_t instances) {
  RowResult row;
  const auto start = std::chrono::steady_clock::now();
  int idx = 0;
  for (data::Attribute attribute :
       {data::Attribute::kCpuMflops, data::Attribute::kRamMb}) {
    const auto values = bench::population(attribute, n, seed);

    core::SystemConfig mm = bench::default_system(sized);
    mm.protocol.heuristic = core::SelectionHeuristic::kMinMax;
    row.errm[idx] = bench::run_adam2_series(mm, values, instances, sized)
                        .back()
                        .entire.max_err;

    core::SystemConfig lc = bench::default_system(sized);
    lc.protocol.heuristic = core::SelectionHeuristic::kLCut;
    row.erra[idx] = bench::run_adam2_series(lc, values, instances, sized)
                        .back()
                        .entire.avg_err;
    ++idx;
  }
  row.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
  return row;
}

/// Checkpoint hooks for the resume-smoke CI job (DESIGN.md §12):
/// ADAM2_SNAPSHOT_OUT=<file> saves the engine state at round
/// ADAM2_SNAPSHOT_AT=<k> (default: half the instance TTL) of the high-N
/// sweep's first size; ADAM2_SNAPSHOT_IN=<file> restores it instead of the
/// warm-up + first k rounds, and the resumed run's BENCH JSON metrics
/// (including the final-state snapshot digest) must bit-match the
/// uninterrupted run's.
struct SnapshotHooks {
  const char* out = std::getenv("ADAM2_SNAPSHOT_OUT");
  const char* in = std::getenv("ADAM2_SNAPSHOT_IN");
  const char* at = std::getenv("ADAM2_SNAPSHOT_AT");

  [[nodiscard]] bool active() const { return out != nullptr || in != nullptr; }
  [[nodiscard]] std::size_t save_round(std::size_t rounds) const {
    return at != nullptr && *at != '\0' ? std::strtoull(at, nullptr, 10)
                                        : rounds / 2;
  }
};

/// High-N sweep (ADAM2_BENCH_HIGHN=<maxN>): one single-attribute instance
/// per size, driven round by round so the report carries a wall-clock value
/// for every gossip round, plus peak RSS after each size. Evaluation is
/// always sampled — a full-population sweep at 1M nodes would dwarf the
/// gossip being measured.
void run_high_n_sweep(const bench::BenchEnv& env, std::size_t max_n) {
  std::vector<std::size_t> sizes{1000,   10000,  31623,
                                 100000, 316228, 1000000};
  std::erase_if(sizes, [&](std::size_t n) { return n > max_n; });
  const SnapshotHooks snapshot;

  std::vector<std::vector<double>> summaries;
  for (std::size_t size_idx = 0; size_idx < sizes.size(); ++size_idx) {
    const std::size_t n = sizes[size_idx];
    bench::BenchEnv sized = env;
    sized.n = n;
    const auto values =
        bench::population(data::Attribute::kRamMb, n, env.seed);
    const core::SystemConfig config = bench::default_system(sized);
    core::Adam2System system(config, values);
    system.attach_recorder(bench::report_recorder());
    const std::size_t rounds = config.protocol.instance_ttl + 1u;
    // The hooks bind to the sweep's first size only: a snapshot resumes
    // under the exact configuration that produced it, and the CI job runs a
    // single-size sweep anyway.
    const bool hooked = snapshot.active() && size_idx == 0;
    const bool resumed = hooked && snapshot.in != nullptr;
    std::size_t first_round = 0;
    if (resumed) {
      std::string error;
      const auto bytes =
          host::snapshot::read_snapshot_file(snapshot.in, &error);
      if (!bytes) {
        throw std::runtime_error(std::string("cannot read snapshot: ") +
                                 error);
      }
      // Resume replaces warm-up + start_instance + the first k rounds.
      system.engine().restore_snapshot(*bytes);
      first_round = snapshot.save_round(rounds);
    } else {
      system.run_rounds(5);  // Warm the peer-sampling descriptor caches.
    }

    bench::print_header("highN_" + std::to_string(n) + "_round",
                        {"wall_s"});
    // The snapshot is taken after start_instance, so a resumed run never
    // starts its own (even when resuming from round 0).
    if (!resumed) system.start_instance();
    double total_s = 0.0;
    for (std::size_t r = first_round; r < rounds; ++r) {
      if (hooked && snapshot.out != nullptr &&
          r == snapshot.save_round(rounds)) {
        const auto bytes = system.engine().save_snapshot();
        if (!host::snapshot::write_snapshot_file(snapshot.out, bytes)) {
          throw std::runtime_error("cannot write snapshot");
        }
      }
      const auto begin = std::chrono::steady_clock::now();
      system.run_rounds(1);
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count();
      total_s += wall_s;
      bench::print_row(std::to_string(r), {wall_s});
    }
    if (hooked) {
      // The resumed-vs-uninterrupted comparison pins the *complete* final
      // engine state, not just the error metrics: re-encode it and report
      // the container digest as two exact-match halves (bench_diff.py
      // treats metric names containing "digest" as exact).
      const std::uint64_t digest =
          host::snapshot::fnv1a(system.engine().save_snapshot());
      bench::report_metric("final_state_digest_hi",
                           static_cast<double>(digest >> 32));
      bench::report_metric("final_state_digest_lo",
                           static_cast<double>(digest & 0xffffffffULL));
    }

    core::EvaluationOptions options;
    options.peer_sample =
        env.peer_sample > 0 ? env.peer_sample : std::size_t{400};
    options.threads = env.threads;
    const auto errors =
        core::evaluate_estimates(system.engine(), stats::EmpiricalCdf{values},
                                 options);
    summaries.push_back({errors.max_err, errors.avg_err,
                         static_cast<double>(rounds), total_s,
                         bench::peak_rss_mb()});
  }
  bench::print_header("highN_nodes", {"RAM_Errm", "RAM_Erra", "rounds",
                                      "total_s", "peak_rss_mb"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    bench::print_row(std::to_string(sizes[i]), summaries[i]);
  }
  bench::report_metric("peak_rss_mb", bench::peak_rss_mb());
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env();
  bench::open_report("fig11_scalability", env);
  bench::print_banner("Figure 11: influence of the system size", env);

  constexpr std::size_t kInstances = 3;
  std::vector<std::size_t> sizes{100, 316, 1000, 3162, 10000, 31623, 100000};
  std::erase_if(sizes, [&](std::size_t n) { return n > 5 * env.n; });

  const bool compare = env.threads > 1;
  std::vector<std::string> columns{"CPU_Errm", "RAM_Errm", "CPU_Erra",
                                   "RAM_Erra", "wall_s"};
  if (compare) {
    columns.push_back("serial_s");
    columns.push_back("speedup");
  }
  bench::print_header("nodes", columns);
  for (std::size_t n : sizes) {
    bench::BenchEnv sized = env;
    sized.n = n;
    const RowResult row = run_row(sized, n, env.seed, kInstances);
    std::vector<double> values{row.errm[0], row.errm[1], row.erra[0],
                               row.erra[1], row.wall_s};
    bool match = true;
    if (compare) {
      bench::BenchEnv serial = sized;
      serial.threads = 0;
      const RowResult base = run_row(serial, n, env.seed, kInstances);
      for (int i = 0; i < 2; ++i) {
        match = match && row.errm[i] == base.errm[i] &&
                row.erra[i] == base.erra[i];
      }
      values.push_back(base.wall_s);
      values.push_back(base.wall_s / row.wall_s);
    }
    std::string label = std::to_string(n);
    if (compare) label += match ? " match" : " MISMATCH";
    bench::print_row(label, values);
  }
  if (const char* high_n = std::getenv("ADAM2_BENCH_HIGHN");
      high_n != nullptr && *high_n != '\0') {
    run_high_n_sweep(env, std::strtoull(high_n, nullptr, 10));
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
