// Ablation (DESIGN.md §1): mass-conserving join vs the paper-literal
// Figure-1 join rule.
//
// Reports the converged error at the interpolation points after one long
// instance. The literal rule lets a joining peer average against received
// values while the contacted peer ignores the exchange, creating mass; the
// residual bias never averages out. The conserving rule converges to the
// exact fractions (limited only by floating-point rounding), which is what
// the paper's reported 1e-14 convergence requires.
#include <cstdio>

#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"

using namespace adam2;

namespace {

double run_policy(const bench::BenchEnv& env, std::size_t n,
                  core::JoinPolicy policy) {
  const auto values = bench::population(data::Attribute::kRamMb, n, env.seed);
  const stats::EmpiricalCdf truth{values};
  bench::BenchEnv sized = env;
  sized.n = n;
  core::SystemConfig config = bench::default_system(sized);
  config.protocol.join_policy = policy;
  config.protocol.instance_ttl = 60;  // Let the averaging fully converge.
  core::Adam2System system(config, values);
  system.run_rounds(5);
  system.run_instance();
  core::EvaluationOptions options;
  options.peer_sample = env.peer_sample;
  return core::evaluate_estimate_points(system.engine(), truth, options)
      .avg_err;
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env(10000);
  bench::open_report("ablation_join_policy", env);
  bench::print_banner(
      "Ablation: join policy (avg error at interpolation points, 1 instance, "
      "ttl=60)",
      env);
  bench::print_header("nodes", {"mass_conserving", "paper_literal",
                                "bias_ratio"});
  for (std::size_t n : {std::size_t{1000}, std::size_t{4000}, env.n}) {
    const double conserving = run_policy(env, n, core::JoinPolicy::kMassConserving);
    const double literal = run_policy(env, n, core::JoinPolicy::kPaperLiteral);
    bench::print_row(std::to_string(n),
                     {conserving, literal,
                      conserving > 0 ? literal / conserving : 0.0});
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
