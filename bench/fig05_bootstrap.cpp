// Figure 5: accuracy of MinMax using different bootstrap approaches.
//
// Series: maximum error Errm per aggregation instance (10 instances) for the
// CPU and RAM attributes, bootstrapping the first instance's interpolation
// points either uniformly between the locally known extremes or from a
// random subset of neighbour attribute values (§VII-B). The paper's claim:
// neighbour-based bootstrap converges significantly faster, especially for
// the heavily-skewed RAM attribute.
#include <cstdio>

#include <string>

#include "common.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env(10000);
  bench::open_report("fig05_bootstrap", env);
  bench::print_banner("Figure 5: MinMax accuracy vs bootstrap approach", env);

  constexpr std::size_t kInstances = 10;
  struct Series {
    const char* label;
    data::Attribute attribute;
    core::BootstrapPoints bootstrap;
  };
  const Series series[] = {
      {"CPU-Uniform", data::Attribute::kCpuMflops, core::BootstrapPoints::kUniform},
      {"RAM-Uniform", data::Attribute::kRamMb, core::BootstrapPoints::kUniform},
      {"CPU-Neighbour", data::Attribute::kCpuMflops,
       core::BootstrapPoints::kNeighbourBased},
      {"RAM-Neighbour", data::Attribute::kRamMb,
       core::BootstrapPoints::kNeighbourBased},
  };

  std::vector<std::string> columns;
  for (std::size_t i = 1; i <= kInstances; ++i) {
    columns.push_back("inst" + std::to_string(i));
  }
  bench::print_header("series (max error)", columns);

  for (const Series& s : series) {
    const auto values = bench::population(s.attribute, env.n, env.seed);
    core::SystemConfig config = bench::default_system(env);
    config.protocol.heuristic = core::SelectionHeuristic::kMinMax;
    config.protocol.bootstrap = s.bootstrap;
    const auto results =
        bench::run_adam2_series(config, values, kInstances, env);
    std::vector<double> row;
    for (const auto& r : results) row.push_back(r.entire.max_err);
    bench::print_row(s.label, row);
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
