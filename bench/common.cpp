#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/evaluation.hpp"

namespace adam2::bench {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

}  // namespace

BenchEnv bench_env(std::size_t default_n) {
  BenchEnv env;
  env.n = default_n;
  if (env_u64("ADAM2_BENCH_FULL", 0) != 0) env.n = 100000;
  env.n = env_u64("ADAM2_BENCH_N", env.n);
  env.seed = env_u64("ADAM2_BENCH_SEED", 42);
  env.peer_sample = env_u64("ADAM2_BENCH_PEERS", 400);
  env.threads = env_u64("ADAM2_BENCH_THREADS", 0);
  return env;
}

std::vector<stats::Value> population(data::Attribute kind, std::size_t n,
                                     std::uint64_t seed) {
  rng::Rng rng(seed ^ (static_cast<std::uint64_t>(kind) + 1) * 0x9e37ULL);
  return data::generate_population(kind, n, rng);
}

void print_banner(const std::string& title, const BenchEnv& env) {
  std::printf("# %s\n", title.c_str());
  std::printf("# nodes=%zu seed=%llu peer_sample=%zu threads=%zu\n", env.n,
              static_cast<unsigned long long>(env.seed), env.peer_sample,
              env.threads);
}

void print_header(const std::string& label,
                  const std::vector<std::string>& columns) {
  std::printf("%-28s", label.c_str());
  for (const std::string& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
}

void print_row(const std::string& label, const std::vector<double>& values) {
  std::printf("%-28s", label.c_str());
  for (double v : values) std::printf(" %14.6g", v);
  std::printf("\n");
}

core::SystemConfig default_system(const BenchEnv& env) {
  core::SystemConfig config;
  config.engine.seed = env.seed;
  config.protocol.lambda = 50;
  config.protocol.instance_ttl = 25;
  config.protocol.heuristic = core::SelectionHeuristic::kMinMax;
  config.protocol.bootstrap = core::BootstrapPoints::kNeighbourBased;
  config.overlay = core::OverlayKind::kCyclon;
  config.overlay_degree = 20;
  config.engine_threads = env.threads;
  return config;
}

sim::AttributeSource churn_source(data::Attribute kind) {
  return [kind](rng::Rng& rng) { return data::sample_attribute(kind, rng); };
}

std::vector<InstanceResult> run_adam2_series(
    const core::SystemConfig& config, const std::vector<stats::Value>& values,
    std::size_t instances, const BenchEnv& env,
    sim::AttributeSource churn) {
  core::Adam2System system(config, values, std::move(churn));
  const stats::EmpiricalCdf truth{values};
  // Let the peer-sampling service mix before the first instance, so the
  // neighbour-based bootstrap draws from a warm descriptor cache.
  system.run_rounds(5);

  core::EvaluationOptions options;
  options.peer_sample = env.peer_sample;

  std::vector<InstanceResult> results;
  results.reserve(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    system.run_instance();
    InstanceResult r;
    // Under churn the truth drifts; evaluate against the current population.
    const stats::EmpiricalCdf current_truth =
        config.engine.churn_rate > 0.0 ? system.truth() : truth;
    const auto entire =
        core::evaluate_estimates(system.engine(), current_truth, options);
    const auto at_points =
        core::evaluate_estimate_points(system.engine(), current_truth, options);
    r.entire = {entire.max_err, entire.avg_err};
    r.at_points = {at_points.max_err, at_points.avg_err};
    results.push_back(r);
  }
  return results;
}

std::vector<InstanceResult> run_equidepth_series(
    const baselines::EquiDepthConfig& config, const sim::EngineConfig& engine,
    const std::vector<stats::Value>& values, std::size_t phases,
    const BenchEnv& env, sim::AttributeSource churn) {
  sim::Engine sim_engine(
      engine, values, core::make_overlay(core::OverlayKind::kCyclon, 20),
      [config](const sim::AgentContext&) {
        return std::make_unique<baselines::EquiDepthAgent>(config);
      },
      std::move(churn));
  const stats::EmpiricalCdf truth{values};

  std::vector<InstanceResult> results;
  results.reserve(phases);
  for (std::size_t i = 0; i < phases; ++i) {
    const sim::NodeId initiator = sim_engine.random_live_node();
    auto ctx = sim_engine.context_for(initiator);
    auto& agent =
        dynamic_cast<baselines::EquiDepthAgent&>(sim_engine.agent(initiator));
    const wire::InstanceId phase = agent.start_phase(ctx);
    // Evaluate the bins while the phase is still live (last gossip round),
    // then let it finalise and evaluate the population estimates.
    sim_engine.run_rounds(config.phase_ttl);
    const stats::EmpiricalCdf current_truth =
        engine.churn_rate > 0.0
            ? stats::EmpiricalCdf{sim_engine.live_attribute_values()}
            : truth;
    const auto instant = baselines::evaluate_equidepth_phase(
        sim_engine, phase, current_truth, env.peer_sample);
    sim_engine.run_rounds(1);
    const auto pop = baselines::evaluate_equidepth(sim_engine, current_truth,
                                                   env.peer_sample);
    InstanceResult r;
    r.entire = {pop.max_err, pop.avg_err};
    r.at_points = instant.at_bins;
    results.push_back(r);
  }
  return results;
}

}  // namespace adam2::bench
