#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>

#include "core/evaluation.hpp"
#include "obs/export.hpp"
#include "options.hpp"

namespace adam2::bench {
namespace {

/// The mirrored report. Benches are single-threaded mains, so one global
/// instance with no locking is enough.
struct Report {
  bool armed = false;
  std::string name;
  BenchEnv env;
  std::vector<std::pair<std::string, double>> phases;   ///< Accumulated secs.
  std::vector<std::pair<std::string, double>> metrics;  ///< Accumulated.
  struct Series {
    std::string label;
    std::vector<std::string> columns;
    std::vector<std::pair<std::string, std::vector<double>>> rows;
  };
  std::vector<Series> series;
  /// Observability recorder shared by every engine a series driver builds
  /// during this report (pointer: Recorder is intentionally non-copyable).
  std::unique_ptr<obs::Recorder> recorder;
};

Report g_report;

void accumulate(std::vector<std::pair<std::string, double>>& into,
                const std::string& key, double value) {
  for (auto& [k, v] : into) {
    if (k == key) {
      v += value;
      return;
    }
  }
  into.emplace_back(key, value);
}

void json_string(std::string& out, const std::string& s) {
  out += '"';
  out += obs::json_escape(s);
  out += '"';
}

void json_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace

BenchEnv bench_env(std::size_t default_n) {
  // Same ADAM2_BENCH_* names as ever, parsed through the shared typed
  // option helper the CLI tools use (tools/options.hpp).
  const tools::Options vars = tools::Options::from_env("ADAM2_BENCH");
  BenchEnv env;
  env.n = default_n;
  if (vars.get_int("full", 0) != 0) env.n = 100000;
  env.n = static_cast<std::size_t>(
      vars.get_int("n", static_cast<std::int64_t>(env.n)));
  env.seed = static_cast<std::uint64_t>(vars.get_int("seed", 42));
  env.peer_sample = static_cast<std::size_t>(vars.get_int("peers", 400));
  env.threads = static_cast<std::size_t>(vars.get_int("threads", 0));
  env.faults = tools::parse_fault_plan(vars);
  return env;
}

std::vector<stats::Value> population(data::Attribute kind, std::size_t n,
                                     std::uint64_t seed) {
  rng::Rng rng(seed ^ (static_cast<std::uint64_t>(kind) + 1) * 0x9e37ULL);
  return data::generate_population(kind, n, rng);
}

void print_banner(const std::string& title, const BenchEnv& env) {
  std::printf("# %s\n", title.c_str());
  std::printf("# nodes=%zu seed=%llu peer_sample=%zu threads=%zu\n", env.n,
              static_cast<unsigned long long>(env.seed), env.peer_sample,
              env.threads);
}

void print_header(const std::string& label,
                  const std::vector<std::string>& columns) {
  std::printf("%-28s", label.c_str());
  for (const std::string& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
  if (g_report.armed) {
    g_report.series.push_back({label, columns, {}});
  }
}

void print_row(const std::string& label, const std::vector<double>& values) {
  std::printf("%-28s", label.c_str());
  for (double v : values) std::printf(" %14.6g", v);
  std::printf("\n");
  if (g_report.armed && !g_report.series.empty()) {
    g_report.series.back().rows.emplace_back(label, values);
  }
}

void open_report(const std::string& name, const BenchEnv& env) {
  g_report = Report{};
  g_report.armed = true;
  g_report.name = name;
  g_report.env = env;
  g_report.recorder = std::make_unique<obs::Recorder>();
  obs::RunManifest& manifest = g_report.recorder->manifest();
  manifest.name = name;
  manifest.seed = env.seed;
  manifest.threads = std::max<std::size_t>(env.threads, 1);
  manifest.set("nodes", static_cast<std::uint64_t>(env.n));
  manifest.set("peer_sample", static_cast<std::uint64_t>(env.peer_sample));
}

obs::Recorder* report_recorder() {
  return g_report.armed ? g_report.recorder.get() : nullptr;
}

void report_metric(const std::string& key, double value) {
  if (g_report.armed) accumulate(g_report.metrics, key, value);
}

PhaseTimer::PhaseTimer(std::string phase)
    : phase_(std::move(phase)), start_(std::chrono::steady_clock::now()) {}

PhaseTimer::~PhaseTimer() {
  if (!g_report.armed) return;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  accumulate(g_report.phases, phase_, elapsed.count());
}

std::string emit_json() {
  if (!g_report.armed) return {};
  const char* dir = std::getenv("ADAM2_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return {};
  const std::string path =
      (std::filesystem::path(dir) / ("BENCH_" + g_report.name + ".json"))
          .string();

  std::string out;
  out.reserve(4096);
  out += "{\n  \"name\": ";
  json_string(out, g_report.name);
  out += ",\n  \"nodes\": " + std::to_string(g_report.env.n);
  out += ",\n  \"seed\": " + std::to_string(g_report.env.seed);
  out += ",\n  \"peer_sample\": " + std::to_string(g_report.env.peer_sample);
  out += ",\n  \"threads\": " + std::to_string(g_report.env.threads) + ",\n";

  const auto dump_map =
      [&out](const char* key,
             const std::vector<std::pair<std::string, double>>& entries) {
        out += "  \"";
        out += key;
        out += "\": {";
        bool first = true;
        for (const auto& [k, v] : entries) {
          out += first ? "\n    " : ",\n    ";
          first = false;
          json_string(out, k);
          out += ": ";
          json_double(out, v);
        }
        out += entries.empty() ? "},\n" : "\n  },\n";
      };
  dump_map("phases_seconds", g_report.phases);
  dump_map("metrics", g_report.metrics);

  out += "  \"series\": [";
  for (std::size_t s = 0; s < g_report.series.size(); ++s) {
    const Report::Series& series = g_report.series[s];
    out += s == 0 ? "\n    {\"label\": " : ",\n    {\"label\": ";
    json_string(out, series.label);
    out += ", \"columns\": [";
    for (std::size_t c = 0; c < series.columns.size(); ++c) {
      if (c > 0) out += ", ";
      json_string(out, series.columns[c]);
    }
    out += "], \"rows\": [";
    for (std::size_t r = 0; r < series.rows.size(); ++r) {
      const auto& [label, values] = series.rows[r];
      out += r == 0 ? "\n      {\"label\": " : ",\n      {\"label\": ";
      json_string(out, label);
      out += ", \"values\": [";
      for (std::size_t v = 0; v < values.size(); ++v) {
        if (v > 0) out += ", ";
        json_double(out, values[v]);
      }
      out += "]}";
    }
    out += series.rows.empty() ? "]}" : "\n    ]}";
  }
  out += g_report.series.empty() ? "]\n}\n" : "\n  ]\n}\n";

  // Atomic publication (write temp, fsync, rename): a crashed bench or a
  // racing artifact collector never sees a truncated BENCH_*.json.
  if (!obs::atomic_write_file(path, out)) return {};

  // The run manifest and metrics snapshot ride alongside every report.
  if (g_report.recorder != nullptr) {
    const std::filesystem::path base{dir};
    obs::write_manifest_json(
        (base / ("MANIFEST_" + g_report.name + ".json")).string(),
        g_report.recorder->manifest());
    obs::write_metrics_json(
        (base / ("METRICS_" + g_report.name + ".json")).string(),
        g_report.recorder->metrics());
  }
  return path;
}

core::SystemConfig default_system(const BenchEnv& env) {
  core::SystemConfig config;
  config.engine.seed = env.seed;
  config.protocol.lambda = 50;
  config.protocol.instance_ttl = 25;
  config.protocol.heuristic = core::SelectionHeuristic::kMinMax;
  config.protocol.bootstrap = core::BootstrapPoints::kNeighbourBased;
  config.overlay = core::OverlayKind::kCyclon;
  config.overlay_degree = 20;
  config.engine_threads = env.threads;
  config.engine.faults = env.faults;
  return config;
}

host::AttributeSource churn_source(data::Attribute kind) {
  return [kind](rng::Rng& rng) { return data::sample_attribute(kind, rng); };
}

std::vector<InstanceResult> run_adam2_series(
    const core::SystemConfig& config, const std::vector<stats::Value>& values,
    std::size_t instances, const BenchEnv& env,
    host::AttributeSource churn) {
  core::Adam2System system(config, values, std::move(churn));
  system.attach_recorder(report_recorder());
  const stats::EmpiricalCdf truth{values};
  // Let the peer-sampling service mix before the first instance, so the
  // neighbour-based bootstrap draws from a warm descriptor cache.
  system.run_rounds(5);

  core::EvaluationOptions options;
  options.peer_sample = env.peer_sample;
  options.threads = env.threads;

  std::vector<InstanceResult> results;
  results.reserve(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    {
      PhaseTimer timer("gossip");
      system.run_instance();
    }
    InstanceResult r;
    PhaseTimer timer("evaluate");
    // Under churn the truth drifts; evaluate against the current population.
    const stats::EmpiricalCdf current_truth =
        config.engine.churn_rate > 0.0 ? system.truth() : truth;
    const auto entire =
        core::evaluate_estimates(system.engine(), current_truth, options);
    const auto at_points =
        core::evaluate_estimate_points(system.engine(), current_truth, options);
    r.entire = {entire.max_err, entire.avg_err};
    r.at_points = {at_points.max_err, at_points.avg_err};
    results.push_back(r);
  }
  const auto& traffic = system.engine().total_traffic();
  report_metric("aggregation_bytes_sent",
                static_cast<double>(
                    traffic.on(host::Channel::kAggregation).bytes_sent));
  report_metric("total_bytes_sent",
                static_cast<double>(traffic.total_bytes_sent()));
  return results;
}

std::vector<InstanceResult> run_equidepth_series(
    const baselines::EquiDepthConfig& config, const sim::EngineConfig& engine,
    const std::vector<stats::Value>& values, std::size_t phases,
    const BenchEnv& env, host::AttributeSource churn) {
  sim::Engine sim_engine(
      engine, values, core::make_overlay(core::OverlayKind::kCyclon, 20),
      [config](const host::AgentContext&) {
        return std::make_unique<baselines::EquiDepthAgent>(config);
      },
      std::move(churn));
  if (obs::Recorder* recorder = report_recorder(); recorder != nullptr) {
    sim_engine.set_recorder(recorder);
    recorder->engine_start("serial", 0, values.size());
  }
  const stats::EmpiricalCdf truth{values};

  std::vector<InstanceResult> results;
  results.reserve(phases);
  for (std::size_t i = 0; i < phases; ++i) {
    const host::NodeId initiator = sim_engine.random_live_node();
    auto ctx = sim_engine.context_for(initiator);
    auto& agent =
        dynamic_cast<baselines::EquiDepthAgent&>(sim_engine.agent(initiator));
    const wire::InstanceId phase = agent.start_phase(ctx);
    // Evaluate the bins while the phase is still live (last gossip round),
    // then let it finalise and evaluate the population estimates.
    {
      PhaseTimer timer("gossip");
      sim_engine.run_rounds(config.phase_ttl);
    }
    PhaseTimer timer("evaluate");
    const stats::EmpiricalCdf current_truth =
        engine.churn_rate > 0.0
            ? stats::EmpiricalCdf{sim_engine.live_attribute_values()}
            : truth;
    const auto instant = baselines::evaluate_equidepth_phase(
        sim_engine, phase, current_truth, env.peer_sample);
    {
      PhaseTimer gossip_timer("gossip");
      sim_engine.run_rounds(1);
    }
    const auto pop = baselines::evaluate_equidepth(sim_engine, current_truth,
                                                   env.peer_sample);
    InstanceResult r;
    r.entire = {pop.max_err, pop.avg_err};
    r.at_points = instant.at_bins;
    results.push_back(r);
  }
  const auto& traffic = sim_engine.total_traffic();
  report_metric("aggregation_bytes_sent",
                static_cast<double>(
                    traffic.on(host::Channel::kAggregation).bytes_sent));
  report_metric("total_bytes_sent",
                static_cast<double>(traffic.total_bytes_sent()));
  return results;
}

double peak_rss_mb() {
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(status);
  return mb;
#else
  return 0.0;
#endif
}

}  // namespace adam2::bench
