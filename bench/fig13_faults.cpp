// Fault tolerance: impact of injected network faults on approximation
// accuracy (companion to Figure 13's churn sweep; DESIGN.md §8).
//
// Sweeps the message drop rate from 0 to 0.6 with the deterministic fault
// layer — first alone, then combined with duplication, corruption and node
// crash-restarts ("chaos" column set). Expected shape: push-pull averaging
// degrades gracefully — losses slow convergence within the fixed TTL rather
// than corrupting it, so Errm/Erra rise smoothly with the loss rate and no
// fault mix produces estimates outside [0, 1].
#include <cstdio>

#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env(4000);
  bench::open_report("fig13_faults", env);
  bench::print_banner("Fault sweep: accuracy under lossy, failing networks",
                      env);

  constexpr std::size_t kInstances = 4;
  const double drop_rates[] = {0.0, 0.05, 0.1, 0.2, 0.4, 0.6};

  bench::print_header("drop_rate",
                      {"CPU_Em", "CPU_Ea", "RAM_Em", "RAM_Ea", "chaos_CPU_Em",
                       "chaos_CPU_Ea"});

  for (double drop : drop_rates) {
    double plain[4];
    int idx = 0;
    for (data::Attribute attribute :
         {data::Attribute::kCpuMflops, data::Attribute::kRamMb}) {
      const auto values = bench::population(attribute, env.n, env.seed);
      core::SystemConfig config = bench::default_system(env);
      config.engine.faults.drop_rate = drop;
      const auto result =
          bench::run_adam2_series(config, values, kInstances, env);
      plain[idx * 2] = result.back().entire.max_err;
      plain[idx * 2 + 1] = result.back().entire.avg_err;
      ++idx;
    }

    // Chaos column: the same drop rate with the rest of the taxonomy active.
    const auto values =
        bench::population(data::Attribute::kCpuMflops, env.n, env.seed);
    core::SystemConfig chaos = bench::default_system(env);
    chaos.engine.faults.drop_rate = drop;
    chaos.engine.faults.duplicate_rate = 0.1;
    chaos.engine.faults.corrupt_rate = 0.1;
    chaos.engine.faults.crash_rate = 0.002;
    const auto chaotic =
        bench::run_adam2_series(chaos, values, kInstances, env);

    char label[32];
    std::snprintf(label, sizeof label, "%g", drop);
    bench::print_row(label,
                     {plain[0], plain[1], plain[2], plain[3],
                      chaotic.back().entire.max_err,
                      chaotic.back().entire.avg_err});
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
