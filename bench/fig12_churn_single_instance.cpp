// Figure 12: approximation accuracy in the presence of churn, for a single
// instance (RAM attribute).
//
// Churn model of §VII-G: 0.1% of nodes leave per round and are replaced by
// fresh nodes drawing attribute values from the same distribution. The
// evaluation excludes nodes that joined during the instance (their CDF
// approximations are undefined). Expected shape: (a) Adam2's error at the
// interpolation points no longer converges to zero (mass leaves with the
// departed nodes) but floors around 0.01-0.1%, still ample for
// interpolation; (b) EquiDepth is not significantly affected by churn but
// stays at its usual error floor.
#include <cstdio>

#include "baselines/equidepth.hpp"
#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"

using namespace adam2;

namespace {

constexpr std::size_t kRounds = 80;
constexpr double kChurnRate = 0.001;

void run_adam2(const bench::BenchEnv& env,
               const std::vector<stats::Value>& values) {
  core::SystemConfig config = bench::default_system(env);
  config.engine.churn_rate = kChurnRate;
  config.protocol.instance_ttl = kRounds + 2;
  core::Adam2System system(config, values,
                           bench::churn_source(data::Attribute::kRamMb));
  system.run_rounds(5);
  const auto id = system.start_instance();
  const host::Round started = system.engine().round();

  std::printf("\n## (a) Adam2 under churn %.3g/round, RAM\n", kChurnRate);
  bench::print_header("round", {"max_points", "avg_points", "max_entire",
                                "avg_entire"});
  core::EvaluationOptions options;
  options.peer_sample = env.peer_sample;
  options.born_by = started;  // Exclude nodes that joined mid-instance.
  for (std::size_t round = 1; round <= kRounds; ++round) {
    system.run_rounds(1);
    const stats::EmpiricalCdf truth = system.truth();
    const auto points =
        core::evaluate_instance_points(system.engine(), id, truth, options);
    const auto entire =
        core::evaluate_instance_cdf(system.engine(), id, truth, options);
    bench::print_row(std::to_string(round),
                     {points.max_err, points.avg_err, entire.max_err,
                      entire.avg_err});
  }
}

void run_equidepth(const bench::BenchEnv& env,
                   const std::vector<stats::Value>& values) {
  baselines::EquiDepthConfig config;
  config.bins = 50;
  config.phase_ttl = kRounds + 2;
  sim::EngineConfig engine_config;
  engine_config.seed = env.seed;
  engine_config.churn_rate = kChurnRate;
  sim::Engine engine(
      engine_config, values, core::make_overlay(core::OverlayKind::kCyclon, 20),
      [config](const host::AgentContext&) {
        return std::make_unique<baselines::EquiDepthAgent>(config);
      },
      bench::churn_source(data::Attribute::kRamMb));
  engine.run_rounds(5);
  const auto initiator = engine.random_live_node();
  auto ctx = engine.context_for(initiator);
  const auto phase =
      dynamic_cast<baselines::EquiDepthAgent&>(engine.agent(initiator))
          .start_phase(ctx);
  const host::Round started = engine.round();

  std::printf("\n## (b) EquiDepth under churn %.3g/round, RAM\n", kChurnRate);
  bench::print_header("round",
                      {"max_bins", "avg_bins", "max_entire", "avg_entire"});
  for (std::size_t round = 1; round <= kRounds; ++round) {
    engine.run_rounds(1);
    const stats::EmpiricalCdf truth{engine.live_attribute_values()};
    const auto errors = baselines::evaluate_equidepth_phase(
        engine, phase, truth, env.peer_sample, started);
    bench::print_row(std::to_string(round),
                     {errors.at_bins.max_err, errors.at_bins.avg_err,
                      errors.entire.max_err, errors.entire.avg_err});
  }
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env();
  bench::open_report("fig12_churn_single_instance", env);
  bench::print_banner("Figure 12: single-instance accuracy under churn (RAM)",
                      env);
  const auto values = bench::population(data::Attribute::kRamMb, env.n, env.seed);
  run_adam2(env, values);
  run_equidepth(env, values);
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
