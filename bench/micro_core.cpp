// Microbenchmarks (google-benchmark) for the hot paths of the library:
// payload merging, wire round-trips, point-selection heuristics, and the
// closed-form discrete error metrics.
#include <benchmark/benchmark.h>

#include "core/instance.hpp"
#include "core/point_selection.hpp"
#include "data/boinc_synth.hpp"
#include "stats/error_metrics.hpp"
#include "wire/messages.hpp"

namespace {

using namespace adam2;

core::InstanceState make_state(std::size_t lambda) {
  std::vector<double> thresholds;
  for (std::size_t i = 0; i < lambda; ++i) {
    thresholds.push_back(static_cast<double>(i) * 10.0);
  }
  return core::InstanceState::start(
      {1, 0}, 0, 25, thresholds, {},
      [](double t) { return 300.0 <= t ? 1.0 : 0.0; }, 300.0, 300.0);
}

void BM_MergeAverage(benchmark::State& state) {
  auto a = make_state(static_cast<std::size_t>(state.range(0)));
  const auto payload = a.to_payload();
  for (auto _ : state) {
    a.average_with(payload);
    benchmark::DoNotOptimize(a.weight);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_MergeAverage)->Arg(10)->Arg(50)->Arg(100);

void BM_WireRoundTrip(benchmark::State& state) {
  wire::Adam2Message message;
  message.sender = 7;
  auto s = make_state(static_cast<std::size_t>(state.range(0)));
  message.instances = {s.to_payload()};
  for (auto _ : state) {
    const auto bytes = message.encode();
    const auto decoded = wire::Adam2Message::decode(bytes);
    benchmark::DoNotOptimize(decoded.instances.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(message.encoded_size()));
}
BENCHMARK(BM_WireRoundTrip)->Arg(10)->Arg(50)->Arg(100);

stats::PiecewiseLinearCdf synthetic_prev(std::size_t knots) {
  std::vector<stats::CdfPoint> points;
  rng::Rng rng(5);
  double f = 0.0;
  for (std::size_t i = 0; i < knots; ++i) {
    f = std::min(1.0, f + rng.uniform() * 2.0 / static_cast<double>(knots));
    points.push_back({static_cast<double>(i * 13), f});
  }
  points.front().f = 0.0;
  points.back().f = 1.0;
  return stats::PiecewiseLinearCdf{std::move(points)};
}

void BM_SelectHCut(benchmark::State& state) {
  const auto prev = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hcut(prev, 50));
  }
}
BENCHMARK(BM_SelectHCut);

void BM_SelectMinMax(benchmark::State& state) {
  const auto prev = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minmax(prev, 50));
  }
}
BENCHMARK(BM_SelectMinMax);

void BM_SelectLCut(benchmark::State& state) {
  const auto prev = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lcut(prev, 50));
  }
}
BENCHMARK(BM_SelectLCut);

void BM_DiscreteErrors(benchmark::State& state) {
  rng::Rng rng(7);
  const auto values = data::generate_population(
      data::Attribute::kRamMb, static_cast<std::size_t>(state.range(0)), rng);
  const stats::EmpiricalCdf truth{values};
  const auto approx = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::discrete_errors(truth, approx));
  }
}
BENCHMARK(BM_DiscreteErrors)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EmpiricalCdfBuild(benchmark::State& state) {
  rng::Rng rng(8);
  const auto values = data::generate_population(
      data::Attribute::kCpuMflops, static_cast<std::size_t>(state.range(0)),
      rng);
  for (auto _ : state) {
    auto copy = values;
    benchmark::DoNotOptimize(stats::EmpiricalCdf{std::move(copy)});
  }
}
BENCHMARK(BM_EmpiricalCdfBuild)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
