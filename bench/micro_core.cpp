// Microbenchmarks (google-benchmark) for the hot paths of the library —
// payload merging, wire round-trips, point-selection heuristics, and the
// closed-form discrete error metrics — plus an always-run acceptance harness
// for the optimised paths:
//
//   * DiscreteErrorEvaluator must be bit-identical to discrete_errors and
//     at least ~2x faster on a 20,000-node truth (the speedup is recorded in
//     BENCH_micro_core.json; only bit-mismatches fail the process, since
//     wall-clock on shared CI runners is noisy).
//   * A steady-state Adam2 gossip exchange (make_request -> handle_request ->
//     handle_response between two live agents) must perform zero heap
//     allocations, verified with a counting global operator new.
//   * The zero-copy Adam2MessageView must materialize exactly what
//     Adam2Message::decode produces for builder-encoded bytes.
//
// Environment: ADAM2_BENCH_JSON=<dir> writes the acceptance metrics to
// <dir>/BENCH_micro_core.json; ADAM2_BENCH_MICRO_ACCEPT_ONLY=1 skips the
// google-benchmark suite (CI smoke runs use this). Any exit code other than
// zero means an acceptance invariant broke.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "common.hpp"
#include "core/instance.hpp"
#include "core/point_selection.hpp"
#include "core/protocol.hpp"
#include "data/boinc_synth.hpp"
#include "host/agent.hpp"
#include "host/overlay.hpp"
#include "host/view.hpp"
#include "stats/error_metrics.hpp"
#include "wire/messages.hpp"

// -- Allocation counting ----------------------------------------------------
// Counted global operator new: every successful allocation bumps the counter,
// so the acceptance harness can assert that warmed-up gossip exchanges are
// allocation-free. Deltas are what matter; the absolute value includes the
// benchmark library's own allocations.
//
// GCC flags free() inside the replaced operator delete as mismatched with the
// (also replaced, malloc-backed) operator new at inlined call sites; the pair
// is consistent by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  const std::size_t al =
      std::max(static_cast<std::size_t>(align), sizeof(void*));
  if (posix_memalign(&p, al, size) != 0) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace adam2;

core::InstanceState make_state(std::size_t lambda) {
  std::vector<double> thresholds;
  for (std::size_t i = 0; i < lambda; ++i) {
    thresholds.push_back(static_cast<double>(i) * 10.0);
  }
  return core::InstanceState::start(
      {1, 0}, 0, 25, thresholds, {},
      [](double t) { return 300.0 <= t ? 1.0 : 0.0; }, 300.0, 300.0);
}

stats::PiecewiseLinearCdf synthetic_prev(std::size_t knots,
                                         std::uint64_t seed = 5) {
  std::vector<stats::CdfPoint> points;
  rng::Rng rng(seed);
  double f = 0.0;
  for (std::size_t i = 0; i < knots; ++i) {
    f = std::min(1.0, f + rng.uniform() * 2.0 / static_cast<double>(knots));
    points.push_back({static_cast<double>(i * 13), f});
  }
  points.front().f = 0.0;
  points.back().f = 1.0;
  return stats::PiecewiseLinearCdf{std::move(points)};
}

// -- Acceptance harness -----------------------------------------------------

/// Minimal host for driving two agents directly: everyone is live, traffic
/// recording is a no-op (the substrate, not the agent, records traffic).
class PairHostView final : public host::HostView {
 public:
  PairHostView() : ids_{0, 1} {}
  [[nodiscard]] bool is_live(host::NodeId) const override { return true; }
  [[nodiscard]] stats::Value attribute_of(host::NodeId id) const override {
    return id == 0 ? 100 : 900;
  }
  [[nodiscard]] host::Round round() const override { return 1; }
  [[nodiscard]] std::span<const host::NodeId> live_ids() const override {
    return ids_;
  }
  void record_traffic(host::NodeId, host::NodeId, host::Channel,
                      std::size_t) override {}

 private:
  std::vector<host::NodeId> ids_;
};

/// Two-node overlay: each node's only neighbour is the other one; the
/// neighbour-value cache is a fixed spread so bootstrap thresholds exist.
class PairOverlay final : public host::Overlay {
 public:
  void add_node(host::NodeId, const host::HostView&, rng::Rng&) override {}
  void remove_node(host::NodeId) override {}
  [[nodiscard]] std::optional<host::NodeId> pick_gossip_target(
      host::NodeId id, rng::Rng&) const override {
    return id == 0 ? host::NodeId{1} : host::NodeId{0};
  }
  [[nodiscard]] std::vector<host::NodeId> neighbors(
      host::NodeId id) const override {
    return {id == 0 ? host::NodeId{1} : host::NodeId{0}};
  }
  [[nodiscard]] std::vector<stats::Value> known_attribute_values(
      host::NodeId, const host::HostView&) const override {
    std::vector<stats::Value> values;
    for (stats::Value v = 50; v <= 1000; v += 50) values.push_back(v);
    return values;
  }
};

bool check(bool ok, const char* what, int& failures) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++failures;
  return ok;
}

/// Bit-match + speedup of DiscreteErrorEvaluator vs discrete_errors on a
/// 20,000-node RAM truth (the acceptance scale from the optimisation issue).
void accept_evaluator(const bench::BenchEnv& env, int& failures) {
  constexpr std::size_t kNodes = 20000;
  rng::Rng rng(env.seed);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, kNodes, rng);
  const stats::EmpiricalCdf truth{values};
  const stats::DiscreteErrorEvaluator evaluator(truth);

  std::vector<stats::PiecewiseLinearCdf> approxes;
  for (std::uint64_t s = 0; s < 32; ++s) {
    approxes.push_back(synthetic_prev(52, 7 * s + 1));
  }

  std::size_t mismatches = 0;
  for (const auto& approx : approxes) {
    const stats::ErrorPair slow = stats::discrete_errors(truth, approx);
    const stats::ErrorPair fast = evaluator(approx);
    if (slow.max_err != fast.max_err || slow.avg_err != fast.avg_err) {
      ++mismatches;
    }
  }
  check(mismatches == 0, "evaluator bit-identical to discrete_errors",
        failures);
  bench::report_metric("evaluator_bit_mismatches",
                       static_cast<double>(mismatches));

  using clock = std::chrono::steady_clock;
  const auto time_passes = [&](auto&& fn) {
    // One warm-up pass, then best-of-3 to shrug off scheduler noise.
    fn();
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto begin = clock::now();
      fn();
      const std::chrono::duration<double> d = clock::now() - begin;
      best = std::min(best, d.count());
    }
    return best;
  };
  double sink = 0.0;
  const double serial_s = time_passes([&] {
    for (const auto& approx : approxes) {
      sink += stats::discrete_errors(truth, approx).avg_err;
    }
  });
  const double cached_s = time_passes([&] {
    for (const auto& approx : approxes) sink += evaluator(approx).avg_err;
  });
  benchmark::DoNotOptimize(sink);
  const double speedup = cached_s > 0.0 ? serial_s / cached_s : 0.0;
  std::printf("  evaluator: serial %.6fs cached %.6fs speedup %.2fx %s\n",
              serial_s, cached_s, speedup,
              speedup >= 2.0 ? "(target >= 2x met)" : "(below 2x target!)");
  bench::report_metric("evaluator_serial_s", serial_s);
  bench::report_metric("evaluator_cached_s", cached_s);
  bench::report_metric("evaluator_speedup_n20000", speedup);
}

/// Steady-state gossip between two warmed-up agents must not allocate: the
/// request/reply encode into reused Writer scratch and the decode is the
/// zero-copy view, so the only allocations happen while instances join.
void accept_zero_alloc_exchange(int& failures) {
  PairHostView view;
  PairOverlay overlay;
  rng::Rng rng_a(1);
  rng::Rng rng_b(2);
  host::AgentContext actx{view, overlay, 0, 1, 0, view.attribute_of(0), rng_a};
  host::AgentContext bctx{view, overlay, 1, 1, 0, view.attribute_of(1), rng_b};

  core::Adam2Config config;
  config.lambda = 50;
  config.instance_ttl = 60000;  // Stay mid-instance for the whole run.
  core::Adam2Agent a(config);
  core::Adam2Agent b(config);
  (void)a.start_instance(actx);
  (void)a.start_instance(actx);

  const auto exchange = [&] {
    const auto request = a.make_request(actx);
    if (!request.empty()) {
      const auto response = b.handle_request(bctx, request);
      if (!response.empty()) a.handle_response(actx, response);
    }
    const auto back_request = b.make_request(bctx);
    if (!back_request.empty()) {
      const auto back_response = a.handle_request(actx, back_request);
      if (!back_response.empty()) b.handle_response(bctx, back_response);
    }
  };
  // Warm up: b joins both instances and every scratch buffer reaches its
  // steady-state capacity.
  for (int i = 0; i < 16; ++i) exchange();

  constexpr int kSteadyIters = 1000;
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < kSteadyIters; ++i) exchange();
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;

  char what[96];
  std::snprintf(what, sizeof what,
                "steady-state exchange allocation-free (%llu allocs / %d "
                "exchanges)",
                static_cast<unsigned long long>(allocs), kSteadyIters);
  check(allocs == 0, what, failures);
  bench::report_metric("exchange_steady_allocs", static_cast<double>(allocs));
  bench::report_metric("exchange_steady_iterations",
                       static_cast<double>(kSteadyIters));
  bench::report_metric(
      "exchange_active_instances",
      static_cast<double>(a.active_instance_count()));
}

/// The zero-copy view of builder-encoded bytes must materialize exactly what
/// the owning decoder produces.
void accept_wire_view(int& failures) {
  wire::Adam2Message message;
  message.type = wire::MessageType::kAdam2Request;
  message.sender = 7;
  auto s = make_state(50);
  message.instances = {s.to_payload()};

  wire::Writer scratch;
  wire::Adam2MessageBuilder builder(scratch, message.type, message.sender);
  builder.add(message.instances.front());
  const auto bytes = builder.finish();

  const wire::Adam2Message owned = wire::Adam2Message::decode(bytes);
  const wire::Adam2Message viewed =
      wire::Adam2MessageView::parse(bytes).materialize();
  check(owned == message && viewed == message,
        "zero-copy view materializes identically to Adam2Message::decode",
        failures);
}

int run_acceptance(const bench::BenchEnv& env) {
  std::printf("\n## Hot-path acceptance checks\n");
  int failures = 0;
  accept_wire_view(failures);
  accept_zero_alloc_exchange(failures);
  accept_evaluator(env, failures);
  bench::report_metric("acceptance_failures", static_cast<double>(failures));
  return failures == 0 ? 0 : 1;
}

// -- Microbenchmarks --------------------------------------------------------

void BM_MergeAverage(benchmark::State& state) {
  auto a = make_state(static_cast<std::size_t>(state.range(0)));
  const auto payload = a.to_payload();
  for (auto _ : state) {
    a.average_with(payload);
    benchmark::DoNotOptimize(a.weight);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_MergeAverage)->Arg(10)->Arg(50)->Arg(100);

void BM_WireRoundTrip(benchmark::State& state) {
  wire::Adam2Message message;
  message.sender = 7;
  auto s = make_state(static_cast<std::size_t>(state.range(0)));
  message.instances = {s.to_payload()};
  for (auto _ : state) {
    const auto bytes = message.encode();
    const auto decoded = wire::Adam2Message::decode(bytes);
    benchmark::DoNotOptimize(decoded.instances.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(message.encoded_size()));
}
BENCHMARK(BM_WireRoundTrip)->Arg(10)->Arg(50)->Arg(100);

void BM_WireViewRoundTrip(benchmark::State& state) {
  auto s = make_state(static_cast<std::size_t>(state.range(0)));
  const auto payload = s.to_payload();
  wire::Writer scratch;
  std::size_t encoded_size = 0;
  for (auto _ : state) {
    wire::Adam2MessageBuilder builder(scratch,
                                      wire::MessageType::kAdam2Request, 7);
    builder.add(payload);
    const auto bytes = builder.finish();
    encoded_size = bytes.size();
    const auto view = wire::Adam2MessageView::parse(bytes);
    double sum = 0.0;
    for (const auto& instance : view) {
      for (const stats::CdfPoint p : instance.points) sum += p.f;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(encoded_size));
}
BENCHMARK(BM_WireViewRoundTrip)->Arg(10)->Arg(50)->Arg(100);

void BM_SelectHCut(benchmark::State& state) {
  const auto prev = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hcut(prev, 50));
  }
}
BENCHMARK(BM_SelectHCut);

void BM_SelectMinMax(benchmark::State& state) {
  const auto prev = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minmax(prev, 50));
  }
}
BENCHMARK(BM_SelectMinMax);

void BM_SelectLCut(benchmark::State& state) {
  const auto prev = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lcut(prev, 50));
  }
}
BENCHMARK(BM_SelectLCut);

void BM_DiscreteErrors(benchmark::State& state) {
  rng::Rng rng(7);
  const auto values = data::generate_population(
      data::Attribute::kRamMb, static_cast<std::size_t>(state.range(0)), rng);
  const stats::EmpiricalCdf truth{values};
  const auto approx = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::discrete_errors(truth, approx));
  }
}
BENCHMARK(BM_DiscreteErrors)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DiscreteErrorEvaluator(benchmark::State& state) {
  rng::Rng rng(7);
  const auto values = data::generate_population(
      data::Attribute::kRamMb, static_cast<std::size_t>(state.range(0)), rng);
  const stats::EmpiricalCdf truth{values};
  const stats::DiscreteErrorEvaluator evaluator(truth);
  const auto approx = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator(approx));
  }
}
BENCHMARK(BM_DiscreteErrorEvaluator)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EmpiricalCdfBuild(benchmark::State& state) {
  rng::Rng rng(8);
  const auto values = data::generate_population(
      data::Attribute::kCpuMflops, static_cast<std::size_t>(state.range(0)),
      rng);
  for (auto _ : state) {
    auto copy = values;
    benchmark::DoNotOptimize(stats::EmpiricalCdf{std::move(copy)});
  }
}
BENCHMARK(BM_EmpiricalCdfBuild)->Arg(1000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  const adam2::bench::BenchEnv env = adam2::bench::bench_env();
  adam2::bench::open_report("micro_core", env);
  adam2::bench::print_banner(
      "Microbenchmarks and hot-path acceptance checks", env);

  const int rc = run_acceptance(env);

  const char* accept_only = std::getenv("ADAM2_BENCH_MICRO_ACCEPT_ONLY");
  if (accept_only == nullptr || *accept_only == '\0' ||
      *accept_only == '0') {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  const std::string json = adam2::bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return rc;
}
