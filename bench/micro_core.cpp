// Microbenchmarks (google-benchmark) for the hot paths of the library —
// payload merging, wire round-trips, point-selection heuristics, and the
// closed-form discrete error metrics — plus an always-run acceptance harness
// for the optimised paths:
//
//   * DiscreteErrorEvaluator must be bit-identical to discrete_errors and
//     at least ~2x faster on a 20,000-node truth (the speedup is recorded in
//     BENCH_micro_core.json; only bit-mismatches fail the process, since
//     wall-clock on shared CI runners is noisy).
//   * A steady-state Adam2 gossip exchange (make_request -> handle_request ->
//     handle_response between two live agents) must perform zero heap
//     allocations, verified with a counting global operator new.
//   * The zero-copy Adam2MessageView must materialize exactly what
//     Adam2Message::decode produces for builder-encoded bytes.
//
// Environment: ADAM2_BENCH_JSON=<dir> writes the acceptance metrics to
// <dir>/BENCH_micro_core.json; ADAM2_BENCH_MICRO_ACCEPT_ONLY=1 skips the
// google-benchmark suite (CI smoke runs use this). Any exit code other than
// zero means an acceptance invariant broke.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <new>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "core/instance.hpp"
#include "core/instance_store.hpp"
#include "core/point_selection.hpp"
#include "core/protocol.hpp"
#include "data/boinc_synth.hpp"
#include "host/agent.hpp"
#include "host/overlay.hpp"
#include "host/view.hpp"
#include "stats/error_metrics.hpp"
#include "wire/messages.hpp"

// -- Allocation counting ----------------------------------------------------
// Counted global operator new: every successful allocation bumps the counter,
// so the acceptance harness can assert that warmed-up gossip exchanges are
// allocation-free. Deltas are what matter; the absolute value includes the
// benchmark library's own allocations.
//
// GCC flags free() inside the replaced operator delete as mismatched with the
// (also replaced, malloc-backed) operator new at inlined call sites; the pair
// is consistent by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  const std::size_t al =
      std::max(static_cast<std::size_t>(align), sizeof(void*));
  if (posix_memalign(&p, al, size) != 0) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace adam2;

core::InstanceState make_state(std::size_t lambda) {
  std::vector<double> thresholds;
  for (std::size_t i = 0; i < lambda; ++i) {
    thresholds.push_back(static_cast<double>(i) * 10.0);
  }
  return core::InstanceState::start(
      {1, 0}, 0, 25, thresholds, {},
      [](double t) { return 300.0 <= t ? 1.0 : 0.0; }, 300.0, 300.0);
}

stats::PiecewiseLinearCdf synthetic_prev(std::size_t knots,
                                         std::uint64_t seed = 5) {
  std::vector<stats::CdfPoint> points;
  rng::Rng rng(seed);
  double f = 0.0;
  for (std::size_t i = 0; i < knots; ++i) {
    f = std::min(1.0, f + rng.uniform() * 2.0 / static_cast<double>(knots));
    points.push_back({static_cast<double>(i * 13), f});
  }
  points.front().f = 0.0;
  points.back().f = 1.0;
  return stats::PiecewiseLinearCdf{std::move(points)};
}

// -- Acceptance harness -----------------------------------------------------

/// Minimal host for driving two agents directly: everyone is live, traffic
/// recording is a no-op (the substrate, not the agent, records traffic).
class PairHostView final : public host::HostView {
 public:
  PairHostView() : ids_{0, 1} {}
  [[nodiscard]] bool is_live(host::NodeId) const override { return true; }
  [[nodiscard]] stats::Value attribute_of(host::NodeId id) const override {
    return id == 0 ? 100 : 900;
  }
  [[nodiscard]] host::Round round() const override { return 1; }
  [[nodiscard]] std::span<const host::NodeId> live_ids() const override {
    return ids_;
  }
  void record_traffic(host::NodeId, host::NodeId, host::Channel,
                      std::size_t) override {}

 private:
  std::vector<host::NodeId> ids_;
};

/// Two-node overlay: each node's only neighbour is the other one; the
/// neighbour-value cache is a fixed spread so bootstrap thresholds exist.
class PairOverlay final : public host::Overlay {
 public:
  void add_node(host::NodeId, const host::HostView&, rng::Rng&) override {}
  void remove_node(host::NodeId) override {}
  [[nodiscard]] std::optional<host::NodeId> pick_gossip_target(
      host::NodeId id, rng::Rng&) const override {
    return id == 0 ? host::NodeId{1} : host::NodeId{0};
  }
  [[nodiscard]] std::vector<host::NodeId> neighbors(
      host::NodeId id) const override {
    return {id == 0 ? host::NodeId{1} : host::NodeId{0}};
  }
  [[nodiscard]] std::vector<stats::Value> known_attribute_values(
      host::NodeId, const host::HostView&) const override {
    std::vector<stats::Value> values;
    for (stats::Value v = 50; v <= 1000; v += 50) values.push_back(v);
    return values;
  }
};

bool check(bool ok, const char* what, int& failures) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++failures;
  return ok;
}

/// Bit-match + speedup of DiscreteErrorEvaluator vs discrete_errors on a
/// 20,000-node RAM truth (the acceptance scale from the optimisation issue).
void accept_evaluator(const bench::BenchEnv& env, int& failures) {
  constexpr std::size_t kNodes = 20000;
  rng::Rng rng(env.seed);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, kNodes, rng);
  const stats::EmpiricalCdf truth{values};
  const stats::DiscreteErrorEvaluator evaluator(truth);

  std::vector<stats::PiecewiseLinearCdf> approxes;
  for (std::uint64_t s = 0; s < 32; ++s) {
    approxes.push_back(synthetic_prev(52, 7 * s + 1));
  }

  std::size_t mismatches = 0;
  for (const auto& approx : approxes) {
    const stats::ErrorPair slow = stats::discrete_errors(truth, approx);
    const stats::ErrorPair fast = evaluator(approx);
    if (slow.max_err != fast.max_err || slow.avg_err != fast.avg_err) {
      ++mismatches;
    }
  }
  check(mismatches == 0, "evaluator bit-identical to discrete_errors",
        failures);
  bench::report_metric("evaluator_bit_mismatches",
                       static_cast<double>(mismatches));

  using clock = std::chrono::steady_clock;
  const auto time_passes = [&](auto&& fn) {
    // One warm-up pass, then best-of-3 to shrug off scheduler noise.
    fn();
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto begin = clock::now();
      fn();
      const std::chrono::duration<double> d = clock::now() - begin;
      best = std::min(best, d.count());
    }
    return best;
  };
  double sink = 0.0;
  const double serial_s = time_passes([&] {
    for (const auto& approx : approxes) {
      sink += stats::discrete_errors(truth, approx).avg_err;
    }
  });
  const double cached_s = time_passes([&] {
    for (const auto& approx : approxes) sink += evaluator(approx).avg_err;
  });
  benchmark::DoNotOptimize(sink);
  const double speedup = cached_s > 0.0 ? serial_s / cached_s : 0.0;
  std::printf("  evaluator: serial %.6fs cached %.6fs speedup %.2fx %s\n",
              serial_s, cached_s, speedup,
              speedup >= 2.0 ? "(target >= 2x met)" : "(below 2x target!)");
  bench::report_metric("evaluator_serial_s", serial_s);
  bench::report_metric("evaluator_cached_s", cached_s);
  bench::report_metric("evaluator_speedup_n20000", speedup);
}

/// Steady-state gossip between two warmed-up agents must not allocate: the
/// request/reply encode into reused Writer scratch and the decode is the
/// zero-copy view, so the only allocations happen while instances join.
void accept_zero_alloc_exchange(int& failures) {
  PairHostView view;
  PairOverlay overlay;
  rng::Rng rng_a(1);
  rng::Rng rng_b(2);
  host::AgentContext actx{view, overlay, 0, 1, 0, view.attribute_of(0), rng_a};
  host::AgentContext bctx{view, overlay, 1, 1, 0, view.attribute_of(1), rng_b};

  core::Adam2Config config;
  config.lambda = 50;
  config.instance_ttl = 60000;  // Stay mid-instance for the whole run.
  core::Adam2Agent a(config);
  core::Adam2Agent b(config);
  (void)a.start_instance(actx);
  (void)a.start_instance(actx);

  const auto exchange = [&] {
    const auto request = a.make_request(actx);
    if (!request.empty()) {
      const auto response = b.handle_request(bctx, request);
      if (!response.empty()) a.handle_response(actx, response);
    }
    const auto back_request = b.make_request(bctx);
    if (!back_request.empty()) {
      const auto back_response = a.handle_request(actx, back_request);
      if (!back_response.empty()) b.handle_response(bctx, back_response);
    }
  };
  // Warm up: b joins both instances and every scratch buffer reaches its
  // steady-state capacity.
  for (int i = 0; i < 16; ++i) exchange();

  constexpr int kSteadyIters = 1000;
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < kSteadyIters; ++i) exchange();
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;

  char what[96];
  std::snprintf(what, sizeof what,
                "steady-state exchange allocation-free (%llu allocs / %d "
                "exchanges)",
                static_cast<unsigned long long>(allocs), kSteadyIters);
  check(allocs == 0, what, failures);
  bench::report_metric("exchange_steady_allocs", static_cast<double>(allocs));
  bench::report_metric("exchange_steady_iterations",
                       static_cast<double>(kSteadyIters));
  bench::report_metric(
      "exchange_active_instances",
      static_cast<double>(a.active_instance_count()));
}

/// The full instance lifecycle — initiator-side creation, joining off a
/// parsed wire view, the merge sweep, and TTL expiry — must be
/// allocation-free at steady state: slot rows, arena blocks, and the wire
/// scratch are all recycled once their high-water marks have been seen.
/// (This extends the warmed-up-exchange check above, which never
/// creates or expires an instance inside its window.)
void accept_zero_alloc_lifecycle(int& failures) {
  constexpr std::size_t kLambda = 50;
  constexpr std::size_t kMaxLive = 16;

  std::vector<double> thresholds(kLambda);
  for (std::size_t i = 0; i < kLambda; ++i) {
    thresholds[i] = static_cast<double>(i) * 20.0;
  }
  const std::vector<double> verification{100.0, 300.0, 600.0, 900.0};
  const core::ContributionFn contribution = [](double t) {
    return 300.0 <= t ? 1.0 : 0.0;
  };

  core::InstanceStore initiator;  // Starts instances, merges echoes back.
  core::InstanceStore joiner;     // Joins them off the parsed wire view.
  wire::Writer fwd_scratch;
  wire::Writer back_scratch;
  std::vector<wire::InstanceId> live;
  live.reserve(kMaxLive + 1);
  std::uint32_t seq = 0;

  const auto cycle = [&] {
    // Create on the initiator; ship it; join on the joiner.
    const wire::InstanceId id{1, seq++};
    core::InstanceSlot& started =
        initiator.start(id, seq, 25, thresholds, verification, contribution,
                        300.0, 300.0);
    wire::Adam2MessageBuilder fwd(fwd_scratch, wire::MessageType::kAdam2Request,
                                  1);
    fwd.add(started.ref());
    const auto fwd_view = wire::Adam2MessageView::parse(fwd.finish());
    joiner.join(*fwd_view.begin(), contribution, 700.0, 700.0);
    live.push_back(id);
    // Merge sweep: the joiner's whole state travels back and averages in.
    wire::Adam2MessageBuilder back(back_scratch,
                                   wire::MessageType::kAdam2Response, 2);
    for (const core::InstanceSlot& slot : joiner) back.add(slot.ref());
    const auto back_view = wire::Adam2MessageView::parse(back.finish());
    for (const wire::InstancePayloadView& payload : back_view) {
      core::InstanceSlot* slot = initiator.find(payload.id);
      if (slot != nullptr && slot->mergeable_with(payload)) {
        slot->average_with(payload);
      }
    }
    // Expire the oldest instance on both sides.
    if (live.size() > kMaxLive) {
      initiator.erase(live.front());
      joiner.erase(live.front());
      live.erase(live.begin());
    }
  };

  for (int i = 0; i < 64; ++i) cycle();  // Reach every high-water mark.

  constexpr int kSteadyIters = 1000;
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < kSteadyIters; ++i) cycle();
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;

  char what[96];
  std::snprintf(what, sizeof what,
                "create/join/merge/expire lifecycle allocation-free (%llu "
                "allocs / %d cycles)",
                static_cast<unsigned long long>(allocs), kSteadyIters);
  check(allocs == 0, what, failures);
  bench::report_metric("lifecycle_steady_allocs", static_cast<double>(allocs));
  bench::report_metric("lifecycle_steady_iterations",
                       static_cast<double>(kSteadyIters));
  bench::report_metric("lifecycle_heap_pages",
                       static_cast<double>(initiator.arena().heap_pages()));
}

// Shared driver for the store-vs-map comparison: one round of the agent's
// per-exchange work over `Container` — encode every live instance in
// insertion order, merge the parsed echo back in, look every id up, then
// expire the oldest instance and start a fresh one. The two container
// adapters below execute identical op sequences so the timing difference is
// purely the memory layout.
struct StoreAdapter {
  core::InstanceStore store;

  void start(wire::InstanceId id, const std::vector<double>& thresholds,
             const std::vector<double>& verification,
             const core::ContributionFn& fn) {
    store.start(id, id.seq, 25, thresholds, verification, fn, 300.0, 300.0);
  }
  void encode(wire::Adam2MessageBuilder& builder) const {
    for (const core::InstanceSlot& slot : store) builder.add(slot.ref());
  }
  void merge(const wire::InstancePayloadView& payload) {
    core::InstanceSlot* slot = store.find(payload.id);
    if (slot != nullptr && slot->mergeable_with(payload)) {
      slot->average_with(payload);
    }
  }
  [[nodiscard]] double lookup_weight(wire::InstanceId id) const {
    const core::InstanceSlot* slot = store.find(id);
    return slot != nullptr ? slot->weight : 0.0;
  }
  void erase(wire::InstanceId id) { store.erase(id); }
};

/// The pre-arena agent layout, ingredient for ingredient:
/// std::unordered_map of owning InstanceState plus an insertion-order id
/// vector walked for every traversal.
struct MapAdapter {
  std::unordered_map<wire::InstanceId, core::InstanceState,
                     wire::InstanceIdHash>
      map;
  std::vector<wire::InstanceId> order;

  void start(wire::InstanceId id, const std::vector<double>& thresholds,
             const std::vector<double>& verification,
             const core::ContributionFn& fn) {
    map.emplace(id, core::InstanceState::start(id, id.seq, 25, thresholds,
                                               verification, fn, 300.0,
                                               300.0));
    order.push_back(id);
  }
  void encode(wire::Adam2MessageBuilder& builder) const {
    for (const wire::InstanceId id : order) builder.add(map.find(id)->second);
  }
  void merge(const wire::InstancePayloadView& payload) {
    auto it = map.find(payload.id);
    if (it != map.end() && it->second.mergeable_with(payload)) {
      it->second.average_with(payload);
    }
  }
  [[nodiscard]] double lookup_weight(wire::InstanceId id) const {
    auto it = map.find(id);
    return it != map.end() ? it->second.weight : 0.0;
  }
  void erase(wire::InstanceId id) {
    map.erase(id);
    std::erase(order, id);
  }
};

template <typename Container>
class StoreWorkload {
 public:
  StoreWorkload(std::size_t active, std::size_t lambda) : thresholds_(lambda) {
    contribution_ = [](double t) { return 300.0 <= t ? 1.0 : 0.0; };
    for (std::size_t i = 0; i < active; ++i) start_next();
  }

  /// One exchange-shaped round; returns a checksum of the lookups.
  double round() {
    wire::Adam2MessageBuilder builder(scratch_,
                                      wire::MessageType::kAdam2Request, 1);
    container_.encode(builder);
    const auto view = wire::Adam2MessageView::parse(builder.finish());
    for (const wire::InstancePayloadView& payload : view) {
      container_.merge(payload);
    }
    double sum = 0.0;
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (const wire::InstanceId id : live_) {
        sum += container_.lookup_weight(id);
      }
    }
    for (std::size_t i = 0; i < kChurnPerRound; ++i) {
      container_.erase(live_.front());
      live_.erase(live_.begin());
      start_next();
    }
    return sum;
  }

  static constexpr std::size_t kChurnPerRound = 16;

  [[nodiscard]] std::span<const std::byte> encoded() {
    wire::Adam2MessageBuilder builder(scratch_,
                                      wire::MessageType::kAdam2Request, 1);
    container_.encode(builder);
    return builder.finish();
  }

 private:
  void start_next() {
    const wire::InstanceId id{1, seq_++};
    // Distinct threshold sets per instance (same sequence on both sides).
    for (std::size_t i = 0; i < thresholds_.size(); ++i) {
      thresholds_[i] =
          static_cast<double>(i) * 20.0 + static_cast<double>(id.seq % 7);
    }
    container_.start(id, thresholds_, verification_, contribution_);
    live_.push_back(id);
  }

  Container container_;
  std::vector<double> thresholds_;
  std::vector<double> verification_{100.0, 300.0, 600.0, 900.0};
  core::ContributionFn contribution_;
  std::vector<wire::InstanceId> live_;
  wire::Writer scratch_;
  std::uint32_t seq_ = 0;
};

/// Store-level insert/lookup/merge/expire microbench at a paper-scale
/// instance count: the arena-backed InstanceStore against the pre-arena
/// unordered_map layout, running identical op sequences. 16k instances is
/// the aggregate active-instance footprint a monolithic engine process
/// sweeps per round at large N — per-agent maps scatter that footprint over
/// individual heap nodes (which is what this baseline reproduces), while
/// per-agent arenas keep it dense. The speedup is recorded in the JSON
/// report; the bit-identity of the two layouts' final encoded states is
/// what gates acceptance (wall-clock on shared CI runners is noisy).
void accept_store_speedup(int& failures) {
  constexpr std::size_t kActive = 16384;
  // The repo's canonical protocol config (protocol_test): lambda 12 plus 4
  // verification points. The point arithmetic is identical in both layouts,
  // so a very large lambda only dilutes the container difference under
  // shared (unchanged) work.
  constexpr std::size_t kLambda = 12;
  constexpr int kRounds = 15;

  using clock = std::chrono::steady_clock;
  const auto time_once = [&](auto& workload) {
    double sink = 0.0;
    const auto begin = clock::now();
    for (int i = 0; i < kRounds; ++i) sink += workload.round();
    const std::chrono::duration<double> d = clock::now() - begin;
    benchmark::DoNotOptimize(sink);
    return d.count();
  };

  StoreWorkload<MapAdapter> map_workload(kActive, kLambda);
  StoreWorkload<StoreAdapter> store_workload(kActive, kLambda);
  // Interleaved best-of-3: frequency drift on shared runners then biases
  // both layouts alike instead of whichever happened to run second.
  double map_s = 1e300;
  double store_s = 1e300;
  (void)time_once(map_workload);    // Warm-up.
  (void)time_once(store_workload);  // Warm-up.
  for (int rep = 0; rep < 3; ++rep) {
    map_s = std::min(map_s, time_once(map_workload));
    store_s = std::min(store_s, time_once(store_workload));
  }

  // Both layouts ran the same schedule: their full encoded states must be
  // byte-identical (merge arithmetic, iteration order, wire encode).
  const auto map_bytes = map_workload.encoded();
  std::vector<std::byte> map_copy(map_bytes.begin(), map_bytes.end());
  const auto store_bytes = store_workload.encoded();
  check(map_copy.size() == store_bytes.size() &&
            std::equal(map_copy.begin(), map_copy.end(), store_bytes.begin()),
        "instance store byte-identical to map baseline after workload",
        failures);

  const double speedup = store_s > 0.0 ? map_s / store_s : 0.0;
  std::printf(
      "  store: map %.6fs arena %.6fs speedup %.2fx %s (%zu instances, "
      "lambda %zu)\n",
      map_s, store_s, speedup,
      speedup >= 1.5 ? "(target >= 1.5x met)" : "(below 1.5x target!)",
      kActive, kLambda);
  bench::report_metric("store_map_baseline_s", map_s);
  bench::report_metric("store_arena_s", store_s);
  bench::report_metric("store_speedup_merge_lookup", speedup);
}

/// The zero-copy view of builder-encoded bytes must materialize exactly what
/// the owning decoder produces.
void accept_wire_view(int& failures) {
  wire::Adam2Message message;
  message.type = wire::MessageType::kAdam2Request;
  message.sender = 7;
  auto s = make_state(50);
  message.instances = {s.to_payload()};

  wire::Writer scratch;
  wire::Adam2MessageBuilder builder(scratch, message.type, message.sender);
  builder.add(message.instances.front());
  const auto bytes = builder.finish();

  const wire::Adam2Message owned = wire::Adam2Message::decode(bytes);
  const wire::Adam2Message viewed =
      wire::Adam2MessageView::parse(bytes).materialize();
  check(owned == message && viewed == message,
        "zero-copy view materializes identically to Adam2Message::decode",
        failures);
}

int run_acceptance(const bench::BenchEnv& env) {
  std::printf("\n## Hot-path acceptance checks\n");
  int failures = 0;
  accept_wire_view(failures);
  accept_zero_alloc_exchange(failures);
  accept_zero_alloc_lifecycle(failures);
  accept_store_speedup(failures);
  accept_evaluator(env, failures);
  bench::report_metric("acceptance_failures", static_cast<double>(failures));
  return failures == 0 ? 0 : 1;
}

// -- Microbenchmarks --------------------------------------------------------

void BM_MergeAverage(benchmark::State& state) {
  auto a = make_state(static_cast<std::size_t>(state.range(0)));
  const auto payload = a.to_payload();
  for (auto _ : state) {
    a.average_with(payload);
    benchmark::DoNotOptimize(a.weight);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_MergeAverage)->Arg(10)->Arg(50)->Arg(100);

void BM_WireRoundTrip(benchmark::State& state) {
  wire::Adam2Message message;
  message.sender = 7;
  auto s = make_state(static_cast<std::size_t>(state.range(0)));
  message.instances = {s.to_payload()};
  for (auto _ : state) {
    const auto bytes = message.encode();
    const auto decoded = wire::Adam2Message::decode(bytes);
    benchmark::DoNotOptimize(decoded.instances.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(message.encoded_size()));
}
BENCHMARK(BM_WireRoundTrip)->Arg(10)->Arg(50)->Arg(100);

void BM_WireViewRoundTrip(benchmark::State& state) {
  auto s = make_state(static_cast<std::size_t>(state.range(0)));
  const auto payload = s.to_payload();
  wire::Writer scratch;
  std::size_t encoded_size = 0;
  for (auto _ : state) {
    wire::Adam2MessageBuilder builder(scratch,
                                      wire::MessageType::kAdam2Request, 7);
    builder.add(payload);
    const auto bytes = builder.finish();
    encoded_size = bytes.size();
    const auto view = wire::Adam2MessageView::parse(bytes);
    double sum = 0.0;
    for (const auto& instance : view) {
      for (const stats::CdfPoint p : instance.points) sum += p.f;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(encoded_size));
}
BENCHMARK(BM_WireViewRoundTrip)->Arg(10)->Arg(50)->Arg(100);

void BM_SelectHCut(benchmark::State& state) {
  const auto prev = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hcut(prev, 50));
  }
}
BENCHMARK(BM_SelectHCut);

void BM_SelectMinMax(benchmark::State& state) {
  const auto prev = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minmax(prev, 50));
  }
}
BENCHMARK(BM_SelectMinMax);

void BM_SelectLCut(benchmark::State& state) {
  const auto prev = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lcut(prev, 50));
  }
}
BENCHMARK(BM_SelectLCut);

void BM_DiscreteErrors(benchmark::State& state) {
  rng::Rng rng(7);
  const auto values = data::generate_population(
      data::Attribute::kRamMb, static_cast<std::size_t>(state.range(0)), rng);
  const stats::EmpiricalCdf truth{values};
  const auto approx = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::discrete_errors(truth, approx));
  }
}
BENCHMARK(BM_DiscreteErrors)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DiscreteErrorEvaluator(benchmark::State& state) {
  rng::Rng rng(7);
  const auto values = data::generate_population(
      data::Attribute::kRamMb, static_cast<std::size_t>(state.range(0)), rng);
  const stats::EmpiricalCdf truth{values};
  const stats::DiscreteErrorEvaluator evaluator(truth);
  const auto approx = synthetic_prev(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator(approx));
  }
}
BENCHMARK(BM_DiscreteErrorEvaluator)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EmpiricalCdfBuild(benchmark::State& state) {
  rng::Rng rng(8);
  const auto values = data::generate_population(
      data::Attribute::kCpuMflops, static_cast<std::size_t>(state.range(0)),
      rng);
  for (auto _ : state) {
    auto copy = values;
    benchmark::DoNotOptimize(stats::EmpiricalCdf{std::move(copy)});
  }
}
BENCHMARK(BM_EmpiricalCdfBuild)->Arg(1000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  const adam2::bench::BenchEnv env = adam2::bench::bench_env();
  adam2::bench::open_report("micro_core", env);
  adam2::bench::print_banner(
      "Microbenchmarks and hot-path acceptance checks", env);

  const int rc = run_acceptance(env);

  const char* accept_only = std::getenv("ADAM2_BENCH_MICRO_ACCEPT_ONLY");
  if (accept_only == nullptr || *accept_only == '\0' ||
      *accept_only == '0') {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  const std::string json = adam2::bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return rc;
}
