// Ablation (§VII-D): combining interpolation points across instances.
//
// Errm/Erra after 4 instances when the working estimate combines the points
// of the last k instances (k = 1 disables combining). Communication cost is
// identical in all configurations — combining is free accuracy on static
// CDFs.
#include <cstdio>

#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env(10000);
  bench::open_report("ablation_combining", env);
  bench::print_banner(
      "Ablation: combining interpolation points over instances (4 instances)",
      env);

  bench::print_header("combine_k", {"CPU_Errm", "CPU_Erra", "RAM_Errm",
                                    "RAM_Erra"});
  for (std::size_t k : {1u, 2u, 3u, 4u}) {
    std::vector<double> row;
    for (data::Attribute attribute :
         {data::Attribute::kCpuMflops, data::Attribute::kRamMb}) {
      const auto values = bench::population(attribute, env.n, env.seed);
      core::SystemConfig config = bench::default_system(env);
      config.protocol.heuristic = core::SelectionHeuristic::kLCut;
      config.protocol.combine_last_instances = k;
      const auto results = bench::run_adam2_series(config, values, 4, env);
      row.push_back(results.back().entire.max_err);
      row.push_back(results.back().entire.avg_err);
    }
    bench::print_row(std::to_string(k), row);
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
