// Shared scaffolding for the per-figure bench binaries.
//
// Every bench reads its scale from the environment:
//   ADAM2_BENCH_N=<nodes>     population size (default 20,000)
//   ADAM2_BENCH_FULL=1        paper scale (100,000 nodes)
//   ADAM2_BENCH_SEED=<s>      master seed (default 42)
//   ADAM2_BENCH_THREADS=<t>   worker threads: cycle engine AND sharded
//                             population evaluation (default serial)
//   ADAM2_BENCH_JSON=<dir>    also write a machine-readable report to
//                             <dir>/BENCH_<name>.json — per-phase wall-clock
//                             seconds, bytes exchanged, and every printed
//                             series (Errm/Erra columns included)
// and prints the corresponding figure's series as aligned text columns.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/equidepth.hpp"
#include "core/system.hpp"
#include "data/boinc_synth.hpp"
#include "host/fault.hpp"
#include "obs/recorder.hpp"
#include "stats/cdf.hpp"

namespace adam2::bench {

struct BenchEnv {
  std::size_t n = 20000;
  std::uint64_t seed = 42;
  /// Peers sampled per evaluation (0 = all); keeps wide sweeps tractable.
  std::size_t peer_sample = 400;
  /// Cycle-engine worker threads (0/1 = serial Engine; >1 = ParallelEngine).
  std::size_t threads = 0;
  /// Deterministic fault schedule from ADAM2_BENCH_FAULT_* (same names as
  /// adam2_sim's --fault-* flags; default all-zero = off). Applied by
  /// default_system().
  host::FaultPlan faults;
};

/// Parses the ADAM2_BENCH_* environment variables.
[[nodiscard]] BenchEnv bench_env(std::size_t default_n = 20000);

/// Synthetic population of `n` values for `kind`, deterministic in `seed`.
[[nodiscard]] std::vector<stats::Value> population(data::Attribute kind,
                                                   std::size_t n,
                                                   std::uint64_t seed);

/// Prints "# <title>" plus the environment banner.
void print_banner(const std::string& title, const BenchEnv& env);

/// Prints one aligned row of label + numeric columns.
void print_row(const std::string& label, const std::vector<double>& values);
void print_header(const std::string& label,
                  const std::vector<std::string>& columns);

// -- Machine-readable report (ADAM2_BENCH_JSON) -----------------------------
//
// open_report(name, env) arms the report; from then on print_header starts a
// mirrored series and print_row appends to it, so benches get their printed
// Errm/Erra columns into the JSON for free. PhaseTimer accumulates wall-clock
// seconds per named phase (the series drivers below time their gossip and
// evaluation phases automatically), report_metric accumulates named scalars
// (bytes exchanged, speedups, ...). emit_json() writes
// $ADAM2_BENCH_JSON/BENCH_<name>.json and is a no-op when the variable is
// unset, so benches call it unconditionally.

/// Arms the report for this bench run. `name` becomes BENCH_<name>.json.
void open_report(const std::string& name, const BenchEnv& env);

/// Adds `value` to the named scalar metric (starting from zero).
void report_metric(const std::string& key, double value);

/// Writes the report if open_report() ran and ADAM2_BENCH_JSON is set.
/// Also writes the run manifest (MANIFEST_<name>.json) and a metrics
/// snapshot (METRICS_<name>.json) next to it. Every file is written to a
/// temp name, fsynced and atomically renamed into place, so a crashed or
/// interrupted bench never leaves a truncated report behind.
/// Returns the BENCH_<name>.json path written, or empty when disabled.
std::string emit_json();

/// The report's observability recorder: armed by open_report(), attached to
/// the engines the series drivers below build, exported by emit_json().
/// Null before open_report() — benches that drive engines directly can
/// attach it themselves.
[[nodiscard]] obs::Recorder* report_recorder();

/// Accumulates wall-clock seconds into the report's named phase (RAII).
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Result of one Adam2 aggregation instance in a multi-instance series.
struct InstanceResult {
  stats::ErrorPair entire;     ///< Errm / Erra over the whole domain.
  stats::ErrorPair at_points;  ///< Errors at the interpolation points.
};

/// Runs `instances` consecutive scripted Adam2 instances on a fresh system
/// and evaluates after each one. Later instances refine the interpolation
/// points of earlier ones exactly as in §V.
[[nodiscard]] std::vector<InstanceResult> run_adam2_series(
    const core::SystemConfig& config, const std::vector<stats::Value>& values,
    std::size_t instances, const BenchEnv& env,
    host::AttributeSource churn_source = nullptr);

/// Same driver for the EquiDepth baseline phases.
[[nodiscard]] std::vector<InstanceResult> run_equidepth_series(
    const baselines::EquiDepthConfig& config, const sim::EngineConfig& engine,
    const std::vector<stats::Value>& values, std::size_t phases,
    const BenchEnv& env, host::AttributeSource churn_source = nullptr);

/// Default system configuration shared by the benches (paper defaults:
/// lambda = 50, ttl = 25, MinMax + neighbour bootstrap, Cyclon overlay).
[[nodiscard]] core::SystemConfig default_system(const BenchEnv& env);

/// Attribute source drawing fresh values of `kind` (churn replacements).
[[nodiscard]] host::AttributeSource churn_source(data::Attribute kind);

/// Peak resident set size of this process in MiB (Linux VmHWM; 0.0 where
/// the platform has no cheap equivalent). Monotone over the process
/// lifetime, so ascending-size sweeps read it after each row.
[[nodiscard]] double peak_rss_mb();

}  // namespace adam2::bench
