// Figure 8: approximation error in EquiDepth over multiple phases, compared
// against Adam2 (MinMax for Errm in (a), LCut for Erra in (b)).
//
// Expected shape: EquiDepth's error is flat across phases (its bins are
// never refined), a few times worse than MinMax on Errm — especially for the
// stepped RAM CDF — and an order of magnitude worse than LCut on Erra.
#include <cstdio>

#include <string>

#include "common.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env(10000);
  bench::open_report("fig08_equidepth_phases", env);
  bench::print_banner("Figure 8: EquiDepth over multiple phases", env);

  constexpr std::size_t kPhases = 5;
  const std::pair<const char*, data::Attribute> attributes[] = {
      {"CPU", data::Attribute::kCpuMflops},
      {"RAM", data::Attribute::kRamMb},
  };

  struct SeriesResult {
    std::string label;
    std::vector<double> max_err;
    std::vector<double> avg_err;
  };
  std::vector<SeriesResult> results;

  for (const auto& [attr_label, attribute] : attributes) {
    const auto values = bench::population(attribute, env.n, env.seed);

    baselines::EquiDepthConfig ed_config;
    ed_config.bins = 50;
    ed_config.phase_ttl = 25;
    const auto ed = bench::run_equidepth_series(
        ed_config, sim::EngineConfig{.seed = env.seed}, values, kPhases, env);
    SeriesResult ed_result;
    ed_result.label = std::string(attr_label) + "-EquiDepth";
    for (const auto& phase : ed) {
      ed_result.max_err.push_back(phase.entire.max_err);
      ed_result.avg_err.push_back(phase.entire.avg_err);
    }
    results.push_back(std::move(ed_result));

    for (const auto& [h_label, heuristic] :
         {std::pair{"MinMax", core::SelectionHeuristic::kMinMax},
          std::pair{"LCut", core::SelectionHeuristic::kLCut}}) {
      core::SystemConfig config = bench::default_system(env);
      config.protocol.heuristic = heuristic;
      const auto series =
          bench::run_adam2_series(config, values, kPhases, env);
      SeriesResult r;
      r.label = std::string(attr_label) + "-" + h_label;
      for (const auto& inst : series) {
        r.max_err.push_back(inst.entire.max_err);
        r.avg_err.push_back(inst.entire.avg_err);
      }
      results.push_back(std::move(r));
    }
  }

  std::vector<std::string> columns;
  for (std::size_t i = 1; i <= kPhases; ++i) {
    columns.push_back("inst" + std::to_string(i));
  }
  std::printf("\n## (a) Maximum distance (Errm) — compare *-EquiDepth vs *-MinMax\n");
  bench::print_header("series", columns);
  for (const auto& r : results) bench::print_row(r.label, r.max_err);
  std::printf("\n## (b) Average distance (Erra) — compare *-EquiDepth vs *-LCut\n");
  bench::print_header("series", columns);
  for (const auto& r : results) bench::print_row(r.label, r.avg_err);
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
