// Ablation: overlay substrate — static random graph vs Cyclon peer sampling.
//
// Compares (1) first-instance accuracy with the neighbour-based bootstrap
// (Cyclon's descriptor cache exposes many more attribute values than a
// static node's fixed neighbour list) and (2) accuracy under churn (the
// static graph degrades as links die; Cyclon repairs its views). Also
// reports the overlay-maintenance traffic Cyclon pays for this.
#include <cstdio>

#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"

using namespace adam2;

namespace {

struct Outcome {
  double first_instance_errm;
  double churn_erra;
  double overlay_kb_per_node;
};

Outcome run_overlay(const bench::BenchEnv& env, core::OverlayKind kind) {
  const auto values = bench::population(data::Attribute::kRamMb, env.n, env.seed);
  Outcome out;

  {  // First-instance bootstrap quality, no churn.
    core::SystemConfig config = bench::default_system(env);
    config.overlay = kind;
    core::Adam2System system(config, values);
    system.run_rounds(5);
    system.run_instance();
    core::EvaluationOptions options;
    options.peer_sample = env.peer_sample;
    const stats::EmpiricalCdf truth{values};
    out.first_instance_errm =
        core::evaluate_estimates(system.engine(), truth, options).max_err;
  }

  {  // Three instances under 1% churn per round.
    core::SystemConfig config = bench::default_system(env);
    config.overlay = kind;
    config.engine.churn_rate = 0.01;
    core::Adam2System system(config, values,
                             bench::churn_source(data::Attribute::kRamMb));
    system.run_rounds(5);
    for (int i = 0; i < 3; ++i) system.run_instance();
    core::EvaluationOptions options;
    options.peer_sample = env.peer_sample;
    options.missing_counts_as_one = false;
    out.churn_erra =
        core::evaluate_estimates(system.engine(), system.truth(), options)
            .avg_err;
    const auto& overlay_traffic =
        system.engine().total_traffic().on(host::Channel::kOverlay);
    out.overlay_kb_per_node = static_cast<double>(overlay_traffic.bytes_sent) /
                              static_cast<double>(env.n) / 1024.0;
  }
  return out;
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env(10000);
  bench::open_report("ablation_overlay", env);
  bench::print_banner("Ablation: overlay substrate (RAM attribute)", env);
  bench::print_header("overlay", {"inst1_Errm", "churn1%_Erra",
                                  "overlay_kB/node"});
  const Outcome st = run_overlay(env, core::OverlayKind::kStaticRandom);
  bench::print_row("static_random",
                   {st.first_instance_errm, st.churn_erra,
                    st.overlay_kb_per_node});
  const Outcome cy = run_overlay(env, core::OverlayKind::kCyclon);
  bench::print_row("cyclon",
                   {cy.first_instance_errm, cy.churn_erra,
                    cy.overlay_kb_per_node});
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
