// Figure 10: influence of the number of interpolation points on accuracy.
//
// Errm (a, MinMax vs EquiDepth) and Erra (b, LCut vs EquiDepth) after 4
// instances/phases, sweeping lambda (bins) from 10 to 100. Expected shape:
// more points bring better accuracy; Adam2 outperforms EquiDepth at every
// budget; ~50 points give Errm ~2% (MinMax) and Erra ~0.1% (LCut).
#include <cstdio>

#include <string>

#include "common.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env(5000);
  bench::open_report("fig10_interpolation_points", env);
  bench::print_banner(
      "Figure 10: influence of the number of interpolation points", env);

  constexpr std::size_t kInstances = 4;
  const std::pair<const char*, data::Attribute> attributes[] = {
      {"CPU", data::Attribute::kCpuMflops},
      {"RAM", data::Attribute::kRamMb},
  };

  bench::print_header("points", {"CPU_MinMax_Em", "RAM_MinMax_Em",
                                 "CPU_LCut_Ea", "RAM_LCut_Ea",
                                 "CPU_ED_Em", "RAM_ED_Em", "CPU_ED_Ea",
                                 "RAM_ED_Ea"});

  for (std::size_t lambda = 10; lambda <= 100; lambda += 10) {
    std::vector<double> row;
    double ed_em[2];
    double ed_ea[2];
    double minmax_em[2];
    double lcut_ea[2];
    int idx = 0;
    for (const auto& [attr_label, attribute] : attributes) {
      const auto values = bench::population(attribute, env.n, env.seed);

      core::SystemConfig mm = bench::default_system(env);
      mm.protocol.lambda = lambda;
      mm.protocol.heuristic = core::SelectionHeuristic::kMinMax;
      minmax_em[idx] =
          bench::run_adam2_series(mm, values, kInstances, env).back()
              .entire.max_err;

      core::SystemConfig lc = bench::default_system(env);
      lc.protocol.lambda = lambda;
      lc.protocol.heuristic = core::SelectionHeuristic::kLCut;
      lcut_ea[idx] =
          bench::run_adam2_series(lc, values, kInstances, env).back()
              .entire.avg_err;

      baselines::EquiDepthConfig ed;
      ed.bins = lambda;
      const auto ed_result = bench::run_equidepth_series(
          ed, sim::EngineConfig{.seed = env.seed}, values, kInstances, env);
      ed_em[idx] = ed_result.back().entire.max_err;
      ed_ea[idx] = ed_result.back().entire.avg_err;
      ++idx;
    }
    bench::print_row(std::to_string(lambda),
                     {minmax_em[0], minmax_em[1], lcut_ea[0], lcut_ea[1],
                      ed_em[0], ed_em[1], ed_ea[0], ed_ea[1]});
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
