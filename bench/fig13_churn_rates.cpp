// Figure 13: impact of the churn rate on approximation accuracy.
//
// Errm (a: MinMax vs EquiDepth) and Erra (b: LCut vs EquiDepth) after 8
// instances/phases, sweeping the churn rate from 0 to 1 (fraction of nodes
// replaced per round). Joining nodes are *included* in the metrics — they
// inherit initial CDF approximations from their neighbours at join time —
// but ignore instances started before they entered the system. Expected
// shape: both systems are highly resilient; accuracy only degrades
// significantly around 1% churn per round (10x the rates observed in real
// P2P systems [13]).
#include <cstdio>

#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env(4000);
  bench::open_report("fig13_churn_rates", env);
  bench::print_banner("Figure 13: impact of churn rate (8 instances)", env);

  constexpr std::size_t kInstances = 8;
  const double churn_rates[] = {0.0, 0.001, 0.003, 0.01, 0.03, 0.1, 1.0};

  bench::print_header("churn_rate", {"CPU_MinMax_Em", "RAM_MinMax_Em",
                                     "CPU_LCut_Ea", "RAM_LCut_Ea",
                                     "CPU_ED_Em", "RAM_ED_Em", "CPU_ED_Ea",
                                     "RAM_ED_Ea"});

  for (double churn : churn_rates) {
    double minmax_em[2];
    double lcut_ea[2];
    double ed_em[2];
    double ed_ea[2];
    int idx = 0;
    for (data::Attribute attribute :
         {data::Attribute::kCpuMflops, data::Attribute::kRamMb}) {
      const auto values = bench::population(attribute, env.n, env.seed);
      const auto source = bench::churn_source(attribute);

      core::SystemConfig mm = bench::default_system(env);
      mm.engine.churn_rate = churn;
      mm.protocol.heuristic = core::SelectionHeuristic::kMinMax;
      minmax_em[idx] =
          bench::run_adam2_series(mm, values, kInstances, env, source)
              .back()
              .entire.max_err;

      core::SystemConfig lc = bench::default_system(env);
      lc.engine.churn_rate = churn;
      lc.protocol.heuristic = core::SelectionHeuristic::kLCut;
      lcut_ea[idx] =
          bench::run_adam2_series(lc, values, kInstances, env, source)
              .back()
              .entire.avg_err;

      baselines::EquiDepthConfig ed;
      ed.bins = 50;
      sim::EngineConfig engine_config;
      engine_config.seed = env.seed;
      engine_config.churn_rate = churn;
      const auto ed_result = bench::run_equidepth_series(
          ed, engine_config, values, kInstances, env, source);
      ed_em[idx] = ed_result.back().entire.max_err;
      ed_ea[idx] = ed_result.back().entire.avg_err;
      ++idx;
    }
    char label[32];
    std::snprintf(label, sizeof label, "%g", churn);
    bench::print_row(label, {minmax_em[0], minmax_em[1], lcut_ea[0],
                             lcut_ea[1], ed_em[0], ed_em[1], ed_ea[0],
                             ed_ea[1]});
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
