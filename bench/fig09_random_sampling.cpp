// Figure 9: approximation error for random sampling (ref [4]).
//
// Errm and Erra of a CDF estimate built from s uniformly drawn samples, for
// s from 1 to 100,000, on the CPU and RAM attributes. Expected shape:
// power-law decay with sample count; the skewed RAM attribute needs more
// samples than the smooth CPU attribute; ~1,000-10,000 samples are needed
// to match Adam2's accuracy.
#include <cstdio>

#include "baselines/sampling.hpp"
#include <string>

#include "common.hpp"
#include "stats/summary.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env();
  bench::open_report("fig09_random_sampling", env);
  bench::print_banner("Figure 9: approximation error for random sampling",
                      env);

  const std::size_t sample_sizes[] = {1,    3,    10,   30,    100,  300,
                                      1000, 3000, 10000, 30000, 100000};
  constexpr int kRepetitions = 5;  // Average the noisy small-sample errors.

  bench::print_header("samples", {"CPU_Errm", "CPU_Erra", "RAM_Errm",
                                  "RAM_Erra", "messages"});
  const auto cpu =
      bench::population(data::Attribute::kCpuMflops, env.n, env.seed);
  const auto ram = bench::population(data::Attribute::kRamMb, env.n, env.seed);
  rng::Rng rng(env.seed + 1);

  for (std::size_t samples : sample_sizes) {
    baselines::SamplingConfig config;
    config.sample_size = samples;
    stats::RunningStat cpu_max, cpu_avg, ram_max, ram_avg;
    std::size_t messages = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto cpu_result = baselines::estimate_by_sampling(cpu, config, rng);
      const auto ram_result = baselines::estimate_by_sampling(ram, config, rng);
      cpu_max.add(cpu_result.errors.max_err);
      cpu_avg.add(cpu_result.errors.avg_err);
      ram_max.add(ram_result.errors.max_err);
      ram_avg.add(ram_result.errors.avg_err);
      messages = cpu_result.messages;
    }
    bench::print_row(std::to_string(samples),
                     {cpu_max.mean(), cpu_avg.mean(), ram_max.mean(),
                      ram_avg.mean(), static_cast<double>(messages)});
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
