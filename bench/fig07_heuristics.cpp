// Figure 7: comparison between HCut, MinMax, and LCut over 5 instances.
//
// (a) maximum distance Errm, (b) average distance Erra, for CPU and RAM.
// Expected shape: all heuristics do well on the smooth CPU curve; on the
// stepped RAM curve MinMax wins Errm (it finds the steps) while LCut wins
// Erra (it spends points by arc length); LCut's Errm on RAM is the worst.
#include <cstdio>

#include <string>

#include "common.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env(10000);
  bench::open_report("fig07_heuristics", env);
  bench::print_banner("Figure 7: HCut vs MinMax vs LCut over 5 instances",
                      env);

  constexpr std::size_t kInstances = 5;
  const std::pair<const char*, core::SelectionHeuristic> heuristics[] = {
      {"MinMax", core::SelectionHeuristic::kMinMax},
      {"HCut", core::SelectionHeuristic::kHCut},
      {"LCut", core::SelectionHeuristic::kLCut},
  };
  const std::pair<const char*, data::Attribute> attributes[] = {
      {"CPU", data::Attribute::kCpuMflops},
      {"RAM", data::Attribute::kRamMb},
  };

  std::vector<std::string> columns;
  for (std::size_t i = 1; i <= kInstances; ++i) {
    columns.push_back("inst" + std::to_string(i));
  }

  // Collect every series once, print Errm then Erra.
  struct SeriesResult {
    std::string label;
    std::vector<double> max_err;
    std::vector<double> avg_err;
  };
  std::vector<SeriesResult> results;
  for (const auto& [attr_label, attribute] : attributes) {
    const auto values = bench::population(attribute, env.n, env.seed);
    for (const auto& [h_label, heuristic] : heuristics) {
      core::SystemConfig config = bench::default_system(env);
      config.protocol.heuristic = heuristic;
      const auto series =
          bench::run_adam2_series(config, values, kInstances, env);
      SeriesResult r;
      r.label = std::string(attr_label) + "-" + h_label;
      for (const auto& inst : series) {
        r.max_err.push_back(inst.entire.max_err);
        r.avg_err.push_back(inst.entire.avg_err);
      }
      results.push_back(std::move(r));
    }
  }

  std::printf("\n## (a) Maximum distance (Errm)\n");
  bench::print_header("series", columns);
  for (const auto& r : results) bench::print_row(r.label, r.max_err);

  std::printf("\n## (b) Average distance (Erra)\n");
  bench::print_header("series", columns);
  for (const auto& r : results) bench::print_row(r.label, r.avg_err);
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
