// Ablation: synchronous rounds vs asynchronous event-driven gossip.
//
// Runs one Adam2 instance on the cycle-driven engine and on the
// event-driven engine (jittered per-node periods, 10-100 ms one-way message
// latency, exchange atomicity) and compares the converged error at the
// interpolation points plus the per-node traffic. Expected: asynchrony
// costs a little convergence speed (busy nodes skip initiations, and some
// requests are refused mid-exchange) but the estimate quality is preserved —
// the protocol does not rely on round synchrony (§VII-F).
#include <cstdio>

#include <string>

#include "common.hpp"
#include "core/evaluation.hpp"
#include "sim/async_engine.hpp"

using namespace adam2;

int main() {
  const bench::BenchEnv env = bench::bench_env(10000);
  bench::open_report("ablation_async", env);
  bench::print_banner("Ablation: synchronous vs asynchronous gossip (RAM)",
                      env);
  const auto values = bench::population(data::Attribute::kRamMb, env.n, env.seed);
  const stats::EmpiricalCdf truth{values};

  core::Adam2Config protocol;
  protocol.lambda = 50;
  protocol.instance_ttl = 30;

  core::EvaluationOptions options;
  options.peer_sample = env.peer_sample;

  bench::print_header("engine", {"avg_at_points", "max_at_points",
                                 "sent_kB/node", "busy_rejects/node"});

  {  // Cycle-driven.
    core::SystemConfig config = bench::default_system(env);
    config.protocol = protocol;
    core::Adam2System system(config, values);
    system.run_rounds(5);
    system.run_instance();
    const auto e =
        core::evaluate_estimate_points(system.engine(), truth, options);
    const auto& traffic = system.engine().total_traffic();
    bench::print_row(
        "cycle_driven",
        {e.avg_err, e.max_err,
         static_cast<double>(traffic.on(host::Channel::kAggregation).bytes_sent) /
             static_cast<double>(env.n) / 1024.0,
         static_cast<double>(traffic.busy_rejections) /
             static_cast<double>(env.n)});
  }

  for (double latency_max : {0.05, 0.1, 0.3}) {
    sim::AsyncConfig config;
    config.seed = env.seed;
    config.latency_max = latency_max;
    sim::AsyncEngine engine(
        config, values, core::make_overlay(core::OverlayKind::kCyclon, 20),
        [protocol](const host::AgentContext&) {
          return std::make_unique<core::Adam2Agent>(protocol);
        },
        nullptr);
    engine.run_until(5.0);
    const host::NodeId initiator = engine.random_live_node();
    auto ctx = engine.context_for(initiator);
    dynamic_cast<core::Adam2Agent&>(engine.agent(initiator)).start_instance(ctx);
    // ttl local ticks plus jitter slack for the slowest node.
    engine.run_until(5.0 + protocol.instance_ttl * 1.1 + 3.0);

    const auto e = core::evaluate_estimate_points(engine, truth, options);
    const auto& traffic = engine.total_traffic();
    char label[48];
    std::snprintf(label, sizeof label, "event_driven_lat%.0fms",
                  latency_max * 1000);
    bench::print_row(
        label,
        {e.avg_err, e.max_err,
         static_cast<double>(traffic.on(host::Channel::kAggregation).bytes_sent) /
             static_cast<double>(env.n) / 1024.0,
         static_cast<double>(traffic.busy_rejections) /
             static_cast<double>(env.n)});
  }
  const std::string json = bench::emit_json();
  if (!json.empty()) std::printf("# wrote %s\n", json.c_str());
  return 0;
}
