#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <chrono>
#include <thread>

#include "core/protocol.hpp"
#include "runtime/cluster.hpp"
#include "runtime/transport.hpp"
#include "wire/buffer.hpp"

namespace adam2::runtime {
namespace {

using namespace std::chrono_literals;

// ----------------------------------------------------------------- Mailbox

TEST(MailboxTest, PushPopFifo) {
  Mailbox mailbox;
  mailbox.push({EnvelopeKind::kGossipRequest, 1, 0, {}});
  mailbox.push({EnvelopeKind::kGossipResponse, 2, 0, {}});
  auto first = mailbox.try_pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->from, 1u);
  auto second = mailbox.try_pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->from, 2u);
  EXPECT_FALSE(mailbox.try_pop().has_value());
}

TEST(MailboxTest, WaitPopTimesOut) {
  Mailbox mailbox;
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      mailbox.wait_pop(start + 20ms);
  EXPECT_FALSE(result.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 15ms);
}

TEST(MailboxTest, WaitPopWakesOnPush) {
  Mailbox mailbox;
  std::thread producer([&] {
    std::this_thread::sleep_for(5ms);
    mailbox.push({EnvelopeKind::kWakeup, 7, 0, {}});
  });
  const auto result =
      mailbox.wait_pop(std::chrono::steady_clock::now() + 5s);
  producer.join();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->from, 7u);
}

TEST(MailboxTest, CloseWakesWaiters) {
  Mailbox mailbox;
  std::thread closer([&] {
    std::this_thread::sleep_for(5ms);
    mailbox.close();
  });
  const auto result =
      mailbox.wait_pop(std::chrono::steady_clock::now() + 5s);
  closer.join();
  EXPECT_FALSE(result.has_value());
}

TEST(MailboxTest, PushAfterCloseIsDropped) {
  Mailbox mailbox;
  mailbox.close();
  mailbox.push({EnvelopeKind::kWakeup, 1, 0, {}});
  EXPECT_EQ(mailbox.size(), 0u);
}

// ----------------------------------------------------------------- Network

TEST(NetworkTest, RoutesToAttachedMailboxes) {
  Network network;
  Mailbox a;
  Mailbox b;
  network.attach(1, &a);
  network.attach(2, &b);
  EXPECT_TRUE(network.send(2, {EnvelopeKind::kGossipRequest, 1, 0,
                               std::vector<std::byte>(10)}));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(network.messages_routed(), 1u);
  EXPECT_EQ(network.bytes_routed(), 10u);
}

TEST(NetworkTest, DropsToUnknownDestination) {
  Network network;
  EXPECT_FALSE(network.send(9, {EnvelopeKind::kGossipRequest, 1, 0, {}}));
  EXPECT_EQ(network.drops(), 1u);
}

TEST(NetworkTest, DetachStopsDelivery) {
  Network network;
  Mailbox a;
  network.attach(1, &a);
  network.detach(1);
  EXPECT_FALSE(network.send(1, {EnvelopeKind::kWakeup, 0, 0, {}}));
}

// ----------------------------------------------------------------- Cluster

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<stats::Value>(i + 1);
  }
  return values;
}

ClusterConfig fast_config(std::uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.gossip_period = 1ms;
  config.response_timeout = 100ms;
  return config;
}

host::AgentFactory adam2_factory(core::Adam2Config protocol) {
  return [protocol](const host::AgentContext&) {
    return std::make_unique<core::Adam2Agent>(protocol);
  };
}

TEST(ClusterTest, StartsAndStopsCleanly) {
  core::Adam2Config protocol;
  protocol.lambda = 5;
  protocol.instance_ttl = 10;
  Cluster cluster(fast_config(1), iota_values(8), adam2_factory(protocol));
  cluster.start();
  std::this_thread::sleep_for(20ms);
  cluster.stop();
  SUCCEED();
}

TEST(ClusterTest, StopIsIdempotentAndDestructorSafe) {
  core::Adam2Config protocol;
  Cluster cluster(fast_config(2), iota_values(4), adam2_factory(protocol));
  cluster.start();
  cluster.stop();
  cluster.stop();
  // Destructor runs stop() again.
}

TEST(ClusterTest, RunOnNodeExecutesOnOwningThread) {
  core::Adam2Config protocol;
  Cluster cluster(fast_config(4), iota_values(4), adam2_factory(protocol));
  cluster.start();
  std::atomic<int> calls{0};
  const auto main_thread = std::this_thread::get_id();
  cluster.run_on_node(2, [&](host::NodeAgent&, host::AgentContext& ctx) {
    EXPECT_EQ(ctx.self, 2u);
    EXPECT_NE(std::this_thread::get_id(), main_thread);
    ++calls;
  });
  cluster.stop();
  EXPECT_EQ(calls.load(), 1);
}

TEST(ClusterTest, RunOnNodeWorksInlineWhenStopped) {
  core::Adam2Config protocol;
  Cluster cluster(fast_config(5), iota_values(4), adam2_factory(protocol));
  bool called = false;
  cluster.run_on_node(1, [&](host::NodeAgent&, host::AgentContext& ctx) {
    EXPECT_EQ(ctx.self, 1u);
    called = true;
  });
  EXPECT_TRUE(called);
}

TEST(ClusterTest, Adam2ConvergesOnRealThreads) {
  core::Adam2Config protocol;
  protocol.lambda = 8;
  protocol.instance_ttl = 80;
  protocol.bootstrap = core::BootstrapPoints::kUniform;

  // Sized for small CI machines: few threads, relaxed period, so the
  // epidemic spread comfortably outruns the tick-driven TTL even under
  // heavy scheduling contention.
  const std::size_t n = 16;
  ClusterConfig config = fast_config(3);
  config.gossip_period = std::chrono::microseconds(4000);
  Cluster cluster(config, iota_values(n), adam2_factory(protocol));
  cluster.start();

  cluster.run_on_node(0, [](host::NodeAgent& agent, host::AgentContext& ctx) {
    dynamic_cast<core::Adam2Agent&>(agent).start_instance(ctx);
  });

  // Poll until every node finalised an estimate, with a generous
  // wall-clock cap for slow machines.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  std::size_t with_estimate = 0;
  std::vector<core::Estimate> estimates;
  while (std::chrono::steady_clock::now() < deadline) {
    with_estimate = 0;
    estimates.clear();
    for (host::NodeId id = 0; id < n; ++id) {
      cluster.run_on_node(id, [&](host::NodeAgent& agent, host::AgentContext&) {
        const auto& a2 = dynamic_cast<core::Adam2Agent&>(agent);
        if (a2.estimate()) {
          ++with_estimate;
          estimates.push_back(*a2.estimate());
        }
      });
    }
    if (with_estimate == n) break;
    std::this_thread::sleep_for(10ms);
  }
  cluster.stop();

  ASSERT_EQ(with_estimate, n);
  for (const core::Estimate& est : estimates) {
    EXPECT_NEAR(est.n_estimate, static_cast<double>(n),
                static_cast<double>(n) * 0.3);
    EXPECT_DOUBLE_EQ(est.min_value, 1.0);
    EXPECT_DOUBLE_EQ(est.max_value, static_cast<double>(n));
    for (const stats::CdfPoint& p : est.points) {
      const double truth =
          std::min(1.0, std::floor(p.t) / static_cast<double>(n));
      EXPECT_NEAR(p.f, truth, 0.15) << "at t=" << p.t;
    }
  }
}

TEST(ClusterTest, TrafficIsAccounted) {
  core::Adam2Config protocol;
  protocol.lambda = 5;
  protocol.instance_ttl = 20;
  Cluster cluster(fast_config(6), iota_values(16), adam2_factory(protocol));
  cluster.start();
  cluster.run_on_node(0, [](host::NodeAgent& agent, host::AgentContext& ctx) {
    dynamic_cast<core::Adam2Agent&>(agent).start_instance(ctx);
  });
  std::this_thread::sleep_for(100ms);
  cluster.stop();
  const auto traffic = cluster.total_traffic();
  EXPECT_GT(traffic.on(host::Channel::kAggregation).messages_sent, 10u);
  EXPECT_GT(cluster.network().messages_routed(), 10u);
}

}  // namespace
}  // namespace adam2::runtime
