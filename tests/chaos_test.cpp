// Chaos harness: the full Adam2 stack swept across deterministic fault
// matrices (ISSUE PR5; DESIGN.md §8). Every run asserts the protocol's
// safety invariants under hostile networks:
//
//  * estimates stay finite, inside [0, 1], and monotone;
//  * no exchange-session leaks — every instance terminates via its TTL and
//    leaves no active state behind, whatever was dropped, duplicated,
//    corrupted, partitioned, or crash-restarted mid-flight;
//  * corrupted wire bytes are rejected by the validation walk, never crash
//    an agent and are never silently merged (the mutant corpus in wire_test
//    covers the same property exhaustively at the codec level);
//  * accuracy (Errm / Erra against ground truth) degrades monotonically as
//    the loss rate rises — faults hurt, they must not corrupt;
//  * fault schedules replay bit-identically, serial or sharded;
//  * an all-zero plan is golden: bit-identical to a run with no fault layer.
//
// Tests here carry the `chaos` ctest label so CI can run the matrix under
// sanitizers: ctest -L chaos.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/protocol.hpp"
#include "core/system.hpp"
#include "host/fault.hpp"
#include "runtime/cluster.hpp"
#include "runtime/udp.hpp"
#include "sim/async_engine.hpp"
#include "sim/overlay.hpp"

namespace adam2 {
namespace {

using namespace std::chrono_literals;

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<stats::Value>(i);
  return values;
}

host::AttributeSource churn_source() {
  return [](rng::Rng& rng) { return static_cast<stats::Value>(rng.below(1000)); };
}

core::SystemConfig chaos_config(std::size_t threads = 0) {
  core::SystemConfig config;
  config.engine.seed = 0xc4a05;
  config.engine.churn_rate = 0.005;
  config.protocol.lambda = 16;
  config.protocol.instance_ttl = 20;
  config.protocol.verification_points = 8;
  config.engine_threads = threads;
  return config;
}

/// Every completed estimate must be a plausible CDF whatever the network
/// did: finite knots, fractions inside [0, 1], monotone non-decreasing.
void expect_sane_estimates(core::Adam2System& system) {
  const auto live = system.engine().live_ids();
  const std::vector<host::NodeId> ids(live.begin(), live.end());
  std::size_t with_estimate = 0;
  for (host::NodeId id : ids) {
    const auto& estimate = system.agent_of(id).estimate();
    if (!estimate) continue;
    ++with_estimate;
    double prev = 0.0;
    for (const stats::CdfPoint& knot : estimate->cdf.knots()) {
      ASSERT_TRUE(std::isfinite(knot.t)) << "node " << id;
      ASSERT_TRUE(std::isfinite(knot.f)) << "node " << id;
      ASSERT_GE(knot.f, 0.0) << "node " << id;
      ASSERT_LE(knot.f, 1.0) << "node " << id;
      ASSERT_GE(knot.f, prev) << "node " << id << " at t=" << knot.t;
      prev = knot.f;
    }
  }
  // Faults degrade coverage but must not wipe it out at these rates.
  EXPECT_GT(with_estimate, ids.size() / 2);
}

struct ChaosReport {
  core::PopulationErrors errors;
  host::TrafficStats traffic;
  std::size_t leaked_sessions = 0;
};

ChaosReport run_chaos(const host::FaultPlan& faults, std::size_t threads = 0) {
  core::SystemConfig config = chaos_config(threads);
  config.engine.faults = faults;
  core::Adam2System system(config, iota_values(350), churn_source());
  system.run_instance();
  expect_sane_estimates(system);

  ChaosReport report;
  report.errors = system.errors();
  // The TTL is the session-recovery mechanism: by now every node must have
  // finalised (or crash-lost) the instance. Two slack rounds let stragglers
  // that joined through a delayed payload burn their remaining TTL copies.
  system.run_rounds(2);
  const auto live = system.engine().live_ids();
  for (host::NodeId id : std::vector<host::NodeId>(live.begin(), live.end())) {
    report.leaked_sessions += system.agent_of(id).active_instance_count();
  }
  report.traffic = system.engine().total_traffic();
  return report;
}

TEST(ChaosTest, ZeroRatePlanIsGoldenIdenticalToBaseline) {
  host::FaultPlan zero;
  zero.seed = 0xdeadbeef;  // A different fault seed must be invisible too.
  const ChaosReport base = run_chaos(host::FaultPlan{});
  const ChaosReport zeroed = run_chaos(zero);
  EXPECT_EQ(base.errors.max_err, zeroed.errors.max_err);
  EXPECT_EQ(base.errors.avg_err, zeroed.errors.avg_err);
  EXPECT_EQ(base.errors.peers, zeroed.errors.peers);
  EXPECT_EQ(base.errors.missing, zeroed.errors.missing);
  EXPECT_EQ(base.traffic.total_bytes_sent(), zeroed.traffic.total_bytes_sent());
  EXPECT_EQ(base.traffic.dropped_messages, zeroed.traffic.dropped_messages);
  EXPECT_EQ(zeroed.traffic.corrupted_messages, 0u);
  EXPECT_EQ(zeroed.traffic.crash_restarts, 0u);
}

TEST(ChaosTest, FaultMatrixPreservesInvariants) {
  struct Case {
    const char* name;
    host::FaultPlan plan;
  };
  std::vector<Case> cases;
  {
    Case c{"drop", {}};
    c.plan.drop_rate = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"duplicate", {}};
    c.plan.duplicate_rate = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"corrupt", {}};
    c.plan.corrupt_rate = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"crash", {}};
    c.plan.crash_rate = 0.02;
    cases.push_back(c);
  }
  {
    Case c{"partition", {}};
    c.plan.partition_count = 2;
    c.plan.partition_start = 4;
    c.plan.partition_heal_after = 8;
    cases.push_back(c);
  }
  {
    Case c{"everything", {}};
    c.plan.drop_rate = 0.15;
    c.plan.duplicate_rate = 0.1;
    c.plan.corrupt_rate = 0.1;
    c.plan.crash_rate = 0.01;
    c.plan.partition_count = 2;
    c.plan.partition_start = 3;
    c.plan.partition_heal_after = 6;
    cases.push_back(c);
  }

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const ChaosReport report = run_chaos(c.plan);
    EXPECT_TRUE(std::isfinite(report.errors.max_err));
    EXPECT_GE(report.errors.max_err, 0.0);
    EXPECT_LE(report.errors.max_err, 1.0);
    EXPECT_LE(report.errors.avg_err, report.errors.max_err + 1e-12);
    EXPECT_EQ(report.leaked_sessions, 0u);
    if (c.plan.drop_rate > 0.0) {
      EXPECT_GT(report.traffic.dropped_messages, 0u);
    }
    if (c.plan.duplicate_rate > 0.0) {
      EXPECT_GT(report.traffic.duplicated_messages, 0u);
    }
    if (c.plan.corrupt_rate > 0.0) {
      EXPECT_GT(report.traffic.corrupted_messages, 0u);
    }
    if (c.plan.crash_rate > 0.0) {
      EXPECT_GT(report.traffic.crash_restarts, 0u);
    }
    if (c.plan.partition_count > 1) {
      EXPECT_GT(report.traffic.partitioned_messages, 0u);
    }
  }
}

TEST(ChaosTest, FaultScheduleReplaysBitIdentically) {
  host::FaultPlan plan;
  plan.drop_rate = 0.2;
  plan.duplicate_rate = 0.1;
  plan.corrupt_rate = 0.1;
  plan.crash_rate = 0.01;
  const ChaosReport first = run_chaos(plan);
  const ChaosReport second = run_chaos(plan);
  EXPECT_EQ(first.errors.max_err, second.errors.max_err);
  EXPECT_EQ(first.errors.avg_err, second.errors.avg_err);
  EXPECT_EQ(first.errors.missing, second.errors.missing);
  EXPECT_EQ(first.traffic.dropped_messages, second.traffic.dropped_messages);
  EXPECT_EQ(first.traffic.corrupted_messages,
            second.traffic.corrupted_messages);
  EXPECT_EQ(first.traffic.crash_restarts, second.traffic.crash_restarts);
}

// Full-stack parallel determinism under faults: the sharded engine must
// produce the same population errors as the serial engine round for round.
// (parallel_engine_test checks the same property at the raw agent level.)
TEST(ChaosTest, ParallelEngineMatchesSerialUnderFaults) {
  host::FaultPlan plan;
  plan.drop_rate = 0.15;
  plan.duplicate_rate = 0.1;
  plan.corrupt_rate = 0.1;
  plan.crash_rate = 0.01;
  plan.partition_count = 2;
  plan.partition_start = 5;
  plan.partition_heal_after = 5;
  const ChaosReport serial = run_chaos(plan, 0);
  for (std::size_t threads : {2u, 8u}) {
    const ChaosReport parallel = run_chaos(plan, threads);
    EXPECT_EQ(serial.errors.max_err, parallel.errors.max_err) << threads;
    EXPECT_EQ(serial.errors.avg_err, parallel.errors.avg_err) << threads;
    EXPECT_EQ(serial.errors.missing, parallel.errors.missing) << threads;
    EXPECT_EQ(serial.traffic.dropped_messages,
              parallel.traffic.dropped_messages)
        << threads;
    EXPECT_EQ(serial.traffic.crash_restarts, parallel.traffic.crash_restarts)
        << threads;
  }
}

// Faults must hurt accuracy, not corrupt it: Errm/Erra degrade (weakly)
// monotonically as the drop rate rises. The small slack absorbs the
// stochastic wobble of individual schedules; the end-to-end spread must be
// genuine.
TEST(ChaosTest, AccuracyDegradesMonotonicallyWithLossRate) {
  std::vector<double> avg_errs;
  std::vector<double> max_errs;
  for (double rate : {0.0, 0.3, 0.6}) {
    host::FaultPlan plan;
    plan.drop_rate = rate;
    const ChaosReport report = run_chaos(plan);
    avg_errs.push_back(report.errors.avg_err);
    max_errs.push_back(report.errors.max_err);
  }
  const double slack = 0.01;
  EXPECT_LE(avg_errs[0], avg_errs[1] + slack);
  EXPECT_LE(avg_errs[1], avg_errs[2] + slack);
  EXPECT_LE(max_errs[0], max_errs[1] + slack);
  EXPECT_LE(max_errs[1], max_errs[2] + slack);
  EXPECT_GT(avg_errs[2], avg_errs[0]);
}

// The event-driven engine expresses the full taxonomy, including bounded
// extra delay, which reorders deliveries through the event queue. The run
// must complete with sane estimates and populated fault counters.
TEST(ChaosTest, AsyncEngineSurvivesTheFullTaxonomy) {
  sim::AsyncConfig config;
  config.seed = 0xa5c;
  config.faults.drop_rate = 0.1;
  config.faults.duplicate_rate = 0.1;
  config.faults.corrupt_rate = 0.15;
  config.faults.delay_rate = 0.3;
  config.faults.max_delay = 0.5;
  config.faults.crash_rate = 0.002;

  core::Adam2Config protocol;
  protocol.lambda = 12;
  protocol.instance_ttl = 30;
  auto factory = [protocol](const host::AgentContext&) {
    return std::make_unique<core::Adam2Agent>(protocol);
  };
  sim::AsyncEngine engine(config, iota_values(128),
                          std::make_unique<sim::StaticRandomOverlay>(8),
                          factory, nullptr);
  {
    const host::NodeId initiator = engine.live_ids()[0];
    auto ctx = engine.context_for(initiator);
    (void)dynamic_cast<core::Adam2Agent&>(engine.agent(initiator))
        .start_instance(ctx);
  }
  engine.run_until(45.0);

  const host::TrafficStats& traffic = engine.total_traffic();
  EXPECT_GT(traffic.dropped_messages, 0u);
  EXPECT_GT(traffic.duplicated_messages, 0u);
  EXPECT_GT(traffic.corrupted_messages, 0u);
  EXPECT_GT(traffic.delayed_messages, 0u);
  std::size_t with_estimate = 0;
  for (host::NodeId id : engine.live_ids()) {
    const auto& agent = dynamic_cast<core::Adam2Agent&>(engine.agent(id));
    if (!agent.estimate()) continue;
    ++with_estimate;
    double prev = 0.0;
    for (const stats::CdfPoint& knot : agent.estimate()->cdf.knots()) {
      ASSERT_TRUE(std::isfinite(knot.f));
      ASSERT_GE(knot.f, prev - 1e-12);
      prev = knot.f;
    }
  }
  EXPECT_GT(with_estimate, engine.live_count() / 2);
}

TEST(ChaosTest, AsyncZeroRatePlanIsGoldenIdentical) {
  const auto run = [](const host::FaultPlan& faults) {
    sim::AsyncConfig config;
    config.seed = 0x9a7;
    config.message_loss = 0.02;
    config.faults = faults;
    core::Adam2Config protocol;
    protocol.lambda = 10;
    protocol.instance_ttl = 20;
    auto factory = [protocol](const host::AgentContext&) {
      return std::make_unique<core::Adam2Agent>(protocol);
    };
    sim::AsyncEngine engine(config, iota_values(64),
                            std::make_unique<sim::StaticRandomOverlay>(6),
                            factory, nullptr);
    engine.run_until(25.0);
    return engine.total_traffic();
  };
  host::FaultPlan zero;
  zero.seed = 0x5eed5eed;
  const host::TrafficStats base = run(host::FaultPlan{});
  const host::TrafficStats zeroed = run(zero);
  EXPECT_EQ(base.total_bytes_sent(), zeroed.total_bytes_sent());
  EXPECT_EQ(base.on(host::Channel::kAggregation).messages_sent,
            zeroed.on(host::Channel::kAggregation).messages_sent);
  EXPECT_EQ(base.dropped_messages, zeroed.dropped_messages);
  EXPECT_EQ(zeroed.corrupted_messages, 0u);
}

// Faulty transport against real threads and mailboxes: the cluster must run,
// count every injected fault, and stop cleanly — corrupted payloads cross a
// genuine thread boundary before hitting the validation walk.
TEST(ChaosTest, ClusterSurvivesFaultyTransport) {
  runtime::ClusterConfig config;
  config.seed = 21;
  config.gossip_period = 1ms;
  config.response_timeout = 20ms;
  config.faults.drop_rate = 0.2;
  config.faults.duplicate_rate = 0.2;
  config.faults.corrupt_rate = 0.2;

  core::Adam2Config protocol;
  protocol.lambda = 6;
  protocol.instance_ttl = 60;
  runtime::Cluster cluster(config, iota_values(12),
                           [protocol](const host::AgentContext&) {
                             return std::make_unique<core::Adam2Agent>(protocol);
                           });
  cluster.start();
  cluster.run_on_node(0, [](host::NodeAgent& agent, host::AgentContext& ctx) {
    (void)dynamic_cast<core::Adam2Agent&>(agent).start_instance(ctx);
  });
  std::this_thread::sleep_for(300ms);
  cluster.stop();

  const host::TrafficStats traffic = cluster.total_traffic();
  EXPECT_GT(traffic.dropped_messages, 0u);
  EXPECT_GT(traffic.duplicated_messages, 0u);
  EXPECT_GT(traffic.corrupted_messages, 0u);
}

// Real UDP sockets: corrupted datagrams cross the kernel; whatever survives
// envelope framing is rejected by the message validation walk, and the
// injected faults surface in the shared traffic ledger at stop().
TEST(ChaosTest, UdpPeersSurviveCorruptDatagrams) {
  constexpr std::size_t kPeers = 6;
  std::vector<stats::Value> values;
  for (std::size_t i = 0; i < kPeers; ++i) {
    values.push_back(static_cast<stats::Value>((i + 1) * 10));
  }
  std::vector<std::unique_ptr<runtime::UdpEndpoint>> endpoints;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < kPeers; ++i) {
    endpoints.push_back(std::make_unique<runtime::UdpEndpoint>());
    ports.push_back(endpoints.back()->port());
  }
  runtime::UdpDirectory directory(values, ports);

  core::Adam2Config protocol;
  protocol.lambda = 5;
  protocol.instance_ttl = 50;
  runtime::UdpPeerConfig config;
  config.gossip_period = 2ms;
  config.response_timeout = 20ms;
  config.seed = 5;
  config.faults.drop_rate = 0.1;
  config.faults.duplicate_rate = 0.2;
  config.faults.corrupt_rate = 0.4;

  std::vector<std::unique_ptr<runtime::UdpPeer>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(std::make_unique<runtime::UdpPeer>(
        config, static_cast<host::NodeId>(i), directory, *endpoints[i],
        std::make_unique<core::Adam2Agent>(protocol)));
  }
  for (auto& peer : peers) peer->start();
  peers[0]->run_on_peer([](host::NodeAgent& agent, host::AgentContext& ctx) {
    (void)dynamic_cast<core::Adam2Agent&>(agent).start_instance(ctx);
  });
  std::this_thread::sleep_for(300ms);
  for (auto& peer : peers) peer->stop();

  const host::TrafficStats traffic = directory.traffic();
  EXPECT_GT(traffic.corrupted_messages, 0u);
  EXPECT_GT(traffic.duplicated_messages, 0u);
  EXPECT_GT(traffic.dropped_messages, 0u);
}

// -- Warm crash-restart (host::snapshot, DESIGN.md §12) -----------------------
// A crashed node restarted with `warm_restart` carries its protocol state
// across through the snapshot hooks, so it rejoins its running instances
// instead of starting from scratch. The port's token counter survives the
// crash, so the node's first post-rejoin initiation uses a fresh token and
// is ACCEPTED by the swarm — pre-crash stragglers are the ones rejected as
// stale, never the new exchanges (no stale-token NACK storm). The crash
// itself must surface exactly once in the crash_restarts ledger.

TEST(ChaosTest, ClusterWarmRestartRejoinsUnderFaults) {
  runtime::ClusterConfig config;
  config.seed = 33;
  config.gossip_period = 1ms;
  config.response_timeout = 20ms;
  config.faults.drop_rate = 0.1;
  config.faults.duplicate_rate = 0.15;
  config.faults.corrupt_rate = 0.15;
  config.faults.warm_restart = true;

  core::Adam2Config protocol;
  protocol.lambda = 6;
  protocol.instance_ttl = 5000;  // Outlives the test: instances stay active.
  runtime::Cluster cluster(config, iota_values(12),
                           [protocol](const host::AgentContext&) {
                             return std::make_unique<core::Adam2Agent>(protocol);
                           });
  cluster.start();
  cluster.run_on_node(0, [](host::NodeAgent& agent, host::AgentContext& ctx) {
    (void)dynamic_cast<core::Adam2Agent&>(agent).start_instance(ctx);
  });

  const auto instances_on = [&cluster](host::NodeId id) {
    std::size_t count = 0;
    cluster.run_on_node(id,
                        [&count](host::NodeAgent& agent, host::AgentContext&) {
                          count = dynamic_cast<core::Adam2Agent&>(agent)
                                      .active_instance_count();
                        });
    return count;
  };
  const auto wait_for_instances = [&](host::NodeId id, std::size_t want) {
    for (int i = 0; i < 600; ++i) {
      if (instances_on(id) >= want) return true;
      std::this_thread::sleep_for(5ms);
    }
    return false;
  };

  // Node 3 joins node 0's instance through the faulty network...
  ASSERT_TRUE(wait_for_instances(3, 1));
  const std::size_t before = instances_on(3);
  cluster.restart_node(3);
  // ...and the warm restart carries the joined instance across the crash.
  EXPECT_EQ(instances_on(3), before);

  // The restarted node initiates a NEW instance. The swarm picking it up is
  // the acceptance proof: a node whose post-rejoin exchanges were NACKed as
  // stale could never spread one.
  cluster.run_on_node(3, [](host::NodeAgent& agent, host::AgentContext& ctx) {
    (void)dynamic_cast<core::Adam2Agent&>(agent).start_instance(ctx);
  });
  EXPECT_TRUE(wait_for_instances(7, 2));
  cluster.stop();

  const host::TrafficStats traffic = cluster.total_traffic();
  EXPECT_EQ(traffic.crash_restarts, 1u);  // Reconciles with the one crash.
  EXPECT_GT(traffic.dropped_messages, 0u);
  EXPECT_GT(traffic.duplicated_messages, 0u);
  EXPECT_GT(traffic.corrupted_messages, 0u);
}

TEST(ChaosTest, UdpWarmRestartRejoinsUnderFaults) {
  constexpr std::size_t kPeers = 6;
  std::vector<stats::Value> values;
  for (std::size_t i = 0; i < kPeers; ++i) {
    values.push_back(static_cast<stats::Value>((i + 1) * 10));
  }
  std::vector<std::unique_ptr<runtime::UdpEndpoint>> endpoints;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < kPeers; ++i) {
    endpoints.push_back(std::make_unique<runtime::UdpEndpoint>());
    ports.push_back(endpoints.back()->port());
  }
  runtime::UdpDirectory directory(values, ports);

  core::Adam2Config protocol;
  protocol.lambda = 5;
  protocol.instance_ttl = 5000;
  runtime::UdpPeerConfig config;
  config.gossip_period = 2ms;
  config.response_timeout = 20ms;
  config.seed = 7;
  config.faults.drop_rate = 0.1;
  config.faults.duplicate_rate = 0.15;
  config.faults.corrupt_rate = 0.15;
  config.faults.warm_restart = true;

  const host::AgentFactory factory = [protocol](const host::AgentContext&) {
    return std::make_unique<core::Adam2Agent>(protocol);
  };
  std::vector<std::unique_ptr<runtime::UdpPeer>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(std::make_unique<runtime::UdpPeer>(
        config, static_cast<host::NodeId>(i), directory, *endpoints[i],
        std::make_unique<core::Adam2Agent>(protocol)));
  }
  for (auto& peer : peers) peer->start();
  peers[0]->run_on_peer([](host::NodeAgent& agent, host::AgentContext& ctx) {
    (void)dynamic_cast<core::Adam2Agent&>(agent).start_instance(ctx);
  });

  const auto instances_on = [&peers](std::size_t i) {
    std::size_t count = 0;
    peers[i]->run_on_peer(
        [&count](host::NodeAgent& agent, host::AgentContext&) {
          count = dynamic_cast<core::Adam2Agent&>(agent)
                      .active_instance_count();
        });
    return count;
  };
  const auto wait_for_instances = [&](std::size_t i, std::size_t want) {
    for (int tries = 0; tries < 600; ++tries) {
      if (instances_on(i) >= want) return true;
      std::this_thread::sleep_for(5ms);
    }
    return false;
  };

  // Peer 2 joins peer 0's instance across real sockets, crashes, and the
  // warm restart preserves its membership.
  ASSERT_TRUE(wait_for_instances(2, 1));
  const std::size_t before = instances_on(2);
  peers[2]->restart(factory);
  EXPECT_EQ(instances_on(2), before);

  // Its first post-rejoin initiations must be accepted: the new instance it
  // starts spreads to the rest of the deployment.
  peers[2]->run_on_peer([](host::NodeAgent& agent, host::AgentContext& ctx) {
    (void)dynamic_cast<core::Adam2Agent&>(agent).start_instance(ctx);
  });
  EXPECT_TRUE(wait_for_instances(4, 2));
  for (auto& peer : peers) peer->stop();

  const host::TrafficStats traffic = directory.traffic();
  EXPECT_EQ(traffic.crash_restarts, 1u);  // Reconciles with the one crash.
  EXPECT_GT(traffic.dropped_messages, 0u);
  EXPECT_GT(traffic.duplicated_messages, 0u);
  EXPECT_GT(traffic.corrupted_messages, 0u);
}

}  // namespace
}  // namespace adam2
