// DiscreteErrorEvaluator must be *bit-identical* to discrete_errors — the
// sharded population evaluation relies on that to make threaded and serial
// runs indistinguishable — and both must agree with the brute-force integer
// scan. The sweeps run over all four synthetic attributes (smooth, stepped,
// heavy-tailed, jittered) plus adversarial degenerate domains.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/attribute.hpp"
#include "data/boinc_synth.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"
#include "stats/error_metrics.hpp"

namespace adam2::stats {
namespace {

/// Random monotone piecewise-linear approximation whose knots may fall
/// outside [min, max] on either side (join-time estimates do).
PiecewiseLinearCdf random_approx(rng::Rng& rng, double lo, double hi) {
  const double span = hi > lo ? hi - lo : 1.0;
  const std::size_t k = 2 + rng.below(60);
  std::vector<CdfPoint> knots;
  knots.reserve(k);
  double f = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    f = std::min(1.0, f + rng.uniform() * 2.0 / static_cast<double>(k));
    knots.push_back({rng.uniform(lo - 0.3 * span, hi + 0.3 * span), f});
  }
  return PiecewiseLinearCdf{std::move(knots)};
}

void expect_bit_identical(const EmpiricalCdf& truth,
                          const PiecewiseLinearCdf& approx) {
  const DiscreteErrorEvaluator evaluator(truth);
  const ErrorPair slow = discrete_errors(truth, approx);
  const ErrorPair fast = evaluator(approx);
  // Exact equality on purpose: the evaluator replicates the run sequence and
  // accumulation order of discrete_errors, not just its value up to epsilon.
  EXPECT_EQ(slow.max_err, fast.max_err);
  EXPECT_EQ(slow.avg_err, fast.avg_err);
}

/// attribute_index * 1000 + seed, so one parameter range covers the grid.
class EvaluatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorPropertyTest, MatchesDiscreteErrorsAndBruteForce) {
  const int attribute_index = GetParam() / 1000;
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam() % 1000);
  const data::Attribute kind = data::kAllAttributes[attribute_index];

  rng::Rng rng(seed * 0x9e3779b9ULL + static_cast<std::uint64_t>(GetParam()));
  const auto values = data::generate_population(kind, 400, rng);
  const EmpiricalCdf truth{values};
  const DiscreteErrorEvaluator evaluator(truth);

  for (int rep = 0; rep < 6; ++rep) {
    const PiecewiseLinearCdf approx = random_approx(
        rng, static_cast<double>(truth.min()),
        static_cast<double>(truth.max()));
    const ErrorPair slow = discrete_errors(truth, approx);
    const ErrorPair fast = evaluator(approx);
    EXPECT_EQ(slow.max_err, fast.max_err);
    EXPECT_EQ(slow.avg_err, fast.avg_err);
    // Brute force over every integer is only tractable on modest domains.
    if (truth.max() - truth.min() <= 2'000'000) {
      const ErrorPair brute = discrete_errors_brute(truth, approx);
      EXPECT_NEAR(fast.max_err, brute.max_err, 1e-9);
      EXPECT_NEAR(fast.avg_err, brute.avg_err, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAttributes, EvaluatorPropertyTest,
    ::testing::Values(0, 1, 2, 3, 4, 1000, 1001, 1002, 1003, 1004, 2000, 2001,
                      2002, 2003, 2004, 3000, 3001, 3002, 3003, 3004));

TEST(EvaluatorDegenerateTest, SingleValueDomain) {
  const EmpiricalCdf truth{{42, 42, 42}};
  expect_bit_identical(truth, PiecewiseLinearCdf{{{42.0, 1.0}}});
  expect_bit_identical(truth,
                       PiecewiseLinearCdf{{{0.0, 0.25}, {100.0, 0.75}}});
}

TEST(EvaluatorDegenerateTest, TwoValueDomain) {
  const EmpiricalCdf truth{{5, 9}};
  expect_bit_identical(truth, PiecewiseLinearCdf{{{5.0, 0.5}, {9.0, 1.0}}});
  expect_bit_identical(truth, PiecewiseLinearCdf{{{4.5, 0.1}, {9.5, 0.9}}});
}

TEST(EvaluatorDegenerateTest, AllKnotsBelowDomain) {
  const EmpiricalCdf truth{{100, 150, 200}};
  expect_bit_identical(truth,
                       PiecewiseLinearCdf{{{-10.0, 0.5}, {0.0, 1.0}}});
}

TEST(EvaluatorDegenerateTest, AllKnotsAboveDomain) {
  const EmpiricalCdf truth{{100, 150, 200}};
  expect_bit_identical(truth,
                       PiecewiseLinearCdf{{{500.0, 0.0}, {600.0, 1.0}}});
}

TEST(EvaluatorDegenerateTest, KnotsStraddleDomainWithFractionalPositions) {
  const EmpiricalCdf truth{{10, 11, 11, 13}};
  expect_bit_identical(
      truth, PiecewiseLinearCdf{
                 {{9.5, 0.0}, {10.5, 0.3}, {11.25, 0.6}, {14.75, 1.0}}});
}

TEST(EvaluatorDegenerateTest, SingleKnotApproximation) {
  const EmpiricalCdf truth{{1, 2, 3, 4, 5}};
  expect_bit_identical(truth, PiecewiseLinearCdf{{{3.0, 0.5}}});
}

TEST(EvaluatorDegenerateTest, EvaluatorIsReusableAcrossCalls) {
  rng::Rng rng(99);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, 300, rng);
  const EmpiricalCdf truth{values};
  const DiscreteErrorEvaluator evaluator(truth);
  const PiecewiseLinearCdf approx = random_approx(
      rng, static_cast<double>(truth.min()), static_cast<double>(truth.max()));
  const ErrorPair first = evaluator(approx);
  for (int i = 0; i < 5; ++i) {
    const ErrorPair again = evaluator(approx);
    EXPECT_EQ(first.max_err, again.max_err);
    EXPECT_EQ(first.avg_err, again.avg_err);
  }
}

}  // namespace
}  // namespace adam2::stats
