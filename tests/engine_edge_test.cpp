// Edge cases of the simulation substrate: degenerate populations, exhausted
// overlays, repeated kills, and clamped churn.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "sim/cyclon.hpp"
#include "sim/engine.hpp"
#include "sim/overlay.hpp"

namespace adam2::sim {
namespace {

class SilentAgent final : public NodeAgent {
 public:
  std::span<const std::byte> make_request(AgentContext&) override { return {}; }
  std::span<const std::byte> handle_request(AgentContext&,
                                            std::span<const std::byte>) override {
    return {};
  }
};

AgentFactory silent_factory() {
  return [](const AgentContext&) { return std::make_unique<SilentAgent>(); };
}

TEST(EngineEdgeTest, EmptyPopulationRunsHarmlessly) {
  Engine engine(EngineConfig{}, {}, std::make_unique<StaticRandomOverlay>(4),
                silent_factory(), nullptr);
  engine.run_rounds(3);
  EXPECT_EQ(engine.live_count(), 0u);
  EXPECT_THROW((void)engine.random_live_node(), std::runtime_error);
}

TEST(EngineEdgeTest, SingleNodeCannotGossip) {
  core::SystemConfig config;
  config.overlay = core::OverlayKind::kStaticRandom;
  core::Adam2System system(config, {42});
  system.start_instance(NodeId{0});
  system.run_rounds(3);
  // No neighbour exists: every attempted exchange is a failed contact.
  EXPECT_GT(system.engine().total_traffic().failed_contacts, 0u);
  EXPECT_EQ(system.engine()
                .total_traffic()
                .on(Channel::kAggregation)
                .messages_sent,
            0u);
}

TEST(EngineEdgeTest, SingleNodeInstanceStillFinalises) {
  core::SystemConfig config;
  config.protocol.instance_ttl = 5;
  core::Adam2System system(config, {42});
  system.run_instance(NodeId{0});
  const auto& est = system.agent_of(0).estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->n_estimate, 1.0);  // Weight never diluted.
  EXPECT_DOUBLE_EQ(est->min_value, 42.0);
  EXPECT_DOUBLE_EQ(est->max_value, 42.0);
}

TEST(EngineEdgeTest, TwoNodeSystemConverges) {
  core::SystemConfig config;
  config.protocol.lambda = 3;
  config.protocol.instance_ttl = 40;
  config.overlay = core::OverlayKind::kStaticRandom;
  config.overlay_degree = 1;
  core::Adam2System system(config, {10, 20});
  system.run_instance(NodeId{0});
  for (NodeId id : {NodeId{0}, NodeId{1}}) {
    const auto& est = system.agent_of(id).estimate();
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(est->n_estimate, 2.0, 1e-6);
    EXPECT_DOUBLE_EQ(est->min_value, 10.0);
    EXPECT_DOUBLE_EQ(est->max_value, 20.0);
    for (const stats::CdfPoint& p : est->points) {
      const double truth = p.t >= 20 ? 1.0 : (p.t >= 10 ? 0.5 : 0.0);
      EXPECT_NEAR(p.f, truth, 1e-9);
    }
  }
}

TEST(EngineEdgeTest, KillNodeTwiceIsIdempotent) {
  Engine engine(EngineConfig{}, {1, 2, 3},
                std::make_unique<StaticRandomOverlay>(2), silent_factory(),
                nullptr);
  engine.kill_node(1);
  engine.kill_node(1);
  EXPECT_EQ(engine.live_count(), 2u);
}

TEST(EngineEdgeTest, ChurnCountClampsToPopulation) {
  Engine engine(EngineConfig{}, {1, 2, 3},
                std::make_unique<StaticRandomOverlay>(2), silent_factory(),
                [](rng::Rng&) { return stats::Value{9}; });
  engine.churn_nodes(100);  // More than exist.
  EXPECT_EQ(engine.live_count(), 3u);
  for (NodeId id : engine.live_ids()) {
    EXPECT_EQ(engine.attribute_of(id), 9);
  }
}

TEST(EngineEdgeTest, ObserverSeesConsistentStateDuringChurn) {
  EngineConfig config;
  config.churn_rate = 0.2;
  config.seed = 5;
  Engine engine(config, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
                std::make_unique<StaticRandomOverlay>(3), silent_factory(),
                [](rng::Rng& rng) { return static_cast<stats::Value>(rng.below(50)); });
  engine.add_observer([](CycleEngine& e) {
    // Live ids must always reference live nodes with agents.
    for (NodeId id : e.live_ids()) {
      EXPECT_TRUE(e.is_live(id));
      (void)e.agent(id);
    }
  });
  engine.run_rounds(10);
  EXPECT_EQ(engine.live_count(), 10u);
}

TEST(EngineEdgeTest, CyclonWithMinimalView) {
  CyclonConfig config;
  config.view_size = 1;
  config.shuffle_size = 1;
  Engine engine(EngineConfig{}, {1, 2, 3, 4},
                std::make_unique<CyclonOverlay>(config), silent_factory(),
                nullptr);
  engine.run_rounds(10);
  for (NodeId id : engine.live_ids()) {
    EXPECT_LE(engine.overlay().neighbors(id).size(), 1u);
  }
}

TEST(EngineEdgeTest, KillingLastLiveNodeLeavesEmptyEngine) {
  Engine engine(EngineConfig{}, {7}, std::make_unique<StaticRandomOverlay>(2),
                silent_factory(), nullptr);
  engine.kill_node(0);
  EXPECT_EQ(engine.live_count(), 0u);
  EXPECT_TRUE(engine.live_ids().empty());
  EXPECT_THROW((void)engine.random_live_node(), std::runtime_error);
  // The emptied engine still runs rounds harmlessly.
  engine.run_rounds(3);
  EXPECT_EQ(engine.live_count(), 0u);
}

TEST(EngineEdgeTest, FullChurnReplacesEveryNodeEachRound) {
  EngineConfig config;
  config.churn_rate = 1.0;
  config.seed = 8;
  Engine engine(config, {1, 2, 3, 4, 5},
                std::make_unique<StaticRandomOverlay>(2), silent_factory(),
                [](rng::Rng&) { return stats::Value{77}; });
  engine.run_rounds(4);
  // Population size is preserved; every survivor is a replacement.
  EXPECT_EQ(engine.live_count(), 5u);
  EXPECT_EQ(engine.nodes_ever(), 5u + 4u * 5u);
  for (NodeId id : engine.live_ids()) {
    EXPECT_GE(id, 5u * 4u);  // All original ids churned out long ago.
    EXPECT_EQ(engine.attribute_of(id), 77);
  }
}

// Regression (ISSUE PR5 satellite): host::stochastic_count is deliberately
// unbounded — at churn rates >= 1.0 its probabilistic round-up can exceed
// the live population, and the engines must clamp it at the call site. An
// unclamped count used to kill the freshly spawned replacements of the same
// round, shrinking the population.
TEST(EngineEdgeTest, ChurnRateAboveOneIsClampedToLivePopulation) {
  EngineConfig config;
  config.churn_rate = 1.5;  // Expected replacements: 7.5 of 5 live nodes.
  config.seed = 13;
  Engine engine(config, {1, 2, 3, 4, 5},
                std::make_unique<StaticRandomOverlay>(2), silent_factory(),
                [](rng::Rng&) { return stats::Value{31}; });
  engine.run_rounds(6);
  // Clamped to a full replacement per round: the population neither shrinks
  // nor grows, and exactly live_count() nodes churn each round.
  EXPECT_EQ(engine.live_count(), 5u);
  EXPECT_EQ(engine.nodes_ever(), 5u + 6u * 5u);
  for (NodeId id : engine.live_ids()) {
    EXPECT_EQ(engine.attribute_of(id), 31);
  }
}

TEST(EngineEdgeTest, BootstrapWithAllContactsDeadCountsFailedContacts) {
  // A replacement node joining an otherwise-dead system finds no live
  // bootstrap contact: every retry is a failed contact, and the joiner
  // still becomes a functioning member.
  core::SystemConfig config;
  config.overlay = core::OverlayKind::kStaticRandom;
  config.overlay_degree = 3;
  core::Adam2System system(config, {1, 2, 3, 4},
                           [](rng::Rng&) { return stats::Value{5}; });
  system.run_instance(NodeId{0});  // Give the nodes state worth transferring.
  while (system.engine().live_count() > 1) {
    system.engine().kill_node(system.engine().live_ids().front());
  }
  const auto failed_before = system.engine().total_traffic().failed_contacts;
  // Churning the survivor spawns a joiner into an all-dead contact set:
  // every bootstrap retry fails, yet the joiner is a working member.
  system.engine().churn_nodes(1);
  EXPECT_EQ(system.engine().live_count(), 1u);
  EXPECT_GT(system.engine().total_traffic().failed_contacts, failed_before);
  const NodeId joiner = system.engine().live_ids().front();
  // No live contact existed, so no estimate could be inherited.
  EXPECT_FALSE(system.agent_of(joiner).estimate().has_value());
}

TEST(EngineEdgeTest, AttributeSourceReceivesWorkingRng) {
  EngineConfig config;
  config.churn_rate = 0.5;
  config.seed = 6;
  bool called = false;
  Engine engine(config, {1, 2, 3, 4},
                std::make_unique<StaticRandomOverlay>(2), silent_factory(),
                [&called](rng::Rng& rng) {
                  called = true;
                  return static_cast<stats::Value>(rng.range(5, 10));
                });
  engine.run_rounds(3);
  EXPECT_TRUE(called);
  for (NodeId id : engine.live_ids()) {
    if (id >= 4) {
      EXPECT_GE(engine.attribute_of(id), 5);
      EXPECT_LE(engine.attribute_of(id), 10);
    }
  }
}

}  // namespace
}  // namespace adam2::sim
