#include <gtest/gtest.h>

#include "core/combine.hpp"
#include "core/evaluation.hpp"
#include "core/system.hpp"
#include "data/boinc_synth.hpp"

namespace adam2::core {
namespace {

Estimate make_estimate(std::vector<stats::CdfPoint> points, double min_v,
                       double max_v, host::Round round) {
  Estimate est;
  est.completed_round = round;
  est.points = std::move(points);
  est.min_value = min_v;
  est.max_value = max_v;
  est.n_estimate = 100.0;
  est.cdf = stats::interpolate_with_extremes(est.points, min_v, max_v);
  return est;
}

TEST(CombineTest, SingleEstimatePassesThrough) {
  const auto est = make_estimate({{5.0, 0.5}}, 0.0, 10.0, 1);
  const Estimate combined = combine_estimates({&est, 1});
  EXPECT_EQ(combined.points, est.points);
  EXPECT_DOUBLE_EQ(combined.min_value, 0.0);
}

TEST(CombineTest, UnionOfDisjointPoints) {
  const Estimate old_est = make_estimate({{2.0, 0.2}, {6.0, 0.6}}, 0.0, 10.0, 1);
  const Estimate new_est = make_estimate({{4.0, 0.4}, {8.0, 0.8}}, 0.0, 10.0, 2);
  const std::vector<Estimate> history{old_est, new_est};
  const Estimate combined = combine_estimates(history);
  ASSERT_EQ(combined.points.size(), 4u);
  EXPECT_DOUBLE_EQ(combined.points[0].t, 2.0);
  EXPECT_DOUBLE_EQ(combined.points[1].t, 4.0);
  EXPECT_DOUBLE_EQ(combined.points[2].t, 6.0);
  EXPECT_DOUBLE_EQ(combined.points[3].t, 8.0);
  // The richer interpolation is exact at all four sample positions.
  EXPECT_DOUBLE_EQ(combined.cdf(4.0), 0.4);
  EXPECT_DOUBLE_EQ(combined.cdf(6.0), 0.6);
}

TEST(CombineTest, DuplicateThresholdKeepsNewestFraction) {
  const Estimate old_est = make_estimate({{5.0, 0.3}}, 0.0, 10.0, 1);
  const Estimate new_est = make_estimate({{5.0, 0.7}}, 0.0, 10.0, 2);
  const std::vector<Estimate> history{old_est, new_est};
  const Estimate combined = combine_estimates(history);
  ASSERT_EQ(combined.points.size(), 1u);
  EXPECT_DOUBLE_EQ(combined.points[0].f, 0.7);
}

TEST(CombineTest, ExtremesWidenToUnion) {
  const Estimate old_est = make_estimate({{5.0, 0.5}}, -50.0, 10.0, 1);
  const Estimate new_est = make_estimate({{6.0, 0.6}}, 0.0, 99.0, 2);
  const std::vector<Estimate> history{old_est, new_est};
  const Estimate combined = combine_estimates(history);
  EXPECT_DOUBLE_EQ(combined.min_value, -50.0);
  EXPECT_DOUBLE_EQ(combined.max_value, 99.0);
}

TEST(CombineTest, ScalarFieldsComeFromNewest) {
  Estimate old_est = make_estimate({{5.0, 0.5}}, 0.0, 10.0, 1);
  old_est.n_estimate = 50.0;
  Estimate new_est = make_estimate({{6.0, 0.6}}, 0.0, 10.0, 2);
  new_est.n_estimate = 80.0;
  new_est.instance = {7, 3};
  const std::vector<Estimate> history{old_est, new_est};
  const Estimate combined = combine_estimates(history);
  EXPECT_DOUBLE_EQ(combined.n_estimate, 80.0);
  EXPECT_EQ(combined.instance, (wire::InstanceId{7, 3}));
  EXPECT_EQ(combined.completed_round, 2u);
}

TEST(CombineTest, ResultIsMonotone) {
  // Conflicting samples (drifted CDF) still produce a valid CDF.
  const Estimate old_est =
      make_estimate({{4.0, 0.9}, {8.0, 0.95}}, 0.0, 10.0, 1);
  const Estimate new_est = make_estimate({{5.0, 0.2}}, 0.0, 10.0, 2);
  const std::vector<Estimate> history{old_est, new_est};
  const Estimate combined = combine_estimates(history);
  EXPECT_TRUE(combined.cdf.is_monotone());
}

TEST(CombineTest, EndToEndCombiningReducesError) {
  // §VII-D: combining points from multiple instances reduces the error on a
  // static CDF at no extra communication cost.
  rng::Rng data_rng(31);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, 2000, data_rng);
  const stats::EmpiricalCdf truth{values};

  auto run = [&](std::size_t combine) {
    SystemConfig config;
    config.engine.seed = 5;
    config.protocol.lambda = 30;
    config.protocol.heuristic = SelectionHeuristic::kLCut;
    config.protocol.combine_last_instances = combine;
    Adam2System system(config, values);
    for (int i = 0; i < 4; ++i) system.run_instance();
    return evaluate_estimates(system.engine(), truth);
  };
  const auto single = run(1);
  const auto combined = run(3);
  EXPECT_LT(combined.avg_err, single.avg_err);
}

TEST(CombineTest, HistoryIsBounded) {
  SystemConfig config;
  config.engine.seed = 3;
  config.protocol.lambda = 10;
  config.protocol.instance_ttl = 15;
  config.protocol.combine_last_instances = 2;
  std::vector<stats::Value> values;
  for (int i = 0; i < 200; ++i) values.push_back(i);
  Adam2System system(config, values);
  for (int i = 0; i < 4; ++i) system.run_instance();
  // After 4 instances with a window of 2, the estimate combines at most
  // 2 * lambda points (plus none lost): points <= 20.
  const auto& est = *system.agent_of(0).estimate();
  EXPECT_LE(est.points.size(), 20u);
  EXPECT_GT(est.points.size(), 10u);
}

}  // namespace
}  // namespace adam2::core
