#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "rng/rng.hpp"

namespace adam2::core {
namespace {

ContributionFn indicator(double attribute) {
  return [attribute](double t) { return attribute <= t ? 1.0 : 0.0; };
}

TEST(InstanceStateTest, StartInitialisesInitiator) {
  const auto state = InstanceState::start(
      {1, 0}, 10, 25, {100.0, 200.0, 300.0}, {150.0}, indicator(150.0), 150.0,
      150.0);
  EXPECT_EQ(state.id, (wire::InstanceId{1, 0}));
  EXPECT_EQ(state.start_round, 10u);
  EXPECT_EQ(state.ttl, 25);
  EXPECT_DOUBLE_EQ(state.weight, 1.0);
  ASSERT_EQ(state.points.size(), 3u);
  EXPECT_DOUBLE_EQ(state.points[0].f, 0.0);  // 150 > 100
  EXPECT_DOUBLE_EQ(state.points[1].f, 1.0);  // 150 <= 200
  EXPECT_DOUBLE_EQ(state.points[2].f, 1.0);
  ASSERT_EQ(state.verification.size(), 1u);
  EXPECT_DOUBLE_EQ(state.verification[0].f, 1.0);
  EXPECT_DOUBLE_EQ(state.min_value, 150.0);
  EXPECT_DOUBLE_EQ(state.max_value, 150.0);
}

TEST(InstanceStateTest, JoinTakesThresholdsFromPayloadWithZeroWeight) {
  const auto initiator = InstanceState::start(
      {1, 0}, 10, 25, {100.0, 200.0}, {}, indicator(50.0), 50.0, 50.0);
  const auto payload = initiator.to_payload();
  const auto joiner = InstanceState::join(payload, indicator(250.0), 250.0, 250.0);
  EXPECT_EQ(joiner.id, initiator.id);
  EXPECT_EQ(joiner.start_round, initiator.start_round);
  EXPECT_DOUBLE_EQ(joiner.weight, 0.0);
  ASSERT_EQ(joiner.points.size(), 2u);
  EXPECT_DOUBLE_EQ(joiner.points[0].t, 100.0);
  EXPECT_DOUBLE_EQ(joiner.points[0].f, 0.0);  // 250 > 100
  EXPECT_DOUBLE_EQ(joiner.points[1].f, 0.0);  // 250 > 200
  EXPECT_DOUBLE_EQ(joiner.min_value, 250.0);
}

TEST(InstanceStateTest, PayloadRoundTripPreservesState) {
  const auto state = InstanceState::start(
      {7, 3}, 2, 20, {10.0, 20.0}, {15.0}, indicator(12.0), 12.0, 12.0);
  const auto payload = state.to_payload();
  EXPECT_EQ(payload.id, state.id);
  EXPECT_EQ(payload.start_round, state.start_round);
  EXPECT_EQ(payload.ttl, state.ttl);
  EXPECT_DOUBLE_EQ(payload.weight, state.weight);
  EXPECT_EQ(payload.points, state.points);
  EXPECT_EQ(payload.verification, state.verification);
}

TEST(InstanceStateTest, AverageWithIsSymmetricMean) {
  auto a = InstanceState::start({1, 0}, 0, 25, {100.0}, {}, indicator(50.0),
                                50.0, 50.0);
  auto b = InstanceState::join(a.to_payload(), indicator(200.0), 200.0, 200.0);
  const auto payload_a = a.to_payload();
  const auto payload_b = b.to_payload();
  a.average_with(payload_b);
  b.average_with(payload_a);
  EXPECT_DOUBLE_EQ(a.points[0].f, 0.5);
  EXPECT_DOUBLE_EQ(b.points[0].f, 0.5);
  EXPECT_DOUBLE_EQ(a.weight, 0.5);
  EXPECT_DOUBLE_EQ(b.weight, 0.5);
}

TEST(InstanceStateTest, AverageMergesExtremesWithMinMax) {
  auto a = InstanceState::start({1, 0}, 0, 25, {100.0}, {}, indicator(50.0),
                                50.0, 50.0);
  const auto b =
      InstanceState::join(a.to_payload(), indicator(200.0), 200.0, 200.0);
  a.average_with(b.to_payload());
  EXPECT_DOUBLE_EQ(a.min_value, 50.0);
  EXPECT_DOUBLE_EQ(a.max_value, 200.0);
}

TEST(InstanceStateTest, RepeatedAveragingConvergesPairwise) {
  auto a = InstanceState::start({1, 0}, 0, 25, {100.0}, {}, indicator(50.0),
                                50.0, 50.0);
  auto b = InstanceState::join(a.to_payload(), indicator(200.0), 200.0, 200.0);
  for (int i = 0; i < 10; ++i) {
    const auto pa = a.to_payload();
    const auto pb = b.to_payload();
    a.average_with(pb);
    b.average_with(pa);
  }
  EXPECT_NEAR(a.points[0].f, 0.5, 1e-12);
  EXPECT_NEAR(b.points[0].f, 0.5, 1e-12);
}

TEST(InstanceStateTest, MassConservationAcrossArbitrarySchedules) {
  // Three peers, initiator holds value below the threshold. Any sequence of
  // symmetric exchanges keeps sum(f) and sum(weight) constant.
  auto a = InstanceState::start({1, 0}, 0, 25, {100.0}, {}, indicator(50.0),
                                50.0, 50.0);
  auto b = InstanceState::join(a.to_payload(), indicator(200.0), 200.0, 200.0);
  auto c = InstanceState::join(a.to_payload(), indicator(80.0), 80.0, 80.0);

  auto mass = [&] { return a.points[0].f + b.points[0].f + c.points[0].f; };
  auto weight = [&] { return a.weight + b.weight + c.weight; };
  const double f0 = mass();
  const double w0 = weight();
  EXPECT_DOUBLE_EQ(f0, 2.0);  // 50 and 80 are <= 100; 200 is not.
  EXPECT_DOUBLE_EQ(w0, 1.0);

  rng::Rng rng(5);
  InstanceState* peers[] = {&a, &b, &c};
  for (int i = 0; i < 50; ++i) {
    InstanceState* x = peers[rng.below(3)];
    InstanceState* y = peers[rng.below(3)];
    if (x == y) continue;
    const auto px = x->to_payload();
    const auto py = y->to_payload();
    x->average_with(py);
    y->average_with(px);
    EXPECT_NEAR(mass(), f0, 1e-12);
    EXPECT_NEAR(weight(), w0, 1e-12);
  }
  // And the values converge to mass/3 (the true fraction 2/3) pairwise-ish.
  EXPECT_NEAR(a.points[0].f, 2.0 / 3.0, 0.2);
}

}  // namespace
}  // namespace adam2::core
