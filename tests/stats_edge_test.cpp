// Edge-case coverage for the stats layer beyond the mainline unit tests:
// degenerate domains, approximations narrower/wider than the truth, heavy
// weighted samples, and numeric extremes.
#include <gtest/gtest.h>

#include <limits>

#include "rng/rng.hpp"
#include "stats/cdf.hpp"
#include "stats/error_metrics.hpp"
#include "stats/histogram.hpp"

namespace adam2::stats {
namespace {

TEST(CdfEdgeTest, NegativeValuesWork) {
  const EmpiricalCdf cdf{{-100, -50, 0, 50}};
  EXPECT_DOUBLE_EQ(cdf(-101.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf(-100.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(-1.0), 0.5);
  EXPECT_EQ(cdf.min(), -100);
}

TEST(CdfEdgeTest, LargeMagnitudeValues) {
  const Value big = 1'000'000'000'000LL;
  const EmpiricalCdf cdf{{-big, 0, big}};
  EXPECT_DOUBLE_EQ(cdf(0.0), 2.0 / 3.0);
  EXPECT_EQ(cdf.quantile(0.99), big);
}

TEST(CdfEdgeTest, InverseOnFlatSegmentReturnsLeftEdge) {
  // A plateau in f: inverse picks the first threshold reaching the level.
  const PiecewiseLinearCdf cdf{
      {{0.0, 0.0}, {10.0, 0.5}, {20.0, 0.5}, {30.0, 1.0}}};
  EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 10.0);
}

TEST(CdfEdgeTest, SingleKnotCurve) {
  const PiecewiseLinearCdf cdf{{{5.0, 0.7}}};
  EXPECT_DOUBLE_EQ(cdf(4.9), 0.0);
  EXPECT_DOUBLE_EQ(cdf(5.0), 0.7);
  EXPECT_DOUBLE_EQ(cdf(5.1), 0.7);
}

TEST(CdfEdgeTest, InterpolateWithExtremesHandlesAllPointsOutside) {
  const std::vector<CdfPoint> points{{-5.0, 0.1}, {100.0, 0.9}};
  const auto cdf = interpolate_with_extremes(points, 0.0, 10.0);
  ASSERT_EQ(cdf.knots().size(), 2u);  // Only the anchors survive.
  EXPECT_DOUBLE_EQ(cdf(5.0), 0.5);
}

TEST(ErrorMetricsEdgeTest, ApproximationNarrowerThanTruthDomain) {
  // Approximation only covers [40, 60] of a [0, 100] truth: outside the
  // knots it clamps to 0 / its last fraction, producing large errors that
  // the evaluator must account exactly.
  std::vector<Value> values;
  for (int i = 0; i <= 100; ++i) values.push_back(i);
  const EmpiricalCdf truth{values};
  const PiecewiseLinearCdf approx{{{40.0, 0.0}, {60.0, 1.0}}};
  const auto fast = discrete_errors(truth, approx);
  const auto brute = discrete_errors_brute(truth, approx);
  EXPECT_NEAR(fast.max_err, brute.max_err, 1e-12);
  EXPECT_NEAR(fast.avg_err, brute.avg_err, 1e-12);
  EXPECT_GT(fast.max_err, 0.35);  // F(39) ~ 0.40 vs approx 0.
}

TEST(ErrorMetricsEdgeTest, ApproximationWiderThanTruthDomain) {
  const EmpiricalCdf truth{{10, 20}};
  const PiecewiseLinearCdf approx{{{-100.0, 0.0}, {100.0, 1.0}}};
  const auto fast = discrete_errors(truth, approx);
  const auto brute = discrete_errors_brute(truth, approx);
  EXPECT_NEAR(fast.max_err, brute.max_err, 1e-12);
  EXPECT_NEAR(fast.avg_err, brute.avg_err, 1e-12);
}

TEST(ErrorMetricsEdgeTest, TwoAdjacentIntegerValues) {
  const EmpiricalCdf truth{{5, 6}};
  const PiecewiseLinearCdf approx{{{5.0, 0.5}, {6.0, 1.0}}};
  const auto errors = discrete_errors(truth, approx);
  EXPECT_NEAR(errors.max_err, 0.0, 1e-12);
}

TEST(ErrorMetricsEdgeTest, KnotsAtNonIntegerPositions) {
  // Fractional thresholds between every integer: run segmentation must
  // still match brute force.
  const EmpiricalCdf truth{{0, 1, 2, 3, 4, 5}};
  const PiecewiseLinearCdf approx{
      {{-0.5, 0.0}, {1.5, 0.4}, {2.5, 0.45}, {4.7, 0.9}, {5.2, 1.0}}};
  const auto fast = discrete_errors(truth, approx);
  const auto brute = discrete_errors_brute(truth, approx);
  EXPECT_NEAR(fast.max_err, brute.max_err, 1e-12);
  EXPECT_NEAR(fast.avg_err, brute.avg_err, 1e-12);
}

TEST(ErrorMetricsEdgeTest, HugeDomainIsCheapToEvaluate) {
  // Domain of ~2e9 integers: the closed form must not iterate them.
  std::vector<Value> values{0, 1'000'000'000, 2'000'000'000};
  const EmpiricalCdf truth{values};
  const PiecewiseLinearCdf approx{{{0.0, 0.3}, {2e9, 1.0}}};
  const auto errors = discrete_errors(truth, approx);  // Must return fast.
  EXPECT_GT(errors.max_err, 0.0);
  EXPECT_LT(errors.max_err, 1.0);
}

TEST(HistogramEdgeTest, CompressSplitsOneHeavySample) {
  // One sample carrying all the weight is split across bins.
  std::vector<WeightedValue> samples{{5.0, 100.0}};
  const auto compressed = compress_equi_depth(std::move(samples), 4);
  double total = 0.0;
  for (const auto& c : compressed) {
    EXPECT_DOUBLE_EQ(c.value, 5.0);
    total += c.weight;
  }
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(HistogramEdgeTest, CompressToOneBin) {
  std::vector<WeightedValue> samples{{0.0, 1.0}, {10.0, 3.0}};
  const auto compressed = compress_equi_depth(std::move(samples), 1);
  ASSERT_EQ(compressed.size(), 1u);
  EXPECT_NEAR(compressed[0].weight, 4.0, 1e-12);
  EXPECT_NEAR(compressed[0].value, 7.5, 1e-12);  // Weighted mean.
}

TEST(HistogramEdgeTest, ZeroWeightSamplesDoNotCrash) {
  std::vector<WeightedValue> samples{{1.0, 0.0}, {2.0, 1.0}, {3.0, 0.0}};
  const auto compressed = compress_equi_depth(std::move(samples), 2);
  double total = 0.0;
  for (const auto& c : compressed) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

/// Property: compress_equi_depth preserves the weighted mean exactly
/// (centroids are weighted averages of what they absorb).
class CompressPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CompressPropertyTest, PreservesWeightAndMean) {
  rng::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  std::vector<WeightedValue> samples;
  double total_w = 0.0;
  double total_m = 0.0;
  const std::size_t n = 1 + rng.below(300);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = rng.uniform(0.0, 4.0);
    const double v = rng.uniform(-1000.0, 1000.0);
    samples.push_back({v, w});
    total_w += w;
    total_m += v * w;
  }
  if (total_w <= 0.0) return;  // Degenerate draw; nothing to check.
  const std::size_t capacity = 1 + rng.below(32);
  const auto compressed = compress_equi_depth(std::move(samples), capacity);
  EXPECT_LE(compressed.size(), capacity + 1);  // Rounding slop at most one.
  double w = 0.0;
  double m = 0.0;
  for (const auto& c : compressed) {
    w += c.weight;
    m += c.value * c.weight;
  }
  EXPECT_NEAR(w, total_w, 1e-9 * std::max(1.0, total_w));
  EXPECT_NEAR(m, total_m, 1e-6 * std::max(1.0, std::abs(total_m)));
}

INSTANTIATE_TEST_SUITE_P(Random, CompressPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace adam2::stats
