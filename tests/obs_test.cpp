// Unit tests for the observability layer (DESIGN.md §11): metrics registry
// semantics, trace-ring wraparound, the exporters' exact byte formats, and
// the atomic artifact writer. The cross-engine trace-determinism checks
// (serial ≡ parallel ×8 under faults) live in golden_replay_test.cpp.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "host/traffic.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"

namespace adam2::obs {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableIds) {
  MetricsRegistry registry;
  const auto a = registry.counter("exchanges");
  const auto b = registry.gauge("live");
  EXPECT_EQ(registry.counter("exchanges"), a);
  EXPECT_EQ(registry.gauge("live"), b);
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.metrics().size(), 2U);

  registry.add(a);
  registry.add(a, 6);
  registry.set(b, 2.5);
  EXPECT_EQ(registry.counter_value("exchanges"), 7U);
  EXPECT_DOUBLE_EQ(registry.gauge_value("live"), 2.5);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  const auto id = registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), std::logic_error);
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_THROW((void)registry.histogram("x", bounds), std::logic_error);
  // Updating through the wrong typed mutator is equally rejected.
  EXPECT_THROW(registry.set(id, 1.0), std::logic_error);
  EXPECT_THROW(registry.observe(id, 1.0), std::logic_error);
  EXPECT_THROW(registry.add(MetricsRegistry::Id{99}), std::out_of_range);
}

TEST(MetricsRegistry, HistogramBoundsMustStrictlyIncrease) {
  MetricsRegistry registry;
  const std::vector<double> equal = {1.0, 1.0};
  const std::vector<double> descending = {2.0, 1.0};
  EXPECT_THROW((void)registry.histogram("h", equal), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("h", descending),
               std::invalid_argument);
  EXPECT_EQ(registry.find("h"), nullptr);  // Nothing half-registered.
}

TEST(MetricsRegistry, HistogramBucketsUseInclusiveUpperBounds) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {10.0, 20.0};
  const auto id = registry.histogram("bytes", bounds);
  registry.observe(id, 5.0);    // <= 10 -> bucket 0
  registry.observe(id, 10.0);   // <= 10 -> bucket 0 (inclusive)
  registry.observe(id, 15.0);   // <= 20 -> bucket 1
  registry.observe(id, 100.0);  // above every bound -> overflow bucket

  const Metric* metric = registry.find("bytes");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->count, 4U);
  EXPECT_DOUBLE_EQ(metric->value, 130.0);
  EXPECT_EQ(metric->buckets, (std::vector<std::uint64_t>{2, 1, 1}));

  // Re-registering keeps the accumulated tallies.
  EXPECT_EQ(registry.histogram("bytes", bounds), id);
  EXPECT_EQ(registry.find("bytes")->count, 4U);
}

TEST(MetricsRegistry, ConvenienceReadersDefaultToZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("absent"), 0U);
  EXPECT_DOUBLE_EQ(registry.gauge_value("absent"), 0.0);
  // Wrong-kind reads are 0, not a throw: the readers are for reporting.
  (void)registry.gauge("g");
  EXPECT_EQ(registry.counter_value("g"), 0U);
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TEST(TraceRing, StampsSequenceNumbersAtPush) {
  TraceRing ring(8);
  for (int i = 0; i < 3; ++i) {
    TraceEvent event;
    event.kind = EventKind::kRoundBegin;
    event.value_a = static_cast<std::uint64_t>(i);
    ring.push(event);
  }
  EXPECT_EQ(ring.size(), 3U);
  EXPECT_EQ(ring.total(), 3U);
  EXPECT_EQ(ring.dropped(), 0U);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).seq, i);
    EXPECT_EQ(ring.at(i).value_a, i);
  }
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDropped) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4U);
  for (int i = 0; i < 10; ++i) {
    TraceEvent event;
    event.value_a = static_cast<std::uint64_t>(i);
    ring.push(event);
  }
  EXPECT_EQ(ring.size(), 4U);
  EXPECT_EQ(ring.total(), 10U);
  EXPECT_EQ(ring.dropped(), 6U);
  // at() stays chronological across the wrap: oldest retained first.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).value_a, 6U + i);
    EXPECT_EQ(ring.at(i).seq, 6U + i);
  }

  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.total(), 0U);
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 1U);
  ring.push(TraceEvent{});
  ring.push(TraceEvent{});
  EXPECT_EQ(ring.size(), 1U);
  EXPECT_EQ(ring.at(0).seq, 1U);
}

TEST(TraceRing, DigestDetectsStreamDifferences) {
  TraceRing a(16);
  TraceRing b(16);
  for (int i = 0; i < 5; ++i) {
    TraceEvent event;
    event.round = static_cast<host::Round>(i);
    event.kind = EventKind::kRoundEnd;
    event.value_a = 64;
    a.push(event);
    b.push(event);
  }
  EXPECT_EQ(trace_digest(a), trace_digest(b));

  TraceEvent extra;
  extra.kind = EventKind::kCrashRestart;
  extra.a = 7;
  b.push(extra);
  EXPECT_NE(trace_digest(a), trace_digest(b));
}

// ---------------------------------------------------------------------------
// Exporters: exact byte formats
// ---------------------------------------------------------------------------

TEST(Export, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nfeed\ttab\rret"),
            "line\\nfeed\\ttab\\rret");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Export, MetricsJsonGolden) {
  MetricsRegistry registry;
  registry.add(registry.counter("exchanges"), 7);
  registry.set(registry.gauge("live"), 2.5);
  const std::vector<double> bounds = {1.5, 2.5};
  const auto hist = registry.histogram("bytes", bounds);
  registry.observe(hist, 2.25);

  EXPECT_EQ(metrics_json(registry),
            "{\n"
            "  \"schema\": \"adam2.metrics.v1\",\n"
            "  \"metrics\": [\n"
            "    {\"name\":\"exchanges\",\"kind\":\"counter\",\"value\":7},\n"
            "    {\"name\":\"live\",\"kind\":\"gauge\",\"value\":2.5},\n"
            "    {\"name\":\"bytes\",\"kind\":\"histogram\",\"count\":1,"
            "\"sum\":2.25,\"bounds\":[1.5,2.5],\"buckets\":[0,1,0]}\n"
            "  ]\n"
            "}\n");
}

TEST(Export, MetricsJsonEmptyRegistry) {
  EXPECT_EQ(metrics_json(MetricsRegistry{}),
            "{\n  \"schema\": \"adam2.metrics.v1\",\n  \"metrics\": []\n}\n");
}

TEST(Export, ManifestJsonGolden) {
  RunManifest manifest;
  manifest.name = "unit";
  manifest.engine = "serial";
  manifest.seed = 42;
  manifest.threads = 2;
  manifest.set("nodes", std::uint64_t{64});
  // The build stamps vary per toolchain; pin them for the golden string.
  manifest.compiler = "test-cc";
  manifest.build = "test-build";

  EXPECT_EQ(manifest_json(manifest),
            "{\n"
            "  \"schema\": \"adam2.manifest.v1\",\n"
            "  \"name\": \"unit\",\n"
            "  \"engine\": \"serial\",\n"
            "  \"seed\": 42,\n"
            "  \"threads\": 2,\n"
            "  \"config\": {\n"
            "    \"nodes\": \"64\"\n"
            "  },\n"
            "  \"compiler\": \"test-cc\",\n"
            "  \"build\": \"test-build\"\n"
            "}\n");
}

TEST(Export, ManifestSetUpsertsPreservingOrder) {
  RunManifest manifest;
  manifest.set("alpha", std::uint64_t{1});
  manifest.set("beta", std::uint64_t{2});
  manifest.set("alpha", std::uint64_t{3});  // Update in place, no reorder.
  ASSERT_EQ(manifest.config.size(), 2U);
  EXPECT_EQ(manifest.config[0].first, "alpha");
  EXPECT_EQ(manifest.config[0].second, "3");
  ASSERT_NE(manifest.get("beta"), nullptr);
  EXPECT_EQ(*manifest.get("beta"), "2");
  EXPECT_EQ(manifest.get("absent"), nullptr);
}

TEST(Export, TraceJsonlGolden) {
  TraceRing ring(8);

  TraceEvent start;
  start.kind = EventKind::kEngineStart;
  start.round = 3;
  start.value_a = 64;
  ring.push(start);

  TraceEvent exchange;
  exchange.kind = EventKind::kExchange;
  exchange.round = 4;
  exchange.status = ExchangeStatus::kCompleted;
  exchange.request_copies = 1;
  exchange.response_copies = 2;
  exchange.request_corrupted = false;
  exchange.response_corrupted = true;
  exchange.a = 1;
  exchange.b = 2;
  exchange.value_a = 800;
  exchange.value_b = 412;
  ring.push(exchange);

  TraceEvent instance;
  instance.kind = EventKind::kInstanceStart;
  instance.round = 4;
  instance.a = 5;
  instance.value_a = 9;
  ring.push(instance);

  EXPECT_EQ(
      trace_jsonl(ring),
      "{\"seq\":0,\"round\":3,\"kind\":\"engine_start\",\"nodes\":64}\n"
      "{\"seq\":1,\"round\":4,\"kind\":\"exchange\",\"initiator\":1,"
      "\"target\":2,\"status\":\"completed\",\"req_copies\":1,"
      "\"resp_copies\":2,\"req_corrupt\":false,\"resp_corrupt\":true,"
      "\"req_bytes\":800,\"resp_bytes\":412}\n"
      "{\"seq\":2,\"round\":4,\"kind\":\"instance_start\",\"node\":5,"
      "\"instance\":9}\n");
}

TEST(Export, SeriesCsvGolden) {
  Recorder recorder;
  host::TrafficStats totals;
  totals.on(host::Channel::kAggregation).add_send(800);
  totals.dropped_messages = 3;
  totals.failed_contacts = 1;
  recorder.round_begin(1, 64);
  recorder.round_end(1, 64, 64, totals);

  EXPECT_EQ(series_csv(recorder),
            "round,live,nodes_ever,bytes_sent,dropped,duplicated,corrupted,"
            "partitioned,failed_contacts,crash_restarts\n"
            "1,64,64,800,3,0,0,0,1,0\n");
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

TEST(Recorder, SchemaIsIdenticalAcrossFreshRecorders) {
  // Every recorder registers the full metric schema in its constructor, so
  // two untouched recorders export byte-identical snapshots.
  Recorder a;
  Recorder b;
  EXPECT_EQ(metrics_json(a.metrics()), metrics_json(b.metrics()));
  EXPECT_FALSE(a.metrics().metrics().empty());
  EXPECT_NE(a.metrics().find("traffic.aggregation.bytes_sent"), nullptr);
  EXPECT_NE(a.metrics().find("exchange.completed"), nullptr);
  EXPECT_NE(a.metrics().find("round.current"), nullptr);
}

TEST(Recorder, EngineStartFillsManifestEngineOnce) {
  Recorder recorder;
  recorder.engine_start("serial", 0, 64);
  recorder.engine_start("parallel", 0, 64);  // Second attach does not clobber.
  EXPECT_EQ(recorder.manifest().engine, "serial");
  ASSERT_EQ(recorder.trace().size(), 2U);
  EXPECT_EQ(recorder.trace().at(0).kind, EventKind::kEngineStart);
  EXPECT_EQ(recorder.trace().at(0).value_a, 64U);
}

TEST(Recorder, RoundEndAbsorbsTrafficAndAppendsSample) {
  Recorder recorder;
  host::TrafficStats totals;
  totals.on(host::Channel::kAggregation).add_send(800);
  totals.on(host::Channel::kOverlay).add_receive(120);
  totals.duplicated_messages = 2;
  totals.crash_restarts = 1;

  recorder.round_end(5, 60, 64, totals);

  EXPECT_DOUBLE_EQ(recorder.metrics().gauge_value("round.current"), 5.0);
  EXPECT_DOUBLE_EQ(recorder.metrics().gauge_value("round.live_nodes"), 60.0);
  EXPECT_DOUBLE_EQ(recorder.metrics().gauge_value("round.nodes_ever"), 64.0);
  EXPECT_EQ(
      recorder.metrics().counter_value("traffic.aggregation.bytes_sent"),
      800U);
  EXPECT_EQ(
      recorder.metrics().counter_value("traffic.overlay.messages_received"),
      1U);
  EXPECT_EQ(recorder.metrics().counter_value("traffic.duplicated_messages"),
            2U);
  EXPECT_EQ(recorder.metrics().counter_value("traffic.crash_restarts"), 1U);

  ASSERT_EQ(recorder.series().size(), 1U);
  EXPECT_EQ(recorder.series()[0].round, 5U);
  EXPECT_EQ(recorder.series()[0].bytes_sent, 800U);
  EXPECT_EQ(recorder.series()[0].duplicated, 2U);

  // set_traffic is set-not-add: absorbing the same snapshot again must not
  // double the totals.
  recorder.set_traffic(totals);
  EXPECT_EQ(
      recorder.metrics().counter_value("traffic.aggregation.bytes_sent"),
      800U);
}

TEST(Recorder, ExchangeUpdatesMetricsAndOptionallyTraces) {
  RecorderConfig config;
  config.trace_exchanges = false;
  Recorder recorder(config);

  ExchangeOutcome outcome;
  outcome.initiator = 1;
  outcome.target = 2;
  outcome.has_target = true;
  outcome.status = ExchangeStatus::kCompleted;
  outcome.request_bytes = 800;
  outcome.response_bytes = 400;
  recorder.exchange(1, outcome);

  outcome.status = ExchangeStatus::kRequestLost;
  outcome.response_bytes = 0;
  recorder.exchange(1, outcome);

  EXPECT_EQ(recorder.metrics().counter_value("exchange.completed"), 1U);
  EXPECT_EQ(recorder.metrics().counter_value("exchange.request_lost"), 1U);
  const Metric* request_hist =
      recorder.metrics().find("exchange.request_bytes");
  ASSERT_NE(request_hist, nullptr);
  EXPECT_EQ(request_hist->count, 2U);
  const Metric* response_hist =
      recorder.metrics().find("exchange.response_bytes");
  ASSERT_NE(response_hist, nullptr);
  EXPECT_EQ(response_hist->count, 1U);  // Zero-byte legs are not observed.
  EXPECT_TRUE(recorder.trace().empty());  // Suppressed by trace_exchanges.

  // With tracing on (the default) the same call lands in the ring.
  Recorder tracing;
  tracing.exchange(1, outcome);
  ASSERT_EQ(tracing.trace().size(), 1U);
  EXPECT_EQ(tracing.trace().at(0).kind, EventKind::kExchange);
}

// ---------------------------------------------------------------------------
// atomic_write_file
// ---------------------------------------------------------------------------

TEST(AtomicWrite, WritesContentAndLeavesNoTempFile) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "adam2_obs_atomic.json";
  std::filesystem::remove(path);

  ASSERT_TRUE(atomic_write_file(path, "{\"ok\":true}\n"));
  EXPECT_EQ(read_file(path), "{\"ok\":true}\n");
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));

  // Overwrite replaces the previous artifact whole.
  ASSERT_TRUE(atomic_write_file(path, "v2"));
  EXPECT_EQ(read_file(path), "v2");
  std::filesystem::remove(path);
}

TEST(AtomicWrite, CreatesParentDirectories) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "adam2_obs_nested";
  std::filesystem::remove_all(dir);
  const std::filesystem::path path = dir / "deep" / "metrics.json";

  ASSERT_TRUE(atomic_write_file(path, "x"));
  EXPECT_EQ(read_file(path), "x");
  std::filesystem::remove_all(dir);
}

TEST(AtomicWrite, WriteHelpersRoundTripExports) {
  Recorder recorder;
  recorder.engine_start("serial", 0, 8);
  host::TrafficStats totals;
  totals.on(host::Channel::kAggregation).add_send(100);
  recorder.round_end(1, 8, 8, totals);

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "adam2_obs_helpers";
  std::filesystem::remove_all(dir);

  ASSERT_TRUE(write_trace_jsonl(dir / "trace.jsonl", recorder.trace()));
  ASSERT_TRUE(write_metrics_json(dir / "metrics.json", recorder.metrics()));
  ASSERT_TRUE(write_manifest_json(dir / "manifest.json", recorder.manifest()));
  ASSERT_TRUE(write_series_csv(dir / "series.csv", recorder));

  EXPECT_EQ(read_file(dir / "trace.jsonl"), trace_jsonl(recorder.trace()));
  EXPECT_EQ(read_file(dir / "metrics.json"),
            metrics_json(recorder.metrics()));
  EXPECT_EQ(read_file(dir / "manifest.json"),
            manifest_json(recorder.manifest()));
  EXPECT_EQ(read_file(dir / "series.csv"), series_csv(recorder));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace adam2::obs
