// core::InstanceStore correctness suite.
//
// Two layers of protection for the arena-backed instance-state migration:
//
//  1. Pinned protocol digests. Seeded Adam2 runs (serial, sharded x8, with
//     and without a fault plan, plus a multi-value population) fold every
//     observable bit of protocol state — live membership, the agents' gossip
//     request bytes, completed estimates, traffic counters — into an FNV-1a
//     digest pinned to constants captured from the pre-InstanceStore tree
//     (map-of-vectors agent state). The flat store must reproduce these
//     digests exactly: the layout change is an optimisation, not a protocol
//     change.
//
//  2. Differential fuzz. Seeded random op sequences (start / join / merge /
//     expire / lookup) driven in lockstep against a reference model built
//     from the old layout's ingredients (std::unordered_map + insertion-order
//     vector of owning InstanceState). Iteration order, header fields, point
//     values, and the encoded wire bytes must match after every step; arena
//     pages and slot storage must stop growing once the working set has been
//     seen (freelist reuse).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/instance_store.hpp"
#include "rng/rng.hpp"
#include "stats/point_arena.hpp"

#include "core/multi.hpp"
#include "core/protocol.hpp"
#include "core/system.hpp"
#include "host/fault.hpp"
#include "sim/cyclon.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_engine.hpp"
#include "wire/messages.hpp"

namespace adam2::core {
namespace {

// -- Digest helpers ----------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, double v) {
  mix(h, std::bit_cast<std::uint64_t>(v));
}

void mix_bytes(std::uint64_t& h, std::span<const std::byte> bytes) {
  mix(h, static_cast<std::uint64_t>(bytes.size()));
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
}

void mix_estimate(std::uint64_t& h, const std::optional<Estimate>& estimate) {
  if (!estimate) {
    mix(h, std::uint64_t{0});
    return;
  }
  mix(h, std::uint64_t{1});
  mix(h, estimate->instance.initiator);
  mix(h, static_cast<std::uint64_t>(estimate->instance.seq));
  mix(h, static_cast<std::uint64_t>(estimate->completed_round));
  mix(h, estimate->min_value);
  mix(h, estimate->max_value);
  mix(h, estimate->n_estimate);
  for (const stats::CdfPoint& p : estimate->points) {
    mix(h, p.t);
    mix(h, p.f);
  }
  for (const stats::CdfPoint& p : estimate->cdf.knots()) {
    mix(h, p.t);
    mix(h, p.f);
  }
  if (estimate->self_assessment) {
    mix(h, estimate->self_assessment->max_err);
    mix(h, estimate->self_assessment->avg_err);
  }
}

/// Folds the full Adam2-visible end state of a cycle engine into one u64:
/// per live node (engine id order) the attribute, instance counters, the
/// agent's *request bytes* (the exact payloads the next exchange would put
/// on the wire — point order and arithmetic included) and its estimate,
/// plus the global traffic totals.
template <typename EngineT>
std::uint64_t protocol_digest(EngineT& engine) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(engine.live_count()));
  for (host::NodeId id : engine.live_ids()) {
    auto& agent = dynamic_cast<Adam2Agent&>(engine.agent(id));
    mix(h, static_cast<std::uint64_t>(id));
    mix(h, static_cast<double>(engine.node(id).attribute));
    mix(h, static_cast<std::uint64_t>(agent.active_instance_count()));
    mix(h, static_cast<std::uint64_t>(agent.completed_instances()));
    mix(h, agent.n_estimate());
    auto ctx = engine.context_for(id);
    mix_bytes(h, agent.make_request(ctx));
    mix_estimate(h, agent.estimate());
  }
  const host::TrafficStats& traffic = engine.total_traffic();
  for (std::size_t c = 0; c < host::kChannelCount; ++c) {
    mix(h, traffic.channels[c].messages_sent);
    mix(h, traffic.channels[c].bytes_sent);
  }
  mix(h, traffic.dropped_messages);
  mix(h, traffic.corrupted_messages);
  return h;
}

std::vector<stats::Value> spread_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<stats::Value>(17 * i + (i * i) % 31);
  }
  return values;
}

std::unique_ptr<sim::Overlay> cyclon() {
  sim::CyclonConfig config;
  config.view_size = 8;
  config.shuffle_size = 4;
  return std::make_unique<sim::CyclonOverlay>(config);
}

Adam2Config protocol_config() {
  Adam2Config config;
  config.lambda = 12;
  config.instance_ttl = 8;
  config.verification_points = 4;
  config.restart_every_r = 6.0;  // Keep creating instances all run long.
  config.initial_n_estimate = 64.0;
  return config;
}

sim::EngineConfig engine_config(bool faults) {
  sim::EngineConfig config;
  config.seed = 0xada2;
  config.churn_rate = 0.02;
  config.message_loss = 0.05;
  if (faults) {
    host::FaultPlan plan;
    plan.drop_rate = 0.08;
    plan.duplicate_rate = 0.06;
    plan.corrupt_rate = 0.06;
    plan.crash_rate = 0.01;
    plan.partition_count = 2;
    plan.partition_start = 6;
    plan.partition_heal_after = 6;
    plan.seed = 0x90de;
    config.faults = plan;
  }
  return config;
}

host::AttributeSource churn_values() {
  return [](rng::Rng& rng) {
    return static_cast<stats::Value>(rng.below(1000));
  };
}

sim::AgentFactory adam2_factory(const Adam2Config& config) {
  return [config](const host::AgentContext&) {
    return std::make_unique<Adam2Agent>(config);
  };
}

sim::AgentFactory multi_factory(const Adam2Config& config) {
  return [config](const host::AgentContext& ctx) {
    // Deterministic per-node value set derived from the attribute.
    std::vector<stats::Value> own{ctx.attribute, ctx.attribute / 2 + 1,
                                  ctx.attribute * 2 + 3};
    return std::make_unique<MultiValueAdam2Agent>(config, std::move(own));
  };
}

template <typename EngineT>
std::uint64_t drive(EngineT& engine) {
  // Scripted starts guarantee early instances; restart_every_r keeps the
  // create/join/expire churn going for the rest of the run.
  for (std::size_t slot : {std::size_t{0}, std::size_t{5}}) {
    const host::NodeId id = engine.live_ids()[slot];
    auto ctx = engine.context_for(id);
    (void)dynamic_cast<Adam2Agent&>(engine.agent(id)).start_instance(ctx);
  }
  engine.run_rounds(40);
  return protocol_digest(engine);
}

std::uint64_t run_serial(bool faults, const sim::AgentFactory& factory) {
  sim::Engine engine(engine_config(faults), spread_values(64), cyclon(),
                     factory, churn_values());
  return drive(engine);
}

std::uint64_t run_parallel(bool faults, const sim::AgentFactory& factory) {
  sim::ParallelEngine engine(engine_config(faults), 8, spread_values(64),
                             cyclon(), factory, churn_values());
  return drive(engine);
}

// -- Pinned digests ----------------------------------------------------------
// Captured from the pre-InstanceStore tree (std::unordered_map<InstanceId,
// InstanceState> agent state, PR 7 tip). The arena-backed store must
// reproduce them bit for bit: gossip payload order, merge arithmetic,
// finalisation order, and every estimate byte are part of the contract.

constexpr std::uint64_t kSerialGolden = 2319605973804068649ULL;
constexpr std::uint64_t kSerialFaultsGolden = 9905811204549867529ULL;
constexpr std::uint64_t kMultiValueGolden = 11751889519860763852ULL;

TEST(InstanceStoreGolden, SerialAdam2RunMatchesPinnedDigest) {
  EXPECT_EQ(run_serial(false, adam2_factory(protocol_config())),
            kSerialGolden);
}

TEST(InstanceStoreGolden, SerialAdam2RunUnderFaultsMatchesPinnedDigest) {
  EXPECT_EQ(run_serial(true, adam2_factory(protocol_config())),
            kSerialFaultsGolden);
}

TEST(InstanceStoreGolden, ParallelAdam2RunMatchesSerialDigest) {
  EXPECT_EQ(run_parallel(false, adam2_factory(protocol_config())),
            kSerialGolden);
  EXPECT_EQ(run_parallel(true, adam2_factory(protocol_config())),
            kSerialFaultsGolden);
}

TEST(InstanceStoreGolden, MultiValueRunMatchesPinnedDigest) {
  EXPECT_EQ(run_serial(false, multi_factory(protocol_config())),
            kMultiValueGolden);
}

// -- PointArena unit tests ---------------------------------------------------

TEST(PointArenaTest, RoundsRequestsUpToPowerOfTwoClasses) {
  EXPECT_EQ(stats::PointArena::class_of(1), 8u);
  EXPECT_EQ(stats::PointArena::class_of(8), 8u);
  EXPECT_EQ(stats::PointArena::class_of(9), 16u);
  EXPECT_EQ(stats::PointArena::class_of(50), 64u);
  EXPECT_EQ(stats::PointArena::class_of(64), 64u);
  EXPECT_EQ(stats::PointArena::class_of(65), 128u);
}

TEST(PointArenaTest, CommonLambdaFitsInTheInlinePage) {
  stats::PointArena arena;
  // One instance at the paper's lambda = 50 (class 64) plus a verification
  // series (class 8): both served from the in-object page, no heap pages.
  const auto h = arena.allocate(50);
  const auto v = arena.allocate(4);
  EXPECT_NE(h.data, nullptr);
  EXPECT_NE(v.data, nullptr);
  EXPECT_EQ(arena.heap_pages(), 0u);
}

TEST(PointArenaTest, EmptyRequestIsTheNullBlock) {
  stats::PointArena arena;
  const auto b = arena.allocate(0);
  EXPECT_EQ(b.data, nullptr);
  EXPECT_EQ(b.capacity, 0u);
  arena.release(b.data, b.capacity);  // No-op, must not crash.
}

TEST(PointArenaTest, ReleasedBlocksAreRecycledExactly) {
  stats::PointArena arena;
  const auto a = arena.allocate(50);
  arena.release(a.data, a.capacity);
  EXPECT_EQ(arena.free_blocks(), 1u);
  const auto b = arena.allocate(33);  // Same class (64) -> same block back.
  EXPECT_EQ(b.data, a.data);
  EXPECT_EQ(arena.free_blocks(), 0u);
}

TEST(PointArenaTest, SteadyChurnStopsReservingAfterWarmup) {
  // Deterministic FIFO churn over a fixed class profile: once one full
  // working set has been seen, every further lifecycle is freelist reuse.
  static constexpr std::size_t kCounts[] = {5, 12, 33, 64};
  stats::PointArena arena;
  std::vector<stats::PointArena::Block> live;
  std::size_t warm_reserved = 0;
  for (int round = 0; round < 1000; ++round) {
    live.push_back(arena.allocate(kCounts[round % 4]));
    if (live.size() > 32) {
      arena.release(live.front().data, live.front().capacity);
      live.erase(live.begin());
    }
    if (round == 200) warm_reserved = arena.reserved_points();
    if (round > 200) {
      EXPECT_EQ(arena.reserved_points(), warm_reserved);
    }
  }
}

// -- Differential fuzz: InstanceStore vs reference model ---------------------
//
// The reference model is built from the old layout's exact ingredients: an
// unordered_map of owning InstanceState plus an insertion-order id vector.
// Both sides execute the same seeded op sequence; after every round the
// full observable state must match — membership, iteration order, header
// fields, every point value bit for bit, and the encoded wire bytes of a
// message carrying all live instances.

struct ReferenceStore {
  std::unordered_map<wire::InstanceId, InstanceState, wire::InstanceIdHash> map;
  std::vector<wire::InstanceId> order;
};

constexpr double kFuzzAttribute = 500.0;

double fuzz_contribution(double t) { return kFuzzAttribute <= t ? 1.0 : 0.0; }

std::vector<double> random_thresholds(rng::Rng& rng) {
  static constexpr std::size_t kCounts[] = {4, 12, 50};
  std::vector<double> thresholds(kCounts[rng.below(3)]);
  for (double& t : thresholds) t = rng.uniform(0.0, 1000.0);
  std::sort(thresholds.begin(), thresholds.end());
  return thresholds;
}

wire::InstancePayload random_payload(rng::Rng& rng, wire::InstanceId id) {
  wire::InstancePayload p;
  p.id = id;
  p.start_round = static_cast<std::uint32_t>(rng.below(100));
  p.ttl = static_cast<std::uint16_t>(1 + rng.below(25));
  p.weight = rng.uniform();
  p.min_value = rng.uniform(0.0, 500.0);
  p.max_value = p.min_value + rng.uniform(0.0, 500.0);
  for (double t : random_thresholds(rng)) p.points.push_back({t, rng.uniform()});
  if (rng.below(2) == 0) {
    for (int i = 0; i < 4; ++i) {
      p.verification.push_back({rng.uniform(0.0, 1000.0), rng.uniform()});
    }
  }
  return p;
}

/// A peer's re-gossip of an instance both models hold: same thresholds
/// (mergeable), fresh averaged values.
wire::InstancePayload mutate_payload(const InstanceState& state,
                                     rng::Rng& rng) {
  wire::InstancePayload p = state.to_payload();
  for (stats::CdfPoint& pt : p.points) pt.f = rng.uniform();
  for (stats::CdfPoint& pt : p.verification) pt.f = rng.uniform();
  p.weight = rng.uniform();
  p.min_value = state.min_value - rng.uniform();
  p.max_value = state.max_value + rng.uniform();
  return p;
}

/// Encodes `p` and hands the zero-copy parsed view to `use` (so the store
/// side exercises the same wire path the exchange hot loop uses).
template <typename Fn>
void with_view(const wire::InstancePayload& p, Fn&& use) {
  wire::Writer scratch;
  wire::Adam2MessageBuilder builder(scratch, wire::MessageType::kAdam2Request,
                                    99);
  builder.add(p);
  const auto bytes = builder.finish();
  const auto view = wire::Adam2MessageView::parse(bytes);
  use(*view.begin());
}

void expect_equivalent(const InstanceStore& store, const ReferenceStore& ref) {
  ASSERT_EQ(store.size(), ref.order.size());
  std::size_t i = 0;
  for (const InstanceSlot& slot : store) {
    const wire::InstanceId id = ref.order[i++];
    ASSERT_TRUE(slot.id == id) << "iteration order diverged at " << (i - 1);
    const InstanceState& state = ref.map.find(id)->second;
    EXPECT_EQ(slot.start_round, state.start_round);
    EXPECT_EQ(slot.ttl, state.ttl);
    EXPECT_EQ(slot.flags, state.flags);
    EXPECT_EQ(slot.touched_epoch, state.touched_epoch);
    EXPECT_EQ(slot.weight, state.weight);
    EXPECT_EQ(slot.min_value, state.min_value);
    EXPECT_EQ(slot.max_value, state.max_value);
    ASSERT_EQ(slot.points().size(), state.points.size());
    for (std::size_t k = 0; k < state.points.size(); ++k) {
      EXPECT_EQ(slot.points()[k].t, state.points[k].t);
      EXPECT_EQ(slot.points()[k].f, state.points[k].f);
    }
    ASSERT_EQ(slot.verification().size(), state.verification.size());
    for (std::size_t k = 0; k < state.verification.size(); ++k) {
      EXPECT_EQ(slot.verification()[k].t, state.verification[k].t);
      EXPECT_EQ(slot.verification()[k].f, state.verification[k].f);
    }
  }
  // The encoded bytes of a full message must match too: slot spans and
  // owning vectors must be indistinguishable on the wire.
  wire::Writer from_slots;
  wire::Writer from_states;
  wire::Adam2MessageBuilder a(from_slots, wire::MessageType::kAdam2Request, 7);
  for (const InstanceSlot& slot : store) a.add(slot.ref());
  wire::Adam2MessageBuilder b(from_states, wire::MessageType::kAdam2Request, 7);
  for (const wire::InstanceId id : ref.order) b.add(ref.map.find(id)->second);
  const auto bytes_a = a.finish();
  const auto bytes_b = b.finish();
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  EXPECT_TRUE(std::equal(bytes_a.begin(), bytes_a.end(), bytes_b.begin()))
      << "slot-encoded message diverged from state-encoded message";
}

void run_fuzz(std::uint64_t seed) {
  InstanceStore store;
  ReferenceStore ref;
  rng::Rng rng(seed);
  std::uint32_t next_seq = 0;

  for (int round = 0; round < 900; ++round) {
    // Creation ops only while empty (0 = start, 1 = join, 5 = checkpoint
    // restore — the latter lands into a *non-empty* store most of the time,
    // the coverage the warm-restart path needs).
    static constexpr std::uint64_t kCreateOps[] = {0, 1, 5};
    const std::uint64_t op = ref.order.size() >= 48  ? 3  // Cap: force expiry.
                             : ref.order.size() == 0 ? kCreateOps[rng.below(3)]
                                                     : rng.below(6);
    switch (op) {
      case 0: {  // Initiator-side start.
        const wire::InstanceId id{1, next_seq++};
        const std::vector<double> thresholds = random_thresholds(rng);
        std::vector<double> verification;
        if (rng.below(2) == 0) verification = {100.0, 300.0, 600.0, 900.0};
        const auto round_no = static_cast<std::uint32_t>(rng.below(100));
        const auto ttl = static_cast<std::uint16_t>(1 + rng.below(25));
        store.start(id, round_no, ttl, thresholds, verification,
                    fuzz_contribution, kFuzzAttribute, kFuzzAttribute);
        ref.map.emplace(id, InstanceState::start(id, round_no, ttl, thresholds,
                                                 verification,
                                                 fuzz_contribution,
                                                 kFuzzAttribute,
                                                 kFuzzAttribute));
        ref.order.push_back(id);
        break;
      }
      case 1: {  // Joiner-side creation from a foreign payload.
        const wire::InstanceId id{2 + rng.below(8), next_seq++};
        const wire::InstancePayload payload = random_payload(rng, id);
        with_view(payload, [&](const wire::InstancePayloadView& view) {
          store.join(view, fuzz_contribution, kFuzzAttribute, kFuzzAttribute);
        });
        ref.map.emplace(id, InstanceState::join(payload, fuzz_contribution,
                                                kFuzzAttribute,
                                                kFuzzAttribute));
        ref.order.push_back(id);
        break;
      }
      case 2: {  // Symmetric merge of a re-gossiped payload.
        const wire::InstanceId id = ref.order[rng.below(ref.order.size())];
        const wire::InstancePayload payload =
            mutate_payload(ref.map.find(id)->second, rng);
        with_view(payload, [&](const wire::InstancePayloadView& view) {
          InstanceSlot* slot = store.find(id);
          ASSERT_NE(slot, nullptr);
          ASSERT_TRUE(slot->mergeable_with(view));
          slot->average_with(view);
        });
        ref.map.find(id)->second.average_with(payload);
        break;
      }
      case 3: {  // Expiry.
        const wire::InstanceId id = ref.order[rng.below(ref.order.size())];
        store.erase(id);
        ref.map.erase(id);
        std::erase(ref.order, id);
        break;
      }
      case 5: {  // Checkpoint restore into a (possibly non-empty) store.
        const wire::InstanceId id{10 + rng.below(4), next_seq++};
        InstanceState state;
        state.id = id;
        state.start_round = static_cast<std::uint32_t>(rng.below(100));
        state.ttl = static_cast<std::uint16_t>(1 + rng.below(25));
        state.flags = static_cast<std::uint8_t>(rng.below(4));
        state.weight = rng.uniform();
        state.min_value = rng.uniform(0.0, 500.0);
        state.max_value = state.min_value + rng.uniform(0.0, 500.0);
        for (double t : random_thresholds(rng)) {
          state.points.push_back({t, rng.uniform()});
        }
        if (rng.below(2) == 0) {
          for (int i = 0; i < 4; ++i) {
            state.verification.push_back(
                {rng.uniform(0.0, 1000.0), rng.uniform()});
          }
        }
        state.touched_epoch = rng.below(1000);
        store.restore(state.id, state.start_round, state.ttl, state.flags,
                      state.weight, state.min_value, state.max_value,
                      state.touched_epoch, state.points, state.verification);
        ref.map.emplace(id, state);
        ref.order.push_back(id);
        break;
      }
      default: {  // Lookup of a (probably dead) id.
        const wire::InstanceId id{
            1 + rng.below(9),
            static_cast<std::uint32_t>(rng.below(next_seq + 1))};
        EXPECT_EQ(store.find(id) != nullptr, ref.map.contains(id));
        break;
      }
    }
    expect_equivalent(store, ref);

    // The live set is capped at 48 instances of at most (class 64 + class
    // 8) points each, so slot rows and arena reservations must stay within
    // the bound the recycling design implies — however the random op mix
    // interleaves classes, memory use is a function of the peak working
    // set, never of the number of lifecycles.
    EXPECT_LE(store.slot_rows(), 49u);
    EXPECT_LE(store.arena().reserved_points(),
              49 * (64 + 8) + 2 * stats::PointArena::kPageCapacity);
  }
}

TEST(InstanceStoreFuzz, MatchesReferenceModelSeedA) { run_fuzz(0xf00d); }
TEST(InstanceStoreFuzz, MatchesReferenceModelSeedB) { run_fuzz(0xbeef); }
TEST(InstanceStoreFuzz, MatchesReferenceModelSeedC) { run_fuzz(42); }

TEST(InstanceStoreTest, FixedLambdaLifecycleReachesExactSteadyState) {
  // The production shape: instances at one lambda, FIFO expiry (TTL). After
  // the first full working set, every counter the allocator owns must be
  // exactly constant — creation, join, and expiry recycle rows and blocks.
  InstanceStore store;
  std::vector<double> thresholds(50);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    thresholds[i] = static_cast<double>(i) * 20.0;
  }
  const std::vector<double> verification{100.0, 300.0, 600.0, 900.0};
  std::vector<wire::InstanceId> live;
  std::size_t warm_rows = 0;
  std::size_t warm_pages = 0;
  std::size_t warm_reserved = 0;
  for (std::uint32_t round = 0; round < 500; ++round) {
    const wire::InstanceId id{1, round};
    store.start(id, round, 25, thresholds, verification, fuzz_contribution,
                kFuzzAttribute, kFuzzAttribute);
    live.push_back(id);
    if (live.size() > 25) {
      store.erase(live.front());
      live.erase(live.begin());
    }
    if (round == 100) {
      warm_rows = store.slot_rows();
      warm_pages = store.arena().heap_pages();
      warm_reserved = store.arena().reserved_points();
    }
    if (round > 100) {
      EXPECT_EQ(store.slot_rows(), warm_rows);
      EXPECT_EQ(store.arena().heap_pages(), warm_pages);
      EXPECT_EQ(store.arena().reserved_points(), warm_reserved);
    }
  }
}

TEST(InstanceStoreTest, EmptySetMarkersEncodeIdenticallyFromSlotAndPayload) {
  InstanceStore store;
  const std::vector<double> thresholds{10.0, 20.0};
  InstanceSlot& slot = store.start({3, 9}, 5, 7, thresholds, {},
                                   fuzz_contribution, 1.0, 2.0);
  InstanceState state = InstanceState::start({3, 9}, 5, 7, thresholds, {},
                                             fuzz_contribution, 1.0, 2.0);
  wire::Writer a;
  wire::Writer b;
  wire::Adam2MessageBuilder ba(a, wire::MessageType::kAdam2Response, 1);
  ba.add_empty_set(slot.ref());
  wire::Adam2MessageBuilder bb(b, wire::MessageType::kAdam2Response, 1);
  bb.add_empty_set(state);
  const auto bytes_a = ba.finish();
  const auto bytes_b = bb.finish();
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  EXPECT_TRUE(std::equal(bytes_a.begin(), bytes_a.end(), bytes_b.begin()));
}

TEST(InstanceStoreTest, ZeroInstanceIdIsAValidKey) {
  InstanceStore store;
  const std::vector<double> thresholds{1.0};
  store.start({0, 0}, 0, 1, thresholds, {}, fuzz_contribution, 0.0, 0.0);
  ASSERT_NE(store.find({0, 0}), nullptr);
  store.erase({0, 0});
  EXPECT_EQ(store.find({0, 0}), nullptr);
  EXPECT_TRUE(store.empty());
}

}  // namespace
}  // namespace adam2::core
