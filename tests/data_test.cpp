#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "data/boinc_synth.hpp"
#include "data/trace.hpp"
#include "stats/cdf.hpp"

namespace adam2::data {
namespace {

using stats::EmpiricalCdf;
using stats::Value;

std::vector<Value> sample(Attribute kind, std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  return generate_population(kind, n, rng);
}

TEST(BoincSynthTest, AllAttributesArePositive) {
  for (Attribute kind : kAllAttributes) {
    for (Value v : sample(kind, 5000, 1)) {
      EXPECT_GT(v, 0) << attribute_name(kind);
    }
  }
}

TEST(BoincSynthTest, DeterministicForSameSeed) {
  EXPECT_EQ(sample(Attribute::kCpuMflops, 100, 9),
            sample(Attribute::kCpuMflops, 100, 9));
}

TEST(BoincSynthTest, CpuIsSmooth) {
  // A smooth distribution has many distinct values and no single value
  // carrying a large probability mass (Fig. 4's CPU curve).
  const auto values = sample(Attribute::kCpuMflops, 50000, 2);
  const EmpiricalCdf cdf{values};
  EXPECT_GT(cdf.distinct_values().size(), 3000u);

  const auto fractions = cdf.cumulative_fractions();
  double largest_step = fractions[0];
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    largest_step = std::max(largest_step, fractions[i] - fractions[i - 1]);
  }
  EXPECT_LT(largest_step, 0.01);
}

TEST(BoincSynthTest, RamIsHeavilyStepped) {
  // The RAM CDF must contain visible steps: a handful of standard module
  // sizes carry most of the probability mass (Fig. 4's RAM curve).
  const auto values = sample(Attribute::kRamMb, 50000, 3);
  const EmpiricalCdf cdf{values};
  const auto distinct = cdf.distinct_values();
  const auto fractions = cdf.cumulative_fractions();

  double mass_in_big_steps = 0.0;
  int big_steps = 0;
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    const double step =
        fractions[i] - (i > 0 ? fractions[i - 1] : 0.0);
    if (step > 0.02) {
      mass_in_big_steps += step;
      ++big_steps;
    }
  }
  EXPECT_GE(big_steps, 5);
  EXPECT_GT(mass_in_big_steps, 0.75);
}

TEST(BoincSynthTest, RamConcentratesOnModuleSizes) {
  const auto values = sample(Attribute::kRamMb, 20000, 4);
  const std::set<Value> modules{128,  192,  256,  320,  384,  448,  512,
                                640,  768,  896,  1024, 1280, 1536, 1792,
                                2048, 2560, 3072, 4096, 6144, 8192};
  std::size_t on_step = 0;
  for (Value v : values) on_step += modules.count(v);
  EXPECT_GT(static_cast<double>(on_step) / values.size(), 0.85);
  EXPECT_LT(static_cast<double>(on_step) / values.size(), 1.0);
}

TEST(BoincSynthTest, CpuSpansExpectedRange) {
  const auto values = sample(Attribute::kCpuMflops, 50000, 5);
  const EmpiricalCdf cdf{values};
  EXPECT_GE(cdf.min(), 50);
  EXPECT_LE(cdf.max(), 25000);
  // Median in the low thousands of MFLOPS (2008-era hosts).
  EXPECT_GT(cdf.quantile(0.5), 800);
  EXPECT_LT(cdf.quantile(0.5), 5000);
}

TEST(BoincSynthTest, BandwidthIsHeavyTailed) {
  const auto values = sample(Attribute::kBandwidthKbps, 50000, 6);
  const EmpiricalCdf cdf{values};
  // Tail: the 99th percentile is much larger than the median.
  EXPECT_GT(cdf.quantile(0.99),
            8 * cdf.quantile(0.5));
}

TEST(BoincSynthTest, DiskSpansCommoditySizes) {
  const auto values = sample(Attribute::kDiskGb, 20000, 7);
  const EmpiricalCdf cdf{values};
  EXPECT_GE(cdf.min(), 4);
  EXPECT_LE(cdf.max(), 8192);
}

// -------------------------------------------------------------------- Trace

TEST(TraceTest, SynthesizeProducesSequentialIds) {
  rng::Rng rng(8);
  const auto records = synthesize_trace(100, rng);
  ASSERT_EQ(records.size(), 100u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].host_id, static_cast<std::int64_t>(i));
  }
}

TEST(TraceTest, AttributeColumnSelectsField) {
  const std::vector<HostRecord> records{
      {.host_id = 0, .cpu_mflops = 1, .ram_mb = 2, .bandwidth_kbps = 3, .disk_gb = 4},
      {.host_id = 1, .cpu_mflops = 5, .ram_mb = 6, .bandwidth_kbps = 7, .disk_gb = 8},
  };
  EXPECT_EQ(attribute_column(records, Attribute::kCpuMflops),
            (std::vector<Value>{1, 5}));
  EXPECT_EQ(attribute_column(records, Attribute::kRamMb),
            (std::vector<Value>{2, 6}));
  EXPECT_EQ(attribute_column(records, Attribute::kBandwidthKbps),
            (std::vector<Value>{3, 7}));
  EXPECT_EQ(attribute_column(records, Attribute::kDiskGb),
            (std::vector<Value>{4, 8}));
}

TEST(TraceTest, FilterFaultyDropsBrokenReadings) {
  std::vector<HostRecord> records{
      {.host_id = 0, .cpu_mflops = 1000, .ram_mb = 512, .bandwidth_kbps = 1024, .disk_gb = 100},
      {.host_id = 1, .cpu_mflops = 1000, .ram_mb = -512, .bandwidth_kbps = 1024, .disk_gb = 100},
      {.host_id = 2, .cpu_mflops = 1000, .ram_mb = 512, .bandwidth_kbps = 200'000'000, .disk_gb = 100},
      {.host_id = 3, .cpu_mflops = 0, .ram_mb = 512, .bandwidth_kbps = 1024, .disk_gb = 100},
  };
  const auto filtered = filter_faulty(std::move(records));
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].host_id, 0);
}

TEST(TraceTest, CsvRoundTrip) {
  rng::Rng rng(9);
  const auto records = synthesize_trace(50, rng);
  std::stringstream stream;
  write_csv(stream, records);
  EXPECT_EQ(read_csv(stream), records);
}

TEST(TraceTest, CsvReadsHeaderlessInput) {
  std::stringstream stream("1,100,512,1024,80\n2,200,1024,2048,160\n");
  const auto records = read_csv(stream);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].ram_mb, 1024);
}

TEST(TraceTest, CsvRejectsGarbage) {
  std::stringstream stream("this,is,not,a,number\n");
  EXPECT_THROW((void)read_csv(stream), std::runtime_error);
}

TEST(TraceTest, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

TEST(TraceTest, SaveAndLoadFile) {
  rng::Rng rng(10);
  const auto records = synthesize_trace(20, rng);
  const std::string path = ::testing::TempDir() + "/adam2_trace_test.csv";
  save_trace(path, records);
  EXPECT_EQ(load_trace(path), records);
}

}  // namespace
}  // namespace adam2::data
