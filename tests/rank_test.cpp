#include <gtest/gtest.h>

#include <map>

#include "core/rank.hpp"
#include "core/system.hpp"
#include "rng/rng.hpp"

namespace adam2::core {
namespace {

Estimate uniform_estimate(double lo, double hi, double n) {
  Estimate est;
  est.min_value = lo;
  est.max_value = hi;
  est.n_estimate = n;
  est.cdf = stats::interpolate_with_extremes({}, lo, hi);
  return est;
}

TEST(RankTest, PercentileAndRankOnUniformCdf) {
  const Estimate est = uniform_estimate(0.0, 100.0, 1000.0);
  const RankInfo mid = rank_of(est, 50.0);
  EXPECT_DOUBLE_EQ(mid.percentile, 0.5);
  EXPECT_DOUBLE_EQ(mid.rank, 500.0);
  const RankInfo bottom = rank_of(est, 0.0);
  EXPECT_DOUBLE_EQ(bottom.rank, 1.0);  // Clamped to 1-based.
  const RankInfo top = rank_of(est, 100.0);
  EXPECT_DOUBLE_EQ(top.rank, 1000.0);
}

TEST(RankTest, SliceAssignmentCoversAllSlices) {
  const Estimate est = uniform_estimate(0.0, 100.0, 1000.0);
  EXPECT_EQ(slice_of(est, 5.0, 4), 0u);
  EXPECT_EQ(slice_of(est, 30.0, 4), 1u);
  EXPECT_EQ(slice_of(est, 60.0, 4), 2u);
  EXPECT_EQ(slice_of(est, 90.0, 4), 3u);
  EXPECT_EQ(slice_of(est, 100.0, 4), 3u);  // Top maps into the last slice.
}

TEST(RankTest, SliceBoundariesAreQuantiles) {
  const Estimate est = uniform_estimate(0.0, 100.0, 1000.0);
  const auto bounds = slice_boundaries(est, 4);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_NEAR(bounds[0], 25.0, 1e-9);
  EXPECT_NEAR(bounds[1], 50.0, 1e-9);
  EXPECT_NEAR(bounds[2], 75.0, 1e-9);
}

TEST(RankTest, ShapeSummarySymmetricCdf) {
  const Estimate est = uniform_estimate(0.0, 100.0, 1000.0);
  const ShapeSummary shape = summarize_shape(est);
  EXPECT_NEAR(shape.median, 50.0, 1e-9);
  EXPECT_NEAR(shape.quartile_skew, 0.0, 1e-9);
  EXPECT_NEAR(shape.upper_tail_span, 0.05, 1e-9);
}

TEST(RankTest, ShapeSummaryDetectsSkew) {
  // Mass concentrated low: F rises fast then flattens.
  Estimate est;
  est.min_value = 0.0;
  est.max_value = 1000.0;
  est.n_estimate = 100.0;
  est.cdf = stats::PiecewiseLinearCdf{
      {{0.0, 0.0}, {50.0, 0.5}, {100.0, 0.75}, {1000.0, 1.0}}};
  const ShapeSummary shape = summarize_shape(est);
  EXPECT_GT(shape.quartile_skew, 0.2);  // Right-skewed.
  // p95 = 820 on this curve, so 18% of the range is past it — a long tail.
  EXPECT_NEAR(shape.upper_tail_span, 0.18, 1e-9);
}

TEST(RankTest, EndToEndRanksMatchTrueOrdering) {
  // Run Adam2, then compare estimated ranks against the true sorted order.
  rng::Rng rng(3);
  std::vector<stats::Value> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<stats::Value>(rng.below(100000)));
  }
  SystemConfig config;
  config.engine.seed = 4;
  config.protocol.lambda = 40;
  config.protocol.heuristic = SelectionHeuristic::kLCut;
  Adam2System system(config, values);
  for (int i = 0; i < 2; ++i) system.run_instance();

  // True fractional rank of each value.
  std::vector<stats::Value> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  double worst = 0.0;
  for (host::NodeId id : system.engine().live_ids()) {
    const auto& est = *system.agent_of(id).estimate();
    const double own =
        static_cast<double>(system.engine().node(id).attribute);
    const RankInfo info = rank_of(est, own);
    const auto true_rank = static_cast<double>(
        std::upper_bound(sorted.begin(), sorted.end(),
                         system.engine().node(id).attribute) -
        sorted.begin());
    worst = std::max(worst, std::abs(info.rank - true_rank));
  }
  EXPECT_LT(worst, 25.0);  // Within ~5% of N for every node.
}

TEST(RankTest, EndToEndSlicesAreBalanced) {
  rng::Rng rng(5);
  std::vector<stats::Value> values;
  for (int i = 0; i < 600; ++i) {
    values.push_back(static_cast<stats::Value>(rng.below(100000)));
  }
  SystemConfig config;
  config.engine.seed = 6;
  config.protocol.lambda = 40;
  Adam2System system(config, values);
  for (int i = 0; i < 2; ++i) system.run_instance();

  std::map<std::size_t, int> counts;
  for (host::NodeId id : system.engine().live_ids()) {
    const auto& est = *system.agent_of(id).estimate();
    const double own =
        static_cast<double>(system.engine().node(id).attribute);
    ++counts[slice_of(est, own, 3)];
  }
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [slice, count] : counts) {
    EXPECT_NEAR(count, 200, 40) << "slice " << slice;
  }
}

}  // namespace
}  // namespace adam2::core
