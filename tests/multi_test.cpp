#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/multi.hpp"
#include "core/system.hpp"
#include "sim/overlay.hpp"
#include "stats/error_metrics.hpp"

namespace adam2::core {
namespace {

/// Builds an engine where node i holds the value set `sets[i]` (the node's
/// engine-level attribute is its first value, used only by the overlay).
sim::Engine make_multi_engine(std::vector<std::vector<stats::Value>> sets,
                              Adam2Config config, std::uint64_t seed = 1) {
  std::vector<stats::Value> attributes;
  attributes.reserve(sets.size());
  for (const auto& s : sets) attributes.push_back(s.front());
  auto shared = std::make_shared<std::vector<std::vector<stats::Value>>>(
      std::move(sets));
  sim::EngineConfig engine_config;
  engine_config.seed = seed;
  return sim::Engine(
      engine_config, std::move(attributes),
      std::make_unique<sim::StaticRandomOverlay>(8),
      [shared, config](const host::AgentContext& ctx) {
        return std::make_unique<MultiValueAdam2Agent>(
            config, (*shared)[static_cast<std::size_t>(ctx.self)]);
      },
      nullptr);
}

Adam2Config multi_config(std::size_t lambda = 10, std::uint16_t ttl = 60) {
  Adam2Config config;
  config.lambda = lambda;
  config.instance_ttl = ttl;
  config.bootstrap = BootstrapPoints::kUniform;
  return config;
}

TEST(MultiValueTest, EstimatesUnionDistribution) {
  // 50 nodes; node i holds {i+1, 100 + i + 1}: the union is 1..50 plus
  // 101..150, so F(50) = 0.5 exactly and F(100) = 0.5.
  std::vector<std::vector<stats::Value>> sets;
  for (int i = 0; i < 50; ++i) {
    sets.push_back({static_cast<stats::Value>(i + 1),
                    static_cast<stats::Value>(100 + i + 1)});
  }
  auto engine = make_multi_engine(std::move(sets), multi_config());

  auto ctx = engine.context_for(0);
  auto& initiator = dynamic_cast<Adam2Agent&>(engine.agent(0));
  initiator.start_instance(ctx);
  engine.run_rounds(61);
  // A second instance refines the bootstrap points (which only covered the
  // engine-level single attributes) across the full union range.
  auto ctx2 = engine.context_for(1);
  dynamic_cast<Adam2Agent&>(engine.agent(1)).start_instance(ctx2);
  engine.run_rounds(61);

  for (host::NodeId node : engine.live_ids()) {
    const auto& agent = dynamic_cast<const Adam2Agent&>(engine.agent(node));
    const auto& est = agent.estimate();
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(est->cdf(75.0), 0.5, 0.05);
    for (const stats::CdfPoint& p : est->points) {
      double expected = 0.0;
      for (int i = 1; i <= 50; ++i) {
        if (static_cast<double>(i) <= p.t) expected += 1.0;
        if (static_cast<double>(100 + i) <= p.t) expected += 1.0;
      }
      expected /= 100.0;
      EXPECT_NEAR(p.f, expected, 1e-6) << "at t=" << p.t;
    }
  }
}

TEST(MultiValueTest, HandlesVaryingSetSizes) {
  // Node i holds i+1 copies-worth of distinct values; the averaging must
  // weight by value count, not by node count.
  std::vector<std::vector<stats::Value>> sets;
  std::vector<stats::Value> all;
  for (int i = 0; i < 30; ++i) {
    std::vector<stats::Value> mine;
    for (int j = 0; j <= i; ++j) {
      mine.push_back(static_cast<stats::Value>(10 * i + j + 1));
    }
    all.insert(all.end(), mine.begin(), mine.end());
    sets.push_back(std::move(mine));
  }
  const stats::EmpiricalCdf truth{all};
  auto engine = make_multi_engine(std::move(sets), multi_config(20));

  auto ctx = engine.context_for(5);
  auto& initiator = dynamic_cast<Adam2Agent&>(engine.agent(5));
  initiator.start_instance(ctx);
  engine.run_rounds(61);

  const auto& est =
      dynamic_cast<const Adam2Agent&>(engine.agent(0)).estimate();
  ASSERT_TRUE(est.has_value());
  for (const stats::CdfPoint& p : est->points) {
    EXPECT_NEAR(p.f, truth(p.t), 1e-6) << "at t=" << p.t;
  }
}

TEST(MultiValueTest, ExtremesComeFromUnion) {
  std::vector<std::vector<stats::Value>> sets{{500, 600}, {-20, 30}, {1000, 2}};
  auto engine = make_multi_engine(std::move(sets), multi_config());
  auto ctx = engine.context_for(0);
  dynamic_cast<Adam2Agent&>(engine.agent(0)).start_instance(ctx);
  engine.run_rounds(61);
  const auto& est =
      dynamic_cast<const Adam2Agent&>(engine.agent(1)).estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->min_value, -20.0);
  EXPECT_DOUBLE_EQ(est->max_value, 1000.0);
}

TEST(MultiValueTest, SentinelIsStrippedFromFinalPoints) {
  std::vector<std::vector<stats::Value>> sets{{1, 2}, {3, 4}, {5, 6}};
  Adam2Config config = multi_config(5, 30);
  auto engine = make_multi_engine(std::move(sets), config);
  auto ctx = engine.context_for(0);
  dynamic_cast<Adam2Agent&>(engine.agent(0)).start_instance(ctx);
  engine.run_rounds(31);
  const auto& est =
      dynamic_cast<const Adam2Agent&>(engine.agent(2)).estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->points.size(), 5u);
  for (const stats::CdfPoint& p : est->points) {
    EXPECT_TRUE(std::isfinite(p.t));
    EXPECT_LE(p.f, 1.0 + 1e-9);
  }
}

TEST(MultiValueTest, OwnValuesAreSortedOnConstruction) {
  const MultiValueAdam2Agent agent(multi_config(), {9, 3, 7, 1});
  EXPECT_TRUE(std::is_sorted(agent.own_values().begin(),
                             agent.own_values().end()));
}

}  // namespace
}  // namespace adam2::core
