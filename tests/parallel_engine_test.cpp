// Golden replay: the sharded ParallelEngine must produce bit-identical
// results to the serial Engine for every seed at every thread count. The
// tests replay the same configuration on both engines (and on the parallel
// engine at several thread counts) and compare the full observable state:
// live membership, per-agent protocol state, attributes, and traffic
// totals — all exact equality, no tolerances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "core/evaluation.hpp"
#include "core/system.hpp"
#include "sim/cyclon.hpp"
#include "sim/engine.hpp"
#include "sim/overlay.hpp"
#include "sim/parallel_engine.hpp"
#include "wire/buffer.hpp"

namespace adam2::sim {
namespace {

/// Push-pull averaging agent: enough state to expose any divergence in
/// exchange order, loss draws, or churn trajectories.
class AveragingAgent final : public NodeAgent {
 public:
  explicit AveragingAgent(double initial) : value_(initial) {}

  [[nodiscard]] double value() const { return value_; }

  std::span<const std::byte> make_request(AgentContext& ctx) override {
    // Consume the agent stream so stream separation is exercised too.
    jitter_ = ctx.rng.uniform(0.0, 1e-12);
    scratch_ = encode(value_ + jitter_);
    return scratch_;
  }

  std::span<const std::byte> handle_request(
      AgentContext&, std::span<const std::byte> req) override {
    const double theirs = decode(req);
    scratch_ = encode(value_);
    value_ = (value_ + theirs) / 2.0;
    return scratch_;
  }

  void handle_response(AgentContext&, std::span<const std::byte> resp) override {
    value_ = (value_ + decode(resp)) / 2.0;
  }

 private:
  static std::vector<std::byte> encode(double v) {
    wire::Writer w;
    w.f64(v);
    return w.take();
  }
  static double decode(std::span<const std::byte> bytes) {
    wire::Reader r(bytes);
    return r.f64();
  }

  double value_ = 0.0;
  double jitter_ = 0.0;
  std::vector<std::byte> scratch_;  ///< Backs the returned spans.
};

/// Fault-hardened variant: tolerates corrupted/truncated payloads the way a
/// real protocol agent does — validate, then drop. Values merged under
/// faults stay finite, so serial/parallel comparisons remain bitwise.
class HardenedAgent final : public NodeAgent {
 public:
  explicit HardenedAgent(double initial) : value_(initial) {}

  [[nodiscard]] double value() const { return value_; }

  std::span<const std::byte> make_request(AgentContext& ctx) override {
    jitter_ = ctx.rng.uniform(0.0, 1e-12);
    scratch_ = encode(value_ + jitter_);
    return scratch_;
  }

  std::span<const std::byte> handle_request(
      AgentContext&, std::span<const std::byte> req) override {
    const auto theirs = decode(req);
    if (!theirs) return {};  // Corrupted request: no merge, no reply.
    scratch_ = encode(value_);
    value_ = (value_ + *theirs) / 2.0;
    return scratch_;
  }

  void handle_response(AgentContext&, std::span<const std::byte> resp) override {
    const auto theirs = decode(resp);
    if (!theirs) return;
    value_ = (value_ + *theirs) / 2.0;
  }

 private:
  static std::vector<std::byte> encode(double v) {
    wire::Writer w;
    w.f64(v);
    return w.take();
  }
  static std::optional<double> decode(std::span<const std::byte> bytes) {
    if (bytes.size() != sizeof(double)) return std::nullopt;  // Truncated.
    wire::Reader r(bytes);
    const double v = r.f64();
    // Byte flips can produce any bit pattern; cap at the plausible range.
    if (!std::isfinite(v) || v < 0.0 || v > 2000.0) return std::nullopt;
    return v;
  }

  double value_ = 0.0;
  double jitter_ = 0.0;
  std::vector<std::byte> scratch_;  ///< Backs the returned spans.
};

AgentFactory hardened_factory() {
  return [](const AgentContext& ctx) {
    return std::make_unique<HardenedAgent>(static_cast<double>(ctx.attribute));
  };
}

AgentFactory averaging_factory() {
  return [](const AgentContext& ctx) {
    return std::make_unique<AveragingAgent>(static_cast<double>(ctx.attribute));
  };
}

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<stats::Value>(i);
  return values;
}

EngineConfig stress_config() {
  EngineConfig config;
  config.seed = 0xfeed;
  config.churn_rate = 0.02;
  config.message_loss = 0.05;
  return config;
}

std::unique_ptr<Overlay> cyclon(std::size_t view = 8) {
  CyclonConfig config;
  config.view_size = view;
  config.shuffle_size = view / 2;
  return std::make_unique<CyclonOverlay>(config);
}

AttributeSource churn_values() {
  return [](rng::Rng& rng) { return static_cast<stats::Value>(rng.below(1000)); };
}

template <typename AgentT = AveragingAgent>
void expect_identical(CycleEngine& a, CycleEngine& b) {
  ASSERT_EQ(a.live_count(), b.live_count());
  ASSERT_EQ(a.nodes_ever(), b.nodes_ever());
  const auto live_a = a.live_ids();
  const auto live_b = b.live_ids();
  ASSERT_TRUE(std::equal(live_a.begin(), live_a.end(), live_b.begin(),
                         live_b.end()));
  for (NodeId id : live_a) {
    EXPECT_EQ(a.attribute_of(id), b.attribute_of(id));
    const auto* agent_a = dynamic_cast<AgentT*>(&a.agent(id));
    const auto* agent_b = dynamic_cast<AgentT*>(&b.agent(id));
    ASSERT_NE(agent_a, nullptr);
    ASSERT_NE(agent_b, nullptr);
    // Bitwise, not approximate: a different exchange order would show up
    // as a ULP-level difference in the averaged value.
    EXPECT_EQ(agent_a->value(), agent_b->value()) << "node " << id;
  }
  const TrafficStats& ta = a.total_traffic();
  const TrafficStats& tb = b.total_traffic();
  for (std::size_t c = 0; c < host::kChannelCount; ++c) {
    const auto ch = static_cast<Channel>(c);
    EXPECT_EQ(ta.on(ch).messages_sent, tb.on(ch).messages_sent);
    EXPECT_EQ(ta.on(ch).bytes_sent, tb.on(ch).bytes_sent);
    EXPECT_EQ(ta.on(ch).messages_received, tb.on(ch).messages_received);
  }
  EXPECT_EQ(ta.failed_contacts, tb.failed_contacts);
  EXPECT_EQ(ta.dropped_messages, tb.dropped_messages);
  EXPECT_EQ(ta.busy_rejections, tb.busy_rejections);
  EXPECT_EQ(ta.duplicated_messages, tb.duplicated_messages);
  EXPECT_EQ(ta.corrupted_messages, tb.corrupted_messages);
  EXPECT_EQ(ta.partitioned_messages, tb.partitioned_messages);
  EXPECT_EQ(ta.crash_restarts, tb.crash_restarts);
}

TEST(ParallelEngineTest, SingleThreadMatchesSerialEngine) {
  Engine serial(stress_config(), iota_values(300), cyclon(),
                averaging_factory(), churn_values());
  ParallelEngine parallel(stress_config(), 1, iota_values(300), cyclon(),
                          averaging_factory(), churn_values());
  serial.run_rounds(25);
  parallel.run_rounds(25);
  expect_identical(serial, parallel);
}

TEST(ParallelEngineTest, AnyThreadCountMatchesSerialEngine) {
  Engine serial(stress_config(), iota_values(300), cyclon(),
                averaging_factory(), churn_values());
  serial.run_rounds(20);
  for (std::size_t threads : {2u, 8u}) {
    ParallelEngine parallel(stress_config(), threads, iota_values(300),
                            cyclon(), averaging_factory(), churn_values());
    parallel.run_rounds(20);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelEngineTest, StaticOverlayWithoutChurnMatches) {
  EngineConfig config;
  config.seed = 77;
  Engine serial(config, iota_values(200),
                std::make_unique<StaticRandomOverlay>(6), averaging_factory(),
                nullptr);
  ParallelEngine parallel(config, 4, iota_values(200),
                          std::make_unique<StaticRandomOverlay>(6),
                          averaging_factory(), nullptr);
  serial.run_rounds(30);
  parallel.run_rounds(30);
  expect_identical(serial, parallel);
}

TEST(ParallelEngineTest, RepeatedParallelRunsAreDeterministic) {
  ParallelEngine first(stress_config(), 4, iota_values(250), cyclon(),
                       averaging_factory(), churn_values());
  ParallelEngine second(stress_config(), 4, iota_values(250), cyclon(),
                        averaging_factory(), churn_values());
  first.run_rounds(15);
  second.run_rounds(15);
  expect_identical(first, second);
}

TEST(ParallelEngineTest, EmptyPopulationRunsHarmlessly) {
  ParallelEngine engine(EngineConfig{}, 4, {},
                        std::make_unique<StaticRandomOverlay>(4),
                        averaging_factory(), nullptr);
  engine.run_rounds(3);
  EXPECT_EQ(engine.live_count(), 0u);
}

TEST(ParallelEngineTest, MoreThreadsThanNodes) {
  EngineConfig config;
  config.seed = 3;
  Engine serial(config, iota_values(3),
                std::make_unique<StaticRandomOverlay>(2), averaging_factory(),
                nullptr);
  ParallelEngine parallel(config, 8, iota_values(3),
                          std::make_unique<StaticRandomOverlay>(2),
                          averaging_factory(), nullptr);
  serial.run_rounds(10);
  parallel.run_rounds(10);
  expect_identical(serial, parallel);
}

TEST(ParallelEngineTest, ZeroThreadsMeansSerialExecution) {
  ParallelEngine engine(EngineConfig{}, 0, iota_values(10),
                        std::make_unique<StaticRandomOverlay>(3),
                        averaging_factory(), nullptr);
  EXPECT_EQ(engine.threads(), 1u);
  engine.run_rounds(2);
  EXPECT_EQ(engine.live_count(), 10u);
}

TEST(ParallelEngineTest, MetricsSinkSeesEveryRound) {
  struct Recorder final : host::MetricsSink {
    std::vector<Round> rounds;
    std::vector<std::size_t> live;
    void on_round_end(const host::RoundSnapshot& snapshot) override {
      rounds.push_back(snapshot.round);
      live.push_back(snapshot.live_count);
    }
  } recorder;
  ParallelEngine engine(stress_config(), 2, iota_values(50), cyclon(4),
                        averaging_factory(), churn_values());
  engine.add_metrics_sink(&recorder);
  engine.run_rounds(5);
  ASSERT_EQ(recorder.rounds.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(recorder.rounds[i], i);
    EXPECT_EQ(recorder.live[i], 50u);
  }
}

// Fault replay (ISSUE PR5 satellite): the same FaultPlan seed must produce
// the same fault schedule — and therefore bit-identical node state and
// fault counters — on the serial engine and the sharded engine at any
// thread count. Fault draws come from per-node streams consumed only inside
// the owning exchange unit, which is what makes this possible.
TEST(ParallelEngineTest, FaultScheduleReplaysBitIdenticallyAcrossEngines) {
  EngineConfig config = stress_config();
  config.faults.drop_rate = 0.1;
  config.faults.duplicate_rate = 0.08;
  config.faults.corrupt_rate = 0.08;
  config.faults.crash_rate = 0.01;
  config.faults.partition_count = 2;
  config.faults.partition_start = 5;
  config.faults.partition_heal_after = 6;
  config.faults.seed = 0x5eed;

  Engine serial(config, iota_values(300), cyclon(), hardened_factory(),
                churn_values());
  serial.run_rounds(25);
  EXPECT_GT(serial.total_traffic().corrupted_messages, 0u);
  EXPECT_GT(serial.total_traffic().crash_restarts, 0u);
  for (std::size_t threads : {2u, 8u}) {
    ParallelEngine parallel(config, threads, iota_values(300), cyclon(),
                            hardened_factory(), churn_values());
    parallel.run_rounds(25);
    expect_identical<HardenedAgent>(serial, parallel);
  }
}

// Full protocol stack: the Adam2 system must report bit-identical
// population errors whichever engine hosts it.
TEST(ParallelEngineTest, Adam2SystemErrorsAreBitIdenticalAcrossEngines) {
  const auto run = [](std::size_t threads) {
    core::SystemConfig config;
    config.engine.seed = 11;
    config.engine.churn_rate = 0.002;
    config.protocol.lambda = 20;
    config.protocol.instance_ttl = 20;
    config.engine_threads = threads;
    core::Adam2System system(config, iota_values(400),
                             churn_values());
    system.run_instance();
    return system.errors();
  };
  const auto serial = run(0);
  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto parallel = run(threads);
    EXPECT_EQ(serial.max_err, parallel.max_err) << threads << " threads";
    EXPECT_EQ(serial.avg_err, parallel.avg_err) << threads << " threads";
    EXPECT_EQ(serial.peers, parallel.peers) << threads << " threads";
  }
}

}  // namespace
}  // namespace adam2::sim
