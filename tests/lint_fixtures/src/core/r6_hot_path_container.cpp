// Fixture: R6 (hot-path-container) triggers plus allowed cold paths and
// non-std controls.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Agent {
  // Node-based maps in the gossip hot path: one heap node per instance, one
  // cache miss per instance per traversal.
  std::unordered_map<std::uint64_t, double> active;   // line 13: R6
  std::map<std::uint64_t, double> pending;            // line 14: R6

  double drain() {
    // Locals count too — the declaration is the allocation pattern.
    std::unordered_map<std::uint64_t, double> scratch;  // line 18: R6
    double sum = 0.0;
    for (double v : series) sum += v;
    (void)scratch;
    return sum;
  }

  // Cold path: finalisation bookkeeping runs once per instance lifetime,
  // not once per round — the annotation records the reviewed exception.
  std::map<std::uint64_t, double> completed;  // adam2-lint: allow(hot-path-container)

  // Non-std types named like maps are someone else's business.
  struct map_view {};
  map_view view;

  std::vector<double> series;
};

}  // namespace fixture
