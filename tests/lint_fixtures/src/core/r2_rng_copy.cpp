// Fixture: R2 (rng-copy) triggers and the legitimate shapes that must not
// fire. Line numbers are asserted in tests/lint_test.cpp.
#include <cstdint>

namespace rng {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  Rng split(std::uint64_t key) { return Rng(state_ ^ key); }
  std::uint64_t next() { return ++state_; }

 private:
  std::uint64_t state_;
};
}  // namespace rng

namespace fixture {

double bad_by_value(rng::Rng rng) {          // line 19: by-value parameter
  return static_cast<double>(rng.next());
}

void bad_unnamed(rng::Rng, int);             // line 23: unnamed by-value

double bad_copy_local(rng::Rng& source) {
  rng::Rng fork = source;                    // line 26: copy-initialised fork
  return static_cast<double>(fork.next());
}

// Negative controls.
double ok_reference(rng::Rng& rng) { return static_cast<double>(rng.next()); }
double ok_move(rng::Rng&& rng) { return static_cast<double>(rng.next()); }
double ok_pointer(rng::Rng* rng) { return static_cast<double>(rng->next()); }
double ok_factory(rng::Rng& rng) {
  rng::Rng child = rng.split(7);  // fresh stream from a factory call
  return static_cast<double>(child.next());
}
struct Owner {
  rng::Rng stream{11};  // owning member
};

}  // namespace fixture
