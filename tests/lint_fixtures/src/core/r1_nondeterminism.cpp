// Fixture: every R1 (nondeterminism) trigger. Expected hits are asserted by
// line number in tests/lint_test.cpp — keep the layout stable.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned bad_entropy() {
  std::random_device device;  // line 11: entropy source
  return device();
}

int bad_rand() {
  std::srand(42);            // line 16: hidden global state
  return std::rand();        // line 17
}

long bad_wall_time() {
  return std::time(nullptr);  // line 21: wall clock
}

long bad_clock_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // 25
}

// Negative controls: member access and non-call uses must NOT fire.
struct Msg {
  double time = 0.0;
};
double ok_member(const Msg& m) { return m.time; }
struct Timer {
  long time() const { return 0; }
};
long ok_method(const Timer& t) { return t.time(); }

}  // namespace fixture
