// Fixture: R4 (unordered-iter) triggers plus ordered-container controls.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Wire {
  // The declarations themselves are R6 territory; this fixture pins R4, so
  // the container rule is annotated away.
  std::unordered_map<std::uint64_t, double> active;  // adam2-lint: allow(hot-path-container)
  std::unordered_set<std::uint64_t> seen;
  std::map<std::uint64_t, double> ordered;  // adam2-lint: allow(hot-path-container)
  std::vector<double> series;

  double bad_range_for() const {
    double sum = 0.0;
    for (const auto& [id, value] : active) {  // line 18: bucket order
      sum += value;
    }
    return sum;
  }

  std::uint64_t bad_begin() const {
    return *seen.begin();  // line 25: bucket order via begin()
  }

  double ok_ordered() const {
    double sum = 0.0;
    for (const auto& [id, value] : ordered) {  // std::map: deterministic
      sum += value;
    }
    for (double v : series) sum += v;  // vector: insertion order
    return sum;
  }

  double ok_lookup(std::uint64_t id) const {
    auto it = active.find(id);  // point lookup, not iteration
    return it == active.end() ? 0.0 : it->second;
  }
};

}  // namespace fixture
