// Fixture: R5 (confinement) triggers — I/O and concurrency in what the
// linter classifies as a src/core/ library TU.
#include <cstdio>
#include <iostream>
#include <mutex>  // line 5: concurrency header in core

namespace fixture {

std::mutex guard;  // line 9: concurrency primitive in core

void bad_io(double value) {
  std::cout << value << "\n";   // line 12: library writes to stdout
  std::printf("%f\n", value);   // line 13
}

void bad_lock() {
  std::lock_guard lock(guard);  // line 17
}

}  // namespace fixture
