// Fixture: suppression directives. Every would-be violation here is
// annotated, so the file must lint clean — except the final one, which
// proves an allow() for rule A does not silence rule B.
#include <random>

// The whole file opts out of the confinement rule (imagine a sanctioned
// substrate TU, like src/sim/parallel_engine.cpp in the real tree):
// adam2-lint: allow-file(confinement)
#include <mutex>
#include <iostream>

namespace fixture {

unsigned trailing_allow() {
  std::random_device device;  // adam2-lint: allow(nondeterminism)
  return device();
}

unsigned preceding_allow() {
  // Annotation on the line above also covers the statement:
  // adam2-lint: allow(nondeterminism)
  std::random_device device;
  return device();
}

void covered_by_allow_file() {
  std::mutex m;
  std::lock_guard lock(m);
  std::cout << "substrate log\n";
}

unsigned wrong_rule_does_not_silence() {
  std::random_device device;  // adam2-lint: allow(confinement) -- line 33 still fires
  return device();
}

}  // namespace fixture
