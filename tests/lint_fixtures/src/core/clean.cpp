// Fixture: negative control. Idiomatic library code that must produce zero
// diagnostics under every rule.
#include <cstdint>
#include <utility>
#include <vector>

#include "stats/sketch.hpp"  // downward include: core (3) -> stats (1)

namespace fixture {

struct Series {
  // Insertion-order flat storage: the idiomatic hot-path layout (R6 rejects
  // node-based std:: maps here).
  std::vector<std::pair<std::uint64_t, double>> by_round;
  std::vector<double> values;

  double sum() const {
    double total = 0.0;
    for (const auto& [round, value] : by_round) total += value;
    for (double v : values) total += v;
    return total;
  }
};

}  // namespace fixture
