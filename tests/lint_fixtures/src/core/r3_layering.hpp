// Fixture: R3 (layering). A src/core/ header reaching up the DAG into sim/
// and host/. Downward and same-layer includes are the negative controls.
#pragma once

#include "sim/engine.hpp"     // line 5: core (3) -> sim (5): violation
#include "host/agent.hpp"     // line 6: core (3) -> host (4): violation
#include "stats/sketch.hpp"   // core (3) -> stats (1): fine
#include "core/estimate.hpp"  // core (3) -> core (3): fine
#include <vector>             // system include: never a layering edge
