// Fixture: R3 (layering) for the observability layer. src/obs/ sits beside
// host/ (rank 4): engines above record *into* it, so an obs/ file including
// sim/ or runtime/ inverts the dependency. Downward includes are the
// negative controls.
#pragma once

#include "sim/engine.hpp"       // line 7: obs (4) -> sim (5): violation
#include "runtime/cluster.hpp"  // line 8: obs (4) -> runtime (5): violation
#include "host/types.hpp"       // obs (4) -> host (4): same rank, fine
#include "stats/sketch.hpp"     // obs (4) -> stats (1): fine
#include <vector>               // system include: never a layering edge
