// Fixture: negative control for the obs/ layer rules. Downward and
// same-rank includes, no concurrency primitives, no stdio — the shape every
// real src/obs/ file must keep (the Recorder is single-threaded by contract
// and exporters write through buffered file APIs, not printf).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/types.hpp"
#include "stats/sketch.hpp"

namespace adam2::obs {

struct FixtureEvent {
  std::uint64_t seq = 0;
  host::NodeId node = 0;
};

}  // namespace adam2::obs
