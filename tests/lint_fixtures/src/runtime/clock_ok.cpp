// Fixture: the R1 wall-clock whitelist. Files classified under src/runtime/
// host real deployments and may read real time; *_clock::now() must NOT fire
// here. (Entropy is still banned everywhere — negative control at the end.)
#include <chrono>

namespace fixture {

long whitelisted_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // ok
}

}  // namespace fixture
