// Unit tests for the shared host substrate: node registry, bootstrap
// policy, churn arithmetic, the exchange-atomicity session, and the
// thread-safe traffic ledger.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "host/bootstrap.hpp"
#include "host/churn.hpp"
#include "host/exchange.hpp"
#include "host/ledger.hpp"
#include "host/registry.hpp"

namespace adam2::host {
namespace {

// ----------------------------------------------------------------- registry

TEST(NodeTableTest, SpawnAssignsMonotoneIdsAndDistinctStreams) {
  NodeTable table;
  rng::Rng seed_rng(7);
  // spawn() references are invalidated by the next spawn; keep only ids.
  const NodeId a = table.spawn(1.0, 0, seed_rng).id;
  const NodeId b = table.spawn(2.0, 0, seed_rng).id;
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(table.live_count(), 2u);
  EXPECT_EQ(table.size(), 2u);
  // Agent and control streams must be decorrelated per node. The copies are
  // deliberate: the test probes the streams without advancing the table's.
  rng::Rng agent = table.at(a).rng;      // adam2-lint: allow(rng-copy)
  rng::Rng pick = table.at(a).pick_rng;  // adam2-lint: allow(rng-copy)
  EXPECT_NE(agent(), pick());
}

TEST(NodeTableTest, KillRemovesFromLiveAndKeepsSlot) {
  NodeTable table;
  rng::Rng seed_rng(7);
  for (int i = 0; i < 4; ++i) table.spawn(i, 0, seed_rng);
  table.kill(1);
  EXPECT_EQ(table.live_count(), 3u);
  EXPECT_FALSE(table.is_live(1));
  EXPECT_TRUE(table.contains(1));
  // Remaining live ids are exactly {0, 2, 3}.
  std::set<NodeId> live(table.live_ids().begin(), table.live_ids().end());
  EXPECT_EQ(live, (std::set<NodeId>{0, 2, 3}));
  // Spawning after a kill continues the monotone id sequence.
  EXPECT_EQ(table.spawn(9, 1, seed_rng).id, 4u);
}

TEST(NodeTableTest, KillingDeadNodeIsIdempotent) {
  NodeTable table;
  rng::Rng seed_rng(7);
  table.spawn(1, 0, seed_rng);
  table.kill(0);
  table.kill(0);
  EXPECT_EQ(table.live_count(), 0u);
}

TEST(NodeTableTest, RandomLiveThrowsWhenEmpty) {
  NodeTable table;
  rng::Rng rng(1);
  EXPECT_THROW((void)table.random_live(rng), std::runtime_error);
}

TEST(NodeTableTest, RandomLiveOnlyReturnsLiveNodes) {
  NodeTable table;
  rng::Rng seed_rng(7);
  for (int i = 0; i < 10; ++i) table.spawn(i, 0, seed_rng);
  for (NodeId id : {NodeId{2}, NodeId{5}, NodeId{7}}) table.kill(id);
  rng::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(table.is_live(table.random_live(rng)));
  }
}

TEST(NodeTableTest, SlotOfIsStableAcrossKills) {
  NodeTable table;
  rng::Rng seed_rng(7);
  for (int i = 0; i < 5; ++i) table.spawn(i, 0, seed_rng);
  const std::size_t slot = table.slot_of(4);
  table.kill(0);
  table.kill(2);
  EXPECT_EQ(table.slot_of(4), slot);
  EXPECT_EQ(table.by_slot(slot).id, 4u);
}

// -------------------------------------------------------------------- churn

TEST(ChurnTest, StochasticCountIntegerPartIsExact) {
  rng::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(stochastic_count(3.0, rng), 3u);
  }
}

TEST(ChurnTest, StochasticCountFractionAveragesOut) {
  rng::Rng rng(1);
  std::size_t total = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) total += stochastic_count(0.25, rng);
  EXPECT_NEAR(static_cast<double>(total) / kTrials, 0.25, 0.02);
}

// ---------------------------------------------------------------- exchange

TEST(ExchangeSessionTest, ArmedSessionIsBusyUntilClosed) {
  ExchangeSession session;
  EXPECT_FALSE(session.busy());
  const auto token = session.next_token();
  session.arm(token, std::chrono::seconds(60));
  EXPECT_TRUE(session.busy());
  EXPECT_TRUE(session.close_if_current(token));
  EXPECT_FALSE(session.busy());
}

TEST(ExchangeSessionTest, StaleTokenIsRejected) {
  ExchangeSession session;
  const auto old_token = session.next_token();
  session.arm(old_token, std::chrono::seconds(60));
  const auto new_token = session.next_token();
  session.arm(new_token, std::chrono::seconds(60));
  // The old exchange was superseded; merging its response would break
  // exchange atomicity.
  EXPECT_FALSE(session.close_if_current(old_token));
  EXPECT_TRUE(session.busy());
  EXPECT_TRUE(session.close_if_current(new_token));
}

TEST(ExchangeSessionTest, DeadlineExpiryUnblocksInitiation) {
  ExchangeSession session;
  const auto token = session.next_token();
  session.arm(token, std::chrono::microseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(session.busy());
  // A late response for the expired exchange still matches until the
  // session is explicitly abandoned or re-armed.
  EXPECT_TRUE(session.close_if_current(token));
}

TEST(ExchangeSessionTest, AbandonDropsTheOpenExchange) {
  ExchangeSession session;
  const auto token = session.next_token();
  session.arm(token, std::chrono::seconds(60));
  session.abandon();
  EXPECT_FALSE(session.busy());
  EXPECT_FALSE(session.close_if_current(token));
}

// ------------------------------------------------------------------ ledger

TEST(SharedTrafficLedgerTest, CountsMessagesOnBothDirections) {
  SharedTrafficLedger ledger;
  ledger.record_message(Channel::kAggregation, 100);
  ledger.record_message(Channel::kOverlay, 40);
  ledger.count_failed_contact();
  ledger.count_dropped_message();
  ledger.count_busy_rejection();
  const TrafficStats stats = ledger.snapshot();
  EXPECT_EQ(stats.on(Channel::kAggregation).messages_sent, 1u);
  EXPECT_EQ(stats.on(Channel::kAggregation).bytes_sent, 100u);
  EXPECT_EQ(stats.on(Channel::kAggregation).messages_received, 1u);
  EXPECT_EQ(stats.on(Channel::kOverlay).bytes_sent, 40u);
  EXPECT_EQ(stats.failed_contacts, 1u);
  EXPECT_EQ(stats.dropped_messages, 1u);
  EXPECT_EQ(stats.busy_rejections, 1u);
}

TEST(SharedTrafficLedgerTest, ConcurrentRecordsAllLand) {
  SharedTrafficLedger ledger;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger] {
      for (int i = 0; i < kPerThread; ++i) {
        ledger.record_message(Channel::kAggregation, 10);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const TrafficStats stats = ledger.snapshot();
  EXPECT_EQ(stats.on(Channel::kAggregation).messages_sent,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.on(Channel::kAggregation).bytes_sent,
            static_cast<std::uint64_t>(kThreads) * kPerThread * 10);
}

TEST(SharedTrafficLedgerTest, MergeFoldsNodeCounters) {
  SharedTrafficLedger ledger;
  TrafficStats local;
  local.on(Channel::kAggregation).add_send(64);
  ++local.failed_contacts;
  ledger.merge(local);
  ledger.merge(local);
  const TrafficStats stats = ledger.snapshot();
  EXPECT_EQ(stats.on(Channel::kAggregation).bytes_sent, 128u);
  EXPECT_EQ(stats.failed_contacts, 2u);
}

// --------------------------------------------------------------- bootstrap

/// Overlay whose gossip targets are a fixed list, used to steer the
/// bootstrap retry loop onto dead contacts.
class FixedTargetOverlay final : public Overlay {
 public:
  explicit FixedTargetOverlay(std::vector<NodeId> targets)
      : targets_(std::move(targets)) {}

  void add_node(NodeId, const HostView&, rng::Rng&) override {}
  void remove_node(NodeId) override {}
  [[nodiscard]] std::optional<NodeId> pick_gossip_target(
      NodeId, rng::Rng& rng) const override {
    if (targets_.empty()) return std::nullopt;
    return targets_[rng.below(targets_.size())];
  }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId) const override {
    return targets_;
  }
  [[nodiscard]] std::vector<stats::Value> known_attribute_values(
      NodeId, const HostView&) const override {
    return {};
  }

 private:
  std::vector<NodeId> targets_;
};

/// HostView over a bare NodeTable, as the engines implement it.
class TableHost final : public HostView {
 public:
  TableHost(NodeTable& table, TrafficStats& totals)
      : table_(table), totals_(totals) {}

  [[nodiscard]] bool is_live(NodeId id) const override {
    return table_.is_live(id);
  }
  [[nodiscard]] stats::Value attribute_of(NodeId id) const override {
    return table_.attribute_of(id);
  }
  [[nodiscard]] Round round() const override { return 0; }
  [[nodiscard]] std::span<const NodeId> live_ids() const override {
    return table_.live_ids();
  }
  void record_traffic(NodeId sender, NodeId receiver, Channel channel,
                      std::size_t bytes) override {
    table_.record_traffic(sender, receiver, channel, bytes, totals_);
  }

 private:
  NodeTable& table_;
  TrafficStats& totals_;
};

/// Agent that always wants a bootstrap and shares state when it has any.
class BootstrappingAgent final : public NodeAgent {
 public:
  explicit BootstrappingAgent(bool has_state) : has_state_(has_state) {}

  [[nodiscard]] bool bootstrapped() const { return bootstrapped_; }

  std::span<const std::byte> make_request(AgentContext&) override { return {}; }
  std::span<const std::byte> handle_request(AgentContext&,
                                            std::span<const std::byte>) override {
    return {};
  }
  std::vector<std::byte> make_bootstrap_request(AgentContext&) override {
    return {std::byte{1}};
  }
  std::vector<std::byte> handle_bootstrap_request(
      AgentContext&, std::span<const std::byte>) override {
    if (!has_state_) return {};
    return {std::byte{2}, std::byte{3}};
  }
  bool handle_bootstrap_response(AgentContext&,
                                 std::span<const std::byte>) override {
    bootstrapped_ = true;
    return true;
  }

 private:
  bool has_state_;
  bool bootstrapped_ = false;
};

TEST(BootstrapTest, AllContactsDeadCountsEveryAttempt) {
  NodeTable table;
  TrafficStats totals;
  TableHost host(table, totals);
  rng::Rng seed_rng(5);
  std::vector<NodeId> contacts;
  for (int i = 0; i < 4; ++i) {
    Node& contact = table.spawn(i, 0, seed_rng);
    contact.agent = std::make_unique<BootstrappingAgent>(true);
    contacts.push_back(contact.id);
    table.kill(contact.id);
  }
  Node& joiner = table.spawn(9, 1, seed_rng);
  joiner.agent = std::make_unique<BootstrappingAgent>(false);
  FixedTargetOverlay overlay(contacts);

  bootstrap_joiner(joiner, table, overlay, host, 1, totals);

  const auto& agent = dynamic_cast<BootstrappingAgent&>(*joiner.agent);
  EXPECT_FALSE(agent.bootstrapped());
  // One failed contact per retry, on the joiner and in the totals; no
  // bootstrap bytes ever moved.
  EXPECT_EQ(joiner.traffic.failed_contacts, 4u);
  EXPECT_EQ(totals.failed_contacts, 4u);
  EXPECT_EQ(totals.on(Channel::kBootstrap).messages_sent, 0u);
}

TEST(BootstrapTest, LiveContactTransfersStateAndStopsRetrying) {
  NodeTable table;
  TrafficStats totals;
  TableHost host(table, totals);
  rng::Rng seed_rng(5);
  table.reserve(2);
  const NodeId contact = table.spawn(1, 0, seed_rng).id;
  table.at(contact).agent = std::make_unique<BootstrappingAgent>(true);
  Node& joiner = table.spawn(9, 1, seed_rng);
  joiner.agent = std::make_unique<BootstrappingAgent>(false);
  FixedTargetOverlay overlay({contact});

  bootstrap_joiner(joiner, table, overlay, host, 1, totals);

  const auto& agent = dynamic_cast<BootstrappingAgent&>(*joiner.agent);
  EXPECT_TRUE(agent.bootstrapped());
  // Request plus response, both on the bootstrap channel.
  EXPECT_EQ(totals.on(Channel::kBootstrap).messages_sent, 2u);
  EXPECT_EQ(totals.on(Channel::kBootstrap).bytes_sent, 3u);
  EXPECT_EQ(totals.failed_contacts, 0u);
}

TEST(BootstrapTest, EmptyHandedContactsAreRetriedWithoutFailedContact) {
  NodeTable table;
  TrafficStats totals;
  TableHost host(table, totals);
  rng::Rng seed_rng(5);
  table.reserve(2);
  const NodeId contact = table.spawn(1, 0, seed_rng).id;
  table.at(contact).agent =
      std::make_unique<BootstrappingAgent>(/*has_state=*/false);
  Node& joiner = table.spawn(9, 1, seed_rng);
  joiner.agent = std::make_unique<BootstrappingAgent>(false);
  FixedTargetOverlay overlay({contact});

  bootstrap_joiner(joiner, table, overlay, host, 1, totals);

  const auto& agent = dynamic_cast<BootstrappingAgent&>(*joiner.agent);
  EXPECT_FALSE(agent.bootstrapped());
  // The contact was reachable (no failed contact) but had nothing to share:
  // one request per attempt, never a response.
  EXPECT_EQ(totals.failed_contacts, 0u);
  EXPECT_EQ(totals.on(Channel::kBootstrap).messages_sent,
            static_cast<std::uint64_t>(BootstrapPolicy{}.attempts));
}

}  // namespace
}  // namespace adam2::host
