// Unit tests for the deterministic fault-injection layer (DESIGN.md §8).
//
// The properties under test are the ones the engines rely on: exact
// replayability of fault schedules from (plan seed, node id), a draw count
// that never depends on the outcome, zero stream consumption when disabled
// (the golden-replay guarantee), corruption that never returns the original
// bytes, and partitions that are stable, stateless, and heal on schedule.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "host/fault.hpp"
#include "rng/rng.hpp"

namespace adam2::host {
namespace {

FaultPlan lossy_plan() {
  FaultPlan plan;
  plan.drop_rate = 0.3;
  plan.duplicate_rate = 0.2;
  plan.corrupt_rate = 0.2;
  plan.seed = 42;
  return plan;
}

std::vector<std::byte> payload_bytes(std::size_t n) {
  std::vector<std::byte> bytes(n);
  for (std::size_t i = 0; i < n; ++i) bytes[i] = static_cast<std::byte>(i);
  return bytes;
}

TEST(FaultPlanTest, DefaultPlanIsDisabled) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.message_faults());
}

TEST(FaultPlanTest, EachFaultKindEnablesThePlan) {
  FaultPlan drop;
  drop.drop_rate = 0.1;
  EXPECT_TRUE(drop.enabled());
  EXPECT_TRUE(drop.message_faults());

  FaultPlan crash;
  crash.crash_rate = 0.1;
  EXPECT_TRUE(crash.enabled());
  EXPECT_FALSE(crash.message_faults());

  FaultPlan partition;
  partition.partition_count = 2;
  EXPECT_TRUE(partition.enabled());
  EXPECT_FALSE(partition.message_faults());

  // A delay rate without a bound can never fire, so it must not count as a
  // message fault (it would burn fate draws for nothing).
  FaultPlan idle_delay;
  idle_delay.delay_rate = 0.5;
  EXPECT_FALSE(idle_delay.message_faults());
  idle_delay.max_delay = 0.25;
  EXPECT_TRUE(idle_delay.message_faults());
}

// The golden-replay guarantee: a disabled injector answers "no fault" to
// every query without consuming a single draw, so fault-aware engines are
// bit-identical to the pre-fault engines at zero rates.
TEST(FaultInjectorTest, DisabledInjectorConsumesNoDraws) {
  const FaultInjector injector;  // Default: disabled.
  rng::Rng stream(7);
  rng::Rng control(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.message_fate(stream), MessageFate::kDeliver);
    EXPECT_EQ(injector.extra_delay(stream), 0.0);
    EXPECT_FALSE(injector.crashes(stream));
  }
  EXPECT_EQ(stream(), control());
}

// Parallel determinism depends on the fate draw count being constant: if a
// drop consumed fewer draws than a delivery, a node's later fates would
// depend on its earlier ones in a schedule-dependent way.
TEST(FaultInjectorTest, FateDrawCountIsOutcomeIndependent) {
  const FaultInjector injector(lossy_plan());
  rng::Rng stream(9);
  rng::Rng control(9);
  for (int i = 0; i < 50; ++i) {
    (void)injector.message_fate(stream);
    (void)control.uniform();
    (void)control.uniform();
    (void)control.uniform();
  }
  EXPECT_EQ(stream(), control());
}

TEST(FaultInjectorTest, ScheduleReplaysExactly) {
  std::vector<MessageFate> first;
  std::vector<MessageFate> second;
  for (auto* fates : {&first, &second}) {
    const FaultInjector injector(lossy_plan());
    rng::Rng stream = injector.node_stream(17);
    for (int i = 0; i < 1000; ++i) fates->push_back(injector.message_fate(stream));
  }
  EXPECT_EQ(first, second);
  // The schedule must actually exercise the taxonomy at these rates.
  const std::set<MessageFate> distinct(first.begin(), first.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(FaultInjectorTest, DistinctNodesAndSeedsGetDistinctStreams) {
  const FaultInjector injector(lossy_plan());
  EXPECT_NE(injector.node_stream(1)(), injector.node_stream(2)());

  FaultPlan reseeded = lossy_plan();
  reseeded.seed = 43;
  const FaultInjector other(reseeded);
  EXPECT_NE(injector.node_stream(1)(), other.node_stream(1)());
}

TEST(FaultInjectorTest, CorruptionNeverReturnsTheOriginalBytes) {
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  const FaultInjector injector(plan);
  rng::Rng stream = injector.node_stream(3);
  const std::vector<std::byte> original = payload_bytes(64);
  bool saw_truncation = false;
  bool saw_flip = false;
  for (int i = 0; i < 500; ++i) {
    const std::vector<std::byte> mangled = injector.corrupt(original, stream);
    ASSERT_LE(mangled.size(), original.size());
    EXPECT_NE(mangled, original);
    if (mangled.size() < original.size()) {
      saw_truncation = true;
    } else {
      saw_flip = true;
    }
  }
  EXPECT_TRUE(saw_truncation);
  EXPECT_TRUE(saw_flip);
}

TEST(FaultInjectorTest, CorruptingAnEmptyPayloadStaysEmpty) {
  const FaultInjector injector(lossy_plan());
  rng::Rng stream = injector.node_stream(4);
  EXPECT_TRUE(injector.corrupt({}, stream).empty());
}

TEST(FaultInjectorTest, PartitionAssignmentIsStableStatelessAndInRange) {
  FaultPlan plan;
  plan.partition_count = 3;
  const FaultInjector injector(plan);
  std::set<std::size_t> seen;
  for (NodeId id = 0; id < 64; ++id) {
    const std::size_t p = injector.partition_of(id);
    EXPECT_LT(p, 3u);
    EXPECT_EQ(p, injector.partition_of(id));  // Stable.
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 3u);  // All partitions populated at this size.
}

TEST(FaultInjectorTest, PartitionsHealAfterTheConfiguredWindow) {
  FaultPlan plan;
  plan.partition_count = 2;
  plan.partition_start = 10;
  plan.partition_heal_after = 5;
  const FaultInjector injector(plan);

  // Find a cross-partition pair and a same-partition pair.
  NodeId across = 1;
  while (injector.partition_of(across) == injector.partition_of(0)) ++across;
  NodeId along = across + 1;
  while (injector.partition_of(along) != injector.partition_of(0)) ++along;

  EXPECT_FALSE(injector.partition_active(9));
  EXPECT_TRUE(injector.partition_active(10));
  EXPECT_TRUE(injector.partition_active(14));
  EXPECT_FALSE(injector.partition_active(15));  // Healed.

  EXPECT_FALSE(injector.partitioned(0, across, 9));
  EXPECT_TRUE(injector.partitioned(0, across, 12));
  EXPECT_TRUE(injector.partitioned(across, 0, 12));  // Symmetric.
  EXPECT_FALSE(injector.partitioned(0, across, 15));
  EXPECT_FALSE(injector.partitioned(0, along, 12));  // Same side.
}

TEST(FaultInjectorTest, PartitionWithZeroHealNeverHeals) {
  FaultPlan plan;
  plan.partition_count = 2;
  plan.partition_start = 3;
  plan.partition_heal_after = 0;
  const FaultInjector injector(plan);
  EXPECT_FALSE(injector.partition_active(2));
  EXPECT_TRUE(injector.partition_active(3));
  EXPECT_TRUE(injector.partition_active(1u << 30));
}

TEST(FaultInjectorTest, CrashRateExtremes) {
  FaultPlan always;
  always.crash_rate = 1.0;
  FaultPlan never;  // crash_rate 0 → no draws either.
  const FaultInjector always_injector(always);
  const FaultInjector never_injector(never);
  rng::Rng stream(11);
  rng::Rng control(11);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(always_injector.crashes(stream));
    EXPECT_FALSE(never_injector.crashes(stream));
  }
  // Only the enabled injector drew (one draw per query).
  for (int i = 0; i < 20; ++i) (void)control.uniform();
  EXPECT_EQ(stream(), control());
}

TEST(FaultInjectorTest, ExtraDelayIsBoundedAndZeroWhenDisabled) {
  FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.max_delay = 0.5;
  const FaultInjector injector(plan);
  rng::Rng stream = injector.node_stream(5);
  for (int i = 0; i < 200; ++i) {
    const double delay = injector.extra_delay(stream);
    EXPECT_GT(delay, 0.0);
    EXPECT_LE(delay, 0.5);
  }
  const FaultInjector disabled;
  EXPECT_EQ(disabled.extra_delay(stream), 0.0);
}

}  // namespace
}  // namespace adam2::host
