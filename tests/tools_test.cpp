#include <gtest/gtest.h>

#include "../tools/flags.hpp"

namespace adam2::tools {
namespace {

Flags parse(std::vector<std::string> args) {
  std::vector<char*> argv{const_cast<char*>("prog")};
  for (auto& a : args) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesNameValuePairs) {
  auto flags = parse({"--nodes", "500", "--attribute", "ram_mb"});
  EXPECT_EQ(flags.get_int("nodes", 0), 500);
  EXPECT_EQ(flags.get("attribute", ""), "ram_mb");
}

TEST(FlagsTest, ParsesEqualsSyntax) {
  auto flags = parse({"--churn=0.01"});
  EXPECT_DOUBLE_EQ(flags.get_double("churn", 0.0), 0.01);
}

TEST(FlagsTest, SwitchesHaveEmptyValue) {
  auto flags = parse({"--help", "--nodes", "5"});
  EXPECT_TRUE(flags.get_bool("help"));
  EXPECT_EQ(flags.get_int("nodes", 0), 5);
}

TEST(FlagsTest, TrailingSwitchWorks) {
  auto flags = parse({"--nodes", "5", "--verbose"});
  EXPECT_TRUE(flags.has("verbose"));
}

TEST(FlagsTest, FallbacksApplyWhenAbsent) {
  auto flags = parse({});
  EXPECT_EQ(flags.get_int("nodes", 123), 123);
  EXPECT_DOUBLE_EQ(flags.get_double("churn", 0.5), 0.5);
  EXPECT_EQ(flags.get("name", "dflt"), "dflt");
  EXPECT_FALSE(flags.has("anything"));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  auto flags = parse({"generate", "--nodes", "5", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "generate");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagsTest, BadIntegerThrows) {
  auto flags = parse({"--nodes", "abc"});
  EXPECT_THROW((void)flags.get_int("nodes", 0), std::invalid_argument);
}

TEST(FlagsTest, BadDoubleThrows) {
  auto flags = parse({"--churn", "zzz"});
  EXPECT_THROW((void)flags.get_double("churn", 0.0), std::invalid_argument);
}

TEST(FlagsTest, RejectUnknownCatchesTypos) {
  auto flags = parse({"--nodez", "5"});
  (void)flags.get_int("nodes", 0);
  EXPECT_THROW(flags.reject_unknown(), std::invalid_argument);
}

TEST(FlagsTest, RejectUnknownPassesWhenAllSeen) {
  auto flags = parse({"--nodes", "5"});
  (void)flags.get_int("nodes", 0);
  EXPECT_NO_THROW(flags.reject_unknown());
}

TEST(FlagsTest, NegativeNumberIsAValueNotAFlag) {
  auto flags = parse({"--offset", "-5"});
  EXPECT_EQ(flags.get_int("offset", 0), -5);
}

}  // namespace
}  // namespace adam2::tools
