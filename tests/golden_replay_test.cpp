// Golden determinism fixtures: seeded small-N runs whose end-state digest
// (agent bytes + per-node and global traffic totals) is pinned to constants
// checked in here. The digests were captured from the pre-exchange-fabric
// engines, so any refactor that silently perturbs draw order, stream
// assignment, or exchange semantics fails these tests loudly instead of only
// showing up in replay-pair comparisons (which would drift together).
//
// The digest covers everything the replay-pair tests compare — live
// membership, attributes, bitwise agent state, per-node traffic, global
// counters — folded through FNV-1a so a single u64 mismatch pinpoints a
// divergence. Scenarios cover the serial engine, the sharded engine at 1 and
// 8 threads, and the event-driven engine, each with faults disabled and
// under a non-trivial fault plan.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "sim/async_engine.hpp"
#include "sim/cyclon.hpp"
#include "sim/engine.hpp"
#include "sim/overlay.hpp"
#include "sim/parallel_engine.hpp"
#include "wire/buffer.hpp"

namespace adam2::sim {
namespace {

// -- Digest ------------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, double v) { mix(h, std::bit_cast<std::uint64_t>(v)); }

void mix_traffic(std::uint64_t& h, const TrafficStats& t) {
  for (std::size_t c = 0; c < host::kChannelCount; ++c) {
    const auto& ch = t.channels[c];
    mix(h, ch.messages_sent);
    mix(h, ch.bytes_sent);
    mix(h, ch.messages_received);
    mix(h, ch.bytes_received);
  }
  mix(h, t.failed_contacts);
  mix(h, t.dropped_messages);
  mix(h, t.busy_rejections);
  mix(h, t.duplicated_messages);
  mix(h, t.corrupted_messages);
  mix(h, t.partitioned_messages);
  mix(h, t.delayed_messages);
  mix(h, t.crash_restarts);
  mix(h, t.rejected_messages);
}

// -- Test agents (identical shape to the replay-pair tests) ------------------

/// Fault-tolerant push-pull averaging agent: validates payloads before
/// merging, so digests stay finite under corruption while still exposing any
/// divergence in exchange order, loss draws, or churn trajectories.
class DigestAgent final : public NodeAgent {
 public:
  explicit DigestAgent(double initial) : value_(initial) {}

  [[nodiscard]] double value() const { return value_; }

  std::span<const std::byte> make_request(AgentContext& ctx) override {
    jitter_ = ctx.rng.uniform(0.0, 1e-12);  // Exercises the agent stream.
    scratch_ = encode(value_ + jitter_);
    return scratch_;
  }

  std::span<const std::byte> handle_request(
      AgentContext&, std::span<const std::byte> req) override {
    const auto theirs = decode(req);
    if (!theirs) return {};  // Corrupted request: no merge, no reply.
    scratch_ = encode(value_);
    value_ = (value_ + *theirs) / 2.0;
    return scratch_;
  }

  void handle_response(AgentContext&, std::span<const std::byte> resp) override {
    const auto theirs = decode(resp);
    if (!theirs) return;
    value_ = (value_ + *theirs) / 2.0;
  }

  // Checkpoint hooks: `value_` is the agent's entire persistent state
  // (jitter and scratch are per-exchange), so the golden-resume fixtures
  // below can snapshot mid-run and still land on the pinned digests.
  [[nodiscard]] bool save_state(wire::Writer& out) const override {
    out.f64(value_);
    return true;
  }
  [[nodiscard]] bool restore_state(wire::Reader& in) override {
    value_ = in.f64();
    return true;
  }

 private:
  static std::vector<std::byte> encode(double v) {
    wire::Writer w;
    w.f64(v);
    return w.take();
  }
  static std::optional<double> decode(std::span<const std::byte> bytes) {
    if (bytes.size() != sizeof(double)) return std::nullopt;  // Truncated.
    wire::Reader r(bytes);
    const double v = r.f64();
    if (!std::isfinite(v) || v < 0.0 || v > 2000.0) return std::nullopt;
    return v;
  }

  double value_ = 0.0;
  double jitter_ = 0.0;
  std::vector<std::byte> scratch_;  ///< Backs the returned spans.
};

AgentFactory digest_factory() {
  return [](const AgentContext& ctx) {
    return std::make_unique<DigestAgent>(static_cast<double>(ctx.attribute));
  };
}

AttributeSource churn_values() {
  return [](rng::Rng& rng) { return static_cast<stats::Value>(rng.below(1000)); };
}

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<stats::Value>(i);
  return values;
}

std::unique_ptr<Overlay> cyclon() {
  CyclonConfig config;
  config.view_size = 8;
  config.shuffle_size = 4;
  return std::make_unique<CyclonOverlay>(config);
}

host::FaultPlan nontrivial_plan() {
  host::FaultPlan plan;
  plan.drop_rate = 0.1;
  plan.duplicate_rate = 0.08;
  plan.corrupt_rate = 0.08;
  plan.crash_rate = 0.01;
  plan.partition_count = 2;
  plan.partition_start = 4;
  plan.partition_heal_after = 5;
  plan.seed = 0x90de;
  return plan;
}

/// Folds the full observable end state of a host (any engine) into one u64.
template <typename EngineT>
std::uint64_t digest(EngineT& engine) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(engine.live_count()));
  for (NodeId id : engine.live_ids()) {
    const Node& node = engine.node(id);
    mix(h, static_cast<std::uint64_t>(id));
    mix(h, static_cast<double>(node.attribute));
    const auto* agent = dynamic_cast<const DigestAgent*>(node.agent.get());
    mix(h, agent != nullptr ? agent->value() : 0.0);
    mix_traffic(h, node.traffic);
  }
  mix_traffic(h, engine.total_traffic());
  return h;
}

EngineConfig cycle_config(bool faults) {
  EngineConfig config;
  config.seed = 0x90de;
  config.churn_rate = 0.02;
  config.message_loss = 0.05;
  if (faults) config.faults = nontrivial_plan();
  return config;
}

std::uint64_t run_cycle(std::size_t threads, bool faults) {
  if (threads == 0) {
    Engine engine(cycle_config(faults), iota_values(64), cyclon(),
                  digest_factory(), churn_values());
    engine.run_rounds(12);
    return digest(engine);
  }
  ParallelEngine engine(cycle_config(faults), threads, iota_values(64),
                        cyclon(), digest_factory(), churn_values());
  engine.run_rounds(12);
  return digest(engine);
}

/// Golden resume (host::snapshot, DESIGN.md §12): snapshot a serial run at
/// round 6, restore into a fresh engine (serial or sharded — the layout is
/// shared) and run the remaining rounds. The digest must equal the SAME
/// pinned constant as the uninterrupted run: checkpoint/restore is invisible
/// to the replayed schedule, draws included.
std::uint64_t run_cycle_resumed(std::size_t threads, bool faults) {
  Engine source(cycle_config(faults), iota_values(64), cyclon(),
                digest_factory(), churn_values());
  source.run_rounds(6);
  const std::vector<std::byte> bytes = source.save_snapshot();
  if (threads == 0) {
    Engine engine(cycle_config(faults), iota_values(64), cyclon(),
                  digest_factory(), churn_values());
    engine.restore_snapshot(bytes);
    engine.run_rounds(6);
    return digest(engine);
  }
  ParallelEngine engine(cycle_config(faults), threads, iota_values(64),
                        cyclon(), digest_factory(), churn_values());
  engine.restore_snapshot(bytes);
  engine.run_rounds(6);
  return digest(engine);
}

AsyncConfig async_config(bool faults) {
  AsyncConfig config;
  config.seed = 0x90de;
  config.message_loss = 0.02;
  config.churn_per_second = 0.005;
  if (faults) {
    config.faults = nontrivial_plan();
    config.faults.delay_rate = 0.2;
    config.faults.max_delay = 0.3;
  }
  return config;
}

AsyncEngine make_async(bool faults) {
  return AsyncEngine(async_config(faults), iota_values(48),
                     std::make_unique<StaticRandomOverlay>(6),
                     digest_factory(), churn_values());
}

std::uint64_t run_async(bool faults) {
  AsyncEngine engine = make_async(faults);
  engine.run_until(20.0);
  return digest(engine);
}

/// Event-driven golden resume: snapshot at t=10 (queue included), restore
/// into a fresh engine, continue to t=20 — same pinned digest as the
/// uninterrupted run.
std::uint64_t run_async_resumed(bool faults) {
  AsyncEngine source = make_async(faults);
  source.run_until(10.0);
  const std::vector<std::byte> bytes = source.save_snapshot();
  AsyncEngine engine = make_async(faults);
  engine.restore_snapshot(bytes);
  engine.run_until(20.0);
  return digest(engine);
}

// -- Traced runs (observability determinism) ---------------------------------

/// Everything a recorder-attached cycle run exports, plus the end-state
/// digest, so one helper serves both halves of the obs contract: the exports
/// must be byte-identical across schedules, and attaching the recorder must
/// not perturb the run itself.
struct TracedRun {
  std::uint64_t state_digest = 0;
  std::uint64_t ring_digest = 0;
  std::string trace;
  std::string metrics;
  std::string series;
};

template <typename EngineT>
TracedRun traced(EngineT& engine, obs::Recorder& recorder) {
  engine.set_recorder(&recorder);
  engine.run_rounds(12);
  TracedRun run;
  run.state_digest = digest(engine);
  run.ring_digest = obs::trace_digest(recorder.trace());
  run.trace = obs::trace_jsonl(recorder.trace());
  run.metrics = obs::metrics_json(recorder.metrics());
  run.series = obs::series_csv(recorder);
  return run;
}

TracedRun run_cycle_traced(std::size_t threads, bool faults) {
  obs::Recorder recorder;
  if (threads == 0) {
    Engine engine(cycle_config(faults), iota_values(64), cyclon(),
                  digest_factory(), churn_values());
    return traced(engine, recorder);
  }
  ParallelEngine engine(cycle_config(faults), threads, iota_values(64),
                        cyclon(), digest_factory(), churn_values());
  return traced(engine, recorder);
}

// -- Fixtures ----------------------------------------------------------------
// Captured from the pre-exchange-fabric engines (PR 5 tree). A mismatch means
// the exchange pipeline consumed different draws, from different streams, or
// delivered differently — NOT a harmless implementation detail.

constexpr std::uint64_t kCycleGolden = 17558608976957334404ULL;
constexpr std::uint64_t kCycleFaultsGolden = 18320294890855426988ULL;
constexpr std::uint64_t kAsyncGolden = 16779096996820981177ULL;
constexpr std::uint64_t kAsyncFaultsGolden = 1727619430864257484ULL;

TEST(GoldenReplayTest, SerialEngineMatchesCheckedInDigest) {
  EXPECT_EQ(run_cycle(0, false), kCycleGolden);
}

TEST(GoldenReplayTest, SerialEngineUnderFaultPlanMatchesCheckedInDigest) {
  EXPECT_EQ(run_cycle(0, true), kCycleFaultsGolden);
}

TEST(GoldenReplayTest, ParallelEngineMatchesCheckedInDigest) {
  EXPECT_EQ(run_cycle(1, false), kCycleGolden);
  EXPECT_EQ(run_cycle(8, false), kCycleGolden);
}

TEST(GoldenReplayTest, ParallelEngineUnderFaultPlanMatchesCheckedInDigest) {
  EXPECT_EQ(run_cycle(1, true), kCycleFaultsGolden);
  EXPECT_EQ(run_cycle(8, true), kCycleFaultsGolden);
}

TEST(GoldenReplayTest, AsyncEngineMatchesCheckedInDigest) {
  EXPECT_EQ(run_async(false), kAsyncGolden);
}

TEST(GoldenReplayTest, AsyncEngineUnderFaultPlanMatchesCheckedInDigest) {
  EXPECT_EQ(run_async(true), kAsyncFaultsGolden);
}

// -- Golden resume (host::snapshot, DESIGN.md §12) ----------------------------
// Save at round 6 (or t=10) + restore + run to the end must reproduce the
// SAME digests as the uninterrupted fixtures above — with faults off and
// under the non-trivial plan, across all three engines. A mismatch means the
// snapshot codec dropped or perturbed replayed state (an RNG stream, a queue
// entry, a traffic counter), which would silently break crash recovery.

TEST(GoldenResumeTest, SerialResumeMatchesUninterruptedDigest) {
  EXPECT_EQ(run_cycle_resumed(0, false), kCycleGolden);
}

TEST(GoldenResumeTest, SerialResumeUnderFaultPlanMatchesUninterruptedDigest) {
  EXPECT_EQ(run_cycle_resumed(0, true), kCycleFaultsGolden);
}

TEST(GoldenResumeTest, ParallelResumeMatchesUninterruptedDigest) {
  EXPECT_EQ(run_cycle_resumed(8, false), kCycleGolden);
}

TEST(GoldenResumeTest, ParallelResumeUnderFaultPlanMatchesUninterruptedDigest) {
  EXPECT_EQ(run_cycle_resumed(8, true), kCycleFaultsGolden);
}

TEST(GoldenResumeTest, AsyncResumeMatchesUninterruptedDigest) {
  EXPECT_EQ(run_async_resumed(false), kAsyncGolden);
}

TEST(GoldenResumeTest, AsyncResumeUnderFaultPlanMatchesUninterruptedDigest) {
  EXPECT_EQ(run_async_resumed(true), kAsyncFaultsGolden);
}

// -- Observability determinism (DESIGN.md §11) -------------------------------
// The serial engine and the sharded engine at any thread count must export
// byte-identical traces, metrics and series for the same seed: the parallel
// engine buffers per-unit exchange outcomes in plan-position slots and drains
// them serially after the barrier, so the recorded stream is the plan order
// on both. The non-trivial fault plan makes this bite — it exercises drops,
// duplicates, corruption, partitions and crash-restarts in the trace.

TEST(GoldenReplayTest, TraceExportsAreIdenticalAcrossSchedules) {
  for (bool faults : {false, true}) {
    const TracedRun serial = run_cycle_traced(0, faults);
    const TracedRun one = run_cycle_traced(1, faults);
    const TracedRun eight = run_cycle_traced(8, faults);

    // A 64-node, 12-round run traces far more than lifecycle events.
    EXPECT_GT(serial.trace.size(), 1000U) << "faults=" << faults;

    EXPECT_EQ(serial.ring_digest, one.ring_digest) << "faults=" << faults;
    EXPECT_EQ(serial.ring_digest, eight.ring_digest) << "faults=" << faults;
    EXPECT_EQ(serial.trace, one.trace) << "faults=" << faults;
    EXPECT_EQ(serial.trace, eight.trace) << "faults=" << faults;
    EXPECT_EQ(serial.metrics, one.metrics) << "faults=" << faults;
    EXPECT_EQ(serial.metrics, eight.metrics) << "faults=" << faults;
    EXPECT_EQ(serial.series, one.series) << "faults=" << faults;
    EXPECT_EQ(serial.series, eight.series) << "faults=" << faults;
  }
}

TEST(GoldenReplayTest, AttachedRecorderDoesNotPerturbTheRun) {
  // Recording is observation only: the end-state digests of recorder-attached
  // runs must still match the pinned pre-obs constants.
  EXPECT_EQ(run_cycle_traced(0, false).state_digest, kCycleGolden);
  EXPECT_EQ(run_cycle_traced(0, true).state_digest, kCycleFaultsGolden);
  EXPECT_EQ(run_cycle_traced(8, true).state_digest, kCycleFaultsGolden);
}

TEST(GoldenReplayTest, FaultPlanEventsAppearInTheTrace) {
  const TracedRun run = run_cycle_traced(0, true);
  // The plan's drop/corrupt/partition rates are high enough over 12 rounds
  // that their counters must be non-zero — and they flow into the exports.
  EXPECT_NE(run.trace.find("\"kind\":\"round_end\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"kind\":\"exchange\""), std::string::npos);
  EXPECT_NE(run.metrics.find("traffic.dropped_messages"), std::string::npos);
  const TracedRun clean = run_cycle_traced(0, false);
  EXPECT_NE(run.trace, clean.trace);  // Faults visibly change the stream.
}

}  // namespace
}  // namespace adam2::sim
