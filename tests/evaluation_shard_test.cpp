// Sharded population evaluation must be bit-identical to serial evaluation:
// EvaluationOptions::threads fans the per-peer error sweeps over a worker
// pool, but the reduction stays serial in fixed peer order, so every one of
// the six PopulationErrors fields must match the serial run *exactly* — at
// any thread count, under churn, and with peer sampling active.
#include <gtest/gtest.h>

#include <cstddef>

#include "core/evaluation.hpp"
#include "core/system.hpp"
#include "data/boinc_synth.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"

namespace adam2::core {
namespace {

SystemConfig small_config(std::uint64_t seed, double churn_rate) {
  SystemConfig config;
  config.engine.seed = seed;
  config.engine.churn_rate = churn_rate;
  config.protocol.lambda = 20;
  config.protocol.instance_ttl = 20;
  return config;
}

std::vector<stats::Value> ram_population(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  return data::generate_population(data::Attribute::kRamMb, n, rng);
}

void expect_identical(const PopulationErrors& serial,
                      const PopulationErrors& sharded) {
  EXPECT_EQ(serial.max_err, sharded.max_err);
  EXPECT_EQ(serial.avg_err, sharded.avg_err);
  EXPECT_EQ(serial.stddev_max, sharded.stddev_max);
  EXPECT_EQ(serial.stddev_avg, sharded.stddev_avg);
  EXPECT_EQ(serial.peers, sharded.peers);
  EXPECT_EQ(serial.missing, sharded.missing);
}

TEST(EvaluationShardTest, EstimatesBitIdenticalAcrossThreadCounts) {
  const auto values = ram_population(400, 7);
  const stats::EmpiricalCdf truth{values};
  Adam2System system(small_config(7, 0.0), values);
  system.run_instance();

  EvaluationOptions options;
  options.peer_sample = 150;
  options.threads = 1;
  const PopulationErrors serial =
      evaluate_estimates(system.engine(), truth, options);
  ASSERT_GT(serial.peers, 0u);
  for (std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    expect_identical(serial, evaluate_estimates(system.engine(), truth,
                                                options));
  }
}

TEST(EvaluationShardTest, MidInstanceCdfBitIdenticalUnderChurn) {
  const auto values = ram_population(300, 11);
  Adam2System system(small_config(11, 0.01), values,
                     [](rng::Rng& rng) {
                       return data::sample_attribute(data::Attribute::kRamMb,
                                                     rng);
                     });
  system.run_rounds(3);
  const wire::InstanceId id = system.start_instance();
  // Stop mid-instance so some live peers have not joined yet (exercises the
  // missing-peer path) and churned-in nodes are present.
  system.run_rounds(6);
  const stats::EmpiricalCdf truth = system.truth();

  EvaluationOptions options;
  options.peer_sample = 120;
  options.threads = 1;
  const PopulationErrors serial =
      evaluate_instance_cdf(system.engine(), id, truth, options);
  for (std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    expect_identical(serial, evaluate_instance_cdf(system.engine(), id, truth,
                                                   options));
  }
}

TEST(EvaluationShardTest, PointErrorsAndMissingPolicyBitIdentical) {
  const auto values = ram_population(250, 13);
  const stats::EmpiricalCdf truth{values};
  Adam2System system(small_config(13, 0.005), values,
                     [](rng::Rng& rng) {
                       return data::sample_attribute(data::Attribute::kRamMb,
                                                     rng);
                     });
  system.run_instance();

  for (const bool missing_counts : {true, false}) {
    EvaluationOptions options;
    options.peer_sample = 0;  // Every live peer.
    options.missing_counts_as_one = missing_counts;
    options.threads = 1;
    const PopulationErrors serial =
        evaluate_estimate_points(system.engine(), truth, options);
    for (std::size_t threads : {2u, 8u}) {
      options.threads = threads;
      expect_identical(serial, evaluate_estimate_points(system.engine(), truth,
                                                        options));
    }
  }
}

TEST(EvaluationShardTest, MoreThreadsThanPeersIsSafe) {
  const auto values = ram_population(40, 17);
  const stats::EmpiricalCdf truth{values};
  Adam2System system(small_config(17, 0.0), values);
  system.run_instance();

  EvaluationOptions options;
  options.peer_sample = 5;
  options.threads = 1;
  const PopulationErrors serial =
      evaluate_estimates(system.engine(), truth, options);
  options.threads = 64;
  expect_identical(serial, evaluate_estimates(system.engine(), truth,
                                              options));
}

}  // namespace
}  // namespace adam2::core
