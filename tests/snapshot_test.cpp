// host::snapshot codec coverage (ctest label: snapshot).
//
// Two halves, mirroring the wire_test discipline:
//
//  * Round-trip byte identity: save -> restore into a fresh
//    identically-configured engine -> save must reproduce the exact bytes,
//    and resume + run-to-round-R must land on the same bytes as the
//    uninterrupted run — for the serial, sharded and event-driven engines.
//  * A >= 10k-seeded-mutant corpus per engine family: every corrupted
//    snapshot is either rejected with a wire::DecodeError diagnostic and
//    leaves the engine untouched, or restores into a state whose re-encoded
//    snapshot is byte-identical to the mutant (canonical acceptance). Never
//    UB — the suite runs under the sanitizer jobs like everything else.
//
// Container-level mutants (checksum intact region included) are virtually
// all caught by the trailing FNV-1a checksum; a second corpus mutates only
// the section body and re-seals the checksum so the section framing, node
// table, RNG and overlay decoders are the ones under fire.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "host/snapshot.hpp"
#include "rng/rng.hpp"
#include "sim/async_engine.hpp"
#include "sim/cyclon.hpp"
#include "sim/engine.hpp"
#include "sim/overlay.hpp"
#include "sim/parallel_engine.hpp"
#include "wire/buffer.hpp"

namespace adam2::sim {
namespace {

namespace snap = host::snapshot;

// -- Snapshottable test agent ------------------------------------------------

/// Push-pull averaging agent with full checkpoint support: one f64 of
/// persistent state, re-encoded bit-exactly (jitter and scratch are
/// per-exchange and deliberately excluded — the save/restore contract covers
/// persistent protocol state only).
class SnapAgent final : public NodeAgent {
 public:
  explicit SnapAgent(double initial) : value_(initial) {}

  std::span<const std::byte> make_request(AgentContext& ctx) override {
    const double jitter = ctx.rng.uniform(0.0, 1e-12);
    scratch_ = encode(value_ + jitter);
    return scratch_;
  }

  std::span<const std::byte> handle_request(
      AgentContext&, std::span<const std::byte> req) override {
    const auto theirs = decode(req);
    if (!theirs) return {};
    scratch_ = encode(value_);
    value_ = (value_ + *theirs) / 2.0;
    return scratch_;
  }

  void handle_response(AgentContext&, std::span<const std::byte> resp) override {
    const auto theirs = decode(resp);
    if (theirs) value_ = (value_ + *theirs) / 2.0;
  }

  [[nodiscard]] bool save_state(wire::Writer& out) const override {
    out.f64(value_);
    return true;
  }

  [[nodiscard]] bool restore_state(wire::Reader& in) override {
    value_ = in.f64();  // Any bit pattern is valid state: canonical as-is.
    return true;
  }

 private:
  static std::vector<std::byte> encode(double v) {
    wire::Writer w;
    w.f64(v);
    return w.take();
  }
  static std::optional<double> decode(std::span<const std::byte> bytes) {
    if (bytes.size() != sizeof(double)) return std::nullopt;
    wire::Reader r(bytes);
    return r.f64();
  }

  double value_ = 0.0;
  std::vector<std::byte> scratch_;  ///< Backs the returned spans.
};

/// Minimal agent WITHOUT snapshot hooks: saving an engine hosting one must
/// fail loudly with SnapshotError, never silently drop state.
class OpaqueAgent final : public NodeAgent {
 public:
  std::span<const std::byte> make_request(AgentContext&) override {
    return {};
  }
  std::span<const std::byte> handle_request(AgentContext&,
                                            std::span<const std::byte>) override {
    return {};
  }
};

AgentFactory snap_factory() {
  return [](const AgentContext& ctx) {
    return std::make_unique<SnapAgent>(static_cast<double>(ctx.attribute));
  };
}

AttributeSource churn_values() {
  return [](rng::Rng& rng) { return static_cast<stats::Value>(rng.below(1000)); };
}

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<stats::Value>(i);
  return values;
}

std::unique_ptr<Overlay> cyclon() {
  CyclonConfig config;
  config.view_size = 6;
  config.shuffle_size = 3;
  return std::make_unique<CyclonOverlay>(config);
}

/// Churn plus a light fault plan so snapshots carry dead node records,
/// crash-restart counters and non-trivial traffic — richer decode surface
/// for the mutant corpus than a fault-free run.
EngineConfig cycle_config() {
  EngineConfig config;
  config.seed = 0x5eed;
  config.churn_rate = 0.03;
  config.message_loss = 0.05;
  config.faults.drop_rate = 0.05;
  config.faults.crash_rate = 0.01;
  config.faults.seed = 0x5eed;
  return config;
}

Engine make_cycle_engine() {
  return Engine(cycle_config(), iota_values(24), cyclon(), snap_factory(),
                churn_values());
}

AsyncConfig async_config() {
  AsyncConfig config;
  config.seed = 0x5eed;
  config.message_loss = 0.02;
  config.churn_per_second = 0.01;
  return config;
}

AsyncEngine make_async_engine() {
  return AsyncEngine(async_config(), iota_values(24),
                     std::make_unique<StaticRandomOverlay>(5), snap_factory(),
                     churn_values());
}

// -- Round-trip byte identity ------------------------------------------------

TEST(SnapshotRoundTripTest, CycleSaveRestoreSaveIsByteIdentical) {
  Engine original = make_cycle_engine();
  original.run_rounds(8);
  const std::vector<std::byte> bytes = original.save_snapshot();

  Engine resumed = make_cycle_engine();
  resumed.restore_snapshot(bytes);
  EXPECT_EQ(resumed.save_snapshot(), bytes);

  // Resume + run-to-round-R lands on the uninterrupted run's exact bytes.
  original.run_rounds(4);
  resumed.run_rounds(4);
  EXPECT_EQ(resumed.save_snapshot(), original.save_snapshot());
}

TEST(SnapshotRoundTripTest, SerialAndShardedEnginesShareTheLayout) {
  Engine serial = make_cycle_engine();
  serial.run_rounds(6);
  const std::vector<std::byte> bytes = serial.save_snapshot();
  serial.run_rounds(6);

  // A serial snapshot restores into the sharded engine (and vice versa):
  // the shards are per-round scratch, not persistent state.
  ParallelEngine sharded(cycle_config(), 8, iota_values(24), cyclon(),
                         snap_factory(), churn_values());
  sharded.restore_snapshot(bytes);
  EXPECT_EQ(sharded.save_snapshot(), bytes);
  sharded.run_rounds(6);
  EXPECT_EQ(sharded.save_snapshot(), serial.save_snapshot());
}

TEST(SnapshotRoundTripTest, AsyncSaveRestoreSaveIsByteIdentical) {
  AsyncEngine original = make_async_engine();
  original.run_until(10.0);
  const std::vector<std::byte> bytes = original.save_snapshot();

  AsyncEngine resumed = make_async_engine();
  resumed.restore_snapshot(bytes);
  EXPECT_EQ(resumed.save_snapshot(), bytes);

  original.run_until(20.0);
  resumed.run_until(20.0);
  EXPECT_EQ(resumed.save_snapshot(), original.save_snapshot());
}

TEST(SnapshotRoundTripTest, FreshEngineSnapshotRestoresBeforeAnyRound) {
  // Round-0 snapshots (no exchanges yet) are valid checkpoints too.
  Engine original = make_cycle_engine();
  const std::vector<std::byte> bytes = original.save_snapshot();
  Engine resumed = make_cycle_engine();
  resumed.restore_snapshot(bytes);
  EXPECT_EQ(resumed.save_snapshot(), bytes);
}

// -- Encode-side failures ----------------------------------------------------

TEST(SnapshotEncodeTest, UnsupportedAgentTypeThrowsSnapshotError) {
  Engine engine(cycle_config(), iota_values(8), cyclon(),
                [](const AgentContext&) { return std::make_unique<OpaqueAgent>(); },
                churn_values());
  EXPECT_THROW((void)engine.save_snapshot(), snap::SnapshotError);
}

// -- Container-level rejections ----------------------------------------------

/// Feeds `bytes` to a fresh cycle engine and requires a clean DecodeError
/// whose diagnostic is non-empty; the engine must be left byte-identical to
/// its pre-restore state.
void expect_rejected(const std::vector<std::byte>& bytes,
                     const std::string& context) {
  Engine engine = make_cycle_engine();
  const std::vector<std::byte> before = engine.save_snapshot();
  try {
    engine.restore_snapshot(bytes);
    FAIL() << context << ": malformed snapshot was accepted";
  } catch (const wire::DecodeError& error) {
    EXPECT_NE(std::string(error.what()), "") << context;
  }
  EXPECT_EQ(engine.save_snapshot(), before) << context;
}

/// Recomputes and replaces the trailing checksum so mutations *before* it
/// exercise the decoders instead of the checksum gate.
std::vector<std::byte> reseal(std::vector<std::byte> bytes) {
  bytes.resize(bytes.size() - 8);
  wire::Writer out;
  out.bytes(bytes);
  out.u64(snap::fnv1a(out.view()));
  return out.take();
}

TEST(SnapshotContainerTest, RejectsEmptyAndTinyInputs) {
  expect_rejected({}, "empty");
  expect_rejected(std::vector<std::byte>(19, std::byte{0}), "19 zero bytes");
}

TEST(SnapshotContainerTest, RejectsBadMagic) {
  Engine engine = make_cycle_engine();
  std::vector<std::byte> bytes = engine.save_snapshot();
  bytes[0] ^= std::byte{0xff};
  expect_rejected(reseal(std::move(bytes)), "bad magic");
}

TEST(SnapshotContainerTest, RejectsUnsupportedFormatVersion) {
  Engine engine = make_cycle_engine();
  std::vector<std::byte> bytes = engine.save_snapshot();
  bytes[4] = std::byte{99};  // Version field, little-endian low byte.
  expect_rejected(reseal(std::move(bytes)), "future version");
}

TEST(SnapshotContainerTest, RejectsEngineKindMismatch) {
  Engine cycle = make_cycle_engine();
  const std::vector<std::byte> bytes = cycle.save_snapshot();
  AsyncEngine async = make_async_engine();
  const std::vector<std::byte> before = async.save_snapshot();
  EXPECT_THROW(async.restore_snapshot(bytes), wire::DecodeError);
  EXPECT_EQ(async.save_snapshot(), before);
}

TEST(SnapshotContainerTest, RejectsChecksumMismatch) {
  Engine engine = make_cycle_engine();
  std::vector<std::byte> bytes = engine.save_snapshot();
  bytes.back() ^= std::byte{0x01};
  expect_rejected(bytes, "flipped checksum bit");
}

TEST(SnapshotContainerTest, RejectsTruncationAtEveryBoundary) {
  Engine engine = make_cycle_engine();
  engine.run_rounds(3);
  const std::vector<std::byte> bytes = engine.save_snapshot();
  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, std::size_t{12},
                           std::size_t{16}, bytes.size() / 2,
                           bytes.size() - 1}) {
    std::vector<std::byte> cut(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    expect_rejected(cut, "truncated to " + std::to_string(keep));
  }
}

TEST(SnapshotContainerTest, RejectsTrailingGarbage) {
  Engine engine = make_cycle_engine();
  std::vector<std::byte> bytes = engine.save_snapshot();
  bytes.insert(bytes.end(), 8, std::byte{0xab});
  expect_rejected(bytes, "8 garbage bytes appended");
}

TEST(SnapshotContainerTest, RejectsConfigMismatch) {
  Engine engine = make_cycle_engine();
  engine.run_rounds(2);
  const std::vector<std::byte> bytes = engine.save_snapshot();

  EngineConfig other = cycle_config();
  other.seed = 0xbad;  // Any config divergence must reject, not diverge.
  Engine mismatched(other, iota_values(24), cyclon(), snap_factory(),
                    churn_values());
  const std::vector<std::byte> before = mismatched.save_snapshot();
  EXPECT_THROW(mismatched.restore_snapshot(bytes), wire::DecodeError);
  EXPECT_EQ(mismatched.save_snapshot(), before);
}

// -- Mutant corpus -----------------------------------------------------------

constexpr int kMutantsPerCorpus = 10'000;

/// Same mutation kinds as the wire_test corpus: truncate, extend, truncate
/// then flip, flip 1-8 bytes in place.
std::vector<std::byte> mutate(std::vector<std::byte> bytes, rng::Rng& rng) {
  const auto flip_some = [&rng](std::vector<std::byte>& target) {
    if (target.empty()) return;
    for (std::uint64_t i = 1 + rng.below(8); i > 0; --i) {
      target[rng.below(target.size())] ^=
          static_cast<std::byte>(1 + rng.below(255));
    }
  };
  switch (rng.below(4)) {
    case 0:
      if (!bytes.empty()) bytes.resize(rng.below(bytes.size()));
      break;
    case 1:
      for (std::uint64_t i = 1 + rng.below(8); i > 0; --i) {
        bytes.push_back(static_cast<std::byte>(rng() & 0xff));
      }
      break;
    case 2:
      if (!bytes.empty()) bytes.resize(1 + rng.below(bytes.size()));
      flip_some(bytes);
      break;
    default:
      flip_some(bytes);
      break;
  }
  return bytes;
}

/// Mutates only the section-body region (between the 12-byte header and the
/// 8-byte checksum), then re-seals the checksum: the container gate passes
/// and the section framing + payload decoders face the corruption.
std::vector<std::byte> mutate_body(const std::vector<std::byte>& pristine,
                                   rng::Rng& rng) {
  std::vector<std::byte> body(pristine.begin() + 12, pristine.end() - 8);
  body = mutate(std::move(body), rng);
  wire::Writer out;
  out.bytes(std::span<const std::byte>(pristine.data(), 12));
  out.bytes(body);
  out.u64(snap::fnv1a(out.view()));
  return out.take();
}

/// The accept-or-reject oracle, run against a long-lived victim engine:
/// rejection must throw DecodeError with a diagnostic and leave the engine's
/// re-encoded state untouched; acceptance must be canonical — the engine's
/// re-encoded snapshot reproduces the mutant byte for byte. Any other
/// exception (or a non-canonical acceptance) fails the test.
template <typename EngineT>
class MutantOracle {
 public:
  explicit MutantOracle(EngineT& engine)
      : engine_(engine), expected_(engine.save_snapshot()) {}

  void feed(const std::vector<std::byte>& mutant, int index) {
    try {
      engine_.restore_snapshot(mutant);
    } catch (const wire::DecodeError& error) {
      ++rejected_;
      ASSERT_NE(std::string(error.what()), "") << "mutant " << index;
      // Reject-don't-crash also means reject-don't-corrupt: the engine
      // still re-encodes exactly its pre-restore state.
      ASSERT_EQ(engine_.save_snapshot(), expected_) << "mutant " << index;
      return;
    }
    ++accepted_;
    const std::vector<std::byte> reencoded = engine_.save_snapshot();
    ASSERT_EQ(reencoded.size(), mutant.size()) << "mutant " << index;
    ASSERT_EQ(reencoded, mutant) << "mutant " << index;
    expected_ = mutant;
  }

  [[nodiscard]] int accepted() const { return accepted_; }
  [[nodiscard]] int rejected() const { return rejected_; }

 private:
  EngineT& engine_;
  std::vector<std::byte> expected_;
  int accepted_ = 0;
  int rejected_ = 0;
};

TEST(SnapshotMutantCorpusTest, CycleContainerMutantsRejectedOrCanonical) {
  Engine source = make_cycle_engine();
  source.run_rounds(6);
  const std::vector<std::byte> pristine = source.save_snapshot();

  Engine victim = make_cycle_engine();
  MutantOracle<Engine> oracle(victim);
  rng::Rng rng(0x5a405a40);
  for (int i = 0; i < kMutantsPerCorpus; ++i) {
    oracle.feed(mutate(pristine, rng), i);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Whole-container mutants are essentially always caught by the checksum;
  // what matters is that every one of them died cleanly.
  EXPECT_EQ(oracle.accepted() + oracle.rejected(), kMutantsPerCorpus);
  EXPECT_GT(oracle.rejected(), 0);
}

TEST(SnapshotMutantCorpusTest, CycleBodyMutantsRejectedOrCanonical) {
  Engine source = make_cycle_engine();
  source.run_rounds(6);
  const std::vector<std::byte> pristine = source.save_snapshot();

  Engine victim = make_cycle_engine();
  MutantOracle<Engine> oracle(victim);
  rng::Rng rng(0xb0d7b0d7);
  for (int i = 0; i < kMutantsPerCorpus; ++i) {
    oracle.feed(mutate_body(pristine, rng), i);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Checksum-sealed body mutants must exercise BOTH fates, or the corpus
  // proves nothing about canonical acceptance.
  EXPECT_GT(oracle.accepted(), 0);
  EXPECT_GT(oracle.rejected(), 0);
}

TEST(SnapshotMutantCorpusTest, AsyncBodyMutantsRejectedOrCanonical) {
  AsyncEngine source = make_async_engine();
  source.run_until(8.0);
  const std::vector<std::byte> pristine = source.save_snapshot();

  AsyncEngine victim = make_async_engine();
  MutantOracle<AsyncEngine> oracle(victim);
  rng::Rng rng(0xa57ca57c);
  for (int i = 0; i < kMutantsPerCorpus; ++i) {
    oracle.feed(mutate_body(pristine, rng), i);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(oracle.accepted(), 0);
  EXPECT_GT(oracle.rejected(), 0);
}

// -- File I/O ----------------------------------------------------------------

class SnapshotFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("adam2_snapshot_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

TEST_F(SnapshotFileTest, WriteThenReadRoundTrips) {
  Engine engine = make_cycle_engine();
  engine.run_rounds(4);
  const std::vector<std::byte> bytes = engine.save_snapshot();

  const auto path = dir_ / "state.snap";
  ASSERT_TRUE(snap::write_snapshot_file(path, bytes));
  const auto loaded = snap::read_snapshot_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, bytes);

  // The atomic-rename discipline leaves no temp droppings behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir_)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);

  Engine resumed = make_cycle_engine();
  resumed.restore_snapshot(*loaded);
  EXPECT_EQ(resumed.save_snapshot(), bytes);
}

TEST_F(SnapshotFileTest, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(
      snap::read_snapshot_file(dir_ / "nope.snap", &error).has_value());
  EXPECT_NE(error, "");
}

TEST_F(SnapshotFileTest, OversizedFileIsRefused) {
  Engine engine = make_cycle_engine();
  const std::vector<std::byte> bytes = engine.save_snapshot();
  const auto path = dir_ / "state.snap";
  ASSERT_TRUE(snap::write_snapshot_file(path, bytes));
  std::string error;
  EXPECT_FALSE(snap::read_snapshot_file(path, &error, bytes.size() - 1)
                   .has_value());
  EXPECT_NE(error, "");
}

TEST_F(SnapshotFileTest, CreatesParentDirectoriesButFailsCleanlyOtherwise) {
  Engine engine = make_cycle_engine();
  const std::vector<std::byte> bytes = engine.save_snapshot();
  // Missing parent directories are created (checkpoint paths come from
  // flags; requiring a pre-made directory would make --snapshot-out flaky).
  EXPECT_TRUE(snap::write_snapshot_file(dir_ / "sub" / "state.snap", bytes));
  // A non-directory in the path cannot be papered over: clean false.
  ASSERT_TRUE(snap::write_snapshot_file(dir_ / "blocker", bytes));
  EXPECT_FALSE(
      snap::write_snapshot_file(dir_ / "blocker" / "state.snap", bytes));
}

}  // namespace
}  // namespace adam2::sim
