// Duplication semantics, pinned across every execution substrate.
//
// A duplicated message is a retransmission: the same encoded bytes handed to
// the receiver twice. What the protocol observes differs by substrate, and
// these tests nail each contract so the shared fabric (host/exchange.hpp)
// cannot drift:
//
//  * cycle engines (serial + sharded): the responder handles both request
//    copies and only the reply to the SECOND copy travels back — the earlier
//    reply's scratch is invalidated by the later handle_request call. The
//    duplicated response leg then delivers that one reply twice.
//  * event-driven engine: no session tracking — every surviving copy of
//    every leg becomes its own delivery event, so one exchange under
//    duplicate_rate=1 means two handle_request and four handle_response
//    calls, with three legs counted as duplicated (one request, two
//    responses).
//  * sessioned runtimes (threaded cluster, UDP peers): the SessionedPort's
//    token discipline merges exactly one response copy; the second is stale
//    by construction and counted as dropped. Both request copies carry the
//    same token.
//
// Labelled `chaos` (runs under sanitizers in CI with the fault matrix).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "host/exchange.hpp"
#include "host/fault.hpp"
#include "runtime/cluster.hpp"
#include "runtime/udp.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/overlay.hpp"
#include "sim/parallel_engine.hpp"

namespace adam2 {
namespace {

using namespace std::chrono_literals;

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<stats::Value>(i);
  return values;
}

host::FaultPlan always_duplicate() {
  host::FaultPlan plan;
  plan.duplicate_rate = 1.0;
  plan.seed = 0xd0b1e;
  return plan;
}

std::vector<std::byte> encode_u64(std::uint64_t v) {
  std::vector<std::byte> bytes(sizeof(v));
  std::memcpy(bytes.data(), &v, sizeof(v));
  return bytes;
}

std::uint64_t decode_u64(std::span<const std::byte> bytes) {
  std::uint64_t v = 0;
  if (bytes.size() == sizeof(v)) std::memcpy(&v, bytes.data(), sizeof(v));
  return v;
}

/// Shared (single-writer-at-a-time) ledger of protocol-visible events. Only
/// one exchange is ever in flight in the tests that use it, so plain fields
/// are race-free even under the sharded engine's phase barriers.
struct Counts {
  std::uint64_t initiations = 0;        ///< Non-empty make_request calls.
  std::uint64_t requests_handled = 0;   ///< handle_request invocations.
  std::uint64_t responses_handled = 0;  ///< handle_response invocations.
  /// Ordinal carried by each merged response: the global requests_handled
  /// value at the time the reply was produced. With duplication, which copy
  /// produced the surviving reply is visible in its parity.
  std::vector<std::uint64_t> received_ordinals;
};

/// Only node 0 ever initiates (at most `max_initiations` times); everyone
/// answers. Replies carry the ordinal of the handle_request call that
/// produced them, so the "which copy's reply survived" question has an
/// observable answer.
class OrdinalAgent final : public host::NodeAgent {
 public:
  OrdinalAgent(Counts* counts, std::uint64_t max_initiations)
      : counts_(counts), max_initiations_(max_initiations) {}

  std::span<const std::byte> make_request(host::AgentContext& ctx) override {
    if (ctx.self != 0) return {};
    if (counts_->initiations >= max_initiations_) return {};
    ++counts_->initiations;
    scratch_ = encode_u64(counts_->initiations);
    return scratch_;
  }

  std::span<const std::byte> handle_request(
      host::AgentContext&, std::span<const std::byte>) override {
    ++counts_->requests_handled;
    scratch_ = encode_u64(counts_->requests_handled);
    return scratch_;
  }

  void handle_response(host::AgentContext&,
                       std::span<const std::byte> response) override {
    ++counts_->responses_handled;
    counts_->received_ordinals.push_back(decode_u64(response));
  }

 private:
  Counts* counts_;
  std::uint64_t max_initiations_;
  std::vector<std::byte> scratch_;
};

host::AgentFactory ordinal_factory(Counts* counts,
                                   std::uint64_t max_initiations) {
  return [counts, max_initiations](const host::AgentContext&) {
    return std::make_unique<OrdinalAgent>(counts, max_initiations);
  };
}

// --------------------------------------------------------------------------
// Cycle engines: both copies handled, the second copy's reply wins, and the
// duplicated response leg merges that one reply twice.
// --------------------------------------------------------------------------

constexpr std::size_t kCycleNodes = 16;
constexpr std::size_t kCycleRounds = 6;

Counts run_cycle(std::size_t threads) {
  Counts counts;
  sim::EngineConfig config;
  config.seed = 0xd0b;
  config.faults = always_duplicate();
  auto overlay = std::make_unique<sim::StaticRandomOverlay>(4);
  if (threads == 0) {
    sim::Engine engine(config, iota_values(kCycleNodes), std::move(overlay),
                       ordinal_factory(&counts, kCycleRounds), nullptr);
    engine.run_rounds(kCycleRounds);
    EXPECT_EQ(engine.total_traffic().duplicated_messages, 2 * kCycleRounds);
    EXPECT_EQ(engine.total_traffic().failed_contacts, 0u);
  } else {
    sim::ParallelEngine engine(config, threads, iota_values(kCycleNodes),
                               std::move(overlay),
                               ordinal_factory(&counts, kCycleRounds), nullptr);
    engine.run_rounds(kCycleRounds);
    EXPECT_EQ(engine.total_traffic().duplicated_messages, 2 * kCycleRounds);
    EXPECT_EQ(engine.total_traffic().failed_contacts, 0u);
  }
  return counts;
}

void check_cycle_counts(const Counts& counts) {
  EXPECT_EQ(counts.initiations, kCycleRounds);
  // Request leg duplicated: the responder processes both copies.
  EXPECT_EQ(counts.requests_handled, 2 * kCycleRounds);
  // Response leg duplicated: the surviving reply is merged twice.
  EXPECT_EQ(counts.responses_handled, 2 * kCycleRounds);
  ASSERT_EQ(counts.received_ordinals.size(), 2 * kCycleRounds);
  for (std::size_t round = 0; round < kCycleRounds; ++round) {
    const std::uint64_t first = counts.received_ordinals[2 * round];
    const std::uint64_t second = counts.received_ordinals[2 * round + 1];
    // Both merges carry the same reply bytes...
    EXPECT_EQ(first, second) << "round " << round;
    // ...and that reply is the one produced for the SECOND request copy:
    // handle_request ordinals come in (odd, even) pairs per round, and only
    // the even (second) one survives.
    EXPECT_EQ(first % 2, 0u) << "round " << round;
  }
}

TEST(DuplicationCycleTest, SerialSecondReplyWinsAndMergesTwice) {
  check_cycle_counts(run_cycle(0));
}

TEST(DuplicationCycleTest, ParallelMatchesSerialBitExactly) {
  const Counts serial = run_cycle(0);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const Counts parallel = run_cycle(threads);
    check_cycle_counts(parallel);
    EXPECT_EQ(parallel.received_ordinals, serial.received_ordinals)
        << threads << " threads";
  }
}

// --------------------------------------------------------------------------
// Event-driven engine: every copy of every leg is its own delivery event.
// --------------------------------------------------------------------------

TEST(DuplicationAsyncTest, EveryCopyOfEveryLegDelivers) {
  constexpr std::uint64_t kExchanges = 3;
  Counts counts;
  sim::AsyncConfig config;
  config.seed = 0xa5d0b;
  config.period_jitter = 0.0;
  config.latency_min = 0.01;
  config.latency_max = 0.01;
  config.faults = always_duplicate();
  sim::AsyncEngine engine(config, iota_values(8),
                          std::make_unique<sim::StaticRandomOverlay>(4),
                          ordinal_factory(&counts, kExchanges), nullptr);
  // Period 1.0 s, fixed 10 ms latency: three exchanges complete and drain
  // long before t = 10 s, and the agent then stays silent.
  engine.run_until(10.0);

  EXPECT_EQ(counts.initiations, kExchanges);
  // Two request copies reach the responder...
  EXPECT_EQ(counts.requests_handled, 2 * kExchanges);
  // ...each reply is duplicated in turn, and with no session tracking all
  // four copies merge.
  EXPECT_EQ(counts.responses_handled, 4 * kExchanges);
  // Per exchange: one duplicated request leg + two duplicated response legs.
  EXPECT_EQ(engine.total_traffic().duplicated_messages, 3 * kExchanges);
  EXPECT_EQ(engine.total_traffic().failed_contacts, 0u);
  EXPECT_EQ(engine.total_traffic().busy_rejections, 0u);
}

// --------------------------------------------------------------------------
// SessionedPort: the runtimes' token discipline against a scripted transport.
// --------------------------------------------------------------------------

class NullHost final : public host::HostView {
 public:
  [[nodiscard]] bool is_live(host::NodeId) const override { return true; }
  [[nodiscard]] stats::Value attribute_of(host::NodeId) const override {
    return 0;
  }
  [[nodiscard]] host::Round round() const override { return 0; }
  [[nodiscard]] std::span<const host::NodeId> live_ids() const override {
    return {};
  }
  void record_traffic(host::NodeId, host::NodeId, host::Channel,
                      std::size_t) override {}
};

class NullOverlay final : public host::Overlay {
 public:
  void add_node(host::NodeId, const host::HostView&, rng::Rng&) override {}
  void remove_node(host::NodeId) override {}
  [[nodiscard]] std::optional<host::NodeId> pick_gossip_target(
      host::NodeId, rng::Rng&) const override {
    return std::nullopt;
  }
  [[nodiscard]] std::vector<host::NodeId> neighbors(
      host::NodeId) const override {
    return {};
  }
  [[nodiscard]] std::vector<stats::Value> known_attribute_values(
      host::NodeId, const host::HostView&) const override {
    return {};
  }
};

/// Records every envelope the port asks it to move.
class RecordingTransport final : public host::SessionedPort::Transport {
 public:
  struct Sent {
    host::NodeId to;
    std::uint64_t token;
    std::vector<std::byte> payload;
  };

  bool send_request(host::NodeId to, std::uint64_t token,
                    std::span<const std::byte> payload) override {
    requests.push_back(Sent{to, token, {payload.begin(), payload.end()}});
    return true;
  }
  bool send_response(host::NodeId to, std::uint64_t token,
                     std::span<const std::byte> payload) override {
    responses.push_back(Sent{to, token, {payload.begin(), payload.end()}});
    return true;
  }
  void send_busy(host::NodeId to, std::uint64_t token) override {
    busys.push_back(Sent{to, token, {}});
  }
  void record_gossip_sent(host::NodeId, std::size_t) override {
    ++gossip_sent;
  }
  void record_gossip_received(host::NodeId, std::size_t) override {
    ++gossip_received;
  }

  std::vector<Sent> requests;
  std::vector<Sent> responses;
  std::vector<Sent> busys;
  std::uint64_t gossip_sent = 0;
  std::uint64_t gossip_received = 0;
};

class SessionedPortDuplicationTest : public ::testing::Test {
 protected:
  SessionedPortDuplicationTest()
      : conduit_(always_duplicate()),
        fault_rng_(conduit_.faults().node_stream(0)),
        port_(conduit_, transport_, fault_rng_, counters_),
        ctx_{null_host_, null_overlay_, 0, 0, 0, 0, agent_rng_} {}

  Counts counts_;
  OrdinalAgent agent_{&counts_, /*max_initiations=*/100};
  host::Conduit conduit_;
  rng::Rng fault_rng_{0};
  RecordingTransport transport_;
  host::TrafficStats counters_;
  host::SessionedPort port_;
  NullHost null_host_;
  NullOverlay null_overlay_;
  rng::Rng agent_rng_{1};
  host::AgentContext ctx_;
};

TEST_F(SessionedPortDuplicationTest, InitiateSendsTwoCopiesOfOneToken) {
  const auto outcome =
      port_.initiate(agent_, ctx_, [] { return std::optional<host::NodeId>{1}; },
                     10ms);
  EXPECT_EQ(outcome, host::SessionedPort::Initiate::kSent);
  ASSERT_EQ(transport_.requests.size(), 2u);
  EXPECT_EQ(transport_.requests[0].token, transport_.requests[1].token);
  EXPECT_EQ(transport_.requests[0].payload, transport_.requests[1].payload);
  // One logical send, one duplication fault, one byte-accounting call.
  EXPECT_EQ(counters_.duplicated_messages, 1u);
  EXPECT_EQ(transport_.gossip_sent, 1u);
  EXPECT_TRUE(port_.session().busy());
}

TEST_F(SessionedPortDuplicationTest, FirstResponseMergesSecondIsStale) {
  ASSERT_EQ(port_.initiate(
                agent_, ctx_, [] { return std::optional<host::NodeId>{1}; },
                10ms),
            host::SessionedPort::Initiate::kSent);
  const std::uint64_t token = transport_.requests.at(0).token;
  const auto reply = encode_u64(42);

  // The responder's reply was duplicated: two copies, same token. The first
  // closes the session and merges; the second is stale by construction.
  EXPECT_TRUE(port_.on_response(agent_, ctx_, 1, token, reply));
  EXPECT_FALSE(port_.on_response(agent_, ctx_, 1, token, reply));

  EXPECT_EQ(counts_.responses_handled, 1u);
  ASSERT_EQ(counts_.received_ordinals.size(), 1u);
  EXPECT_EQ(counts_.received_ordinals[0], 42u);
  EXPECT_EQ(counters_.dropped_messages, 1u);
  EXPECT_FALSE(port_.session().busy());
}

TEST_F(SessionedPortDuplicationTest, EachRequestCopyIsAnsweredWithTwoCopies) {
  const auto request = encode_u64(7);
  // Two request copies arrive (the peer's send was duplicated); the port is
  // idle, so both are answered — and each reply is duplicated in turn.
  EXPECT_TRUE(port_.on_request(agent_, ctx_, 2, 7, request));
  EXPECT_TRUE(port_.on_request(agent_, ctx_, 2, 7, request));

  EXPECT_EQ(counts_.requests_handled, 2u);
  ASSERT_EQ(transport_.responses.size(), 4u);
  for (const auto& sent : transport_.responses) {
    EXPECT_EQ(sent.to, 2u);
    EXPECT_EQ(sent.token, 7u);
  }
  EXPECT_EQ(counters_.duplicated_messages, 2u);
  EXPECT_EQ(transport_.gossip_received, 2u);
}

TEST_F(SessionedPortDuplicationTest, BusyPortNacksInsteadOfAnswering) {
  ASSERT_EQ(port_.initiate(
                agent_, ctx_, [] { return std::optional<host::NodeId>{1}; },
                10ms),
            host::SessionedPort::Initiate::kSent);
  EXPECT_FALSE(port_.on_request(agent_, ctx_, 2, 9, encode_u64(9)));
  ASSERT_EQ(transport_.busys.size(), 1u);
  EXPECT_EQ(transport_.busys[0].to, 2u);
  EXPECT_EQ(transport_.busys[0].token, 9u);
  EXPECT_EQ(counters_.busy_rejections, 1u);
  EXPECT_EQ(counts_.requests_handled, 0u);
}

// --------------------------------------------------------------------------
// Real runtimes: with duplicate_rate = 1 every logical gossip send resolves
// to one duplication fault, so the counters must track byte-accounted sends
// exactly — whatever the wall-clock schedule did.
// --------------------------------------------------------------------------

/// Minimal per-node agent for the threaded runtimes: no shared state.
class EchoAgent final : public host::NodeAgent {
 public:
  std::span<const std::byte> make_request(host::AgentContext&) override {
    scratch_ = encode_u64(1);
    return scratch_;
  }
  std::span<const std::byte> handle_request(
      host::AgentContext&, std::span<const std::byte>) override {
    scratch_ = encode_u64(2);
    return scratch_;
  }

 private:
  std::vector<std::byte> scratch_;
};

TEST(DuplicationRuntimeTest, ClusterDuplicatesEveryLogicalSend) {
  runtime::ClusterConfig config;
  config.gossip_period = 2ms;
  config.response_timeout = 10ms;
  config.overlay_degree = 3;
  config.seed = 0xd0b2;
  config.faults = always_duplicate();
  runtime::Cluster cluster(config, iota_values(4), [](const host::AgentContext&) {
    return std::make_unique<EchoAgent>();
  });
  cluster.start();
  std::this_thread::sleep_for(50ms);
  cluster.stop();

  const host::TrafficStats total = cluster.total_traffic();
  EXPECT_GT(total.on(host::Channel::kAggregation).messages_sent, 0u);
  EXPECT_EQ(total.duplicated_messages,
            total.on(host::Channel::kAggregation).messages_sent);
}

TEST(DuplicationRuntimeTest, UdpPeersDuplicateEveryLogicalSend) {
  constexpr std::size_t kPeers = 3;
  std::vector<std::unique_ptr<runtime::UdpEndpoint>> endpoints;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < kPeers; ++i) {
    endpoints.push_back(std::make_unique<runtime::UdpEndpoint>());
    ports.push_back(endpoints.back()->port());
  }
  runtime::UdpDirectory directory(iota_values(kPeers), ports);

  runtime::UdpPeerConfig config;
  config.gossip_period = 2ms;
  config.response_timeout = 10ms;
  config.seed = 0xd0b3;
  config.faults = always_duplicate();

  std::vector<std::unique_ptr<runtime::UdpPeer>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(std::make_unique<runtime::UdpPeer>(
        config, static_cast<host::NodeId>(i), directory, *endpoints[i],
        std::make_unique<EchoAgent>()));
  }
  for (auto& peer : peers) peer->start();
  std::this_thread::sleep_for(50ms);
  for (auto& peer : peers) peer->stop();

  const host::TrafficStats total = directory.traffic();
  EXPECT_GT(total.on(host::Channel::kAggregation).messages_sent, 0u);
  EXPECT_EQ(total.duplicated_messages,
            total.on(host::Channel::kAggregation).messages_sent);
}

}  // namespace
}  // namespace adam2
