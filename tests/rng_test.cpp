#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>

namespace adam2::rng {
namespace {

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference outputs for seed 0 (Vigna's splitmix64.c).
  std::uint64_t state = 0;
  EXPECT_EQ(split_mix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(split_mix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(split_mix64(state), 0x06c45d188009454fULL);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, SplitProducesDecorrelatedStreams) {
  Rng parent(99);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 11.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 11.0);
  }
}

TEST(RngTest, UniformMeanIsCentred) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowIsAlwaysInRange) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowIsApproximatelyUniform) {
  Rng rng(8);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, NormalHasUnitMoments) {
  Rng rng(12);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LognormalMedianIsExpMu) {
  Rng rng(14);
  std::vector<double> xs;
  const int n = 50001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(16);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

TEST(RngTest, WeightedIndexMatchesWeights) {
  Rng rng(17);
  const std::array<double, 3> weights{1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.7, 0.01);
}

TEST(RngTest, WeightedIndexSkipsZeroWeights) {
  Rng rng(18);
  const std::array<double, 3> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> xs(100);
  std::iota(xs.begin(), xs.end(), 0);
  auto shuffled = xs;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(xs.begin(), xs.end(), shuffled.begin()));
  EXPECT_NE(xs, shuffled);  // Astronomically unlikely to be identity.
}

TEST(RngTest, SampleIndicesReturnsDistinct) {
  Rng rng(20);
  const auto picked = rng.sample_indices(1000, 50);
  ASSERT_EQ(picked.size(), 50u);
  const std::set<std::size_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 50u);
  for (std::size_t idx : picked) EXPECT_LT(idx, 1000u);
}

TEST(RngTest, SampleIndicesReturnsAllWhenKTooLarge) {
  Rng rng(21);
  const auto picked = rng.sample_indices(10, 50);
  ASSERT_EQ(picked.size(), 10u);
  const std::set<std::size_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleIndicesIsUnbiased) {
  Rng rng(22);
  std::array<int, 10> counts{};
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t idx : rng.sample_indices(10, 3)) ++counts[idx];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

}  // namespace
}  // namespace adam2::rng
