#include <gtest/gtest.h>

#include <cmath>

#include "rng/rng.hpp"
#include "stats/cdf.hpp"
#include "stats/error_metrics.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace adam2::stats {
namespace {

// ---------------------------------------------------------------- Empirical

TEST(EmpiricalCdfTest, StepFunctionBasics) {
  const EmpiricalCdf cdf{{1, 2, 2, 4}};
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(1.5), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(3.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
}

TEST(EmpiricalCdfTest, MinMaxSize) {
  const EmpiricalCdf cdf{{5, -3, 9, 5}};
  EXPECT_EQ(cdf.min(), -3);
  EXPECT_EQ(cdf.max(), 9);
  EXPECT_EQ(cdf.size(), 4u);
}

TEST(EmpiricalCdfTest, SingleValue) {
  const EmpiricalCdf cdf{{7}};
  EXPECT_DOUBLE_EQ(cdf(6.9), 0.0);
  EXPECT_DOUBLE_EQ(cdf(7.0), 1.0);
  EXPECT_EQ(cdf.min(), 7);
  EXPECT_EQ(cdf.max(), 7);
}

TEST(EmpiricalCdfTest, LastCumulativeFractionIsExactlyOne) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 37);
  const EmpiricalCdf cdf{values};
  EXPECT_DOUBLE_EQ(cdf.cumulative_fractions().back(), 1.0);
}

TEST(EmpiricalCdfTest, QuantileInvertsFractions) {
  const EmpiricalCdf cdf{{10, 20, 30, 40}};
  EXPECT_EQ(cdf.quantile(0.25), 10);
  EXPECT_EQ(cdf.quantile(0.26), 20);
  EXPECT_EQ(cdf.quantile(0.5), 20);
  EXPECT_EQ(cdf.quantile(1.0), 40);
  EXPECT_EQ(cdf.quantile(0.0), 10);
}

TEST(EmpiricalCdfTest, IsMonotoneNonDecreasing) {
  rng::Rng rng(1);
  std::vector<Value> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.range(-50, 50));
  const EmpiricalCdf cdf{values};
  double prev = -1.0;
  for (double x = -60; x <= 60; x += 0.5) {
    EXPECT_GE(cdf(x), prev);
    prev = cdf(x);
  }
}

// ---------------------------------------------------------- PiecewiseLinear

TEST(PiecewiseLinearCdfTest, InterpolatesBetweenKnots) {
  const PiecewiseLinearCdf cdf{{{0.0, 0.0}, {10.0, 1.0}}};
  EXPECT_DOUBLE_EQ(cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf(11.0), 1.0);
}

TEST(PiecewiseLinearCdfTest, SortsUnsortedKnots) {
  const PiecewiseLinearCdf cdf{{{10.0, 1.0}, {0.0, 0.0}, {5.0, 0.2}}};
  EXPECT_DOUBLE_EQ(cdf(5.0), 0.2);
  EXPECT_DOUBLE_EQ(cdf(7.5), 0.6);
}

TEST(PiecewiseLinearCdfTest, ClampsFractions) {
  const PiecewiseLinearCdf cdf{{{0.0, -0.5}, {10.0, 1.5}}};
  EXPECT_DOUBLE_EQ(cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf(10.0), 1.0);
}

TEST(PiecewiseLinearCdfTest, CollapsesDuplicateThresholds) {
  const PiecewiseLinearCdf cdf{{{5.0, 0.2}, {5.0, 0.6}, {10.0, 1.0}}};
  EXPECT_DOUBLE_EQ(cdf(5.0), 0.6);
}

TEST(PiecewiseLinearCdfTest, InverseRoundTripsOnMonotoneCurve) {
  const PiecewiseLinearCdf cdf{{{0.0, 0.0}, {4.0, 0.25}, {8.0, 0.75}, {16.0, 1.0}}};
  for (double q : {0.1, 0.25, 0.4, 0.75, 0.9}) {
    EXPECT_NEAR(cdf(cdf.inverse(q)), q, 1e-12);
  }
  EXPECT_DOUBLE_EQ(cdf.inverse(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 16.0);
}

TEST(PiecewiseLinearCdfTest, MonotoneDetectionAndRepair) {
  const PiecewiseLinearCdf wiggly{{{0.0, 0.0}, {1.0, 0.5}, {2.0, 0.4}, {3.0, 1.0}}};
  EXPECT_FALSE(wiggly.is_monotone());
  const PiecewiseLinearCdf fixed = wiggly.make_monotone();
  EXPECT_TRUE(fixed.is_monotone());
  EXPECT_DOUBLE_EQ(fixed(2.0), 0.5);
  EXPECT_DOUBLE_EQ(fixed(1.0), 0.5);
}

TEST(PiecewiseLinearCdfTest, ArcLengthOfDiagonal) {
  const PiecewiseLinearCdf cdf{{{0.0, 0.0}, {10.0, 1.0}}};
  // Scaled by t range 10 the curve is the unit diagonal: length sqrt(2).
  EXPECT_NEAR(cdf.arc_length(10.0), std::sqrt(2.0), 1e-12);
}

TEST(PiecewiseLinearCdfTest, ArcLengthAdditive) {
  const PiecewiseLinearCdf cdf{{{0.0, 0.0}, {5.0, 0.5}, {10.0, 1.0}}};
  EXPECT_NEAR(cdf.arc_length(10.0), std::sqrt(2.0), 1e-12);
}

TEST(InterpolateWithExtremesTest, AnchorsAtZeroAndOne) {
  const std::vector<CdfPoint> points{{5.0, 0.5}};
  const auto cdf = interpolate_with_extremes(points, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.25);
}

TEST(InterpolateWithExtremesTest, DropsPointsOutsideExtremes) {
  const std::vector<CdfPoint> points{{-3.0, 0.1}, {5.0, 0.5}, {20.0, 0.9}};
  const auto cdf = interpolate_with_extremes(points, 0.0, 10.0);
  EXPECT_EQ(cdf.knots().size(), 3u);  // min anchor, interior, max anchor.
}

// ------------------------------------------------------------- ErrorMetrics

TEST(ErrorMetricsTest, PerfectApproximationHasZeroError) {
  const EmpiricalCdf truth{{0, 10}};
  // Step at 10: below 10 the fraction is 0.5.
  const PiecewiseLinearCdf approx{
      {{0.0, 0.5}, {9.9999999, 0.5}, {10.0, 1.0}}};
  const auto errors = discrete_errors(truth, approx);
  EXPECT_NEAR(errors.max_err, 0.0, 1e-7);
  EXPECT_NEAR(errors.avg_err, 0.0, 1e-7);
}

TEST(ErrorMetricsTest, ClosedFormMatchesBruteForceOnKnownCase) {
  const EmpiricalCdf truth{{0, 5, 5, 10}};
  const PiecewiseLinearCdf approx{{{0.0, 0.0}, {10.0, 1.0}}};
  const auto fast = discrete_errors(truth, approx);
  const auto brute = discrete_errors_brute(truth, approx);
  EXPECT_NEAR(fast.max_err, brute.max_err, 1e-12);
  EXPECT_NEAR(fast.avg_err, brute.avg_err, 1e-12);
}

TEST(ErrorMetricsTest, DegenerateSingleValueDomain) {
  const EmpiricalCdf truth{{42, 42, 42}};
  const PiecewiseLinearCdf approx{{{42.0, 1.0}}};
  const auto errors = discrete_errors(truth, approx);
  EXPECT_DOUBLE_EQ(errors.max_err, 0.0);
  EXPECT_DOUBLE_EQ(errors.avg_err, 0.0);
}

TEST(ErrorMetricsTest, MaximallyWrongApproximation) {
  const EmpiricalCdf truth{{0, 100}};
  // Approximation claiming everything sits at/below 0.
  const PiecewiseLinearCdf approx{{{-1.0, 1.0}, {0.0, 1.0}}};
  const auto errors = discrete_errors(truth, approx);
  EXPECT_NEAR(errors.max_err, 0.5, 1e-12);  // Truth is 0.5 on [0, 99].
}

/// Property sweep: the closed-form evaluator must agree with the brute-force
/// integer scan for random step CDFs and random piecewise approximations.
class ErrorMetricsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ErrorMetricsPropertyTest, ClosedFormMatchesBruteForce) {
  rng::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  // Random population over a smallish domain so brute force stays cheap.
  const std::size_t n = 20 + rng.below(200);
  std::vector<Value> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(rng.range(-300, 300));
  }
  const EmpiricalCdf truth{values};

  // Random approximation: knots at arbitrary (non-integer) positions.
  const std::size_t k = 2 + rng.below(12);
  std::vector<CdfPoint> knots;
  double f = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    f = std::min(1.0, f + rng.uniform() * 0.4);
    knots.push_back({rng.uniform(-350.0, 350.0), f});
  }
  const PiecewiseLinearCdf approx{std::move(knots)};

  const auto fast = discrete_errors(truth, approx);
  const auto brute = discrete_errors_brute(truth, approx);
  EXPECT_NEAR(fast.max_err, brute.max_err, 1e-9);
  EXPECT_NEAR(fast.avg_err, brute.avg_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomCases, ErrorMetricsPropertyTest,
                         ::testing::Range(0, 40));

TEST(ErrorMetricsTest, PointErrorsExactAtTrueFractions) {
  const EmpiricalCdf truth{{1, 2, 3, 4}};
  const std::vector<CdfPoint> points{{1.0, 0.25}, {3.0, 0.75}};
  const auto errors = point_errors(truth, points);
  EXPECT_DOUBLE_EQ(errors.max_err, 0.0);
  EXPECT_DOUBLE_EQ(errors.avg_err, 0.0);
}

TEST(ErrorMetricsTest, PointErrorsMeasuresDeviation) {
  const EmpiricalCdf truth{{1, 2, 3, 4}};
  const std::vector<CdfPoint> points{{1.0, 0.35}, {3.0, 0.75}};
  const auto errors = point_errors(truth, points);
  EXPECT_NEAR(errors.max_err, 0.1, 1e-12);
  EXPECT_NEAR(errors.avg_err, 0.05, 1e-12);
}

TEST(ErrorMetricsTest, PointErrorsEmptyPointsIsZero) {
  const EmpiricalCdf truth{{1, 2}};
  const auto errors = point_errors(truth, {});
  EXPECT_DOUBLE_EQ(errors.max_err, 0.0);
  EXPECT_DOUBLE_EQ(errors.avg_err, 0.0);
}

TEST(ErrorMetricsTest, EstimationErrorsAgainstVerification) {
  const PiecewiseLinearCdf approx{{{0.0, 0.0}, {10.0, 1.0}}};
  // Verification points with exact fractions 0.3 and 0.9 at t=5 and t=8.
  const std::vector<CdfPoint> verification{{5.0, 0.3}, {8.0, 0.9}};
  const auto errors = estimation_errors(approx, verification);
  EXPECT_NEAR(errors.max_err, 0.2, 1e-12);   // |0.5-0.3|
  EXPECT_NEAR(errors.avg_err, 0.15, 1e-12);  // (0.2 + 0.1)/2
}

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, EquiWidthCountsSumToTotal) {
  const std::vector<Value> values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto counts = equi_width_counts(values, 5, 0.0, 10.0);
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  EXPECT_EQ(total, values.size());
}

TEST(HistogramTest, EquiWidthClampsOutliers) {
  const std::vector<Value> values{-100, 5, 200};
  const auto counts = equi_width_counts(values, 2, 0.0, 10.0);
  EXPECT_EQ(counts[0], 1u);  // -100 clamped into the first bucket.
  EXPECT_EQ(counts[1], 2u);  // 5 is in [5,10]; 200 clamped into the last.
}

TEST(HistogramTest, EquiDepthBoundariesAreQuantiles) {
  std::vector<Value> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  const auto bounds = equi_depth_boundaries(values, 4);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 25.0);
  EXPECT_DOUBLE_EQ(bounds[1], 50.0);
  EXPECT_DOUBLE_EQ(bounds[2], 75.0);
}

TEST(HistogramTest, CompressPreservesTotalWeight) {
  rng::Rng rng(11);
  std::vector<WeightedValue> samples;
  double total = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double w = rng.uniform(0.1, 3.0);
    samples.push_back({rng.uniform(0.0, 100.0), w});
    total += w;
  }
  const auto compressed = compress_equi_depth(std::move(samples), 16);
  ASSERT_LE(compressed.size(), 16u);
  double compressed_total = 0.0;
  for (const WeightedValue& c : compressed) compressed_total += c.weight;
  EXPECT_NEAR(compressed_total, total, 1e-9 * total);
}

TEST(HistogramTest, CompressKeepsCentroidsSortedAndBalanced) {
  std::vector<WeightedValue> samples;
  for (int i = 0; i < 64; ++i) samples.push_back({static_cast<double>(i), 1.0});
  const auto compressed = compress_equi_depth(std::move(samples), 8);
  ASSERT_EQ(compressed.size(), 8u);
  for (std::size_t i = 1; i < compressed.size(); ++i) {
    EXPECT_LE(compressed[i - 1].value, compressed[i].value);
  }
  for (const WeightedValue& c : compressed) {
    EXPECT_NEAR(c.weight, 8.0, 1e-9);
  }
}

TEST(HistogramTest, CompressNoOpWhenUnderCapacity) {
  std::vector<WeightedValue> samples{{1.0, 1.0}, {2.0, 2.0}};
  const auto compressed = compress_equi_depth(samples, 10);
  EXPECT_EQ(compressed, samples);
}

TEST(HistogramTest, CentroidsToCdfMidpointConvention) {
  const std::vector<WeightedValue> centroids{{0.0, 1.0}, {10.0, 1.0}};
  const auto cdf = centroids_to_cdf(centroids);
  EXPECT_DOUBLE_EQ(cdf(0.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(10.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(5.0), 0.5);
}

TEST(HistogramTest, CentroidsToCdfApproximatesUniform) {
  std::vector<WeightedValue> centroids;
  for (int i = 0; i < 100; ++i) {
    centroids.push_back({static_cast<double>(i), 1.0});
  }
  const auto cdf = centroids_to_cdf(centroids);
  EXPECT_NEAR(cdf(49.5), 0.5, 0.01);
}

// ------------------------------------------------------------------ Summary

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  const RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  rng::Rng rng(5);
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(PercentileTest, NearestRank) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

}  // namespace
}  // namespace adam2::stats
