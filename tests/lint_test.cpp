// Unit tests for the adam2_lint rule engine (tools/lint/). Two layers:
//
//  * in-memory snippets via lint_source(), pinning exactly which rule fires
//    on which line and that legitimate idioms stay silent;
//  * the on-disk fixture corpus under tests/lint_fixtures/, which is also
//    what the per-fixture CLI ctest entries (label `lint`, WILL_FAIL) and the
//    real-tree self-check exercise end to end.
//
// The fixture paths nest src/... *inside* tests/ on purpose: logical_path()
// classifies by the last path marker, so the corpus is linted under the same
// src-scoped rules as real library code.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

namespace lint = adam2::lint;

namespace {

std::vector<lint::Diagnostic> run(std::string_view path,
                                  std::string_view text) {
  return lint::lint_source(path, text, lint::Options{});
}

bool fires(const std::vector<lint::Diagnostic>& diags, const std::string& rule,
           int line) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const lint::Diagnostic& d) {
                       return d.rule == rule && d.line == line;
                     });
}

// Fixture corpus location: tests live in <repo>/tests, and ctest runs from
// the build tree, so resolve relative to this source file.
std::filesystem::path fixture_root() {
  return std::filesystem::path(__FILE__).parent_path() / "lint_fixtures";
}

// --- logical_path ----------------------------------------------------------

TEST(LogicalPath, TakesSuffixFromLastMarker) {
  EXPECT_EQ(lint::logical_path("/repo/src/core/protocol.cpp"),
            "src/core/protocol.cpp");
  // Nested markers: the *last* one wins, so fixture files under tests/
  // classify as library code.
  EXPECT_EQ(lint::logical_path("/repo/tests/lint_fixtures/src/core/x.cpp"),
            "src/core/x.cpp");
  EXPECT_EQ(lint::logical_path("bench/exchange_bench.cpp"),
            "bench/exchange_bench.cpp");
}

TEST(LogicalPath, RequiresComponentBoundary) {
  // "mysrc/" must not count as the marker "src/".
  EXPECT_EQ(lint::logical_path("/repo/mysrc/core/x.cpp"),
            "/repo/mysrc/core/x.cpp");
}

// --- R1 nondeterminism -----------------------------------------------------

TEST(Nondeterminism, FlagsEntropyAndClocks) {
  const auto diags = run("src/core/a.cpp",
                         "#include <random>\n"
                         "unsigned f() { std::random_device d; return d(); }\n"
                         "int g() { return std::rand(); }\n"
                         "long h() { return std::time(nullptr); }\n"
                         "long i() { return std::chrono::steady_clock::now()"
                         ".time_since_epoch().count(); }\n");
  EXPECT_TRUE(fires(diags, "nondeterminism", 2));
  EXPECT_TRUE(fires(diags, "nondeterminism", 3));
  EXPECT_TRUE(fires(diags, "nondeterminism", 4));
  EXPECT_TRUE(fires(diags, "nondeterminism", 5));
  EXPECT_EQ(diags.size(), 4u);
}

TEST(Nondeterminism, IgnoresMembersAndDeclarations) {
  const auto diags = run("src/core/a.cpp",
                         "struct M { double time = 0; long time_ms() const; };\n"
                         "double f(const M& m) { return m.time; }\n"
                         "struct T { long time() const; };\n"  // declaration
                         "long g(const T& t) { return t.time(); }\n"
                         "long h(const T* t) { return t->time(); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(Nondeterminism, ClockWhitelistIsPathScoped) {
  const std::string text =
      "long f() { return std::chrono::system_clock::now()"
      ".time_since_epoch().count(); }\n";
  EXPECT_TRUE(fires(run("src/core/a.cpp", text), "nondeterminism", 1));
  EXPECT_TRUE(run("src/runtime/clock.cpp", text).empty());
  EXPECT_TRUE(run("bench/timing.cpp", text).empty());
  // Entropy stays banned even on the clock whitelist.
  EXPECT_TRUE(fires(run("src/runtime/clock.cpp",
                        "#include <random>\nstd::random_device d;\n"),
                    "nondeterminism", 2));
}

// --- R2 rng-copy -----------------------------------------------------------

TEST(RngCopy, FlagsByValueParameters) {
  EXPECT_TRUE(fires(run("src/core/a.cpp",
                        "double f(rng::Rng rng) { return 0; }\n"),
                    "rng-copy", 1));
  EXPECT_TRUE(fires(run("src/core/a.cpp", "void g(rng::Rng, int);\n"),
                    "rng-copy", 1));
  EXPECT_TRUE(fires(run("src/core/a.cpp",
                        "void h(int a, rng::Rng r, int b);\n"),
                    "rng-copy", 1));
}

TEST(RngCopy, FlagsCopyInitialisedLocals) {
  EXPECT_TRUE(fires(run("src/core/a.cpp",
                        "void f(rng::Rng& src) { rng::Rng fork = src; }\n"),
                    "rng-copy", 1));
}

TEST(RngCopy, AcceptsReferencesFactoriesAndMembers) {
  const auto diags = run(
      "src/core/a.cpp",
      "double a(rng::Rng& rng);\n"
      "double b(const rng::Rng& rng);\n"
      "double c(rng::Rng&& rng);\n"   // ownership transfer
      "double d(rng::Rng* rng);\n"
      "rng::Rng make_stream(std::uint64_t seed);\n"  // factory declaration
      "void e(rng::Rng& rng) { rng::Rng child = rng.split(7); }\n"
      "struct S { rng::Rng stream{11}; };\n"  // owning member
      "struct T { rng::Rng stream_; };\n");
  EXPECT_TRUE(diags.empty());
}

TEST(RngCopy, AppliesOutsideSrcToo) {
  // Stream discipline is a project-wide contract; tests and tools are not
  // exempt (they annotate deliberate copies instead).
  EXPECT_TRUE(fires(run("tests/a_test.cpp",
                        "void f(rng::Rng rng) {}\n"),
                    "rng-copy", 1));
}

// --- R3 layering -----------------------------------------------------------

TEST(Layering, FlagsUpwardIncludes) {
  EXPECT_TRUE(fires(run("src/core/a.hpp", "#include \"sim/engine.hpp\"\n"),
                    "layering", 1));
  EXPECT_TRUE(fires(run("src/stats/a.hpp", "#include \"core/estimate.hpp\"\n"),
                    "layering", 1));
  EXPECT_TRUE(fires(run("src/host/a.hpp", "#include \"runtime/cluster.hpp\"\n"),
                    "layering", 1));
  // Observability must never reach back into the engines it records.
  EXPECT_TRUE(fires(run("src/obs/a.hpp", "#include \"sim/engine.hpp\"\n"),
                    "layering", 1));
  EXPECT_TRUE(fires(run("src/obs/a.hpp", "#include \"runtime/cluster.hpp\"\n"),
                    "layering", 1));
}

TEST(Layering, AcceptsDownSameLayerAndSystem) {
  EXPECT_TRUE(run("src/core/a.hpp",
                  "#include <vector>\n"
                  "#include \"core/instance.hpp\"\n"
                  "#include \"stats/sketch.hpp\"\n"
                  "#include \"wire/ids.hpp\"\n"
                  "#include \"rng/rng.hpp\"\n")
                  .empty());
  // data and wire share a rank; the edge is legal in both directions.
  EXPECT_TRUE(run("src/wire/a.hpp", "#include \"data/source.hpp\"\n").empty());
  // host and obs share a rank: the fabric hands outcome structs to the
  // recorder, and the recorder absorbs host::TrafficStats.
  EXPECT_TRUE(run("src/host/a.hpp", "#include \"obs/events.hpp\"\n").empty());
  EXPECT_TRUE(run("src/obs/a.hpp", "#include \"host/traffic.hpp\"\n").empty());
  // tools/tests/bench sit on top of everything.
  EXPECT_TRUE(run("tools/adam2_sim.cpp",
                  "#include \"sim/engine.hpp\"\n"
                  "#include \"baselines/equidepth.hpp\"\n")
                  .empty());
}

// --- R4 unordered-iter -----------------------------------------------------

TEST(UnorderedIter, FlagsRangeForAndBegin) {
  const auto diags = run(
      "src/core/a.cpp",
      "#include <unordered_map>\n"
      "struct S {\n"
      "  std::unordered_map<int, double> active;\n"
      "  double sum() const {\n"
      "    double t = 0;\n"
      "    for (const auto& [k, v] : active) t += v;\n"
      "    return t;\n"
      "  }\n"
      "  auto first() const { return active.begin(); }\n"
      "};\n");
  EXPECT_TRUE(fires(diags, "unordered-iter", 6));
  EXPECT_TRUE(fires(diags, "unordered-iter", 9));
}

TEST(UnorderedIter, IgnoresOrderedContainersAndLookups) {
  // src/stats/: in the hot path (src/core/) the declarations themselves
  // would trip R6 hot-path-container, which is not under test here.
  EXPECT_TRUE(run("src/stats/a.cpp",
                  "#include <map>\n#include <unordered_map>\n"
                  "struct S {\n"
                  "  std::map<int, double> ordered;\n"
                  "  std::unordered_map<int, double> index;\n"
                  "  double f(int k) const {\n"
                  "    double t = 0;\n"
                  "    for (const auto& [a, b] : ordered) t += b;\n"
                  "    auto it = index.find(k);\n"  // point lookup: fine
                  "    return it == index.end() ? t : it->second;\n"
                  "  }\n"
                  "};\n")
                  .empty());
}

TEST(UnorderedIter, LibraryScopedOnly) {
  // Tests/tools may iterate unordered containers (assertion order is local).
  EXPECT_TRUE(run("tests/a_test.cpp",
                  "#include <unordered_map>\n"
                  "std::unordered_map<int, int> m;\n"
                  "int f() { int t = 0; for (auto& [k, v] : m) t += v; "
                  "return t; }\n")
                  .empty());
}

// --- R5 confinement --------------------------------------------------------

TEST(Confinement, FlagsIoAndConcurrencyInLibraries) {
  const auto diags = run("src/stats/a.cpp",
                         "#include <iostream>\n"
                         "#include <mutex>\n"
                         "std::mutex m;\n"
                         "void f() { std::cout << 1; }\n"
                         "void g() { printf(\"x\"); }\n");
  EXPECT_TRUE(fires(diags, "confinement", 2));  // <mutex>
  EXPECT_TRUE(fires(diags, "confinement", 3));  // std::mutex
  EXPECT_TRUE(fires(diags, "confinement", 4));  // std::cout
  EXPECT_TRUE(fires(diags, "confinement", 5));  // printf
}

TEST(Confinement, SubstratesMayUseConcurrencyButStillNotPrint) {
  const std::string concurrency = "#include <mutex>\nstd::mutex m;\n";
  EXPECT_TRUE(run("src/host/pool.cpp", concurrency).empty());
  EXPECT_TRUE(run("src/runtime/cluster.cpp", concurrency).empty());
  // The I/O half of the rule has no whitelist inside src/: even the
  // substrates return data rather than print.
  EXPECT_TRUE(fires(run("src/host/pool.cpp",
                        "#include <iostream>\nvoid f() { std::cout << 1; }\n"),
                    "confinement", 2));
}

TEST(Confinement, ToolsAndBenchesAreExempt) {
  const std::string text =
      "#include <mutex>\n#include <iostream>\n"
      "std::mutex m;\nvoid f() { std::cout << 1; }\n";
  EXPECT_TRUE(run("tools/adam2_sim.cpp", text).empty());
  EXPECT_TRUE(run("bench/exchange_bench.cpp", text).empty());
}

// --- R6 hot-path-container --------------------------------------------------

TEST(HotPathContainer, FlagsNodeMapsInCore) {
  const auto diags = run("src/core/a.hpp",
                         "#include <map>\n"
                         "#include <unordered_map>\n"
                         "struct Agent {\n"
                         "  std::unordered_map<int, double> active;\n"
                         "  std::map<int, double> pending;\n"
                         "};\n");
  EXPECT_TRUE(fires(diags, "hot-path-container", 4));
  EXPECT_TRUE(fires(diags, "hot-path-container", 5));
}

TEST(HotPathContainer, AllowListedColdPathsAndOtherLayersPass) {
  // The annotation records a reviewed cold path.
  EXPECT_TRUE(run("src/core/a.hpp",
                  "#include <map>\n"
                  "// adam2-lint: allow(hot-path-container)\n"
                  "std::map<int, double> completed;\n")
                  .empty());
  // Outside the gossip hot path the rule does not apply.
  EXPECT_TRUE(run("src/obs/a.hpp",
                  "#include <map>\n"
                  "std::map<int, double> metrics;\n")
                  .empty());
  EXPECT_TRUE(run("tools/sim.cpp",
                  "#include <map>\n"
                  "std::map<int, double> flags;\n")
                  .empty());
}

TEST(HotPathContainer, RequiresStdQualifiedTemplate) {
  // Sets are membership markers, not per-instance state: not flagged.
  EXPECT_TRUE(run("src/core/a.hpp",
                  "#include <unordered_set>\n"
                  "std::unordered_set<int> finalized;\n")
                  .empty());
  // Other namespaces' types and non-template uses of the name pass.
  EXPECT_TRUE(run("src/core/a.hpp",
                  "flat::map<int, double> ok;\n"
                  "int map = 0;\n"
                  "double f() { return map + 1.0; }\n")
                  .empty());
}

// --- suppression directives ------------------------------------------------

TEST(Suppression, TrailingAllowSilencesThatLine) {
  EXPECT_TRUE(run("src/core/a.cpp",
                  "unsigned f() {\n"
                  "  std::random_device d;  // adam2-lint: allow(nondeterminism)\n"
                  "  return d();\n"
                  "}\n")
                  .empty());
}

TEST(Suppression, PrecedingCommentCoversNextLine) {
  EXPECT_TRUE(run("src/core/a.cpp",
                  "// adam2-lint: allow(nondeterminism)\n"
                  "std::random_device d;\n")
                  .empty());
}

TEST(Suppression, AllowFileCoversWholeFileForThatRuleOnly) {
  const auto diags = run("src/core/a.cpp",
                         "// adam2-lint: allow-file(confinement)\n"
                         "#include <mutex>\n"
                         "#include <random>\n"
                         "std::mutex m;\n"
                         "std::random_device d;\n");
  EXPECT_FALSE(fires(diags, "confinement", 2));
  EXPECT_FALSE(fires(diags, "confinement", 4));
  EXPECT_TRUE(fires(diags, "nondeterminism", 5));  // other rules still apply
}

TEST(Suppression, WrongRuleDoesNotSilence) {
  EXPECT_TRUE(fires(run("src/core/a.cpp",
                        "std::random_device d;  "
                        "// adam2-lint: allow(confinement)\n"),
                    "nondeterminism", 1));
}

TEST(Suppression, MultipleRulesInOneDirective) {
  EXPECT_TRUE(run("src/core/a.cpp",
                  "#include <mutex>  "
                  "// adam2-lint: allow(confinement, layering)\n")
                  .empty());
}

// --- comment/string robustness ---------------------------------------------

TEST(Lexer, CommentsAndStringsAreNotCode) {
  EXPECT_TRUE(run("src/core/a.cpp",
                  "// std::random_device in a comment is fine\n"
                  "/* so is rand() in a block comment */\n"
                  "const char* s = \"std::random_device rand() time()\";\n"
                  "const char* r = R\"(std::mutex printf)\";\n")
                  .empty());
}

// --- fixture corpus (end to end, through lint_file) -------------------------

TEST(FixtureCorpus, EachBadFixtureFiresItsRule) {
  const auto root = fixture_root();
  ASSERT_TRUE(std::filesystem::exists(root)) << root;
  const struct {
    const char* file;
    const char* rule;
    std::size_t count;
  } kExpected[] = {
      {"src/core/r1_nondeterminism.cpp", "nondeterminism", 5},
      {"src/core/r2_rng_copy.cpp", "rng-copy", 3},
      {"src/core/r3_layering.hpp", "layering", 2},
      {"src/core/r4_unordered_iter.cpp", "unordered-iter", 2},
      {"src/core/r5_confinement.cpp", "confinement", 5},
      {"src/core/r6_hot_path_container.cpp", "hot-path-container", 3},
      {"src/obs/r3_reaches_engines.hpp", "layering", 2},
  };
  for (const auto& expected : kExpected) {
    const auto diags = lint::lint_file(root / expected.file);
    EXPECT_EQ(diags.size(), expected.count) << expected.file;
    for (const auto& d : diags) {
      EXPECT_EQ(d.rule, expected.rule) << d.file << ":" << d.line;
    }
  }
}

TEST(FixtureCorpus, SuppressedAndWhitelistedFixturesBehave) {
  const auto root = fixture_root();
  // suppressed.cpp: everything annotated except the wrong-rule case.
  const auto suppressed = lint::lint_file(root / "src/core/suppressed.cpp");
  ASSERT_EQ(suppressed.size(), 1u);
  EXPECT_EQ(suppressed[0].rule, "nondeterminism");
  EXPECT_EQ(suppressed[0].line, 33);
  // Whitelist and negative control: zero diagnostics.
  EXPECT_TRUE(lint::lint_file(root / "src/runtime/clock_ok.cpp").empty());
  EXPECT_TRUE(lint::lint_file(root / "src/core/clean.cpp").empty());
  EXPECT_TRUE(lint::lint_file(root / "src/obs/clean.hpp").empty());
}

TEST(FixtureCorpus, TreeWalkSkipsFixtures) {
  // Walking tests/ must skip lint_fixtures entirely — otherwise the real-tree
  // self-check would trip over the corpus.
  const auto diags = lint::lint_tree({fixture_root().parent_path()});
  for (const auto& d : diags) {
    EXPECT_EQ(d.file.find("lint_fixtures"), std::string::npos)
        << d.file << ":" << d.line;
  }
}

TEST(FixtureCorpus, RealTreeIsClean) {
  // The acceptance criterion behind the whole PR: the shipped tree carries
  // zero unannotated violations. (Also enforced as a standalone ctest entry
  // driving the CLI, and in CI.)
  const auto repo = fixture_root().parent_path().parent_path();
  const auto diags =
      lint::lint_tree({repo / "src", repo / "tools", repo / "bench"});
  for (const auto& d : diags) {
    ADD_FAILURE() << d.file << ":" << d.line << ": [" << d.rule << "] "
                  << d.message;
  }
}

}  // namespace
