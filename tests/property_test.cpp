// Cross-seed property sweeps over the full protocol stack: invariants that
// must hold for *every* seed, population shape, overlay, and join policy —
// not just the handful of seeds the unit tests pin.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluation.hpp"
#include "core/system.hpp"
#include "data/boinc_synth.hpp"
#include "sim/cyclon.hpp"

namespace adam2 {
namespace {

std::vector<stats::Value> population_for(int variant, std::size_t n,
                                         std::uint64_t seed) {
  rng::Rng rng(seed);
  switch (variant % 4) {
    case 0: return data::generate_population(data::Attribute::kCpuMflops, n, rng);
    case 1: return data::generate_population(data::Attribute::kRamMb, n, rng);
    case 2: return data::generate_population(data::Attribute::kBandwidthKbps, n, rng);
    default: {
      // Adversarial: few distinct values, extreme skew.
      std::vector<stats::Value> values;
      values.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        values.push_back(rng.bernoulli(0.9) ? 1 : 1'000'000);
      }
      return values;
    }
  }
}

class ProtocolPropertyTest : public ::testing::TestWithParam<int> {};

/// For every configuration: after one full instance every peer holds an
/// estimate whose point fractions match the true CDF to averaging accuracy,
/// whose extremes are exact, and whose size estimate is near-exact.
TEST_P(ProtocolPropertyTest, InstanceInvariantsHoldForAllSeeds) {
  const int variant = GetParam();
  const auto seed = static_cast<std::uint64_t>(variant) * 1337 + 11;
  const std::size_t n = 150 + (static_cast<std::size_t>(variant) * 37) % 250;
  const auto values = population_for(variant, n, seed);
  const stats::EmpiricalCdf truth{values};

  core::SystemConfig config;
  config.engine.seed = seed;
  config.protocol.lambda = 8 + variant % 20;
  config.protocol.instance_ttl = 50;
  config.protocol.heuristic = static_cast<core::SelectionHeuristic>(variant % 3);
  config.overlay = variant % 2 == 0 ? core::OverlayKind::kStaticRandom
                                    : core::OverlayKind::kCyclon;
  config.overlay_degree = 8 + variant % 8;
  core::Adam2System system(config, values);
  system.run_instance();

  for (host::NodeId node : system.engine().live_ids()) {
    const auto& est = system.agent_of(node).estimate();
    ASSERT_TRUE(est.has_value()) << "node " << node;
    // Extremes are exact (min/max merge converges to the global extremes).
    EXPECT_DOUBLE_EQ(est->min_value, static_cast<double>(truth.min()));
    EXPECT_DOUBLE_EQ(est->max_value, static_cast<double>(truth.max()));
    // Size estimation.
    EXPECT_NEAR(est->n_estimate, static_cast<double>(n),
                static_cast<double>(n) * 1e-3);
    // Interpolation points carry true fractions to averaging accuracy.
    for (const stats::CdfPoint& p : est->points) {
      EXPECT_NEAR(p.f, truth(p.t), 1e-4)
          << "node " << node << " at t=" << p.t;
      EXPECT_GE(p.f, -1e-9);
      EXPECT_LE(p.f, 1.0 + 1e-9);
    }
    // The interpolated CDF is a valid monotone CDF.
    EXPECT_TRUE(est->cdf.is_monotone());
    EXPECT_DOUBLE_EQ(est->cdf(est->min_value - 1.0), 0.0);
    EXPECT_DOUBLE_EQ(est->cdf(est->max_value), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolPropertyTest, ::testing::Range(0, 12));

class ChurnPropertyTest : public ::testing::TestWithParam<int> {};

/// Under churn, whatever estimates exist must still be structurally valid
/// and the population size must stay constant.
TEST_P(ChurnPropertyTest, StructuralInvariantsUnderChurn) {
  const int variant = GetParam();
  const auto seed = static_cast<std::uint64_t>(variant) * 7001 + 3;
  const std::size_t n = 300;
  const auto values = population_for(variant, n, seed);

  core::SystemConfig config;
  config.engine.seed = seed;
  config.engine.churn_rate = 0.005 * (1 + variant % 3);
  config.protocol.lambda = 15;
  config.protocol.instance_ttl = 25;
  config.overlay = core::OverlayKind::kCyclon;
  const int captured = variant;
  core::Adam2System system(config, values, [captured](rng::Rng& rng) {
    return population_for(captured, 1, rng())[0];
  });

  for (int i = 0; i < 3; ++i) system.run_instance();

  EXPECT_EQ(system.engine().live_count(), n);
  for (host::NodeId node : system.engine().live_ids()) {
    const auto& est = system.agent_of(node).estimate();
    if (!est) continue;  // Recently churned in, bootstrap found nothing yet.
    EXPECT_TRUE(est->cdf.is_monotone());
    for (const stats::CdfPoint& p : est->points) {
      EXPECT_GE(p.f, -1e-9);
      EXPECT_LE(p.f, 1.0 + 1e-9);
      EXPECT_TRUE(std::isfinite(p.t));
    }
    EXPECT_LE(est->min_value, est->max_value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnPropertyTest, ::testing::Range(0, 8));

class TrafficPropertyTest : public ::testing::TestWithParam<int> {};

/// Conservation of traffic: bytes sent == bytes received globally, per-node
/// totals sum to the global counters, and all aggregation traffic happens
/// only while an instance is live.
TEST_P(TrafficPropertyTest, AccountingIsConsistent) {
  const int variant = GetParam();
  const auto seed = static_cast<std::uint64_t>(variant) * 97 + 29;
  const auto values = population_for(variant, 200, seed);

  core::SystemConfig config;
  config.engine.seed = seed;
  config.protocol.lambda = 10;
  config.protocol.instance_ttl = 20;
  config.overlay = variant % 2 == 0 ? core::OverlayKind::kStaticRandom
                                    : core::OverlayKind::kCyclon;
  core::Adam2System system(config, values);

  // Idle rounds: no aggregation traffic at all.
  system.run_rounds(3);
  EXPECT_EQ(system.engine()
                .total_traffic()
                .on(host::Channel::kAggregation)
                .messages_sent,
            0u);

  system.run_instance();
  const auto& total = system.engine().total_traffic();
  for (host::Channel channel :
       {host::Channel::kAggregation, host::Channel::kOverlay,
        host::Channel::kBootstrap}) {
    const auto& t = total.on(channel);
    EXPECT_EQ(t.bytes_sent, t.bytes_received) << channel_name(channel);
    EXPECT_EQ(t.messages_sent, t.messages_received);

    std::uint64_t node_bytes = 0;
    for (host::NodeId id : system.engine().live_ids()) {
      node_bytes += system.engine().node(id).traffic.on(channel).bytes_sent;
    }
    EXPECT_EQ(node_bytes, t.bytes_sent) << channel_name(channel);
  }
  EXPECT_GT(total.on(host::Channel::kAggregation).messages_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace adam2
