#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/evaluation.hpp"
#include "core/system.hpp"
#include "data/boinc_synth.hpp"
#include "stats/error_metrics.hpp"

namespace adam2::core {
namespace {

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<stats::Value>(i + 1);
  }
  return values;
}

SystemConfig small_system(std::uint64_t seed = 1) {
  SystemConfig config;
  config.engine.seed = seed;
  config.protocol.lambda = 10;
  config.protocol.instance_ttl = 30;
  config.overlay = OverlayKind::kStaticRandom;
  config.overlay_degree = 8;
  return config;
}

// ------------------------------------------------------ basic convergence

TEST(ProtocolTest, FractionsConvergeToExactValuesAtPoints) {
  // Values 1..200: for any threshold t the true fraction is floor(t)/200.
  SystemConfig config = small_system();
  config.protocol.instance_ttl = 60;
  Adam2System system(config, iota_values(200));
  const auto id = system.start_instance(host::NodeId{0});
  system.run_rounds(61);

  for (host::NodeId node : system.engine().live_ids()) {
    const auto& estimate = system.agent_of(node).estimate();
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(estimate->instance, id);
    for (const stats::CdfPoint& p : estimate->points) {
      const double truth = std::floor(p.t) / 200.0;
      EXPECT_NEAR(p.f, truth, 1e-7) << "at t=" << p.t;
    }
  }
}

TEST(ProtocolTest, ConvergenceIsExponentiallyFast) {
  // §VII-A: from round ~10 the error at interpolation points decreases at an
  // almost perfectly exponential rate.
  SystemConfig config = small_system(2);
  config.protocol.instance_ttl = 45;
  Adam2System system(config, iota_values(300));
  const stats::EmpiricalCdf truth{iota_values(300)};
  const auto id = system.start_instance();

  std::vector<double> errors;
  for (int round = 0; round < 40; ++round) {
    system.run_rounds(1);
    const auto e = evaluate_instance_points(system.engine(), id, truth);
    errors.push_back(e.avg_err);
  }
  // Error after 40 rounds is many orders of magnitude below round 10.
  EXPECT_LT(errors[39], errors[9] * 1e-3);
  EXPECT_LT(errors[39], 1e-4);
}

TEST(ProtocolTest, AllPeersConvergeToNearlyIdenticalEstimates) {
  // §VII-A: cross-peer standard deviation below 1e-5.
  SystemConfig config = small_system(3);
  config.protocol.instance_ttl = 60;
  Adam2System system(config, iota_values(400));
  const stats::EmpiricalCdf truth{iota_values(400)};
  system.run_instance();
  const auto errors = evaluate_estimates(system.engine(), truth);
  EXPECT_EQ(errors.peers, 400u);
  EXPECT_LT(errors.stddev_avg, 1e-5);
}

TEST(ProtocolTest, SystemSizeEstimateIsAccurate) {
  for (std::size_t n : {50u, 200u, 1000u}) {
    SystemConfig config = small_system(4);
    config.protocol.instance_ttl = 60;
    Adam2System system(config, iota_values(n));
    system.run_instance();
    for (host::NodeId node : system.engine().live_ids()) {
      const auto& estimate = system.agent_of(node).estimate();
      ASSERT_TRUE(estimate.has_value());
      EXPECT_NEAR(estimate->n_estimate, static_cast<double>(n),
                  static_cast<double>(n) * 1e-4);
    }
  }
}

TEST(ProtocolTest, GlobalExtremesPropagateToAllPeers) {
  std::vector<stats::Value> values = iota_values(300);
  values[17] = -5000;
  values[42] = 123456;
  Adam2System system(small_system(5), values);
  system.run_instance();
  for (host::NodeId node : system.engine().live_ids()) {
    const auto& estimate = system.agent_of(node).estimate();
    ASSERT_TRUE(estimate.has_value());
    EXPECT_DOUBLE_EQ(estimate->min_value, -5000.0);
    EXPECT_DOUBLE_EQ(estimate->max_value, 123456.0);
  }
}

TEST(ProtocolTest, EstimatedCdfApproximatesTruth) {
  Adam2System system(small_system(6), iota_values(500));
  const stats::EmpiricalCdf truth{iota_values(500)};
  for (int i = 0; i < 2; ++i) system.run_instance();
  const auto errors = evaluate_estimates(system.engine(), truth);
  // Uniform integer CDF is easy: both metrics should be small with 10 points.
  EXPECT_LT(errors.max_err, 0.15);
  EXPECT_LT(errors.avg_err, 0.05);
}

// ----------------------------------------------------------- TTL handling

TEST(ProtocolTest, InstanceTerminatesAfterTtlRounds) {
  Adam2System system(small_system(7), iota_values(100));
  const auto id = system.start_instance(host::NodeId{0});
  auto& initiator = system.agent_of(0);
  EXPECT_EQ(initiator.active_instance_count(), 1u);

  system.run_rounds(system.config().protocol.instance_ttl);
  EXPECT_NE(initiator.instance(id), nullptr);  // Last gossip round done.
  system.run_rounds(1);
  EXPECT_EQ(initiator.instance(id), nullptr);  // Finalised.
  EXPECT_TRUE(initiator.estimate().has_value());
  EXPECT_EQ(initiator.completed_instances(), 1u);
}

TEST(ProtocolTest, JoinersAdoptRemainingTtl) {
  Adam2System system(small_system(8), iota_values(100));
  system.start_instance(host::NodeId{0});
  system.run_rounds(system.config().protocol.instance_ttl + 1u);
  // Every peer finalised in the same round despite joining late.
  std::size_t with_estimate = 0;
  for (host::NodeId node : system.engine().live_ids()) {
    with_estimate += system.agent_of(node).estimate().has_value() ? 1u : 0u;
    EXPECT_EQ(system.agent_of(node).active_instance_count(), 0u);
  }
  EXPECT_EQ(with_estimate, 100u);
}

// ------------------------------------------------- concurrent instances

TEST(ProtocolTest, ConcurrentInstancesStayIsolated) {
  Adam2System system(small_system(9), iota_values(200));
  const auto id1 = system.start_instance(host::NodeId{0});
  system.run_rounds(5);
  const auto id2 = system.start_instance(host::NodeId{1});
  EXPECT_NE(id1, id2);
  system.run_rounds(10);

  // Both instances are running on (nearly) all nodes simultaneously.
  std::size_t both = 0;
  for (host::NodeId node : system.engine().live_ids()) {
    const auto& agent = system.agent_of(node);
    if (agent.instance(id1) != nullptr && agent.instance(id2) != nullptr) {
      ++both;
    }
  }
  EXPECT_GT(both, 150u);

  // Let both finish; the newer instance's result wins.
  system.run_rounds(30);
  const auto& estimate = system.agent_of(0).estimate();
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(estimate->instance, id2);
}

TEST(ProtocolTest, InstanceIdsAreUniquePerInitiator) {
  Adam2System system(small_system(10), iota_values(50));
  const auto a = system.start_instance(host::NodeId{3});
  const auto b = system.start_instance(host::NodeId{3});
  EXPECT_EQ(a.initiator, 3u);
  EXPECT_EQ(b.initiator, 3u);
  EXPECT_NE(a.seq, b.seq);
}

// --------------------------------------------------------- join policies

double instance_mass(Adam2System& system, wire::InstanceId id,
                     std::size_t point_index) {
  double sum = 0.0;
  for (host::NodeId node : system.engine().live_ids()) {
    const InstanceSlot* state = system.agent_of(node).instance(id);
    if (state != nullptr) sum += state->points()[point_index].f;
  }
  return sum;
}

TEST(ProtocolTest, MassConservingJoinKeepsTotalsExact) {
  // With values 1..100 and threshold at 50.5 the full mass is 50 once all
  // peers joined; mid-epidemic the mass equals the number of joined peers
  // whose value is <= threshold. Weight mass must stay exactly 1.
  SystemConfig config = small_system(11);
  config.protocol.join_policy = JoinPolicy::kMassConserving;
  Adam2System system(config, iota_values(100));
  const auto id = system.start_instance(host::NodeId{0});

  for (int round = 0; round < 20; ++round) {
    system.run_rounds(1);
    double weight_mass = 0.0;
    double joined_below = 0.0;
    for (host::NodeId node : system.engine().live_ids()) {
      const InstanceSlot* state = system.agent_of(node).instance(id);
      if (state == nullptr) continue;
      weight_mass += state->weight;
      if (static_cast<double>(system.engine().node(node).attribute) <=
          state->points()[0].t) {
        joined_below += 1.0;
      }
    }
    EXPECT_NEAR(weight_mass, 1.0, 1e-9);
    EXPECT_NEAR(instance_mass(system, id, 0), joined_below, 1e-9);
  }
}

TEST(ProtocolTest, PaperLiteralJoinBiasesTheEstimate) {
  // DESIGN.md §1: the literal Figure-1 join rule creates mass; the final
  // estimate is visibly biased while the conserving rule is exact.
  auto run = [](JoinPolicy policy) {
    SystemConfig config = small_system(12);
    config.protocol.join_policy = policy;
    config.protocol.instance_ttl = 80;
    Adam2System system(config, iota_values(64));
    system.run_instance(host::NodeId{0});
    const auto& est = system.agent_of(0).estimate();
    double worst = 0.0;
    for (const stats::CdfPoint& p : est->points) {
      worst = std::max(worst, std::abs(p.f - std::floor(p.t) / 64.0));
    }
    return worst;
  };
  const double conserving = run(JoinPolicy::kMassConserving);
  const double literal = run(JoinPolicy::kPaperLiteral);
  EXPECT_LT(conserving, 1e-8);
  EXPECT_GT(literal, 1e-3);
  EXPECT_GT(literal, conserving * 100.0);
}

// ------------------------------------------------------------ eligibility

TEST(ProtocolTest, LateJoinersIgnoreOldInstances) {
  SystemConfig config = small_system(13);
  config.engine.churn_rate = 0.02;
  Adam2System system(config, iota_values(200),
                     [](rng::Rng& rng) {
                       return static_cast<stats::Value>(rng.below(200) + 1);
                     });
  const auto id = system.start_instance(host::NodeId{0});
  system.run_rounds(15);
  for (host::NodeId node : system.engine().live_ids()) {
    const host::Node& n = system.engine().node(node);
    if (n.birth_round > 0) {
      EXPECT_EQ(system.agent_of(node).instance(id), nullptr)
          << "node born in round " << n.birth_round
          << " joined an instance from round 0";
    }
  }
}

// ----------------------------------------------------- probabilistic mode

TEST(ProtocolTest, ProbabilisticStartsMatchExpectedFrequency) {
  // With Ps = 1/(Np*R), a system of N nodes creates one instance per R
  // rounds on average (§IV).
  SystemConfig config = small_system(14);
  config.protocol.restart_every_r = 10.0;
  config.protocol.initial_n_estimate = 300.0;
  config.protocol.instance_ttl = 5;  // Short-lived to keep the run light.
  Adam2System system(config, iota_values(300));
  std::size_t started = 0;
  system.engine().add_observer([&](sim::CycleEngine& engine) {
    // Count instances by watching initiators' sequence numbers via actives.
    (void)engine;
  });
  // Count completed+active instance creations through agent introspection:
  // run 200 rounds, then sum sequence numbers (each start bumps one).
  system.run_rounds(200);
  for (host::NodeId node : system.engine().live_ids()) {
    started += system.agent_of(node).completed_instances();
  }
  // Each completed instance is counted once per participant (~N times);
  // creations happen ~200/R = 20 times, each reaching ~300 peers.
  const double per_node = static_cast<double>(started) / 300.0;
  EXPECT_GT(per_node, 8.0);
  EXPECT_LT(per_node, 40.0);
}

// ------------------------------------------------------------- bootstrap

TEST(ProtocolTest, ChurnedInNodesInheritEstimates) {
  SystemConfig config = small_system(15);
  Adam2System system(config, iota_values(150), [](rng::Rng& rng) {
    return static_cast<stats::Value>(rng.below(150) + 1);
  });
  system.run_instance();

  // Trigger manual churn after the instance completed.
  system.engine().churn_nodes(15);
  std::size_t inherited = 0;
  for (host::NodeId node : system.engine().live_ids()) {
    if (node >= 150) {
      const auto& est = system.agent_of(node).estimate();
      if (est && est->inherited) ++inherited;
      if (est) {
        EXPECT_GT(est->n_estimate, 0.0);
      }
    }
  }
  EXPECT_GT(inherited, 10u);
}

TEST(ProtocolTest, EvaluationCanExcludeInheritedEstimates) {
  SystemConfig config = small_system(16);
  Adam2System system(config, iota_values(150), [](rng::Rng& rng) {
    return static_cast<stats::Value>(rng.below(150) + 1);
  });
  const stats::EmpiricalCdf truth{iota_values(150)};
  system.run_instance();
  system.engine().churn_nodes(15);

  EvaluationOptions include;
  EvaluationOptions exclude;
  exclude.include_inherited = false;
  exclude.missing_counts_as_one = false;
  const auto with = evaluate_estimates(system.engine(), truth, include);
  const auto without = evaluate_estimates(system.engine(), truth, exclude);
  EXPECT_GT(with.peers, without.peers);
}

// ----------------------------------------------------------- refinement

TEST(ProtocolTest, SecondInstanceRefinesThresholds) {
  SystemConfig config = small_system(17);
  config.protocol.heuristic = SelectionHeuristic::kHCut;
  Adam2System system(config, iota_values(400));
  const stats::EmpiricalCdf truth{iota_values(400)};

  system.run_instance();
  const auto first = evaluate_estimates(system.engine(), truth);
  system.run_instance();
  const auto second = evaluate_estimates(system.engine(), truth);
  // Refinement should not make things dramatically worse on a uniform CDF
  // (it is already near optimal after one instance).
  EXPECT_LT(second.avg_err, first.avg_err * 2.0 + 0.01);
}

TEST(ProtocolTest, RefinementImprovesSteppedCdf) {
  // On a step-heavy distribution MinMax refinement with the neighbour-based
  // bootstrap must reduce Errm across instances (§VII-B/C; with a *uniform*
  // bootstrap the paper's own Fig. 5 shows RAM improving only slowly).
  rng::Rng data_rng(99);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, 2000, data_rng);
  SystemConfig config = small_system(18);
  config.protocol.lambda = 30;
  config.protocol.heuristic = SelectionHeuristic::kMinMax;
  config.protocol.bootstrap = BootstrapPoints::kNeighbourBased;
  config.overlay = OverlayKind::kCyclon;
  config.overlay_degree = 20;
  Adam2System system(config, values);
  const stats::EmpiricalCdf truth{values};

  system.run_instance();
  const auto first = evaluate_estimates(system.engine(), truth);
  for (int i = 0; i < 3; ++i) system.run_instance();
  const auto later = evaluate_estimates(system.engine(), truth);
  EXPECT_LT(later.max_err, first.max_err * 1.05);
  EXPECT_LT(later.max_err, 0.12);
}

// ---------------------------------------------------------- verification

TEST(ProtocolTest, SelfAssessmentTracksTrueError) {
  SystemConfig config = small_system(19);
  config.protocol.verification_points = 30;
  config.protocol.verification_mode = VerificationMode::kUniform;
  rng::Rng data_rng(5);
  const auto values =
      data::generate_population(data::Attribute::kCpuMflops, 2000, data_rng);
  Adam2System system(config, values);
  const stats::EmpiricalCdf truth{values};
  for (int i = 0; i < 2; ++i) system.run_instance();

  const host::NodeId node = system.engine().live_ids().front();
  const auto& est = system.agent_of(node).estimate();
  ASSERT_TRUE(est.has_value());
  ASSERT_TRUE(est->self_assessment.has_value());
  const auto actual = stats::discrete_errors(truth, est->cdf);
  // EstErra within a factor ~3 of the true Erra (paper: ~10% accuracy with
  // many verification points; we only require the right magnitude here).
  EXPECT_GT(est->self_assessment->avg_err, actual.avg_err / 4.0);
  EXPECT_LT(est->self_assessment->avg_err, actual.avg_err * 4.0 + 1e-4);
}

TEST(ProtocolTest, AdaptiveTuningGrowsLambdaWhenInaccurate) {
  SystemConfig config = small_system(20);
  config.protocol.lambda = 10;
  config.protocol.verification_points = 20;
  AdaptiveTuning tuning;
  tuning.target_avg_error = 1e-6;  // Unreachably strict: lambda must grow.
  config.protocol.adaptive = tuning;

  rng::Rng data_rng(6);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, 1000, data_rng);
  Adam2System system(config, values);
  const host::NodeId node = system.engine().live_ids().front();
  const std::size_t before = system.agent_of(node).current_lambda();
  system.run_instance();
  const std::size_t after = system.agent_of(node).current_lambda();
  EXPECT_GT(after, before);
}

TEST(ProtocolTest, AdaptiveTuningShrinksLambdaWhenOverAccurate) {
  SystemConfig config = small_system(21);
  config.protocol.lambda = 50;
  config.protocol.verification_points = 20;
  AdaptiveTuning tuning;
  tuning.target_avg_error = 0.5;  // Trivially loose: lambda should shrink.
  config.protocol.adaptive = tuning;

  Adam2System system(config, iota_values(500));
  const host::NodeId node = system.engine().live_ids().front();
  const std::size_t before = system.agent_of(node).current_lambda();
  system.run_instance();
  EXPECT_LT(system.agent_of(node).current_lambda(), before);
}

// ------------------------------------------------------ failure injection

TEST(ProtocolTest, SurvivesInitiatorDeath) {
  Adam2System system(small_system(22), iota_values(200));
  const auto id = system.start_instance(host::NodeId{0});
  system.run_rounds(5);
  system.engine().kill_node(0);
  system.run_rounds(system.config().protocol.instance_ttl);

  // The instance still completes everywhere; the weight mass (1.0 at the
  // initiator) may be partly lost, so N can be overestimated, but the
  // fractions stay usable.
  std::size_t with_estimate = 0;
  for (host::NodeId node : system.engine().live_ids()) {
    const auto& est = system.agent_of(node).estimate();
    if (est && est->instance == id) ++with_estimate;
  }
  EXPECT_GT(with_estimate, 190u);
  (void)id;
}

TEST(ProtocolTest, ToleratesMessageLoss) {
  SystemConfig config = small_system(23);
  config.engine.message_loss = 0.1;
  config.protocol.instance_ttl = 40;
  Adam2System system(config, iota_values(300));
  const stats::EmpiricalCdf truth{iota_values(300)};
  system.run_instance();
  const auto errors = evaluate_estimates(system.engine(), truth);
  // Loss perturbs the averages but the estimate stays in the right ballpark.
  EXPECT_LT(errors.avg_err, 0.1);
}

TEST(ProtocolTest, ResilientToModerateChurn) {
  // §VII-G: at the paper's typical churn (0.1%/round) accuracy remains high.
  SystemConfig config = small_system(26);
  config.engine.churn_rate = 0.001;
  rng::Rng data_rng(7);
  const auto values =
      data::generate_population(data::Attribute::kCpuMflops, 2000, data_rng);
  Adam2System system(config, values,
                     [](rng::Rng& rng) {
                       return data::sample_attribute(
                           data::Attribute::kCpuMflops, rng);
                     });
  for (int i = 0; i < 2; ++i) system.run_instance();
  const auto truth = system.truth();
  EvaluationOptions options;
  options.missing_counts_as_one = false;
  const auto errors = evaluate_estimates(system.engine(), truth, options);
  EXPECT_LT(errors.avg_err, 0.05);
  EXPECT_GT(errors.peers, 1500u);
}

// ------------------------------------------------------------- evaluation

TEST(EvaluationTest, MissingEstimatesCountAsMaximumError) {
  Adam2System system(small_system(25), iota_values(100));
  const stats::EmpiricalCdf truth{iota_values(100)};
  // No instance has run: every peer is missing.
  const auto errors = evaluate_estimates(system.engine(), truth);
  EXPECT_EQ(errors.peers, 100u);
  EXPECT_EQ(errors.missing, 100u);
  EXPECT_DOUBLE_EQ(errors.max_err, 1.0);
  EXPECT_DOUBLE_EQ(errors.avg_err, 1.0);
}

TEST(EvaluationTest, PeerSamplingEvaluatesSubset) {
  Adam2System system(small_system(26), iota_values(500));
  const stats::EmpiricalCdf truth{iota_values(500)};
  system.run_instance();
  EvaluationOptions options;
  options.peer_sample = 50;
  const auto errors = evaluate_estimates(system.engine(), truth, options);
  EXPECT_EQ(errors.peers, 50u);
}

TEST(EvaluationTest, InstancePointErrorsBeforeSpreadAreOne) {
  Adam2System system(small_system(27), iota_values(100));
  const stats::EmpiricalCdf truth{iota_values(100)};
  const auto id = system.start_instance(host::NodeId{0});
  // Before any round, only the initiator has the instance.
  const auto errors = evaluate_instance_points(system.engine(), id, truth);
  EXPECT_EQ(errors.missing, 99u);
  EXPECT_DOUBLE_EQ(errors.max_err, 1.0);
}

}  // namespace
}  // namespace adam2::core

namespace adam2::core {
namespace {

TEST(ProtocolTest, DynamicAttributesAreReEvaluatedPerInstance) {
  // §VII-F: a node evaluates its attribute value only when it creates or
  // joins an instance, so a change between instances shows up in the next
  // estimate.
  SystemConfig config = small_system(30);
  Adam2System system(config, iota_values(200));
  system.run_instance();
  const double before = system.agent_of(0).estimate()->cdf(1000.0);
  EXPECT_NEAR(before, 1.0, 1e-6);  // All values are <= 200.

  for (host::NodeId id : system.engine().live_ids()) {
    system.engine().set_attribute(
        id, system.engine().node(id).attribute + 10000);
  }
  system.run_instance();
  const auto& est = *system.agent_of(0).estimate();
  EXPECT_NEAR(est.cdf(1000.0), 0.0, 1e-6);  // Everything moved past 10000.
  EXPECT_DOUBLE_EQ(est.min_value, 10001.0);
}

TEST(ProtocolTest, MidInstanceAttributeChangeDoesNotDistortRunningAverage) {
  // The node runs the instance to completion with its join-time
  // contribution irrespective of later changes (§VII-F).
  SystemConfig config = small_system(31);
  config.protocol.instance_ttl = 40;
  Adam2System system(config, iota_values(100));
  system.start_instance(host::NodeId{0});
  // Let the instance reach everyone first: peers contribute the value they
  // hold when they *join* (nodes joining after a change use the new value).
  system.run_rounds(15);
  for (host::NodeId id : system.engine().live_ids()) {
    system.engine().set_attribute(id, 999999);
  }
  system.run_rounds(26);
  const auto& est = *system.agent_of(0).estimate();
  // The estimate reflects the values at instance start, not the new ones.
  for (const stats::CdfPoint& p : est.points) {
    EXPECT_NEAR(p.f, std::floor(p.t) / 100.0, 1e-6) << "at t=" << p.t;
  }
}

}  // namespace
}  // namespace adam2::core

namespace adam2::core {
namespace {

TEST(EvaluationTest, ObservationDoesNotPerturbTheProtocol) {
  // Evaluating with peer sampling between rounds must leave the simulation
  // bit-identical to an unobserved run (heisenberg-free monitoring).
  auto run = [](bool observe) {
    SystemConfig config = small_system(33);
    Adam2System system(config, iota_values(300));
    const stats::EmpiricalCdf truth{iota_values(300)};
    system.start_instance(host::NodeId{0});
    EvaluationOptions options;
    options.peer_sample = 20;
    for (int round = 0; round < 31; ++round) {
      system.run_rounds(1);
      if (observe) {
        (void)evaluate_estimates(system.engine(), truth, options);
      }
    }
    std::vector<double> fingerprint;
    for (host::NodeId id : system.engine().live_ids()) {
      const auto& est = system.agent_of(id).estimate();
      if (est) {
        for (const stats::CdfPoint& p : est->points) {
          fingerprint.push_back(p.f);
        }
      }
    }
    return fingerprint;
  };
  EXPECT_EQ(run(false), run(true));
}

// ------------------------------------------------- wire payload ordering

TEST(ProtocolTest, RequestPayloadsFollowJoinOrderNotBucketOrder) {
  // Regression for the adam2_lint `unordered-iter` fix: active instances are
  // keyed by an unordered_map, but the wire payload sequence must be a
  // function of protocol history (join/start order), never of the hash
  // table's bucket layout. One node joins instances started by many distinct
  // initiators — whose InstanceIdHash values scatter across buckets — and
  // its own gossip request must still list them in exact arrival order.
  SystemConfig config = small_system();
  config.protocol.instance_ttl = 50;
  Adam2System system(config, iota_values(32));
  auto& engine = system.engine();
  const host::NodeId joiner = 31;

  std::vector<wire::InstanceId> arrival;
  for (host::NodeId initiator : {5, 17, 3, 29, 11, 23, 7, 13, 2, 19, 28, 9}) {
    auto ictx = engine.context_for(initiator);
    auto& agent = system.agent_of(initiator);
    arrival.push_back(agent.start_instance(ictx));
    const auto request = agent.make_request(ictx);
    auto jctx = engine.context_for(joiner);
    (void)system.agent_of(joiner).handle_request(jctx, request);
  }

  auto jctx = engine.context_for(joiner);
  const auto request = system.agent_of(joiner).make_request(jctx);
  const wire::Adam2Message decoded = wire::Adam2Message::decode(request);
  ASSERT_EQ(decoded.instances.size(), arrival.size());
  for (std::size_t i = 0; i < arrival.size(); ++i) {
    EXPECT_EQ(decoded.instances[i].id, arrival[i]) << "payload " << i;
  }
}

TEST(ProtocolTest, PayloadOrderSurvivesMidLifeFinalisation) {
  // Finalising an instance from the middle of the active set must not
  // perturb the relative order of the survivors.
  SystemConfig config = small_system();
  config.protocol.instance_ttl = 6;
  Adam2System system(config, iota_values(32));
  auto& engine = system.engine();
  const host::NodeId node = 0;

  auto& agent = system.agent_of(node);
  const auto first = [&] {
    auto ctx = engine.context_for(node);
    return agent.start_instance(ctx);
  }();
  system.run_rounds(3);  // `first` burns 3 of its 6 TTL rounds.
  const auto second = [&] {
    auto ctx = engine.context_for(node);
    return agent.start_instance(ctx);
  }();
  const auto third = [&] {
    auto ctx = engine.context_for(node);
    return agent.start_instance(ctx);
  }();
  system.run_rounds(4);  // `first` finalises; second/third stay active.
  ASSERT_EQ(agent.instance(first), nullptr);
  ASSERT_NE(agent.instance(second), nullptr);
  ASSERT_NE(agent.instance(third), nullptr);

  auto late_ctx = engine.context_for(node);
  const auto late = agent.start_instance(late_ctx);
  const auto request = agent.make_request(late_ctx);
  const wire::Adam2Message decoded = wire::Adam2Message::decode(request);

  std::vector<wire::InstanceId> ids;
  for (const auto& payload : decoded.instances) ids.push_back(payload.id);
  const std::vector<wire::InstanceId> expected = {second, third, late};
  EXPECT_EQ(ids, expected);
}

}  // namespace
}  // namespace adam2::core
