#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>

#include "sim/cyclon.hpp"
#include "sim/engine.hpp"
#include "sim/overlay.hpp"
#include "wire/buffer.hpp"

namespace adam2::sim {
namespace {

/// Minimal push-pull averaging agent used to exercise the engine's exchange
/// mediation independent of the Adam2 protocol: each node starts with its
/// attribute value and the population should converge to the global mean
/// with total mass conserved exactly.
class AveragingAgent final : public NodeAgent {
 public:
  explicit AveragingAgent(double initial) : value_(initial) {}

  [[nodiscard]] double value() const { return value_; }

  void on_round_start(AgentContext&) override {}

  std::span<const std::byte> make_request(AgentContext&) override {
    scratch_ = encode(value_);
    return scratch_;
  }

  std::span<const std::byte> handle_request(
      AgentContext&, std::span<const std::byte> req) override {
    const double theirs = decode(req);
    scratch_ = encode(value_);  // Pre-merge value (symmetric).
    value_ = (value_ + theirs) / 2.0;
    return scratch_;
  }

  void handle_response(AgentContext&, std::span<const std::byte> resp) override {
    value_ = (value_ + decode(resp)) / 2.0;
  }

 private:
  static std::vector<std::byte> encode(double v) {
    wire::Writer w;
    w.f64(v);
    return w.take();
  }
  static double decode(std::span<const std::byte> bytes) {
    wire::Reader r(bytes);
    return r.f64();
  }

  double value_;
  std::vector<std::byte> scratch_;  ///< Backs the returned spans.
};

AgentFactory averaging_factory() {
  return [](const AgentContext& ctx) {
    return std::make_unique<AveragingAgent>(static_cast<double>(ctx.attribute));
  };
}

/// Agent that never gossips; used for pure substrate tests.
class SilentAgent final : public NodeAgent {
 public:
  std::span<const std::byte> make_request(AgentContext&) override { return {}; }
  std::span<const std::byte> handle_request(AgentContext&,
                                            std::span<const std::byte>) override {
    return {};
  }
};

AgentFactory silent_factory() {
  return [](const AgentContext&) { return std::make_unique<SilentAgent>(); };
}

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<stats::Value>(i);
  return values;
}

EngineConfig config_with_seed(std::uint64_t seed) {
  EngineConfig config;
  config.seed = seed;
  return config;
}

// ------------------------------------------------------------------ Engine

TEST(EngineTest, ConstructsRequestedPopulation) {
  Engine engine(config_with_seed(1), iota_values(100),
                std::make_unique<StaticRandomOverlay>(8), silent_factory(),
                nullptr);
  EXPECT_EQ(engine.live_count(), 100u);
  EXPECT_EQ(engine.nodes_ever(), 100u);
  EXPECT_EQ(engine.round(), 0u);
}

TEST(EngineTest, AttributesAreAssignedInOrder) {
  Engine engine(config_with_seed(2), {10, 20, 30},
                std::make_unique<StaticRandomOverlay>(2), silent_factory(),
                nullptr);
  EXPECT_EQ(engine.attribute_of(0), 10);
  EXPECT_EQ(engine.attribute_of(1), 20);
  EXPECT_EQ(engine.attribute_of(2), 30);
}

TEST(EngineTest, RoundCounterAdvances) {
  Engine engine(config_with_seed(3), iota_values(10),
                std::make_unique<StaticRandomOverlay>(4), silent_factory(),
                nullptr);
  engine.run_rounds(7);
  EXPECT_EQ(engine.round(), 7u);
}

TEST(EngineTest, AveragingConvergesToGlobalMean) {
  const std::size_t n = 256;
  Engine engine(config_with_seed(4), iota_values(n),
                std::make_unique<StaticRandomOverlay>(10), averaging_factory(),
                nullptr);
  engine.run_rounds(60);
  const double mean = (static_cast<double>(n) - 1.0) / 2.0;
  for (NodeId id : engine.live_ids()) {
    const auto& agent = dynamic_cast<const AveragingAgent&>(engine.agent(id));
    EXPECT_NEAR(agent.value(), mean, 1e-8);
  }
}

TEST(EngineTest, AveragingConservesMassExactly) {
  const std::size_t n = 128;
  Engine engine(config_with_seed(5), iota_values(n),
                std::make_unique<StaticRandomOverlay>(8), averaging_factory(),
                nullptr);
  auto total = [&] {
    double sum = 0.0;
    for (NodeId id : engine.live_ids()) {
      sum += dynamic_cast<const AveragingAgent&>(engine.agent(id)).value();
    }
    return sum;
  };
  const double before = total();
  engine.run_rounds(10);
  EXPECT_NEAR(total(), before, 1e-9 * before);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Engine engine(config_with_seed(seed), iota_values(64),
                  std::make_unique<StaticRandomOverlay>(6),
                  averaging_factory(), nullptr);
    engine.run_rounds(5);
    std::vector<double> values;
    for (NodeId id : engine.live_ids()) {
      values.push_back(
          dynamic_cast<const AveragingAgent&>(engine.agent(id)).value());
    }
    return values;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

TEST(EngineTest, TrafficIsAccountedPerChannelAndGlobally) {
  Engine engine(config_with_seed(6), iota_values(50),
                std::make_unique<StaticRandomOverlay>(6), averaging_factory(),
                nullptr);
  engine.run_rounds(3);
  const auto& total = engine.total_traffic();
  const auto& agg = total.on(Channel::kAggregation);
  // Every successful exchange = 2 messages (request + response) of 8 bytes.
  EXPECT_GT(agg.messages_sent, 0u);
  EXPECT_EQ(agg.bytes_sent, agg.messages_sent * 8);
  EXPECT_EQ(agg.messages_received, agg.messages_sent);

  // Per-node totals sum to the global ones.
  std::uint64_t per_node = 0;
  for (NodeId id : engine.live_ids()) {
    per_node += engine.node(id).traffic.on(Channel::kAggregation).bytes_sent;
  }
  EXPECT_EQ(per_node, agg.bytes_sent);
}

TEST(EngineTest, ObserverRunsEveryRound) {
  Engine engine(config_with_seed(7), iota_values(10),
                std::make_unique<StaticRandomOverlay>(4), silent_factory(),
                nullptr);
  int calls = 0;
  engine.add_observer([&](CycleEngine&) { ++calls; });
  engine.run_rounds(5);
  EXPECT_EQ(calls, 5);
}

TEST(EngineTest, KillNodeRemovesItFromLiveSet) {
  Engine engine(config_with_seed(8), iota_values(10),
                std::make_unique<StaticRandomOverlay>(4), silent_factory(),
                nullptr);
  engine.kill_node(3);
  EXPECT_EQ(engine.live_count(), 9u);
  EXPECT_FALSE(engine.is_live(3));
  const auto live = engine.live_ids();
  EXPECT_EQ(std::count(live.begin(), live.end(), 3u), 0);
}

TEST(EngineTest, ChurnKeepsPopulationSizeConstant) {
  EngineConfig config = config_with_seed(9);
  config.churn_rate = 0.05;
  Engine engine(config, iota_values(200),
                std::make_unique<StaticRandomOverlay>(8), averaging_factory(),
                [](rng::Rng& rng) {
                  return static_cast<stats::Value>(rng.below(100));
                });
  engine.run_rounds(20);
  EXPECT_EQ(engine.live_count(), 200u);
  EXPECT_GT(engine.nodes_ever(), 200u);
  // Roughly 5% of 200 = 10 replacements per round over 20 rounds.
  EXPECT_NEAR(static_cast<double>(engine.nodes_ever() - 200), 200.0, 60.0);
}

TEST(EngineTest, ChurnedInNodesGetFreshIdsAndBirthRounds) {
  EngineConfig config = config_with_seed(10);
  config.churn_rate = 0.1;
  Engine engine(config, iota_values(50),
                std::make_unique<StaticRandomOverlay>(6), silent_factory(),
                [](rng::Rng&) { return stats::Value{7}; });
  engine.run_rounds(5);
  std::set<NodeId> seen;
  for (NodeId id : engine.live_ids()) {
    EXPECT_TRUE(seen.insert(id).second);  // No duplicates.
    const Node& node = engine.node(id);
    if (id >= 50) {
      EXPECT_GT(node.birth_round, 0u);
      EXPECT_EQ(node.attribute, 7);
    }
  }
}

TEST(EngineTest, ChurnRequiresAttributeSource) {
  EngineConfig config = config_with_seed(11);
  config.churn_rate = 0.1;
  EXPECT_THROW(Engine(config, iota_values(10),
                      std::make_unique<StaticRandomOverlay>(4),
                      silent_factory(), nullptr),
               std::invalid_argument);
}

TEST(EngineTest, MessageLossDropsTraffic) {
  EngineConfig lossy = config_with_seed(12);
  lossy.message_loss = 0.5;
  Engine engine(lossy, iota_values(100),
                std::make_unique<StaticRandomOverlay>(8), averaging_factory(),
                nullptr);
  engine.run_rounds(5);
  EXPECT_GT(engine.total_traffic().dropped_messages, 50u);
}

TEST(EngineTest, MessageLossBreaksExactMassConservation) {
  // A dropped response leaves the responder merged but not the requester —
  // the asymmetry a real deployment would see.
  EngineConfig lossy = config_with_seed(13);
  lossy.message_loss = 0.3;
  Engine engine(lossy, iota_values(64),
                std::make_unique<StaticRandomOverlay>(8), averaging_factory(),
                nullptr);
  auto total = [&] {
    double sum = 0.0;
    for (NodeId id : engine.live_ids()) {
      sum += dynamic_cast<const AveragingAgent&>(engine.agent(id)).value();
    }
    return sum;
  };
  const double before = total();
  engine.run_rounds(10);
  EXPECT_NE(total(), before);
}

TEST(EngineTest, SetAttributeChangesGroundTruth) {
  Engine engine(config_with_seed(14), iota_values(5),
                std::make_unique<StaticRandomOverlay>(2), silent_factory(),
                nullptr);
  engine.set_attribute(2, 999);
  EXPECT_EQ(engine.attribute_of(2), 999);
  const auto values = engine.live_attribute_values();
  EXPECT_EQ(std::count(values.begin(), values.end(), 999), 1);
}

TEST(EngineTest, UnknownNodeThrows) {
  Engine engine(config_with_seed(15), iota_values(3),
                std::make_unique<StaticRandomOverlay>(2), silent_factory(),
                nullptr);
  EXPECT_THROW((void)engine.node(99), std::out_of_range);
  EXPECT_FALSE(engine.is_live(99));
}

// ----------------------------------------------------- StaticRandomOverlay

TEST(StaticOverlayTest, InitialGraphIsConnected) {
  Engine engine(config_with_seed(16), iota_values(500),
                std::make_unique<StaticRandomOverlay>(8), silent_factory(),
                nullptr);
  // BFS over neighbour lists from node 0.
  std::set<NodeId> visited{0};
  std::queue<NodeId> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop();
    for (NodeId next : engine.overlay().neighbors(current)) {
      if (visited.insert(next).second) frontier.push(next);
    }
  }
  EXPECT_EQ(visited.size(), 500u);
}

TEST(StaticOverlayTest, DegreesAreNearTarget) {
  Engine engine(config_with_seed(17), iota_values(1000),
                std::make_unique<StaticRandomOverlay>(10), silent_factory(),
                nullptr);
  double total_degree = 0.0;
  for (NodeId id : engine.live_ids()) {
    total_degree += static_cast<double>(engine.overlay().neighbors(id).size());
  }
  EXPECT_NEAR(total_degree / 1000.0, 10.0, 2.5);
}

TEST(StaticOverlayTest, PickGossipTargetReturnsNeighbour) {
  Engine engine(config_with_seed(18), iota_values(100),
                std::make_unique<StaticRandomOverlay>(6), silent_factory(),
                nullptr);
  rng::Rng rng(1);
  for (NodeId id : {NodeId{0}, NodeId{50}, NodeId{99}}) {
    const auto neighbors = engine.overlay().neighbors(id);
    for (int i = 0; i < 20; ++i) {
      const auto target = engine.overlay().pick_gossip_target(id, rng);
      ASSERT_TRUE(target.has_value());
      EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), *target),
                neighbors.end());
    }
  }
}

TEST(StaticOverlayTest, RemoveNodeDropsReverseLinks) {
  StaticRandomOverlay overlay(4);
  Engine engine(config_with_seed(19), iota_values(20),
                std::make_unique<StaticRandomOverlay>(4), silent_factory(),
                nullptr);
  const auto victims = engine.overlay().neighbors(0);
  ASSERT_FALSE(victims.empty());
  const NodeId victim = victims.front();
  engine.kill_node(victim);
  const auto after = engine.overlay().neighbors(0);
  EXPECT_EQ(std::count(after.begin(), after.end(), victim), 0);
}

TEST(StaticOverlayTest, KnownAttributeValuesComeFromLiveNeighbours) {
  Engine engine(config_with_seed(20), iota_values(50),
                std::make_unique<StaticRandomOverlay>(6), silent_factory(),
                nullptr);
  const auto values = engine.overlay().known_attribute_values(0, engine);
  EXPECT_FALSE(values.empty());
  for (stats::Value v : values) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

// -------------------------------------------------------------- Cyclon

std::unique_ptr<CyclonOverlay> make_cyclon(std::size_t view = 8,
                                           std::size_t shuffle = 4) {
  CyclonConfig config;
  config.view_size = view;
  config.shuffle_size = shuffle;
  return std::make_unique<CyclonOverlay>(config);
}

TEST(CyclonTest, ViewsRespectCapacity) {
  Engine engine(config_with_seed(21), iota_values(200), make_cyclon(),
                silent_factory(), nullptr);
  engine.run_rounds(10);
  for (NodeId id : engine.live_ids()) {
    EXPECT_LE(engine.overlay().neighbors(id).size(), 8u);
    EXPECT_GE(engine.overlay().neighbors(id).size(), 1u);
  }
}

TEST(CyclonTest, ViewsContainNoSelfOrDuplicates) {
  Engine engine(config_with_seed(22), iota_values(100), make_cyclon(),
                silent_factory(), nullptr);
  engine.run_rounds(15);
  for (NodeId id : engine.live_ids()) {
    const auto neighbors = engine.overlay().neighbors(id);
    const std::set<NodeId> unique(neighbors.begin(), neighbors.end());
    EXPECT_EQ(unique.size(), neighbors.size());
    EXPECT_EQ(unique.count(id), 0u);
  }
}

TEST(CyclonTest, ShufflingMixesViews) {
  Engine engine(config_with_seed(23), iota_values(200), make_cyclon(),
                silent_factory(), nullptr);
  const auto before = engine.overlay().neighbors(0);
  engine.run_rounds(20);
  const auto after = engine.overlay().neighbors(0);
  // After 20 shuffles the view should have turned over substantially.
  std::size_t kept = 0;
  for (NodeId id : after) {
    kept += std::count(before.begin(), before.end(), id);
  }
  EXPECT_LT(kept, before.size());
}

TEST(CyclonTest, GraphStaysConnectedUnderChurn) {
  EngineConfig config = config_with_seed(24);
  config.churn_rate = 0.01;
  Engine engine(config, iota_values(300), make_cyclon(12, 6),
                silent_factory(),
                [](rng::Rng& rng) {
                  return static_cast<stats::Value>(rng.below(1000));
                });
  engine.run_rounds(50);
  // BFS over the (directed) views, treating edges as undirected.
  std::map<NodeId, std::vector<NodeId>> undirected;
  for (NodeId id : engine.live_ids()) {
    for (NodeId peer : engine.overlay().neighbors(id)) {
      if (!engine.is_live(peer)) continue;
      undirected[id].push_back(peer);
      undirected[peer].push_back(id);
    }
  }
  const NodeId start = engine.live_ids().front();
  std::set<NodeId> visited{start};
  std::queue<NodeId> frontier;
  frontier.push(start);
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop();
    for (NodeId next : undirected[current]) {
      if (visited.insert(next).second) frontier.push(next);
    }
  }
  EXPECT_GT(static_cast<double>(visited.size()),
            0.99 * static_cast<double>(engine.live_count()));
}

TEST(CyclonTest, DeadEntriesAreEventuallyEvicted) {
  Engine engine(config_with_seed(25), iota_values(100), make_cyclon(),
                silent_factory(), nullptr);
  engine.run_rounds(5);
  engine.kill_node(42);
  engine.run_rounds(30);
  for (NodeId id : engine.live_ids()) {
    const auto neighbors = engine.overlay().neighbors(id);
    EXPECT_EQ(std::count(neighbors.begin(), neighbors.end(), NodeId{42}), 0)
        << "node " << id << " still references the dead node";
  }
}

TEST(CyclonTest, DescriptorsCarryAttributeValues) {
  Engine engine(config_with_seed(26), iota_values(100), make_cyclon(),
                silent_factory(), nullptr);
  engine.run_rounds(10);
  const auto values = engine.overlay().known_attribute_values(0, engine);
  EXPECT_GT(values.size(), 8u);  // View plus the shuffle value cache.
  for (stats::Value v : values) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(CyclonTest, ShuffleTrafficIsAccountedOnOverlayChannel) {
  Engine engine(config_with_seed(27), iota_values(50), make_cyclon(),
                silent_factory(), nullptr);
  engine.run_rounds(3);
  const auto& overlay_traffic = engine.total_traffic().on(Channel::kOverlay);
  EXPECT_GT(overlay_traffic.messages_sent, 0u);
  EXPECT_EQ(engine.total_traffic().on(Channel::kAggregation).messages_sent, 0u);
}

}  // namespace
}  // namespace adam2::sim
