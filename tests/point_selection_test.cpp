#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/point_selection.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"

namespace adam2::core {
namespace {

using stats::CdfPoint;
using stats::PiecewiseLinearCdf;

void expect_strictly_increasing(const std::vector<double>& ts) {
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LT(ts[i - 1], ts[i]) << "at index " << i;
  }
}

void expect_inside(const std::vector<double>& ts, double lo, double hi) {
  for (double t : ts) {
    EXPECT_GT(t, lo);
    EXPECT_LT(t, hi);
  }
}

/// Anchored previous interpolation of a smooth-ish curve for refinement tests.
PiecewiseLinearCdf smooth_prev() {
  std::vector<CdfPoint> knots;
  for (int i = 0; i <= 10; ++i) {
    const double t = 100.0 * i;
    const double f = static_cast<double>(i) / 10.0;
    knots.push_back({t, f * f * (3 - 2 * f)});  // Smoothstep, monotone.
  }
  knots.front().f = 0.0;
  knots.back().f = 1.0;
  return PiecewiseLinearCdf{std::move(knots)};
}

/// A CDF with one huge step at t=500 (RAM-like shape). The plateaus carry
/// several near-redundant points so MinMax has clusters it can cannibalise.
PiecewiseLinearCdf step_prev() {
  return PiecewiseLinearCdf{{{0.0, 0.0},
                             {100.0, 0.01},
                             {200.0, 0.02},
                             {499.0, 0.05},
                             {501.0, 0.95},
                             {700.0, 0.96},
                             {800.0, 0.97},
                             {1000.0, 1.0}}};
}

// --------------------------------------------------------------- sanitize

TEST(SanitizeTest, KeepsWellFormedInput) {
  const auto ts = sanitize_thresholds({1.0, 2.0, 3.0}, 0.0, 10.0, 3);
  EXPECT_EQ(ts, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SanitizeTest, SortsAndDeduplicates) {
  const auto ts = sanitize_thresholds({3.0, 1.0, 3.0, 2.0}, 0.0, 10.0, 3);
  EXPECT_EQ(ts, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SanitizeTest, DropsOutOfRangeAndPads) {
  const auto ts = sanitize_thresholds({-5.0, 5.0, 15.0}, 0.0, 10.0, 3);
  ASSERT_EQ(ts.size(), 3u);
  expect_strictly_increasing(ts);
  expect_inside(ts, 0.0, 10.0);
  EXPECT_NE(std::find(ts.begin(), ts.end(), 5.0), ts.end());
}

TEST(SanitizeTest, PadsEmptyInputUniformly) {
  const auto ts = sanitize_thresholds({}, 0.0, 8.0, 4);
  ASSERT_EQ(ts.size(), 4u);
  expect_strictly_increasing(ts);
  expect_inside(ts, 0.0, 8.0);
}

TEST(SanitizeTest, TrimsOversizedInputEvenly) {
  std::vector<double> ts;
  for (int i = 1; i < 100; ++i) ts.push_back(static_cast<double>(i));
  const auto out = sanitize_thresholds(std::move(ts), 0.0, 100.0, 10);
  ASSERT_EQ(out.size(), 10u);
  expect_strictly_increasing(out);
}

TEST(SanitizeTest, DegenerateRangeStillReturnsLambdaPoints) {
  const auto ts = sanitize_thresholds({1.0, 2.0}, 5.0, 5.0, 3);
  EXPECT_EQ(ts.size(), 3u);
}

TEST(SanitizeTest, RejectsNonFiniteThresholds) {
  const auto ts = sanitize_thresholds(
      {std::nan(""), 5.0, std::numeric_limits<double>::infinity()}, 0.0, 10.0,
      2);
  ASSERT_EQ(ts.size(), 2u);
  for (double t : ts) EXPECT_TRUE(std::isfinite(t));
}

// ---------------------------------------------------------------- uniform

TEST(UniformThresholdsTest, EvenSpacing) {
  const auto ts = uniform_thresholds(0.0, 100.0, 4);
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_DOUBLE_EQ(ts[0], 20.0);
  EXPECT_DOUBLE_EQ(ts[1], 40.0);
  EXPECT_DOUBLE_EQ(ts[2], 60.0);
  EXPECT_DOUBLE_EQ(ts[3], 80.0);
}

TEST(UniformThresholdsTest, ExcludesEndpoints) {
  const auto ts = uniform_thresholds(0.0, 10.0, 9);
  expect_inside(ts, 0.0, 10.0);
}

// -------------------------------------------------------------- neighbour

TEST(NeighbourThresholdsTest, UsesObservedValues) {
  rng::Rng rng(1);
  const std::vector<stats::Value> values{100, 200, 300, 400, 500};
  const auto ts = neighbour_thresholds(values, 5, rng);
  ASSERT_EQ(ts.size(), 5u);
  for (stats::Value v : values) {
    EXPECT_NE(std::find(ts.begin(), ts.end(), static_cast<double>(v)),
              ts.end());
  }
}

TEST(NeighbourThresholdsTest, SamplesSubsetWhenManyValues) {
  rng::Rng rng(2);
  std::vector<stats::Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  const auto ts = neighbour_thresholds(values, 50, rng);
  ASSERT_EQ(ts.size(), 50u);
  expect_strictly_increasing(ts);
}

TEST(NeighbourThresholdsTest, PadsWhenFewValues) {
  rng::Rng rng(3);
  const std::vector<stats::Value> values{100, 900};
  const auto ts = neighbour_thresholds(values, 10, rng);
  ASSERT_EQ(ts.size(), 10u);
  expect_strictly_increasing(ts);
}

TEST(NeighbourThresholdsTest, HandlesSingleRepeatedValue) {
  rng::Rng rng(4);
  const std::vector<stats::Value> values{7, 7, 7, 7};
  const auto ts = neighbour_thresholds(values, 5, rng);
  EXPECT_EQ(ts.size(), 5u);
}

// ------------------------------------------------------------------- HCut

TEST(HCutTest, ThresholdsLandOnQuantiles) {
  // For the identity-ish CDF on [0, 1000] (uniform), HCut's points are the
  // i/(lambda+1) quantiles: 250, 500, 750 for lambda = 3.
  const PiecewiseLinearCdf prev{{{0.0, 0.0}, {1000.0, 1.0}}};
  const auto ts = hcut(prev, 3);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_NEAR(ts[0], 250.0, 1e-9);
  EXPECT_NEAR(ts[1], 500.0, 1e-9);
  EXPECT_NEAR(ts[2], 750.0, 1e-9);
}

TEST(HCutTest, EqualVerticalGapsOnPreviousCurve) {
  const auto prev = smooth_prev();
  const std::size_t lambda = 9;
  const auto ts = hcut(prev, lambda);
  ASSERT_EQ(ts.size(), lambda);
  // Consecutive points (including anchors) cut equal vertical slices.
  double prev_f = 0.0;
  for (double t : ts) {
    EXPECT_NEAR(prev(t) - prev_f, 1.0 / (lambda + 1), 1e-6);
    prev_f = prev(t);
  }
}

TEST(HCutTest, ConcentratesPointsInsideSteps) {
  const auto ts = hcut(step_prev(), 9);
  // 90% of the mass lies in (499, 501): most thresholds must land there.
  const auto inside = std::count_if(ts.begin(), ts.end(), [](double t) {
    return t >= 499.0 && t <= 501.0;
  });
  EXPECT_GE(inside, 7);
}

// ----------------------------------------------------------------- MinMax

TEST(MinMaxTest, ReturnsExactlyLambdaPoints) {
  for (std::size_t lambda : {3u, 10u, 50u}) {
    const auto ts = minmax(smooth_prev(), lambda);
    EXPECT_EQ(ts.size(), lambda);
    expect_strictly_increasing(ts);
  }
}

TEST(MinMaxTest, SplitsTheWidestVerticalGap) {
  // Previous curve has a huge step between 499 and 501; MinMax must add
  // points inside it.
  const auto ts = minmax(step_prev(), 8);
  const auto inside = std::count_if(ts.begin(), ts.end(), [](double t) {
    return t > 499.0 && t < 501.0;
  });
  EXPECT_GE(inside, 1);
}

TEST(MinMaxTest, NoChangeWhenGapsAreBalanced) {
  // A perfectly uniform previous interpolation: the widest pair gap equals
  // the narrowest triple gap, so MinMax keeps the points (Figure 3's exit).
  std::vector<CdfPoint> knots;
  for (int i = 0; i <= 10; ++i) {
    knots.push_back({static_cast<double>(i), i / 10.0});
  }
  const PiecewiseLinearCdf prev{knots};
  const auto ts = minmax(prev, 9);
  ASSERT_EQ(ts.size(), 9u);
  for (int i = 1; i <= 9; ++i) {
    EXPECT_NEAR(ts[i - 1], static_cast<double>(i), 1e-9);
  }
}

TEST(MinMaxTest, IdempotentOnItsOwnOutputShape) {
  // Applying MinMax twice to the same (static) curve moves points less the
  // second time — a loose convergence property.
  const auto prev = step_prev();
  const auto first = minmax(prev, 20);
  std::vector<CdfPoint> knots{{0.0, 0.0}};
  for (double t : first) knots.push_back({t, prev(t)});
  knots.push_back({1000.0, 1.0});
  const PiecewiseLinearCdf refined{knots};
  const auto second = minmax(refined, 20);
  ASSERT_EQ(second.size(), 20u);
  expect_strictly_increasing(second);
}

// ------------------------------------------------------------------- LCut

TEST(LCutTest, EqualArcLengthSegments) {
  const auto prev = smooth_prev();
  const std::size_t lambda = 7;
  const auto ts = lcut(prev, lambda);
  ASSERT_EQ(ts.size(), lambda);

  const double scale = 1000.0;
  auto arc_between = [&](double a, double b) {
    // Numeric arc length of prev between a and b, t rescaled by `scale`.
    double total = 0.0;
    const int steps = 2000;
    double prev_t = a;
    double prev_f = prev(a);
    for (int i = 1; i <= steps; ++i) {
      const double t = a + (b - a) * i / steps;
      const double f = prev(t);
      total += std::hypot((t - prev_t) / scale, f - prev_f);
      prev_t = t;
      prev_f = f;
    }
    return total;
  };

  std::vector<double> cuts{0.0};
  cuts.insert(cuts.end(), ts.begin(), ts.end());
  cuts.push_back(1000.0);
  std::vector<double> lengths;
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    lengths.push_back(arc_between(cuts[i - 1], cuts[i]));
  }
  const double expected = arc_between(0.0, 1000.0) / (lambda + 1);
  for (double len : lengths) EXPECT_NEAR(len, expected, expected * 0.05);
}

TEST(LCutTest, UniformCurveGivesUniformPoints) {
  const PiecewiseLinearCdf prev{{{0.0, 0.0}, {100.0, 1.0}}};
  const auto ts = lcut(prev, 4);
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_NEAR(ts[0], 20.0, 1e-9);
  EXPECT_NEAR(ts[3], 80.0, 1e-9);
}

TEST(LCutTest, BalancesStepAndPlateau) {
  // On a step CDF, LCut spends points on the step *and* the plateaus
  // (Euclidean distance counts horizontal runs too), unlike HCut.
  const auto ts = lcut(step_prev(), 9);
  const auto inside = std::count_if(ts.begin(), ts.end(), [](double t) {
    return t > 499.0 && t < 501.0;
  });
  const auto outside = static_cast<std::ptrdiff_t>(ts.size()) - inside;
  EXPECT_GE(inside, 2);
  EXPECT_GE(outside, 2);
}

// -------------------------------------------------------------- bisection

TEST(BisectionTest, TargetsTheWidestVerticalGap) {
  const auto ts = bisection_thresholds(step_prev(), 3);
  ASSERT_EQ(ts.size(), 3u);
  // First split lands mid-step at 500.
  EXPECT_NE(std::find_if(ts.begin(), ts.end(),
                         [](double t) { return std::abs(t - 500.0) < 1.0; }),
            ts.end());
}

TEST(BisectionTest, ReturnsRequestedCount) {
  for (std::size_t count : {1u, 5u, 20u, 100u}) {
    const auto ts = bisection_thresholds(smooth_prev(), count);
    EXPECT_EQ(ts.size(), count);
    expect_strictly_increasing(ts);
  }
}

TEST(BisectionTest, ZeroCountIsEmpty) {
  EXPECT_TRUE(bisection_thresholds(smooth_prev(), 0).empty());
}

// ------------------------------------------------------------ dispatch

TEST(SelectPointsTest, DispatchesToAllHeuristics) {
  const auto prev = smooth_prev();
  EXPECT_EQ(select_points(prev, 5, SelectionHeuristic::kHCut),
            hcut(prev, 5));
  EXPECT_EQ(select_points(prev, 5, SelectionHeuristic::kMinMax),
            minmax(prev, 5));
  EXPECT_EQ(select_points(prev, 5, SelectionHeuristic::kLCut),
            lcut(prev, 5));
}

/// Property sweep: every heuristic returns lambda strictly increasing
/// in-range thresholds for random monotone previous curves.
class SelectionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, SelectionHeuristic>> {};

TEST_P(SelectionPropertyTest, WellFormedOutput) {
  const auto [seed, heuristic] = GetParam();
  rng::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  std::vector<CdfPoint> knots{{0.0, 0.0}};
  double t = 0.0;
  double f = 0.0;
  const std::size_t segments = 3 + rng.below(20);
  for (std::size_t i = 0; i < segments; ++i) {
    t += rng.uniform(0.5, 200.0);
    f = std::min(1.0, f + rng.uniform(0.0, 0.3));
    knots.push_back({t, f});
  }
  knots.push_back({t + 1.0, 1.0});
  const PiecewiseLinearCdf prev{std::move(knots)};

  const std::size_t lambda = 1 + rng.below(60);
  const auto ts = select_points(prev, lambda, heuristic);
  ASSERT_EQ(ts.size(), lambda);
  expect_strictly_increasing(ts);
  expect_inside(ts, prev.knots().front().t, prev.knots().back().t);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCurves, SelectionPropertyTest,
    ::testing::Combine(::testing::Range(0, 15),
                       ::testing::Values(SelectionHeuristic::kHCut,
                                         SelectionHeuristic::kMinMax,
                                         SelectionHeuristic::kLCut)));

}  // namespace
}  // namespace adam2::core
