#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <optional>

#include "rng/rng.hpp"
#include "wire/buffer.hpp"
#include "wire/messages.hpp"

namespace adam2::wire {
namespace {

// ------------------------------------------------------------------ Buffer

TEST(BufferTest, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(BufferTest, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  const auto& bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned>(bytes[0]), 0x04u);
  EXPECT_EQ(static_cast<unsigned>(bytes[3]), 0x01u);
}

TEST(BufferTest, SpecialDoublesRoundTrip) {
  Writer w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-std::numeric_limits<double>::infinity());
  w.f64(0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  Reader r(w.bytes());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(BufferTest, TruncatedReadThrows) {
  Writer w;
  w.u16(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW((void)r.u8(), DecodeError);
}

TEST(BufferTest, ExpectDoneThrowsOnTrailingBytes) {
  Writer w;
  w.u16(7);
  w.u8(1);
  Reader r(w.bytes());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(BufferTest, LengthGuardsAgainstHugeAllocations) {
  Writer w;
  w.u32(0xffffffff);  // Claims 4 billion elements...
  Reader r(w.bytes());
  EXPECT_THROW((void)r.length(16), DecodeError);  // ...but no bytes follow.
}

TEST(BufferTest, LengthAcceptsHonestSequences) {
  Writer w;
  w.length(2);
  w.u64(1);
  w.u64(2);
  Reader r(w.bytes());
  EXPECT_EQ(r.length(8), 2u);
}

// ---------------------------------------------------------------- Messages

InstancePayload sample_payload(std::uint32_t seq = 7) {
  InstancePayload p;
  p.id = {42, seq};
  p.start_round = 19;
  p.ttl = 23;
  p.flags = 0;
  p.weight = 0.125;
  p.min_value = -4.0;
  p.max_value = 1e9;
  p.points = {{1.0, 0.25}, {2.5, 0.5}, {100.0, 0.99}};
  p.verification = {{1.5, 0.3}};
  return p;
}

TEST(Adam2MessageTest, RoundTrip) {
  Adam2Message m;
  m.type = MessageType::kAdam2Request;
  m.sender = 1234;
  m.instances = {sample_payload(1), sample_payload(2)};
  const auto bytes = m.encode();
  EXPECT_EQ(Adam2Message::decode(bytes), m);
}

TEST(Adam2MessageTest, EncodedSizeMatchesEncoding) {
  Adam2Message m;
  m.type = MessageType::kAdam2Response;
  m.sender = 5;
  m.instances = {sample_payload()};
  EXPECT_EQ(m.encoded_size(), m.encode().size());

  m.instances.clear();
  EXPECT_EQ(m.encoded_size(), m.encode().size());
}

TEST(Adam2MessageTest, PaperMessageSizeAtLambda50) {
  // §VII-I: "For lambda = 50 the size of a gossip message is approximately
  // 800 bytes". Our format: 50 points * 16 B + fixed overhead.
  Adam2Message m;
  m.type = MessageType::kAdam2Request;
  m.sender = 1;
  InstancePayload p;
  p.id = {1, 0};
  for (int i = 0; i < 50; ++i) {
    p.points.push_back({static_cast<double>(i), 0.5});
  }
  m.instances = {p};
  const std::size_t size = m.encoded_size();
  EXPECT_GE(size, 800u);
  EXPECT_LE(size, 900u);
}

TEST(Adam2MessageTest, TenExtraPointsCostAbout160Bytes) {
  // §VII-D: "with 10 extra points, the size of the messages increases by
  // about 160 bytes".
  auto size_for = [](int lambda) {
    Adam2Message m;
    InstancePayload p;
    for (int i = 0; i < lambda; ++i) p.points.push_back({1.0 * i, 0.5});
    m.instances = {p};
    return m.encoded_size();
  };
  EXPECT_EQ(size_for(60) - size_for(50), 160u);
}

TEST(Adam2MessageTest, RejectsWrongTypeTag) {
  Adam2Message m;
  m.instances = {sample_payload()};
  auto bytes = m.encode();
  bytes[0] = static_cast<std::byte>(MessageType::kShuffleRequest);
  EXPECT_THROW((void)Adam2Message::decode(bytes), DecodeError);
}

TEST(Adam2MessageTest, RejectsTruncatedBuffer) {
  Adam2Message m;
  m.instances = {sample_payload()};
  auto bytes = m.encode();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW((void)Adam2Message::decode(bytes), DecodeError);
}

TEST(Adam2MessageTest, RejectsTrailingGarbage) {
  Adam2Message m;
  m.instances = {sample_payload()};
  auto bytes = m.encode();
  bytes.push_back(std::byte{0});
  EXPECT_THROW((void)Adam2Message::decode(bytes), DecodeError);
}

TEST(Adam2MessageTest, EmptySetFlagSurvivesRoundTrip) {
  Adam2Message m;
  InstancePayload p;
  p.id = {9, 1};
  p.flags = kFlagEmptySet;
  m.instances = {p};
  const auto decoded = Adam2Message::decode(m.encode());
  EXPECT_EQ(decoded.instances[0].flags, kFlagEmptySet);
}

TEST(PeekTypeTest, ReadsFirstByte) {
  Adam2Message m;
  const auto bytes = m.encode();
  EXPECT_EQ(peek_type(bytes), MessageType::kAdam2Request);
  EXPECT_THROW((void)peek_type({}), DecodeError);
}

TEST(BootstrapMessagesTest, RequestRoundTrip) {
  const BootstrapRequest req{77};
  EXPECT_EQ(BootstrapRequest::decode(req.encode()), req);
}

TEST(BootstrapMessagesTest, ResponseRoundTrip) {
  BootstrapResponse resp;
  resp.sender = 3;
  resp.n_estimate = 99000.5;
  resp.min_value = 1.0;
  resp.max_value = 2.0;
  resp.cdf_knots = {{1.0, 0.0}, {1.5, 0.5}, {2.0, 1.0}};
  EXPECT_EQ(BootstrapResponse::decode(resp.encode()), resp);
}

TEST(BootstrapMessagesTest, EmptyResponseRoundTrip) {
  const BootstrapResponse resp;
  EXPECT_EQ(BootstrapResponse::decode(resp.encode()), resp);
}

TEST(EquiDepthMessageTest, RoundTrip) {
  EquiDepthMessage m;
  m.type = MessageType::kEquiDepthResponse;
  m.sender = 11;
  m.phase = {4, 2};
  m.start_round = 100;
  m.ttl = 13;
  m.synopsis = {{1.0, 2.0}, {3.0, 0.5}};
  EXPECT_EQ(EquiDepthMessage::decode(m.encode()), m);
  EXPECT_EQ(m.encoded_size(), m.encode().size());
}

TEST(EquiDepthMessageTest, ComparableSizeToAdam2AtSameBudget) {
  // §VII-I: "The costs of EquiDepth are very similar to those of Adam2".
  EquiDepthMessage ed;
  for (int i = 0; i < 50; ++i) ed.synopsis.push_back({1.0 * i, 1.0});
  Adam2Message a2;
  InstancePayload p;
  for (int i = 0; i < 50; ++i) p.points.push_back({1.0 * i, 0.5});
  a2.instances = {p};
  const auto diff =
      static_cast<std::ptrdiff_t>(ed.encoded_size()) -
      static_cast<std::ptrdiff_t>(a2.encoded_size());
  EXPECT_LT(std::abs(diff), 64);
}

TEST(ShuffleMessageTest, RoundTrip) {
  ShuffleMessage m;
  m.type = MessageType::kShuffleRequest;
  m.sender = 8;
  m.descriptors = {{1, 0, 512}, {2, 5, 1024}, {3, 9, -7}};
  EXPECT_EQ(ShuffleMessage::decode(m.encode()), m);
}

// ---------------------------------------------------- Zero-copy view parity

TEST(Adam2MessageViewTest, MaterializeMatchesDecode) {
  Adam2Message m;
  m.type = MessageType::kAdam2Response;
  m.sender = 1234;
  m.instances = {sample_payload(1), sample_payload(2)};
  const auto bytes = m.encode();
  const Adam2MessageView view = Adam2MessageView::parse(bytes);
  EXPECT_EQ(view.type(), m.type);
  EXPECT_EQ(view.sender(), m.sender);
  EXPECT_EQ(view.size(), m.instances.size());
  EXPECT_EQ(view.materialize(), Adam2Message::decode(bytes));
  EXPECT_EQ(view.materialize(), m);
}

TEST(Adam2MessageViewTest, PayloadFieldsAndPointsDecodeInPlace) {
  Adam2Message m;
  m.sender = 9;
  m.instances = {sample_payload(3)};
  const auto bytes = m.encode();
  const Adam2MessageView view = Adam2MessageView::parse(bytes);
  const InstancePayload& want = m.instances.front();
  auto it = view.begin();
  EXPECT_EQ(it->id, want.id);
  EXPECT_EQ(it->start_round, want.start_round);
  EXPECT_EQ(it->ttl, want.ttl);
  EXPECT_EQ(it->flags, want.flags);
  EXPECT_EQ(it->weight, want.weight);
  EXPECT_EQ(it->min_value, want.min_value);
  EXPECT_EQ(it->max_value, want.max_value);
  ASSERT_EQ(it->points.size(), want.points.size());
  for (std::size_t i = 0; i < want.points.size(); ++i) {
    EXPECT_EQ(it->points[i].t, want.points[i].t);
    EXPECT_EQ(it->points[i].f, want.points[i].f);
  }
  EXPECT_EQ(it->points.materialize(), want.points);
  EXPECT_EQ(it->verification.materialize(), want.verification);
  ++it;
  EXPECT_EQ(it, view.end());
}

TEST(Adam2MessageViewTest, EmptyMessageParses) {
  Adam2Message m;
  m.sender = 3;
  const auto bytes = m.encode();
  const Adam2MessageView view = Adam2MessageView::parse(bytes);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.begin(), view.end());
  EXPECT_EQ(view.materialize(), m);
}

TEST(Adam2MessageViewTest, RejectsCorruptBuffersLikeDecode) {
  Adam2Message m;
  m.instances = {sample_payload()};
  const auto good = m.encode();

  auto wrong_type = good;
  wrong_type[0] = static_cast<std::byte>(MessageType::kShuffleRequest);
  EXPECT_THROW((void)Adam2MessageView::parse(wrong_type), DecodeError);

  auto truncated = good;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW((void)Adam2MessageView::parse(truncated), DecodeError);

  auto trailing = good;
  trailing.push_back(std::byte{0});
  EXPECT_THROW((void)Adam2MessageView::parse(trailing), DecodeError);

  EXPECT_THROW((void)Adam2MessageView::parse({}), DecodeError);
}

TEST(Adam2MessageBuilderTest, BytesAreIdenticalToOwningEncode) {
  Adam2Message m;
  m.type = MessageType::kAdam2Request;
  m.sender = 77;
  m.instances = {sample_payload(1), sample_payload(2)};

  Writer scratch;
  Adam2MessageBuilder builder(scratch, m.type, m.sender);
  for (const InstancePayload& p : m.instances) builder.add(p);
  const auto built = builder.finish();
  const auto owned = m.encode();
  ASSERT_EQ(built.size(), owned.size());
  EXPECT_TRUE(std::equal(built.begin(), built.end(), owned.begin()));
}

TEST(Adam2MessageBuilderTest, ScratchIsReusableAndEmptySetMatches) {
  Writer scratch;
  {
    Adam2MessageBuilder builder(scratch, MessageType::kAdam2Request, 1);
    builder.add(sample_payload());
    (void)builder.finish();
  }
  // Second message on the same scratch: the empty-set marker must encode
  // exactly what the owning encoder produces for the id/round/ttl-only
  // payload with the flag set.
  const InstancePayload like = sample_payload(9);
  Adam2Message owning;
  owning.type = MessageType::kAdam2Response;
  owning.sender = 2;
  InstancePayload marker;
  marker.id = like.id;
  marker.start_round = like.start_round;
  marker.ttl = like.ttl;
  marker.flags = kFlagEmptySet;
  owning.instances = {marker};

  Adam2MessageBuilder builder(scratch, MessageType::kAdam2Response, 2);
  builder.add_empty_set(like);
  const auto built = builder.finish();
  const auto owned = owning.encode();
  ASSERT_EQ(built.size(), owned.size());
  EXPECT_TRUE(std::equal(built.begin(), built.end(), owned.begin()));
}

/// Fuzz: random truncations/corruptions must throw DecodeError, never crash
/// or hang — and the zero-copy view must accept/reject exactly the buffers
/// the owning decoder does, producing the same message when both accept.
class WireFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzzTest, CorruptedBuffersThrowCleanly) {
  rng::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Adam2Message m;
  m.sender = rng();
  const std::size_t count = rng.below(3);
  for (std::size_t i = 0; i < count; ++i) {
    m.instances.push_back(sample_payload(static_cast<std::uint32_t>(i)));
  }
  auto bytes = m.encode();
  // Corrupt a few random bytes and/or truncate.
  for (int i = 0; i < 4 && !bytes.empty(); ++i) {
    bytes[rng.below(bytes.size())] = static_cast<std::byte>(rng() & 0xff);
  }
  if (rng.bernoulli(0.5) && !bytes.empty()) {
    bytes.resize(rng.below(bytes.size()));
  }
  std::optional<Adam2Message> decoded;
  try {
    decoded = Adam2Message::decode(bytes);
  } catch (const DecodeError&) {
    // Expected for most corruptions.
  }
  std::optional<Adam2Message> viewed;
  try {
    viewed = Adam2MessageView::parse(bytes).materialize();
  } catch (const DecodeError&) {
  }
  EXPECT_EQ(decoded.has_value(), viewed.has_value());
  if (decoded && viewed) {
    EXPECT_EQ(*decoded, *viewed);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCorruptions, WireFuzzTest,
                         ::testing::Range(0, 50));

// --------------------------------------------------------- Mutant corpus
//
// Seeded corpus of >= 10k mutants per wire format (ISSUE PR5 satellite).
// Every mutant must either throw DecodeError or decode into a value whose
// canonical re-encoding reproduces the mutant byte for byte — corruption is
// always rejected or provably harmless, never silently misread. For Adam2
// messages the zero-copy validation walk must additionally agree with the
// owning decoder on every single mutant (same accept/reject, same content).

constexpr int kMutantsPerFormat = 10'000;

std::vector<std::byte> mutate(std::vector<std::byte> bytes, rng::Rng& rng) {
  const auto flip_some = [&rng](std::vector<std::byte>& target) {
    if (target.empty()) return;
    for (std::uint64_t i = 1 + rng.below(8); i > 0; --i) {
      target[rng.below(target.size())] ^=
          static_cast<std::byte>(1 + rng.below(255));
    }
  };
  switch (rng.below(4)) {
    case 0:  // Truncate.
      if (!bytes.empty()) bytes.resize(rng.below(bytes.size()));
      break;
    case 1:  // Extend with a random tail.
      for (std::uint64_t i = 1 + rng.below(8); i > 0; --i) {
        bytes.push_back(static_cast<std::byte>(rng() & 0xff));
      }
      break;
    case 2:  // Truncate, then flip inside what remains.
      if (!bytes.empty()) bytes.resize(1 + rng.below(bytes.size()));
      flip_some(bytes);
      break;
    default:  // Flip 1-8 bytes in place.
      flip_some(bytes);
      break;
  }
  return bytes;
}

/// Shared accept-or-reject oracle: decoding the mutant must either throw
/// DecodeError or yield a value that re-encodes to exactly the mutant bytes
/// (every codec here is canonical: fixed-width little-endian fields and
/// length-prefixed sequences, so acceptance implies byte-exact round-trip).
/// Returns whether the mutant was accepted.
template <typename Message>
bool rejected_or_canonical(const std::vector<std::byte>& mutant) {
  std::optional<Message> decoded;
  try {
    decoded = Message::decode(mutant);
  } catch (const DecodeError&) {
    return false;  // Rejected cleanly — the expected fate of most mutants.
  }
  const std::vector<std::byte> reencoded = decoded->encode();
  EXPECT_EQ(reencoded.size(), mutant.size());
  EXPECT_TRUE(std::equal(reencoded.begin(), reencoded.end(), mutant.begin()));
  return true;
}

template <typename Message, typename MakeSample>
void run_corpus(std::uint64_t seed, MakeSample&& make_sample) {
  rng::Rng rng(seed);
  std::size_t accepted = 0;
  for (int i = 0; i < kMutantsPerFormat; ++i) {
    const Message pristine = make_sample(rng);
    const std::vector<std::byte> mutant = mutate(pristine.encode(), rng);
    if (rejected_or_canonical<Message>(mutant)) ++accepted;
  }
  // The corpus must exercise both fates, or the oracle proves nothing.
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, static_cast<std::size_t>(kMutantsPerFormat));
}

TEST(WireMutantCorpusTest, Adam2ViewAndDecodeAgreeOnEveryMutant) {
  rng::Rng rng(0xada2c0de);
  std::size_t accepted = 0;
  for (int i = 0; i < kMutantsPerFormat; ++i) {
    Adam2Message m;
    m.type = rng.bernoulli(0.5) ? MessageType::kAdam2Request
                                : MessageType::kAdam2Response;
    m.sender = rng();
    const std::size_t count = rng.below(3);
    for (std::size_t c = 0; c < count; ++c) {
      m.instances.push_back(
          sample_payload(static_cast<std::uint32_t>(rng.below(100))));
    }
    const std::vector<std::byte> mutant = mutate(m.encode(), rng);

    std::optional<Adam2Message> decoded;
    try {
      decoded = Adam2Message::decode(mutant);
    } catch (const DecodeError&) {
    }
    std::optional<Adam2Message> viewed;
    try {
      viewed = Adam2MessageView::parse(mutant).materialize();
    } catch (const DecodeError&) {
    }
    // The validation walk and the owning decoder must agree on every mutant.
    ASSERT_EQ(decoded.has_value(), viewed.has_value()) << "mutant " << i;
    if (!decoded) continue;
    ++accepted;
    // Compare re-encodings, not structs: byte-exact and NaN-proof (a mutant
    // can legitimately carry NaN doubles, where operator== would lie).
    const auto bytes_a = decoded->encode();
    const auto bytes_b = viewed->encode();
    ASSERT_EQ(bytes_a.size(), bytes_b.size()) << "mutant " << i;
    ASSERT_TRUE(std::equal(bytes_a.begin(), bytes_a.end(), bytes_b.begin()))
        << "mutant " << i;
    ASSERT_EQ(bytes_a.size(), mutant.size()) << "mutant " << i;
    ASSERT_TRUE(std::equal(bytes_a.begin(), bytes_a.end(), mutant.begin()))
        << "mutant " << i;
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, static_cast<std::size_t>(kMutantsPerFormat));
}

TEST(WireMutantCorpusTest, BootstrapRequestSurvivesCorpus) {
  run_corpus<BootstrapRequest>(0xb001, [](rng::Rng& rng) {
    BootstrapRequest m;
    m.sender = rng();
    return m;
  });
}

TEST(WireMutantCorpusTest, BootstrapResponseSurvivesCorpus) {
  run_corpus<BootstrapResponse>(0xb002, [](rng::Rng& rng) {
    BootstrapResponse m;
    m.sender = rng();
    m.n_estimate = rng.uniform(0.0, 1e6);
    m.min_value = rng.uniform(-100.0, 0.0);
    m.max_value = rng.uniform(0.0, 100.0);
    const std::size_t knots = rng.below(8);
    for (std::size_t k = 0; k < knots; ++k) {
      m.cdf_knots.push_back({rng.uniform(0.0, 100.0), rng.uniform()});
    }
    return m;
  });
}

TEST(WireMutantCorpusTest, EquiDepthMessageSurvivesCorpus) {
  run_corpus<EquiDepthMessage>(0xed03, [](rng::Rng& rng) {
    EquiDepthMessage m;
    m.type = rng.bernoulli(0.5) ? MessageType::kEquiDepthRequest
                                : MessageType::kEquiDepthResponse;
    m.sender = rng();
    m.phase = {rng(), static_cast<std::uint32_t>(rng.below(100))};
    m.start_round = static_cast<std::uint32_t>(rng.below(1000));
    m.ttl = static_cast<std::uint16_t>(rng.below(100));
    const std::size_t centroids = rng.below(6);
    for (std::size_t c = 0; c < centroids; ++c) {
      m.synopsis.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 10.0)});
    }
    return m;
  });
}

TEST(WireMutantCorpusTest, ShuffleMessageSurvivesCorpus) {
  run_corpus<ShuffleMessage>(0x5f04, [](rng::Rng& rng) {
    ShuffleMessage m;
    m.type = rng.bernoulli(0.5) ? MessageType::kShuffleRequest
                                : MessageType::kShuffleResponse;
    m.sender = rng();
    const std::size_t descriptors = rng.below(6);
    for (std::size_t d = 0; d < descriptors; ++d) {
      m.descriptors.push_back({rng(),
                               static_cast<std::uint32_t>(rng.below(50)),
                               static_cast<std::int64_t>(rng()) >> 8});
    }
    return m;
  });
}

}  // namespace
}  // namespace adam2::wire
