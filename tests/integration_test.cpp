// End-to-end reproduction checks of the paper's headline claims at reduced
// scale (a few thousand nodes). The bench binaries reproduce the full
// figures; these tests pin the qualitative shape so regressions are caught
// by ctest.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/equidepth.hpp"
#include "baselines/sampling.hpp"
#include "core/evaluation.hpp"
#include "core/system.hpp"
#include "data/boinc_synth.hpp"

namespace adam2 {
namespace {

std::vector<stats::Value> ram_population(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  return data::generate_population(data::Attribute::kRamMb, n, rng);
}

std::vector<stats::Value> cpu_population(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  return data::generate_population(data::Attribute::kCpuMflops, n, rng);
}

core::SystemConfig paper_config(std::uint64_t seed) {
  core::SystemConfig config;
  config.engine.seed = seed;
  config.protocol.lambda = 50;
  config.protocol.instance_ttl = 25;
  config.protocol.heuristic = core::SelectionHeuristic::kMinMax;
  config.protocol.bootstrap = core::BootstrapPoints::kNeighbourBased;
  config.overlay = core::OverlayKind::kCyclon;
  config.overlay_degree = 20;
  return config;
}

TEST(IntegrationTest, SingleInstanceErrorAtPointsBecomesNegligible) {
  // §VII-A: within one instance the error at the interpolation points
  // decreases exponentially and becomes negligible, while the entire-CDF
  // error floors at the interpolation error of a few percent.
  const auto values = ram_population(3000, 1);
  const stats::EmpiricalCdf truth{values};
  core::Adam2System system(paper_config(1), values);
  system.run_instance();

  const auto at_points = core::evaluate_estimate_points(system.engine(), truth);
  const auto entire = core::evaluate_estimates(system.engine(), truth);
  EXPECT_LT(at_points.avg_err, 1e-4);
  EXPECT_GT(entire.avg_err, at_points.avg_err * 10.0);
  EXPECT_LT(entire.max_err, 0.20);  // Paper Fig. 6(a): ~8% at 100k nodes.
}

TEST(IntegrationTest, ThreeInstancesReachPaperBandAccuracy) {
  // Abstract: avg error ~0.05%, max error ~2% after three instances. At
  // 3,000 nodes instead of 100,000 we allow looser bands of the same order.
  const auto values = ram_population(3000, 2);
  const stats::EmpiricalCdf truth{values};
  core::Adam2System system(paper_config(2), values);
  for (int i = 0; i < 3; ++i) system.run_instance();

  const auto errors = core::evaluate_estimates(system.engine(), truth);
  EXPECT_LT(errors.max_err, 0.10);
  EXPECT_LT(errors.avg_err, 0.01);
}

TEST(IntegrationTest, MinMaxBeatsHCutOnSteppedCdfErrm) {
  // §VII-C: for heavily-skewed attributes MinMax significantly outperforms
  // the others on Errm because it identifies the steps.
  const auto values = ram_population(3000, 3);
  const stats::EmpiricalCdf truth{values};

  auto run = [&](core::SelectionHeuristic heuristic) {
    core::SystemConfig config = paper_config(3);
    config.protocol.heuristic = heuristic;
    core::Adam2System system(config, values);
    for (int i = 0; i < 4; ++i) system.run_instance();
    return core::evaluate_estimates(system.engine(), truth);
  };
  const auto minmax = run(core::SelectionHeuristic::kMinMax);
  const auto hcut = run(core::SelectionHeuristic::kHCut);
  EXPECT_LT(minmax.max_err, hcut.max_err * 1.2);
  EXPECT_LT(minmax.max_err, 0.06);
}

TEST(IntegrationTest, LCutBestOnAverageError) {
  // §VII-C: LCut achieves roughly an order of magnitude better Erra.
  const auto values = cpu_population(3000, 4);
  const stats::EmpiricalCdf truth{values};

  auto run = [&](core::SelectionHeuristic heuristic) {
    core::SystemConfig config = paper_config(4);
    config.protocol.heuristic = heuristic;
    core::Adam2System system(config, values);
    for (int i = 0; i < 4; ++i) system.run_instance();
    return core::evaluate_estimates(system.engine(), truth).avg_err;
  };
  const double lcut = run(core::SelectionHeuristic::kLCut);
  const double hcut = run(core::SelectionHeuristic::kHCut);
  EXPECT_LT(lcut, hcut);
}

TEST(IntegrationTest, Adam2OutperformsEquiDepthByAnOrderOfMagnitude) {
  const auto values = ram_population(2000, 5);
  const stats::EmpiricalCdf truth{values};

  core::SystemConfig a2_config = paper_config(5);
  a2_config.protocol.heuristic = core::SelectionHeuristic::kLCut;
  core::Adam2System a2(a2_config, values);
  for (int i = 0; i < 4; ++i) a2.run_instance();
  const auto a2_errors = core::evaluate_estimates(a2.engine(), truth);

  baselines::EquiDepthConfig ed_config;
  sim::EngineConfig engine_config;
  engine_config.seed = 5;
  sim::Engine ed_engine(
      engine_config, values, core::make_overlay(core::OverlayKind::kCyclon, 20),
      [ed_config](const host::AgentContext&) {
        return std::make_unique<baselines::EquiDepthAgent>(ed_config);
      },
      nullptr);
  for (int i = 0; i < 3; ++i) {
    const auto initiator = ed_engine.random_live_node();
    auto ctx = ed_engine.context_for(initiator);
    dynamic_cast<baselines::EquiDepthAgent&>(ed_engine.agent(initiator))
        .start_phase(ctx);
    ed_engine.run_rounds(ed_config.phase_ttl + 1u);
  }
  const auto ed_errors = baselines::evaluate_equidepth(ed_engine, truth);

  // Paper: an order of magnitude at 100k nodes; at this reduced scale (2k
  // nodes) the gap narrows — require a clear >= 2.5x advantage.
  EXPECT_LT(a2_errors.avg_err * 2.5, ed_errors.avg_err);
}

TEST(IntegrationTest, AccuracyHoldsUnderTypicalChurn) {
  // §VII-G: at 0.1% churn per round the approximation error at interpolation
  // points stays around 0.01-0.1%, clearly sufficient for interpolation.
  const auto values = ram_population(3000, 6);
  core::SystemConfig config = paper_config(6);
  config.engine.churn_rate = 0.001;
  core::Adam2System system(config, values, [](rng::Rng& rng) {
    return data::sample_attribute(data::Attribute::kRamMb, rng);
  });
  for (int i = 0; i < 3; ++i) system.run_instance();

  const auto truth = system.truth();
  core::EvaluationOptions options;
  options.missing_counts_as_one = false;
  const auto at_points =
      core::evaluate_estimate_points(system.engine(), truth, options);
  EXPECT_LT(at_points.avg_err, 0.01);
  const auto entire =
      core::evaluate_estimates(system.engine(), truth, options);
  EXPECT_LT(entire.avg_err, 0.02);
}

TEST(IntegrationTest, ConfidenceEstimationIsInformative) {
  // §VII-H: with ~20 verification points the self-assessment of Erra lands
  // within tens of percent of the true error.
  const auto values = cpu_population(3000, 7);
  const stats::EmpiricalCdf truth{values};
  core::SystemConfig config = paper_config(7);
  config.protocol.heuristic = core::SelectionHeuristic::kLCut;
  config.protocol.verification_points = 20;
  core::Adam2System system(config, values);
  for (int i = 0; i < 2; ++i) system.run_instance();

  const double relative =
      core::confidence_estimation_error(system.engine(), truth, false);
  EXPECT_LT(relative, 0.8);
  EXPECT_GT(relative, 0.0);
}

TEST(IntegrationTest, PerInstanceTrafficMatchesCostModel) {
  // §VII-I: one instance at lambda = 50 costs ~40 kB sent per node
  // (25 rounds x ~2 messages x ~800 B), independent of system size.
  const auto values = ram_population(1000, 8);
  core::SystemConfig config = paper_config(8);
  config.protocol.verification_points = 0;
  core::Adam2System system(config, values);
  system.run_instance();

  const auto& agg =
      system.engine().total_traffic().on(host::Channel::kAggregation);
  const double sent_per_node =
      static_cast<double>(agg.bytes_sent) / 1000.0;
  EXPECT_GT(sent_per_node, 20.0 * 1024);
  EXPECT_LT(sent_per_node, 60.0 * 1024);
}

TEST(IntegrationTest, TrafficPerNodeIndependentOfSystemSize) {
  double per_node[2] = {0.0, 0.0};
  const std::size_t sizes[2] = {500, 2000};
  for (int i = 0; i < 2; ++i) {
    const auto values = ram_population(sizes[i], 9);
    core::Adam2System system(paper_config(9), values);
    system.run_instance();
    const auto& agg =
        system.engine().total_traffic().on(host::Channel::kAggregation);
    per_node[i] =
        static_cast<double>(agg.bytes_sent) / static_cast<double>(sizes[i]);
  }
  EXPECT_NEAR(per_node[0], per_node[1], per_node[0] * 0.2);
}

TEST(IntegrationTest, RandomSamplingNeedsThousandsOfSamples) {
  // §VII-C: about 1,000-10,000 random samples are necessary to match Adam2.
  const auto values = ram_population(20000, 10);
  const stats::EmpiricalCdf truth{values};

  core::Adam2System system(paper_config(10), ram_population(3000, 10));
  for (int i = 0; i < 3; ++i) system.run_instance();
  const auto adam2_errors =
      core::evaluate_estimates(system.engine(),
                               stats::EmpiricalCdf{
                                   system.engine().live_attribute_values()});

  rng::Rng rng(11);
  baselines::SamplingConfig sampling;
  sampling.sample_size = 100;
  const auto few = baselines::estimate_by_sampling(values, sampling, rng);
  EXPECT_GT(few.errors.avg_err, adam2_errors.avg_err);
}

}  // namespace
}  // namespace adam2
