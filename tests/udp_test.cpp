// Real-socket path: Adam2 over loopback UDP datagrams.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "core/protocol.hpp"
#include "runtime/udp.hpp"

namespace adam2::runtime {
namespace {

using namespace std::chrono_literals;

TEST(UdpEndpointTest, BindsDistinctEphemeralPorts) {
  UdpEndpoint a;
  UdpEndpoint b;
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(UdpEndpointTest, EnvelopeRoundTrip) {
  UdpEndpoint sender;
  UdpEndpoint receiver;
  Envelope out{EnvelopeKind::kGossipRequest, 42, 7,
               {std::byte{1}, std::byte{2}, std::byte{3}}};
  ASSERT_TRUE(sender.send(receiver.port(), out));
  const auto in = receiver.receive(1s);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->kind, EnvelopeKind::kGossipRequest);
  EXPECT_EQ(in->from, 42u);
  EXPECT_EQ(in->token, 7u);
  EXPECT_EQ(in->payload, out.payload);
}

TEST(UdpEndpointTest, EmptyPayloadRoundTrip) {
  UdpEndpoint sender;
  UdpEndpoint receiver;
  ASSERT_TRUE(sender.send(receiver.port(), {EnvelopeKind::kGossipBusy, 1, 9, {}}));
  const auto in = receiver.receive(1s);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->kind, EnvelopeKind::kGossipBusy);
  EXPECT_TRUE(in->payload.empty());
}

TEST(UdpEndpointTest, ReceiveTimesOut) {
  UdpEndpoint receiver;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(receiver.receive(20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 15ms);
}

// Regression: SO_RCVTIMEO treats a zero timeval as "block forever", so a
// sub-microsecond wait (truncated to 0us) used to wedge the receive loop —
// and UdpPeer::stop() behind it — until a stray datagram arrived. The
// endpoint must clamp and return promptly.
TEST(UdpEndpointTest, ZeroTimeoutReceiveReturnsPromptly) {
  UdpEndpoint receiver;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(receiver.receive(std::chrono::microseconds{0}).has_value());
  EXPECT_FALSE(receiver.receive(std::chrono::microseconds{-5}).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST(UdpDirectoryTest, PickTargetNeverSelf) {
  UdpDirectory directory({1, 2, 3}, {1000, 1001, 1002});
  rng::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto target = directory.pick_gossip_target(1, rng);
    ASSERT_TRUE(target.has_value());
    EXPECT_NE(*target, 1u);
  }
}

TEST(UdpDirectoryTest, KnownValuesExcludeSelf) {
  UdpDirectory directory({10, 20, 30}, {1, 2, 3});
  const auto values = directory.known_attribute_values(1, directory);
  EXPECT_EQ(values, (std::vector<stats::Value>{10, 30}));
}

TEST(UdpPeerTest, Adam2ConvergesOverRealSockets) {
  constexpr std::size_t kPeers = 12;
  std::vector<stats::Value> values;
  for (std::size_t i = 0; i < kPeers; ++i) {
    values.push_back(static_cast<stats::Value>((i + 1) * 10));
  }

  std::vector<std::unique_ptr<UdpEndpoint>> endpoints;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < kPeers; ++i) {
    endpoints.push_back(std::make_unique<UdpEndpoint>());
    ports.push_back(endpoints.back()->port());
  }
  UdpDirectory directory(values, ports);

  core::Adam2Config protocol;
  protocol.lambda = 6;
  protocol.instance_ttl = 80;
  protocol.bootstrap = core::BootstrapPoints::kNeighbourBased;

  UdpPeerConfig config;
  config.gossip_period = 3ms;
  config.response_timeout = 30ms;
  config.seed = 9;

  std::vector<std::unique_ptr<UdpPeer>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(std::make_unique<UdpPeer>(
        config, static_cast<host::NodeId>(i), directory, *endpoints[i],
        std::make_unique<core::Adam2Agent>(protocol)));
  }
  for (auto& peer : peers) peer->start();

  peers[0]->run_on_peer([](host::NodeAgent& agent, host::AgentContext& ctx) {
    dynamic_cast<core::Adam2Agent&>(agent).start_instance(ctx);
  });

  // Poll until every peer finalised (ttl=80 ticks at ~3 ms).
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  std::size_t with_estimate = 0;
  std::vector<core::Estimate> estimates;
  while (std::chrono::steady_clock::now() < deadline) {
    with_estimate = 0;
    estimates.clear();
    for (auto& peer : peers) {
      peer->run_on_peer([&](host::NodeAgent& agent, host::AgentContext&) {
        const auto& a2 = dynamic_cast<core::Adam2Agent&>(agent);
        if (a2.estimate()) {
          ++with_estimate;
          estimates.push_back(*a2.estimate());
        }
      });
    }
    if (with_estimate == kPeers) break;
    std::this_thread::sleep_for(20ms);
  }
  for (auto& peer : peers) peer->stop();

  ASSERT_EQ(with_estimate, kPeers);
  const stats::EmpiricalCdf truth{values};
  for (const core::Estimate& est : estimates) {
    EXPECT_NEAR(est.n_estimate, static_cast<double>(kPeers),
                static_cast<double>(kPeers) * 0.3);
    EXPECT_DOUBLE_EQ(est.min_value, 10.0);
    EXPECT_DOUBLE_EQ(est.max_value, 120.0);
    for (const stats::CdfPoint& p : est.points) {
      EXPECT_NEAR(p.f, truth(p.t), 0.15) << "at t=" << p.t;
    }
  }
  EXPECT_GT(directory.traffic().on(host::Channel::kAggregation).messages_sent,
            100u);
}

}  // namespace
}  // namespace adam2::runtime
