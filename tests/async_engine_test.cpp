#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluation.hpp"
#include "core/protocol.hpp"
#include "sim/async_engine.hpp"
#include "sim/overlay.hpp"
#include "wire/buffer.hpp"

namespace adam2::sim {
namespace {

/// Same push-pull averaging test double as in sim_test, here exercised over
/// asynchronous exchanges with latency.
class AveragingAgent final : public NodeAgent {
 public:
  explicit AveragingAgent(double initial) : value_(initial) {}
  [[nodiscard]] double value() const { return value_; }

  std::span<const std::byte> make_request(AgentContext&) override {
    scratch_ = encode(value_);
    return scratch_;
  }
  std::span<const std::byte> handle_request(
      AgentContext&, std::span<const std::byte> req) override {
    const double theirs = decode(req);
    scratch_ = encode(value_);
    value_ = (value_ + theirs) / 2.0;
    return scratch_;
  }
  void handle_response(AgentContext&, std::span<const std::byte> resp) override {
    value_ = (value_ + decode(resp)) / 2.0;
  }

 private:
  static std::vector<std::byte> encode(double v) {
    wire::Writer w;
    w.f64(v);
    return w.take();
  }
  static double decode(std::span<const std::byte> bytes) {
    wire::Reader r(bytes);
    return r.f64();
  }
  double value_;
  std::vector<std::byte> scratch_;  ///< Backs the returned spans.
};

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<stats::Value>(i);
  return values;
}

AsyncConfig base_config(std::uint64_t seed) {
  AsyncConfig config;
  config.seed = seed;
  return config;
}

AgentFactory averaging_factory() {
  return [](const AgentContext& ctx) {
    return std::make_unique<AveragingAgent>(static_cast<double>(ctx.attribute));
  };
}

TEST(AsyncEngineTest, TimeAdvancesToRequestedPoint) {
  AsyncEngine engine(base_config(1), iota_values(50),
                     std::make_unique<StaticRandomOverlay>(8),
                     averaging_factory(), nullptr);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  engine.run_until(12.5);
  EXPECT_DOUBLE_EQ(engine.now(), 12.5);
  EXPECT_EQ(engine.round(), 12u);
}

TEST(AsyncEngineTest, AveragingConvergesWithoutRoundSynchrony) {
  const std::size_t n = 128;
  AsyncEngine engine(base_config(2), iota_values(n),
                     std::make_unique<StaticRandomOverlay>(8),
                     averaging_factory(), nullptr);
  engine.run_until(60.0);  // ~60 gossip periods.
  const double mean = (static_cast<double>(n) - 1.0) / 2.0;
  for (NodeId id : engine.live_ids()) {
    const auto& agent = dynamic_cast<const AveragingAgent&>(engine.agent(id));
    EXPECT_NEAR(agent.value(), mean, 1e-6);
  }
}

TEST(AsyncEngineTest, InFlightResponsesBreakMassOnlyTransiently) {
  // Quiescent checkpoints: stop ticks by running exactly between periods is
  // impossible with jitter, so instead check convergence implies the total
  // returned to the initial mass.
  const std::size_t n = 64;
  AsyncEngine engine(base_config(3), iota_values(n),
                     std::make_unique<StaticRandomOverlay>(8),
                     averaging_factory(), nullptr);
  engine.run_until(80.0);
  double total = 0.0;
  for (NodeId id : engine.live_ids()) {
    total += dynamic_cast<const AveragingAgent&>(engine.agent(id)).value();
  }
  const double expected = static_cast<double>(n * (n - 1)) / 2.0;
  EXPECT_NEAR(total, expected, expected * 1e-6);
}

TEST(AsyncEngineTest, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    AsyncEngine engine(base_config(seed), iota_values(64),
                       std::make_unique<StaticRandomOverlay>(6),
                       averaging_factory(), nullptr);
    engine.run_until(10.0);
    std::vector<double> values;
    for (NodeId id : engine.live_ids()) {
      values.push_back(
          dynamic_cast<const AveragingAgent&>(engine.agent(id)).value());
    }
    return values;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(AsyncEngineTest, TrafficIsAccounted) {
  AsyncEngine engine(base_config(4), iota_values(50),
                     std::make_unique<StaticRandomOverlay>(6),
                     averaging_factory(), nullptr);
  engine.run_until(5.0);
  const auto& agg = engine.total_traffic().on(Channel::kAggregation);
  EXPECT_GT(agg.messages_sent, 100u);  // ~50 nodes x 5 ticks x 2 messages.
  EXPECT_LT(agg.messages_sent, 600u);
  EXPECT_EQ(agg.bytes_sent, agg.messages_sent * 8);
}

TEST(AsyncEngineTest, MessageLossDropsTraffic) {
  AsyncConfig config = base_config(5);
  config.message_loss = 0.4;
  AsyncEngine engine(config, iota_values(100),
                     std::make_unique<StaticRandomOverlay>(6),
                     averaging_factory(), nullptr);
  engine.run_until(10.0);
  EXPECT_GT(engine.total_traffic().dropped_messages, 50u);
}

TEST(AsyncEngineTest, ChurnReplacesNodes) {
  AsyncConfig config = base_config(6);
  config.churn_per_second = 0.02;
  AsyncEngine engine(config, iota_values(200),
                     std::make_unique<StaticRandomOverlay>(8),
                     averaging_factory(), [](rng::Rng& rng) {
                       return static_cast<stats::Value>(rng.below(100));
                     });
  engine.run_until(30.0);
  EXPECT_EQ(engine.live_count(), 200u);
  bool any_new = false;
  for (NodeId id : engine.live_ids()) any_new |= (id >= 200);
  EXPECT_TRUE(any_new);
}

// ----------------------------- Adam2 over the asynchronous substrate ------

TEST(AsyncEngineTest, Adam2ConvergesOverAsynchronousGossip) {
  core::Adam2Config protocol;
  protocol.lambda = 10;
  protocol.instance_ttl = 50;
  AsyncEngine engine(
      base_config(7), iota_values(300),
      std::make_unique<StaticRandomOverlay>(8),
      [protocol](const AgentContext&) {
        return std::make_unique<core::Adam2Agent>(protocol);
      },
      nullptr);

  engine.run_until(1.0);
  const NodeId initiator = engine.random_live_node();
  auto ctx = engine.context_for(initiator);
  dynamic_cast<core::Adam2Agent&>(engine.agent(initiator)).start_instance(ctx);
  engine.run_until(1.0 + 55.0);  // ttl periods plus slack.

  std::size_t with_estimate = 0;
  for (NodeId id : engine.live_ids()) {
    const auto& agent = dynamic_cast<const core::Adam2Agent&>(engine.agent(id));
    if (!agent.estimate()) continue;
    ++with_estimate;
    for (const stats::CdfPoint& p : agent.estimate()->points) {
      const double truth = (std::floor(p.t) + 1.0) / 300.0;  // values 0..299
      EXPECT_NEAR(p.f, truth, 1e-4) << "at t=" << p.t;
    }
    EXPECT_NEAR(agent.estimate()->n_estimate, 300.0, 3.0);
  }
  EXPECT_EQ(with_estimate, 300u);
}

TEST(AsyncEngineTest, Adam2ProbabilisticModeRunsAutonomously) {
  core::Adam2Config protocol;
  protocol.lambda = 10;
  protocol.instance_ttl = 25;
  protocol.restart_every_r = 20.0;
  protocol.initial_n_estimate = 200.0;
  AsyncEngine engine(
      base_config(8), iota_values(200),
      std::make_unique<StaticRandomOverlay>(8),
      [protocol](const AgentContext&) {
        return std::make_unique<core::Adam2Agent>(protocol);
      },
      nullptr);
  engine.run_until(120.0);
  std::size_t with_estimate = 0;
  for (NodeId id : engine.live_ids()) {
    const auto& agent = dynamic_cast<const core::Adam2Agent&>(engine.agent(id));
    if (agent.estimate()) ++with_estimate;
  }
  EXPECT_GT(with_estimate, 150u);
}

}  // namespace
}  // namespace adam2::sim
