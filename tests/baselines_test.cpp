#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/equidepth.hpp"
#include "baselines/sampling.hpp"
#include "core/evaluation.hpp"
#include "core/system.hpp"
#include "data/boinc_synth.hpp"
#include "sim/overlay.hpp"

namespace adam2::baselines {
namespace {

std::vector<stats::Value> iota_values(std::size_t n) {
  std::vector<stats::Value> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<stats::Value>(i + 1);
  }
  return values;
}

sim::Engine make_equidepth_engine(const EquiDepthConfig& config,
                                  std::vector<stats::Value> values,
                                  std::uint64_t seed = 1,
                                  double churn = 0.0,
                                  host::AttributeSource source = nullptr) {
  sim::EngineConfig engine_config;
  engine_config.seed = seed;
  engine_config.churn_rate = churn;
  return sim::Engine(
      engine_config, std::move(values),
      std::make_unique<sim::StaticRandomOverlay>(8),
      [config](const host::AgentContext&) {
        return std::make_unique<EquiDepthAgent>(config);
      },
      std::move(source));
}

wire::InstanceId run_phase(sim::Engine& engine, const EquiDepthConfig& config,
                           host::NodeId initiator = 0) {
  auto ctx = engine.context_for(initiator);
  auto& agent = dynamic_cast<EquiDepthAgent&>(engine.agent(initiator));
  const auto id = agent.start_phase(ctx);
  engine.run_rounds(config.phase_ttl + 1u);
  return id;
}

// ---------------------------------------------------------------- EquiDepth

TEST(EquiDepthTest, PhaseSpreadsToAllNodes) {
  EquiDepthConfig config;
  config.bins = 10;
  config.phase_ttl = 20;
  auto engine = make_equidepth_engine(config, iota_values(200));
  run_phase(engine, config);
  std::size_t with_estimate = 0;
  for (host::NodeId id : engine.live_ids()) {
    const auto& agent = dynamic_cast<const EquiDepthAgent&>(engine.agent(id));
    with_estimate += agent.estimate().has_value() ? 1u : 0u;
  }
  EXPECT_EQ(with_estimate, 200u);
}

TEST(EquiDepthTest, SynopsisRespectsBinBudget) {
  EquiDepthConfig config;
  config.bins = 16;
  config.phase_ttl = 30;
  auto engine = make_equidepth_engine(config, iota_values(300), 2);
  auto ctx = engine.context_for(0);
  auto& agent = dynamic_cast<EquiDepthAgent&>(engine.agent(0));
  const auto id = agent.start_phase(ctx);
  for (int round = 0; round < 30; ++round) {
    engine.run_rounds(1);
    for (host::NodeId node : engine.live_ids()) {
      const auto& a = dynamic_cast<const EquiDepthAgent&>(engine.agent(node));
      EXPECT_LE(a.phase_synopsis(id).size(), 16u);
    }
  }
}

TEST(EquiDepthTest, EstimatesRoughCdfShape) {
  EquiDepthConfig config;
  config.bins = 50;
  config.phase_ttl = 25;
  auto engine = make_equidepth_engine(config, iota_values(1000), 3);
  run_phase(engine, config);
  const stats::EmpiricalCdf truth{iota_values(1000)};
  const auto errors = evaluate_equidepth(engine, truth);
  EXPECT_EQ(errors.peers, 1000u);
  // Right ballpark but clearly worse than Adam2's 1e-9 at points.
  EXPECT_LT(errors.avg_err, 0.15);
  EXPECT_GT(errors.avg_err, 1e-6);
}

TEST(EquiDepthTest, ErrorDoesNotImproveAcrossPhases) {
  // §VII-C / Fig. 8: EquiDepth generates the same error in every phase since
  // the bins are never refined from previous estimates.
  rng::Rng data_rng(4);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, 1500, data_rng);
  const stats::EmpiricalCdf truth{values};
  EquiDepthConfig config;
  config.bins = 30;
  config.phase_ttl = 25;
  auto engine = make_equidepth_engine(config, values, 4);

  std::vector<double> per_phase;
  for (int phase = 0; phase < 4; ++phase) {
    run_phase(engine, config, engine.random_live_node());
    per_phase.push_back(evaluate_equidepth(engine, truth).avg_err);
  }
  // No order-of-magnitude improvement from first to last phase.
  EXPECT_GT(per_phase.back(), per_phase.front() / 3.0);
}

TEST(EquiDepthTest, AccuracyFloorOnSteppedCdf) {
  // The duplication + fixed bins keep EquiDepth's Errm at several percent on
  // a stepped distribution, where Adam2 converges to ~1e-9 at points.
  rng::Rng data_rng(5);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, 2000, data_rng);
  const stats::EmpiricalCdf truth{values};
  EquiDepthConfig config;
  auto engine = make_equidepth_engine(config, values, 5);
  run_phase(engine, config);
  const auto errors = evaluate_equidepth(engine, truth);
  EXPECT_GT(errors.max_err, 0.01);
}

TEST(EquiDepthTest, WorseThanAdam2OnSteppedCdf) {
  rng::Rng data_rng(6);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, 1500, data_rng);
  const stats::EmpiricalCdf truth{values};

  EquiDepthConfig ed_config;
  ed_config.bins = 50;
  auto ed_engine = make_equidepth_engine(ed_config, values, 6);
  for (int i = 0; i < 3; ++i) {
    run_phase(ed_engine, ed_config, ed_engine.random_live_node());
  }
  const auto ed_errors = evaluate_equidepth(ed_engine, truth);

  core::SystemConfig a2_config;
  a2_config.engine.seed = 6;
  a2_config.protocol.lambda = 50;
  a2_config.overlay = core::OverlayKind::kStaticRandom;
  a2_config.overlay_degree = 8;
  core::Adam2System a2(a2_config, values);
  for (int i = 0; i < 3; ++i) a2.run_instance();
  const auto a2_errors = a2.errors();

  EXPECT_LT(a2_errors.avg_err, ed_errors.avg_err);
}

TEST(EquiDepthTest, ResilientToChurn) {
  // §VII-G / Fig. 12(b): EquiDepth is not significantly affected by churn.
  rng::Rng data_rng(7);
  const auto values =
      data::generate_population(data::Attribute::kCpuMflops, 1000, data_rng);
  EquiDepthConfig config;
  auto engine = make_equidepth_engine(
      config, values, 7, 0.001, [](rng::Rng& rng) {
        return data::sample_attribute(data::Attribute::kCpuMflops, rng);
      });
  run_phase(engine, config);
  const stats::EmpiricalCdf truth{engine.live_attribute_values()};
  const auto errors =
      evaluate_equidepth(engine, truth, 0, true, /*missing=*/false);
  EXPECT_LT(errors.avg_err, 0.1);
}

TEST(EquiDepthTest, LateJoinersIgnoreRunningPhases) {
  EquiDepthConfig config;
  config.phase_ttl = 30;
  auto engine = make_equidepth_engine(
      config, iota_values(200), 8, 0.02,
      [](rng::Rng& rng) { return static_cast<stats::Value>(rng.below(200)); });
  auto ctx = engine.context_for(0);
  auto& agent = dynamic_cast<EquiDepthAgent&>(engine.agent(0));
  const auto id = agent.start_phase(ctx);
  engine.run_rounds(15);
  for (host::NodeId node : engine.live_ids()) {
    if (engine.node(node).birth_round > 0) {
      const auto& a = dynamic_cast<const EquiDepthAgent&>(engine.agent(node));
      EXPECT_TRUE(a.phase_synopsis(id).empty());
    }
  }
}

TEST(EquiDepthTest, MessageBudgetComparableToAdam2) {
  // §VII-I: EquiDepth sends the same number of messages with similar sizes.
  EquiDepthConfig config;
  config.bins = 50;
  auto engine = make_equidepth_engine(config, iota_values(500), 9);
  run_phase(engine, config);
  const auto& traffic = engine.total_traffic().on(host::Channel::kAggregation);
  ASSERT_GT(traffic.messages_sent, 0u);
  const double avg_size = static_cast<double>(traffic.bytes_sent) /
                          static_cast<double>(traffic.messages_sent);
  EXPECT_GT(avg_size, 400.0);
  EXPECT_LT(avg_size, 1000.0);
}

// ----------------------------------------------------------------- Sampling

TEST(SamplingTest, SampleCdfMatchesPopulationForFullSample) {
  const auto values = iota_values(500);
  const auto cdf = sample_cdf(values);
  EXPECT_NEAR(cdf(250.0), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(cdf(500.0), 1.0);
}

TEST(SamplingTest, ErrorDecreasesWithSampleSize) {
  rng::Rng data_rng(10);
  const auto values =
      data::generate_population(data::Attribute::kCpuMflops, 20000, data_rng);
  rng::Rng rng(11);
  double previous = 1.0;
  for (std::size_t size : {10u, 100u, 1000u, 10000u}) {
    SamplingConfig config;
    config.sample_size = size;
    const auto result = estimate_by_sampling(values, config, rng);
    EXPECT_LT(result.errors.max_err, previous * 1.5)
        << "sample size " << size;
    previous = result.errors.max_err;
  }
  EXPECT_LT(previous, 0.05);  // 10k samples: few-percent accuracy.
}

TEST(SamplingTest, SmallSamplesAreInaccurate) {
  rng::Rng data_rng(12);
  const auto values =
      data::generate_population(data::Attribute::kRamMb, 10000, data_rng);
  rng::Rng rng(13);
  SamplingConfig config;
  config.sample_size = 10;
  const auto result = estimate_by_sampling(values, config, rng);
  EXPECT_GT(result.errors.max_err, 0.05);
}

TEST(SamplingTest, CostModelCountsWalkMessages) {
  const auto values = iota_values(100);
  rng::Rng rng(14);
  SamplingConfig config;
  config.sample_size = 1000;
  config.walk_hops = 10;
  const auto result = estimate_by_sampling(values, config, rng);
  EXPECT_EQ(result.messages, 10000u);
  EXPECT_EQ(result.bytes_estimate, 10000u * 48u);
}

TEST(SamplingTest, SkewedCdfNeedsMoreSamplesThanSmooth) {
  // §VII-C: "error measurements for random sampling are higher for
  // heavily-skewed CDFs compared to smooth CDFs".
  rng::Rng data_rng(15);
  const auto smooth =
      data::generate_population(data::Attribute::kCpuMflops, 20000, data_rng);
  const auto skewed =
      data::generate_population(data::Attribute::kRamMb, 20000, data_rng);
  rng::Rng rng(16);
  SamplingConfig config;
  config.sample_size = 100;
  double smooth_err = 0.0;
  double skewed_err = 0.0;
  for (int i = 0; i < 20; ++i) {  // Average over repetitions.
    smooth_err += estimate_by_sampling(smooth, config, rng).errors.avg_err;
    skewed_err += estimate_by_sampling(skewed, config, rng).errors.avg_err;
  }
  EXPECT_GT(skewed_err, smooth_err);
}

TEST(EquiDepthTest, GossipsTheOldestActivePhase) {
  // Regression for the adam2_lint `unordered-iter` fix: when a node carries
  // several concurrent phases it gossips the *oldest* one (first joined or
  // started), not whichever `active_.begin()` lands on in the hash table's
  // bucket order. One node joins phases from many scattered initiators and
  // must keep gossiping the first arrival.
  EquiDepthConfig config;
  config.bins = 8;
  config.phase_ttl = 40;
  auto engine = make_equidepth_engine(config, iota_values(32));
  const host::NodeId joiner = 0;

  std::vector<wire::InstanceId> arrival;
  for (host::NodeId initiator : {5, 17, 3, 29, 11, 23, 7, 13}) {
    auto ictx = engine.context_for(initiator);
    auto& agent = dynamic_cast<EquiDepthAgent&>(engine.agent(initiator));
    arrival.push_back(agent.start_phase(ictx));
    const auto request = agent.make_request(ictx);
    auto jctx = engine.context_for(joiner);
    (void)dynamic_cast<EquiDepthAgent&>(engine.agent(joiner))
        .handle_request(jctx, request);
  }

  auto& agent = dynamic_cast<EquiDepthAgent&>(engine.agent(joiner));
  ASSERT_EQ(agent.active_phase_count(), arrival.size());
  auto jctx = engine.context_for(joiner);
  const auto request = agent.make_request(jctx);
  const wire::EquiDepthMessage decoded = wire::EquiDepthMessage::decode(request);
  EXPECT_EQ(decoded.phase, arrival.front());
}

}  // namespace
}  // namespace adam2::baselines
