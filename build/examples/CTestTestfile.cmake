# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_load_monitor "/root/repo/build/examples/load_monitor")
set_tests_properties(example_load_monitor PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_outlier_detection "/root/repo/build/examples/outlier_detection")
set_tests_properties(example_outlier_detection PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner")
set_tests_properties(example_capacity_planner PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_file_sizes "/root/repo/build/examples/file_sizes")
set_tests_properties(example_file_sizes PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_threaded_monitor "/root/repo/build/examples/threaded_monitor")
set_tests_properties(example_threaded_monitor PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
