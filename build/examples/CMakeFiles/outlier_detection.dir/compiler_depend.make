# Empty compiler generated dependencies file for outlier_detection.
# This may be replaced when dependencies are built.
