# Empty dependencies file for load_monitor.
# This may be replaced when dependencies are built.
