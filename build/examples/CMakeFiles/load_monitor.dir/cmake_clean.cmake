file(REMOVE_RECURSE
  "CMakeFiles/load_monitor.dir/load_monitor.cpp.o"
  "CMakeFiles/load_monitor.dir/load_monitor.cpp.o.d"
  "load_monitor"
  "load_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
