file(REMOVE_RECURSE
  "CMakeFiles/threaded_monitor.dir/threaded_monitor.cpp.o"
  "CMakeFiles/threaded_monitor.dir/threaded_monitor.cpp.o.d"
  "threaded_monitor"
  "threaded_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
