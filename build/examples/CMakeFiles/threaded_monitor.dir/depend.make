# Empty dependencies file for threaded_monitor.
# This may be replaced when dependencies are built.
