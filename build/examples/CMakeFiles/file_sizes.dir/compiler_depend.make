# Empty compiler generated dependencies file for file_sizes.
# This may be replaced when dependencies are built.
