file(REMOVE_RECURSE
  "CMakeFiles/file_sizes.dir/file_sizes.cpp.o"
  "CMakeFiles/file_sizes.dir/file_sizes.cpp.o.d"
  "file_sizes"
  "file_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
