# Empty dependencies file for fig06_single_instance.
# This may be replaced when dependencies are built.
