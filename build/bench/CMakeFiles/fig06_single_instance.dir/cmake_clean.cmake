file(REMOVE_RECURSE
  "CMakeFiles/fig06_single_instance.dir/fig06_single_instance.cpp.o"
  "CMakeFiles/fig06_single_instance.dir/fig06_single_instance.cpp.o.d"
  "fig06_single_instance"
  "fig06_single_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_single_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
