# Empty dependencies file for fig08_equidepth_phases.
# This may be replaced when dependencies are built.
