file(REMOVE_RECURSE
  "CMakeFiles/fig08_equidepth_phases.dir/fig08_equidepth_phases.cpp.o"
  "CMakeFiles/fig08_equidepth_phases.dir/fig08_equidepth_phases.cpp.o.d"
  "fig08_equidepth_phases"
  "fig08_equidepth_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_equidepth_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
