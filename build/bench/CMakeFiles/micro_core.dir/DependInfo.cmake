
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_core.cpp" "bench/CMakeFiles/micro_core.dir/micro_core.cpp.o" "gcc" "bench/CMakeFiles/micro_core.dir/micro_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/adam2_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adam2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/adam2_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/adam2_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adam2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/adam2_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adam2_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adam2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
