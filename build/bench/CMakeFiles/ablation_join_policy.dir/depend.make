# Empty dependencies file for ablation_join_policy.
# This may be replaced when dependencies are built.
