file(REMOVE_RECURSE
  "CMakeFiles/ablation_overlay.dir/ablation_overlay.cpp.o"
  "CMakeFiles/ablation_overlay.dir/ablation_overlay.cpp.o.d"
  "ablation_overlay"
  "ablation_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
