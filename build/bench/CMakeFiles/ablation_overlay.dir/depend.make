# Empty dependencies file for ablation_overlay.
# This may be replaced when dependencies are built.
