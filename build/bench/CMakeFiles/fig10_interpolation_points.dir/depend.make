# Empty dependencies file for fig10_interpolation_points.
# This may be replaced when dependencies are built.
