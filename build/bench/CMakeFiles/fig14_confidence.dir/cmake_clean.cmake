file(REMOVE_RECURSE
  "CMakeFiles/fig14_confidence.dir/fig14_confidence.cpp.o"
  "CMakeFiles/fig14_confidence.dir/fig14_confidence.cpp.o.d"
  "fig14_confidence"
  "fig14_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
