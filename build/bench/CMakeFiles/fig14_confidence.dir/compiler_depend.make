# Empty compiler generated dependencies file for fig14_confidence.
# This may be replaced when dependencies are built.
