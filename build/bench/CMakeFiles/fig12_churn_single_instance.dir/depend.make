# Empty dependencies file for fig12_churn_single_instance.
# This may be replaced when dependencies are built.
