file(REMOVE_RECURSE
  "CMakeFiles/fig12_churn_single_instance.dir/fig12_churn_single_instance.cpp.o"
  "CMakeFiles/fig12_churn_single_instance.dir/fig12_churn_single_instance.cpp.o.d"
  "fig12_churn_single_instance"
  "fig12_churn_single_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_churn_single_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
