file(REMOVE_RECURSE
  "CMakeFiles/fig04_attribute_cdfs.dir/fig04_attribute_cdfs.cpp.o"
  "CMakeFiles/fig04_attribute_cdfs.dir/fig04_attribute_cdfs.cpp.o.d"
  "fig04_attribute_cdfs"
  "fig04_attribute_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_attribute_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
