# Empty compiler generated dependencies file for fig04_attribute_cdfs.
# This may be replaced when dependencies are built.
