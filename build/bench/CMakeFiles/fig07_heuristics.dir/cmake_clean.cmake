file(REMOVE_RECURSE
  "CMakeFiles/fig07_heuristics.dir/fig07_heuristics.cpp.o"
  "CMakeFiles/fig07_heuristics.dir/fig07_heuristics.cpp.o.d"
  "fig07_heuristics"
  "fig07_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
