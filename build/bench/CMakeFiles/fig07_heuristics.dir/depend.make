# Empty dependencies file for fig07_heuristics.
# This may be replaced when dependencies are built.
