file(REMOVE_RECURSE
  "CMakeFiles/fig13_churn_rates.dir/fig13_churn_rates.cpp.o"
  "CMakeFiles/fig13_churn_rates.dir/fig13_churn_rates.cpp.o.d"
  "fig13_churn_rates"
  "fig13_churn_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_churn_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
