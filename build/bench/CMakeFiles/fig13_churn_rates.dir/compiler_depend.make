# Empty compiler generated dependencies file for fig13_churn_rates.
# This may be replaced when dependencies are built.
