file(REMOVE_RECURSE
  "CMakeFiles/fig05_bootstrap.dir/fig05_bootstrap.cpp.o"
  "CMakeFiles/fig05_bootstrap.dir/fig05_bootstrap.cpp.o.d"
  "fig05_bootstrap"
  "fig05_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
