# Empty compiler generated dependencies file for fig05_bootstrap.
# This may be replaced when dependencies are built.
