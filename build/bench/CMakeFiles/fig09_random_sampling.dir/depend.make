# Empty dependencies file for fig09_random_sampling.
# This may be replaced when dependencies are built.
