file(REMOVE_RECURSE
  "CMakeFiles/fig09_random_sampling.dir/fig09_random_sampling.cpp.o"
  "CMakeFiles/fig09_random_sampling.dir/fig09_random_sampling.cpp.o.d"
  "fig09_random_sampling"
  "fig09_random_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_random_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
