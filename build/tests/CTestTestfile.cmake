# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/stats_edge_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/async_engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_test[1]_include.cmake")
include("/root/repo/build/tests/point_selection_test[1]_include.cmake")
include("/root/repo/build/tests/instance_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/combine_test[1]_include.cmake")
include("/root/repo/build/tests/rank_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/udp_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/multi_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
