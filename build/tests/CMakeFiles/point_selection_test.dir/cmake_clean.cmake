file(REMOVE_RECURSE
  "CMakeFiles/point_selection_test.dir/point_selection_test.cpp.o"
  "CMakeFiles/point_selection_test.dir/point_selection_test.cpp.o.d"
  "point_selection_test"
  "point_selection_test.pdb"
  "point_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
