file(REMOVE_RECURSE
  "CMakeFiles/stats_edge_test.dir/stats_edge_test.cpp.o"
  "CMakeFiles/stats_edge_test.dir/stats_edge_test.cpp.o.d"
  "stats_edge_test"
  "stats_edge_test.pdb"
  "stats_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
