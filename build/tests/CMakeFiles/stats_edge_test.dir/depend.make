# Empty dependencies file for stats_edge_test.
# This may be replaced when dependencies are built.
