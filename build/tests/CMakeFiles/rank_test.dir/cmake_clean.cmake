file(REMOVE_RECURSE
  "CMakeFiles/rank_test.dir/rank_test.cpp.o"
  "CMakeFiles/rank_test.dir/rank_test.cpp.o.d"
  "rank_test"
  "rank_test.pdb"
  "rank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
