file(REMOVE_RECURSE
  "libadam2_tools_flags.a"
)
