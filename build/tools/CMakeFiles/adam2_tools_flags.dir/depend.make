# Empty dependencies file for adam2_tools_flags.
# This may be replaced when dependencies are built.
