file(REMOVE_RECURSE
  "CMakeFiles/adam2_tools_flags.dir/flags.cpp.o"
  "CMakeFiles/adam2_tools_flags.dir/flags.cpp.o.d"
  "libadam2_tools_flags.a"
  "libadam2_tools_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_tools_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
