# Empty compiler generated dependencies file for adam2_sim_cli.
# This may be replaced when dependencies are built.
