file(REMOVE_RECURSE
  "CMakeFiles/adam2_sim_cli.dir/adam2_sim.cpp.o"
  "CMakeFiles/adam2_sim_cli.dir/adam2_sim.cpp.o.d"
  "adam2_sim"
  "adam2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
