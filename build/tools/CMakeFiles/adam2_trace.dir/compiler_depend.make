# Empty compiler generated dependencies file for adam2_trace.
# This may be replaced when dependencies are built.
