file(REMOVE_RECURSE
  "CMakeFiles/adam2_trace.dir/adam2_trace.cpp.o"
  "CMakeFiles/adam2_trace.dir/adam2_trace.cpp.o.d"
  "adam2_trace"
  "adam2_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
