file(REMOVE_RECURSE
  "CMakeFiles/adam2_runtime.dir/cluster.cpp.o"
  "CMakeFiles/adam2_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/adam2_runtime.dir/transport.cpp.o"
  "CMakeFiles/adam2_runtime.dir/transport.cpp.o.d"
  "CMakeFiles/adam2_runtime.dir/udp.cpp.o"
  "CMakeFiles/adam2_runtime.dir/udp.cpp.o.d"
  "libadam2_runtime.a"
  "libadam2_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
