file(REMOVE_RECURSE
  "libadam2_runtime.a"
)
