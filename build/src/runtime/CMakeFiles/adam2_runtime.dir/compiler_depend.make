# Empty compiler generated dependencies file for adam2_runtime.
# This may be replaced when dependencies are built.
