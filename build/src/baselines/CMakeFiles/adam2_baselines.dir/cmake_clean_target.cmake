file(REMOVE_RECURSE
  "libadam2_baselines.a"
)
