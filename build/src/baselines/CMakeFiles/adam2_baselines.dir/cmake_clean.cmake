file(REMOVE_RECURSE
  "CMakeFiles/adam2_baselines.dir/equidepth.cpp.o"
  "CMakeFiles/adam2_baselines.dir/equidepth.cpp.o.d"
  "CMakeFiles/adam2_baselines.dir/sampling.cpp.o"
  "CMakeFiles/adam2_baselines.dir/sampling.cpp.o.d"
  "libadam2_baselines.a"
  "libadam2_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
