# Empty dependencies file for adam2_baselines.
# This may be replaced when dependencies are built.
