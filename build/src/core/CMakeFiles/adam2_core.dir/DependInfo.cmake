
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combine.cpp" "src/core/CMakeFiles/adam2_core.dir/combine.cpp.o" "gcc" "src/core/CMakeFiles/adam2_core.dir/combine.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/adam2_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/adam2_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/multi.cpp" "src/core/CMakeFiles/adam2_core.dir/multi.cpp.o" "gcc" "src/core/CMakeFiles/adam2_core.dir/multi.cpp.o.d"
  "/root/repo/src/core/point_selection.cpp" "src/core/CMakeFiles/adam2_core.dir/point_selection.cpp.o" "gcc" "src/core/CMakeFiles/adam2_core.dir/point_selection.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/adam2_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/adam2_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/rank.cpp" "src/core/CMakeFiles/adam2_core.dir/rank.cpp.o" "gcc" "src/core/CMakeFiles/adam2_core.dir/rank.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/adam2_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/adam2_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/adam2_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adam2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adam2_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adam2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
