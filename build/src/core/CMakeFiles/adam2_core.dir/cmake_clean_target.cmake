file(REMOVE_RECURSE
  "libadam2_core.a"
)
