# Empty compiler generated dependencies file for adam2_core.
# This may be replaced when dependencies are built.
