file(REMOVE_RECURSE
  "CMakeFiles/adam2_core.dir/combine.cpp.o"
  "CMakeFiles/adam2_core.dir/combine.cpp.o.d"
  "CMakeFiles/adam2_core.dir/instance.cpp.o"
  "CMakeFiles/adam2_core.dir/instance.cpp.o.d"
  "CMakeFiles/adam2_core.dir/multi.cpp.o"
  "CMakeFiles/adam2_core.dir/multi.cpp.o.d"
  "CMakeFiles/adam2_core.dir/point_selection.cpp.o"
  "CMakeFiles/adam2_core.dir/point_selection.cpp.o.d"
  "CMakeFiles/adam2_core.dir/protocol.cpp.o"
  "CMakeFiles/adam2_core.dir/protocol.cpp.o.d"
  "CMakeFiles/adam2_core.dir/rank.cpp.o"
  "CMakeFiles/adam2_core.dir/rank.cpp.o.d"
  "CMakeFiles/adam2_core.dir/system.cpp.o"
  "CMakeFiles/adam2_core.dir/system.cpp.o.d"
  "libadam2_core.a"
  "libadam2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
