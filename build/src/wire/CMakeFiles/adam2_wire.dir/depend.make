# Empty dependencies file for adam2_wire.
# This may be replaced when dependencies are built.
