file(REMOVE_RECURSE
  "CMakeFiles/adam2_wire.dir/messages.cpp.o"
  "CMakeFiles/adam2_wire.dir/messages.cpp.o.d"
  "libadam2_wire.a"
  "libadam2_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
