file(REMOVE_RECURSE
  "libadam2_wire.a"
)
