# Empty compiler generated dependencies file for adam2_rng.
# This may be replaced when dependencies are built.
