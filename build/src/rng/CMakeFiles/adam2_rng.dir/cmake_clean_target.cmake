file(REMOVE_RECURSE
  "libadam2_rng.a"
)
