file(REMOVE_RECURSE
  "CMakeFiles/adam2_rng.dir/rng.cpp.o"
  "CMakeFiles/adam2_rng.dir/rng.cpp.o.d"
  "libadam2_rng.a"
  "libadam2_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
