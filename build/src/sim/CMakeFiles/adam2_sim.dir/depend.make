# Empty dependencies file for adam2_sim.
# This may be replaced when dependencies are built.
