file(REMOVE_RECURSE
  "CMakeFiles/adam2_sim.dir/async_engine.cpp.o"
  "CMakeFiles/adam2_sim.dir/async_engine.cpp.o.d"
  "CMakeFiles/adam2_sim.dir/cyclon.cpp.o"
  "CMakeFiles/adam2_sim.dir/cyclon.cpp.o.d"
  "CMakeFiles/adam2_sim.dir/engine.cpp.o"
  "CMakeFiles/adam2_sim.dir/engine.cpp.o.d"
  "CMakeFiles/adam2_sim.dir/overlay.cpp.o"
  "CMakeFiles/adam2_sim.dir/overlay.cpp.o.d"
  "libadam2_sim.a"
  "libadam2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
