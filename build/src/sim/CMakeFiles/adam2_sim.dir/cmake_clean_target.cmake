file(REMOVE_RECURSE
  "libadam2_sim.a"
)
