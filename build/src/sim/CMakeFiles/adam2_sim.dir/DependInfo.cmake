
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/async_engine.cpp" "src/sim/CMakeFiles/adam2_sim.dir/async_engine.cpp.o" "gcc" "src/sim/CMakeFiles/adam2_sim.dir/async_engine.cpp.o.d"
  "/root/repo/src/sim/cyclon.cpp" "src/sim/CMakeFiles/adam2_sim.dir/cyclon.cpp.o" "gcc" "src/sim/CMakeFiles/adam2_sim.dir/cyclon.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/adam2_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/adam2_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/overlay.cpp" "src/sim/CMakeFiles/adam2_sim.dir/overlay.cpp.o" "gcc" "src/sim/CMakeFiles/adam2_sim.dir/overlay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/adam2_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adam2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adam2_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
