# Empty dependencies file for adam2_data.
# This may be replaced when dependencies are built.
