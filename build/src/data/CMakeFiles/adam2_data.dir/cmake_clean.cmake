file(REMOVE_RECURSE
  "CMakeFiles/adam2_data.dir/boinc_synth.cpp.o"
  "CMakeFiles/adam2_data.dir/boinc_synth.cpp.o.d"
  "CMakeFiles/adam2_data.dir/trace.cpp.o"
  "CMakeFiles/adam2_data.dir/trace.cpp.o.d"
  "libadam2_data.a"
  "libadam2_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
