file(REMOVE_RECURSE
  "libadam2_data.a"
)
