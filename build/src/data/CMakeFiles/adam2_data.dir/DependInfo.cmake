
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/boinc_synth.cpp" "src/data/CMakeFiles/adam2_data.dir/boinc_synth.cpp.o" "gcc" "src/data/CMakeFiles/adam2_data.dir/boinc_synth.cpp.o.d"
  "/root/repo/src/data/trace.cpp" "src/data/CMakeFiles/adam2_data.dir/trace.cpp.o" "gcc" "src/data/CMakeFiles/adam2_data.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/adam2_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adam2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
