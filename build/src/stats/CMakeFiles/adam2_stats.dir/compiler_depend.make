# Empty compiler generated dependencies file for adam2_stats.
# This may be replaced when dependencies are built.
