file(REMOVE_RECURSE
  "CMakeFiles/adam2_stats.dir/cdf.cpp.o"
  "CMakeFiles/adam2_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/adam2_stats.dir/error_metrics.cpp.o"
  "CMakeFiles/adam2_stats.dir/error_metrics.cpp.o.d"
  "CMakeFiles/adam2_stats.dir/histogram.cpp.o"
  "CMakeFiles/adam2_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/adam2_stats.dir/summary.cpp.o"
  "CMakeFiles/adam2_stats.dir/summary.cpp.o.d"
  "libadam2_stats.a"
  "libadam2_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam2_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
