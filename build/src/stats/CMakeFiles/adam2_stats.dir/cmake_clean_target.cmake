file(REMOVE_RECURSE
  "libadam2_stats.a"
)
