// Shared typed option parsing for the CLI tools and benches.
//
// One Options object holds a set of `name -> value` pairs plus positional
// arguments, with typed accessors, typo protection (reject_unknown) and two
// sources:
//   * argv      — `--name value`, `--name=value`, bare `--switch`
//                 (the CLI tools' flag syntax, unchanged);
//   * environment — every variable under a prefix, with
//                 `PREFIX_FOO_BAR` exposed as key `foo-bar` (the benches'
//                 ADAM2_BENCH_* convention, unchanged).
// Both sources answer the same get* calls, so helpers like parse_fault_plan
// below serve adam2_sim's --fault-* flags and the benches'
// ADAM2_BENCH_FAULT_* variables from one implementation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "host/fault.hpp"

namespace adam2::tools {

class Options {
 public:
  Options() = default;

  /// Parses argv. Options look like `--name value` or `--name=value`; a
  /// `--switch` followed by another flag (or nothing) gets an empty value;
  /// anything not starting with `--` is a positional argument.
  Options(int argc, char** argv);

  /// Collects every environment variable starting with `prefix` + '_'.
  /// The remainder of the variable name is lower-cased with '_' mapped to
  /// '-', so `ADAM2_BENCH_FAULT_DROP=0.1` answers get_double("fault-drop").
  [[nodiscard]] static Options from_env(const std::string& prefix);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name) const { return has(name); }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Throws std::invalid_argument when an option was passed that none of the
  /// get* calls above ever looked up (typo protection). Call after parsing.
  /// Only meaningful for the argv source — the environment legitimately
  /// carries variables a given consumer never reads.
  void reject_unknown() const;

 private:
  /// Human name of an option for error messages: `--name` for the argv
  /// source, `PREFIX_NAME` for the environment source.
  [[nodiscard]] std::string describe(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string env_prefix_;  ///< Empty for the argv source.
  mutable std::map<std::string, bool> seen_;
};

/// Parses the shared deterministic fault-injection schedule (DESIGN.md §8)
/// from `fault-drop`, `fault-duplicate`, `fault-corrupt`, `fault-crash`,
/// `fault-delay`, `fault-max-delay`, `fault-partitions`, `fault-start`,
/// `fault-heal` and `fault-seed` — i.e. adam2_sim's --fault-* flags or the
/// benches' ADAM2_BENCH_FAULT_* variables. Rates are validated to [0, 1].
[[nodiscard]] host::FaultPlan parse_fault_plan(const Options& options);

}  // namespace adam2::tools
