#include "options.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

extern char** environ;

namespace adam2::tools {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    if (name.empty()) throw std::invalid_argument("bare -- is not a flag");
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      values_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then a switch).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "";
    }
  }
}

Options Options::from_env(const std::string& prefix) {
  Options options;
  options.env_prefix_ = prefix;
  const std::string lead = prefix + "_";
  for (char** entry = environ; entry != nullptr && *entry != nullptr;
       ++entry) {
    const std::string var = *entry;
    if (var.rfind(lead, 0) != 0) continue;
    const auto eq = var.find('=');
    if (eq == std::string::npos || eq <= lead.size()) continue;
    // An empty variable counts as unset (`FOO= prog` disables FOO), matching
    // the benches' historical getenv handling.
    if (eq + 1 == var.size()) continue;
    std::string key = var.substr(lead.size(), eq - lead.size());
    for (char& c : key) {
      c = c == '_' ? '-'
                   : static_cast<char>(
                         std::tolower(static_cast<unsigned char>(c)));
    }
    options.values_[key] = var.substr(eq + 1);
  }
  return options;
}

std::string Options::describe(const std::string& name) const {
  if (env_prefix_.empty()) return "flag --" + name;
  std::string var = name;
  for (char& c : var) {
    c = c == '-' ? '_'
                 : static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)));
  }
  return "environment variable " + env_prefix_ + "_" + var;
}

bool Options::has(const std::string& name) const {
  seen_[name] = true;
  return values_.count(name) > 0;
}

std::string Options::get(const std::string& name,
                         const std::string& fallback) const {
  seen_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  seen_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const auto value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw std::invalid_argument(describe(name) + " expects an integer, got '" +
                                it->second + "'");
  }
  return value;
}

double Options::get_double(const std::string& name, double fallback) const {
  seen_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw std::invalid_argument(describe(name) + " expects a number, got '" +
                                it->second + "'");
  }
  return value;
}

void Options::reject_unknown() const {
  for (const auto& [name, value] : values_) {
    if (!seen_.count(name)) {
      throw std::invalid_argument("unknown " + describe(name));
    }
  }
}

host::FaultPlan parse_fault_plan(const Options& options) {
  host::FaultPlan plan;
  plan.drop_rate = options.get_double("fault-drop", 0.0);
  plan.duplicate_rate = options.get_double("fault-duplicate", 0.0);
  plan.corrupt_rate = options.get_double("fault-corrupt", 0.0);
  plan.crash_rate = options.get_double("fault-crash", 0.0);
  plan.delay_rate = options.get_double("fault-delay", 0.0);
  plan.max_delay = options.get_double("fault-max-delay", 0.5);
  plan.partition_count =
      static_cast<std::size_t>(options.get_int("fault-partitions", 0));
  plan.partition_start =
      static_cast<host::Round>(options.get_int("fault-start", 0));
  plan.partition_heal_after =
      static_cast<host::Round>(options.get_int("fault-heal", 0));
  plan.seed = static_cast<std::uint64_t>(
      options.get_int("fault-seed", static_cast<std::int64_t>(plan.seed)));
  for (double rate : {plan.drop_rate, plan.duplicate_rate, plan.corrupt_rate,
                      plan.crash_rate, plan.delay_rate}) {
    if (rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument("fault rates must be in [0, 1]");
    }
  }
  return plan;
}

}  // namespace adam2::tools
