// Minimal command-line flag parsing for the CLI tools: --name value pairs
// plus boolean switches, with typed accessors and an auto-generated usage
// listing. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace adam2::tools {

class Flags {
 public:
  /// Parses argv. Flags look like `--name value` or `--switch`; anything
  /// not starting with `--` is a positional argument.
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name) const { return has(name); }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Throws std::invalid_argument when a flag was passed that none of the
  /// get* calls above ever looked up (typo protection). Call after parsing.
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> seen_;
};

}  // namespace adam2::tools
