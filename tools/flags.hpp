// Legacy name for the CLI option parser. The implementation moved to
// options.hpp so the benches (environment source) and the CLI tools (argv
// source) share one parser; `Flags` remains as the argv-flavoured alias.
#pragma once

#include "options.hpp"

namespace adam2::tools {

using Flags = Options;

}  // namespace adam2::tools
