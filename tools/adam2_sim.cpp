// adam2_sim — run configurable Adam2 simulations from the command line.
//
// Examples:
//   adam2_sim --nodes 10000 --attribute ram_mb --instances 3
//   adam2_sim --attribute cpu_mflops --heuristic lcut --churn 0.001
//             --verification 20 --format csv            (one line)
//   adam2_sim --trace hosts.csv --attribute bandwidth_kbps --lambda 80
//
// Prints one row per completed instance: population errors (entire domain
// and at the interpolation points), the system-size estimate, and the
// per-node traffic so far.
#include <cstdio>
#include <exception>
#include <optional>
#include <string>

#include "core/evaluation.hpp"
#include "core/system.hpp"
#include "data/boinc_synth.hpp"
#include "data/trace.hpp"
#include "host/fault.hpp"
#include "host/snapshot.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "options.hpp"
#include "sim/async_engine.hpp"

using namespace adam2;

namespace {

constexpr char kUsage[] = R"(usage: adam2_sim [flags]

population:
  --nodes N            population size (default 10000; ignored with --trace)
  --attribute NAME     cpu_mflops | ram_mb | bandwidth_kbps | disk_gb
  --trace FILE         load the population from a host-trace CSV
  --seed S             master seed (default 42)

protocol:
  --instances K        consecutive aggregation instances to run (default 3)
  --lambda L           interpolation points (default 50)
  --ttl T              rounds per instance (default 25)
  --heuristic H        minmax | hcut | lcut (default minmax)
  --bootstrap B        neighbour | uniform (default neighbour)
  --verification V     verification points, 0 disables (default 0)
  --combine K          combine points of the last K instances (default 1)

substrate:
  --overlay O          cyclon | static (default cyclon)
  --degree D           overlay degree / view size (default 20)
  --churn C            fraction of nodes replaced per round (default 0)
  --loss P             message loss probability (default 0)

faults (deterministic injection, DESIGN.md §8; all default 0 = off):
  --fault-drop P       drop each message with probability P
  --fault-duplicate P  deliver each message twice with probability P
  --fault-corrupt P    truncate/byte-flip the payload with probability P
  --fault-crash P      per-node crash-restart (state loss) per round
  --fault-delay P      extra delivery delay probability (--async only)
  --fault-max-delay S  max extra delay in seconds (default 0.5)
  --fault-partitions K split the overlay into K isolated groups
  --fault-start R      round/second the partition begins (default 0)
  --fault-heal K       partition heals after K rounds/seconds, 0 = never
  --fault-seed S       fault-schedule seed, independent of --seed
  --async              use the event-driven engine (jittered periods,
                       real message latencies, exchange atomicity)
  --latency-max MS     max one-way latency in ms for --async (default 100)
  --threads T          worker threads for the cycle engine; T > 1 selects
                       the sharded parallel engine, which is bit-identical
                       to the serial one at any thread count (default 0)

checkpoint (host::snapshot, DESIGN.md §12):
  --snapshot-out FILE  save the full engine state at the end of the run
                       (atomic: temp file + fsync + rename)
  --snapshot-in FILE   restore the engine state before running; the flags
                       must reproduce the saving run's configuration, and
                       the restore replaces the warm-up phase

output:
  --format F           table | csv (default table)
  --eval-sample N      evaluate N sampled peers, 0 = all (default 400)

observability (obs::Recorder, DESIGN.md §11; each writes atomically):
  --trace-out FILE     structured event trace as JSONL (round begin/end,
                       exchange fates, crashes, churn, instance lifecycle)
  --metrics-out FILE   metrics-registry snapshot as JSON (traffic counters,
                       exchange-fate counts, message-size histograms)
  --manifest-out FILE  run manifest as JSON (seed, config echo, engine
                       kind, build flags)
  --help               this text
)";

data::Attribute parse_attribute(const std::string& name) {
  for (data::Attribute a : data::kAllAttributes) {
    if (name == data::attribute_name(a)) return a;
  }
  throw std::invalid_argument("unknown attribute '" + name + "'");
}

core::SelectionHeuristic parse_heuristic(const std::string& name) {
  if (name == "minmax") return core::SelectionHeuristic::kMinMax;
  if (name == "hcut") return core::SelectionHeuristic::kHCut;
  if (name == "lcut") return core::SelectionHeuristic::kLCut;
  throw std::invalid_argument("unknown heuristic '" + name + "'");
}

/// Writes whichever observability artifacts were requested; throws on an
/// export that could not be written (partial artifacts are never left
/// behind — obs::atomic_write_file renames a complete temp file or nothing).
void write_observability(const obs::Recorder& recorder,
                         const std::string& trace_out,
                         const std::string& metrics_out,
                         const std::string& manifest_out) {
  if (!trace_out.empty() &&
      !obs::write_trace_jsonl(trace_out, recorder.trace())) {
    throw std::runtime_error("cannot write trace to " + trace_out);
  }
  if (!metrics_out.empty() &&
      !obs::write_metrics_json(metrics_out, recorder.metrics())) {
    throw std::runtime_error("cannot write metrics to " + metrics_out);
  }
  if (!manifest_out.empty() &&
      !obs::write_manifest_json(manifest_out, recorder.manifest())) {
    throw std::runtime_error("cannot write manifest to " + manifest_out);
  }
}

/// Loads a snapshot file, mapping both I/O and size failures to one
/// diagnostic (container-level validation happens inside restore_snapshot).
std::vector<std::byte> load_snapshot(const std::string& path) {
  std::string error;
  auto bytes = host::snapshot::read_snapshot_file(path, &error);
  if (!bytes) {
    throw std::runtime_error("cannot read snapshot " + path + ": " + error);
  }
  return std::move(*bytes);
}

void store_snapshot(const std::string& path,
                    std::span<const std::byte> bytes) {
  if (!host::snapshot::write_snapshot_file(path, bytes)) {
    throw std::runtime_error("cannot write snapshot to " + path);
  }
}

int run(const tools::Options& flags) {
  if (flags.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const data::Attribute attribute =
      parse_attribute(flags.get("attribute", "ram_mb"));

  std::vector<stats::Value> values;
  if (flags.has("trace")) {
    const auto records =
        data::filter_faulty(data::load_trace(flags.get("trace", "")));
    values = data::attribute_column(records, attribute);
  } else {
    rng::Rng data_rng(seed ^ 0xda7aULL);
    values = data::generate_population(
        attribute, static_cast<std::size_t>(flags.get_int("nodes", 10000)),
        data_rng);
  }
  if (values.empty()) throw std::runtime_error("empty population");

  core::SystemConfig config;
  config.engine.seed = seed;
  config.engine.churn_rate = flags.get_double("churn", 0.0);
  config.engine.message_loss = flags.get_double("loss", 0.0);
  config.protocol.lambda =
      static_cast<std::size_t>(flags.get_int("lambda", 50));
  config.protocol.instance_ttl =
      static_cast<std::uint16_t>(flags.get_int("ttl", 25));
  config.protocol.heuristic =
      parse_heuristic(flags.get("heuristic", "minmax"));
  config.protocol.bootstrap = flags.get("bootstrap", "neighbour") == "uniform"
                                  ? core::BootstrapPoints::kUniform
                                  : core::BootstrapPoints::kNeighbourBased;
  config.protocol.verification_points =
      static_cast<std::size_t>(flags.get_int("verification", 0));
  config.protocol.combine_last_instances =
      static_cast<std::size_t>(flags.get_int("combine", 1));
  config.overlay = flags.get("overlay", "cyclon") == "static"
                       ? core::OverlayKind::kStaticRandom
                       : core::OverlayKind::kCyclon;
  config.overlay_degree =
      static_cast<std::size_t>(flags.get_int("degree", 20));
  const std::int64_t threads = flags.get_int("threads", 0);
  if (threads < 0) {
    throw std::invalid_argument("--threads must be >= 0, got " +
                                std::to_string(threads));
  }
  config.engine_threads = static_cast<std::size_t>(threads);
  config.engine.faults = tools::parse_fault_plan(flags);

  const auto instances =
      static_cast<std::size_t>(flags.get_int("instances", 3));
  const bool csv = flags.get("format", "table") == "csv";
  const bool use_async = flags.get_bool("async");
  const double latency_max = flags.get_double("latency-max", 100.0) / 1000.0;
  core::EvaluationOptions options;
  options.peer_sample =
      static_cast<std::size_t>(flags.get_int("eval-sample", 400));
  const std::string trace_out = flags.get("trace-out", "");
  const std::string metrics_out = flags.get("metrics-out", "");
  const std::string manifest_out = flags.get("manifest-out", "");
  const std::string snapshot_in = flags.get("snapshot-in", "");
  const std::string snapshot_out = flags.get("snapshot-out", "");
  flags.reject_unknown();

  // Observability is opt-in: without any of the three output flags no
  // recorder exists and the engines run their zero-overhead null path.
  std::optional<obs::Recorder> recorder;
  if (!trace_out.empty() || !metrics_out.empty() || !manifest_out.empty()) {
    recorder.emplace();
    recorder->manifest().name = "adam2_sim";
    recorder->manifest().set("attribute", data::attribute_name(attribute));
    recorder->manifest().set("instances",
                             static_cast<std::uint64_t>(instances));
  }

  if (use_async) {
    sim::AsyncConfig async_config;
    async_config.seed = seed;
    async_config.latency_max = latency_max;
    async_config.churn_per_second = config.engine.churn_rate;
    async_config.message_loss = config.engine.message_loss;
    async_config.faults = config.engine.faults;
    const core::Adam2Config protocol = config.protocol;
    sim::AsyncEngine engine(
        async_config, values,
        core::make_overlay(config.overlay, config.overlay_degree),
        [protocol](const host::AgentContext&) {
          return std::make_unique<core::Adam2Agent>(protocol);
        },
        config.engine.churn_rate > 0.0
            ? host::AttributeSource([attribute](rng::Rng& rng) {
                return data::sample_attribute(attribute, rng);
              })
            : host::AttributeSource{});
    if (recorder) {
      engine.set_recorder(&*recorder);
      recorder->engine_start("async", 0, values.size());
      recorder->manifest().seed = seed;
      recorder->manifest().set("nodes",
                               static_cast<std::uint64_t>(values.size()));
      recorder->manifest().set("churn_per_second",
                               async_config.churn_per_second);
      recorder->manifest().set("message_loss", async_config.message_loss);
    }
    // Resume replaces the warm-up: the snapshot already holds the warmed
    // state, and run_until is a no-op once simulated time has passed 5 s.
    if (!snapshot_in.empty()) {
      engine.restore_snapshot(load_snapshot(snapshot_in));
    }
    engine.run_until(5.0);
    if (csv) {
      std::printf("instance,errm,erra,points_errm,points_erra\n");
    } else {
      std::printf("%8s %12s %12s %13s %13s   (event-driven)\n", "instance",
                  "Errm", "Erra", "points_Errm", "points_Erra");
    }
    for (std::size_t i = 1; i <= instances; ++i) {
      const auto initiator = engine.random_live_node();
      auto ctx = engine.context_for(initiator);
      dynamic_cast<core::Adam2Agent&>(engine.agent(initiator))
          .start_instance(ctx);
      engine.run_until(engine.now() +
                       config.protocol.instance_ttl * 1.1 + 3.0);
      const stats::EmpiricalCdf truth{engine.live_attribute_values()};
      const auto entire = core::evaluate_estimates(engine, truth, options);
      const auto points =
          core::evaluate_estimate_points(engine, truth, options);
      if (csv) {
        std::printf("%zu,%.8g,%.8g,%.8g,%.8g\n", i, entire.max_err,
                    entire.avg_err, points.max_err, points.avg_err);
      } else {
        std::printf("%8zu %12.5g %12.5g %13.5g %13.5g\n", i, entire.max_err,
                    entire.avg_err, points.max_err, points.avg_err);
      }
    }
    if (!snapshot_out.empty()) {
      store_snapshot(snapshot_out, engine.save_snapshot());
    }
    if (recorder) {
      recorder->engine_stop(engine.round());
      recorder->set_traffic(engine.total_traffic());
      write_observability(*recorder, trace_out, metrics_out, manifest_out);
    }
    return 0;
  }

  core::Adam2System system(
      config, values,
      config.engine.churn_rate > 0.0
          ? host::AttributeSource([attribute](rng::Rng& rng) {
              return data::sample_attribute(attribute, rng);
            })
          : host::AttributeSource{});
  if (recorder) system.attach_recorder(&*recorder);
  if (!snapshot_in.empty()) {
    // Resume replaces the warm-up: the snapshot already holds the warmed
    // descriptor caches (and round counter) of the saving run.
    system.engine().restore_snapshot(load_snapshot(snapshot_in));
  } else {
    system.run_rounds(5);  // Warm up the peer-sampling descriptor caches.
  }

  if (csv) {
    std::printf("instance,errm,erra,points_errm,points_erra,n_estimate,"
                "est_erra,sent_kb_per_node\n");
  } else {
    std::printf("%8s %12s %12s %13s %13s %12s %10s %12s\n", "instance",
                "Errm", "Erra", "points_Errm", "points_Erra", "N_est",
                "EstErra", "sent_kB/nd");
  }

  for (std::size_t i = 1; i <= instances; ++i) {
    system.run_instance();
    const stats::EmpiricalCdf truth = system.truth();
    const auto entire = core::evaluate_estimates(system.engine(), truth, options);
    const auto points =
        core::evaluate_estimate_points(system.engine(), truth, options);
    const auto& agent = system.agent_of(system.engine().live_ids().front());
    const double n_est = agent.estimate() ? agent.estimate()->n_estimate : 0.0;
    const double est_erra =
        agent.estimate() && agent.estimate()->self_assessment
            ? agent.estimate()->self_assessment->avg_err
            : 0.0;
    const double sent_kb =
        static_cast<double>(system.engine()
                                .total_traffic()
                                .on(host::Channel::kAggregation)
                                .bytes_sent) /
        static_cast<double>(system.engine().live_count()) / 1024.0;
    if (csv) {
      std::printf("%zu,%.8g,%.8g,%.8g,%.8g,%.8g,%.8g,%.8g\n", i,
                  entire.max_err, entire.avg_err, points.max_err,
                  points.avg_err, n_est, est_erra, sent_kb);
    } else {
      std::printf("%8zu %12.5g %12.5g %13.5g %13.5g %12.1f %10.4g %12.1f\n", i,
                  entire.max_err, entire.avg_err, points.max_err,
                  points.avg_err, n_est, est_erra, sent_kb);
    }
  }
  if (!snapshot_out.empty()) {
    store_snapshot(snapshot_out, system.engine().save_snapshot());
  }
  if (recorder) {
    recorder->engine_stop(system.engine().round());
    recorder->set_traffic(system.engine().total_traffic());
    write_observability(*recorder, trace_out, metrics_out, manifest_out);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(tools::Options(argc, argv));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "adam2_sim: %s\n", error.what());
    std::fputs(kUsage, stderr);
    return 1;
  }
}
