// adam2_trace — generate, inspect, and clean host-trace CSVs.
//
//   adam2_trace generate --nodes 100000 --seed 7 --out hosts.csv
//   adam2_trace stats --in hosts.csv
//   adam2_trace clean --in raw.csv --out hosts.csv
//
// `stats` prints per-attribute summaries (min/max, quartiles, distinct
// values, largest single-value probability mass) — handy for checking that a
// real trace has the smooth-vs-stepped shapes the experiments care about.
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>

#include "data/boinc_synth.hpp"
#include "data/trace.hpp"
#include "flags.hpp"
#include "stats/cdf.hpp"

using namespace adam2;

namespace {

constexpr char kUsage[] = R"(usage: adam2_trace <generate|stats|clean> [flags]
  generate: --nodes N (default 10000), --seed S, --out FILE (default stdout path required)
  stats:    --in FILE
  clean:    --in FILE --out FILE       (drops faulty readings)
)";

void print_stats(const std::vector<data::HostRecord>& records) {
  std::printf("%zu hosts\n", records.size());
  std::printf("%-16s %10s %10s %10s %10s %10s %9s %9s\n", "attribute", "min",
              "p25", "median", "p75", "max", "distinct", "max_step");
  for (data::Attribute attribute : data::kAllAttributes) {
    const auto column = data::attribute_column(records, attribute);
    if (column.empty()) continue;
    const stats::EmpiricalCdf cdf{column};
    const auto fractions = cdf.cumulative_fractions();
    double max_step = fractions[0];
    for (std::size_t i = 1; i < fractions.size(); ++i) {
      max_step = std::max(max_step, fractions[i] - fractions[i - 1]);
    }
    std::printf("%-16s %10lld %10lld %10lld %10lld %10lld %9zu %8.1f%%\n",
                std::string(data::attribute_name(attribute)).c_str(),
                static_cast<long long>(cdf.min()),
                static_cast<long long>(cdf.quantile(0.25)),
                static_cast<long long>(cdf.quantile(0.5)),
                static_cast<long long>(cdf.quantile(0.75)),
                static_cast<long long>(cdf.max()),
                cdf.distinct_values().size(), max_step * 100.0);
  }
}

int run(const tools::Flags& flags) {
  if (flags.has("help") || flags.positional().empty()) {
    std::fputs(kUsage, stdout);
    return flags.positional().empty() ? 1 : 0;
  }
  const std::string command = flags.positional().front();

  if (command == "generate") {
    const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 10000));
    rng::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 42)));
    const std::string out = flags.get("out", "");
    flags.reject_unknown();
    if (out.empty()) throw std::invalid_argument("generate needs --out FILE");
    data::save_trace(out, data::synthesize_trace(nodes, rng));
    std::printf("wrote %zu hosts to %s\n", nodes, out.c_str());
    return 0;
  }
  if (command == "stats") {
    const std::string in = flags.get("in", "");
    flags.reject_unknown();
    if (in.empty()) throw std::invalid_argument("stats needs --in FILE");
    print_stats(data::load_trace(in));
    return 0;
  }
  if (command == "clean") {
    const std::string in = flags.get("in", "");
    const std::string out = flags.get("out", "");
    flags.reject_unknown();
    if (in.empty() || out.empty()) {
      throw std::invalid_argument("clean needs --in FILE and --out FILE");
    }
    auto records = data::load_trace(in);
    const std::size_t before = records.size();
    records = data::filter_faulty(std::move(records));
    data::save_trace(out, records);
    std::printf("kept %zu of %zu hosts (%zu faulty dropped)\n", records.size(),
                before, before - records.size());
    return 0;
  }
  throw std::invalid_argument("unknown command '" + command + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(tools::Flags(argc, argv));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "adam2_trace: %s\n", error.what());
    std::fputs(kUsage, stderr);
    return 1;
  }
}
