#include "flags.hpp"

#include <cstdlib>

namespace adam2::tools {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    if (name.empty()) throw std::invalid_argument("bare -- is not a flag");
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      values_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then a switch).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "";
    }
  }
}

bool Flags::has(const std::string& name) const {
  seen_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  seen_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  seen_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const auto value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
  return value;
}

double Flags::get_double(const std::string& name, double fallback) const {
  seen_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
  return value;
}

void Flags::reject_unknown() const {
  for (const auto& [name, value] : values_) {
    if (!seen_.count(name)) {
      throw std::invalid_argument("unknown flag --" + name);
    }
  }
}

}  // namespace adam2::tools
