// adam2_lint: a token-level static checker for the project's written-but-
// otherwise-unchecked invariants (DESIGN.md §10 "Checked invariants").
//
// The runtime test suite guards determinism *behaviourally* (golden replay,
// draw-contract tests); this tool guards it *structurally*, before a run
// ever happens. It is deliberately a token scanner, not a compiler plugin:
// the rules are about names and shapes (`std::random_device`, a by-value
// `rng::Rng`, an `#include` that jumps up the layer DAG), which a lexer sees
// exactly as well as an AST would — with no libclang dependency and a
// sub-second walk of the whole tree.
//
// Rules (each suppressible per line with `// adam2-lint: allow(<rule>)`,
// per file with `// adam2-lint: allow-file(<rule>)`):
//
//   nondeterminism  (R1)  std::random_device, rand()/srand(), time(),
//                         clock_gettime/gettimeofday anywhere; *_clock::now()
//                         outside the wall-clock whitelist (src/runtime/,
//                         bench/, tests/). Protects: seeded replay.
//   rng-copy        (R2)  rng::Rng by-value parameters and copy-initialised
//                         locals. A copied generator silently forks the
//                         stream: both copies replay the same tail and the
//                         original's draw positions shift. Owning members
//                         and factory returns (`node_stream(id)`) are fine.
//   layering        (R3)  #include edges must respect the DESIGN.md DAG
//                         rng < stats < data/wire < core < host/obs <
//                         sim/runtime < baselines; tools/bench/tests/examples
//                         sit on top. In particular src/obs/ may never
//                         include sim/ or runtime/ — observability is
//                         recorded *into*, it does not reach back into the
//                         engines. Protects: substrate-agnostic agents.
//   unordered-iter  (R4)  iteration (`for (x : m)`, `m.begin()`) over
//                         unordered_map/unordered_set in library TUs.
//                         Bucket order is not part of any contract; letting
//                         it reach wire payloads, metrics, or evaluation
//                         series makes replay hostage to the hash table.
//   confinement     (R5)  no std::cout/printf/puts in src/ libraries; no
//                         std:: concurrency primitives (mutex/atomic/thread/
//                         condition_variable/...) outside src/host/ and
//                         src/runtime/.
//   hot-path-container (R6) std::map / std::unordered_map (and multi
//                         variants) declared in the gossip hot path
//                         (src/core/). Node-based maps scatter per-instance
//                         state across the heap — one cache miss per
//                         instance per traversal at million-node rounds.
//                         Per-instance state belongs in the arena-backed
//                         core::InstanceStore (DESIGN.md §7.5); genuinely
//                         cold paths (finalisation bookkeeping, observer
//                         tooling) annotate with allow(hot-path-container).
//
// The library half (this header) is what the unit tests drive over the
// fixture corpus; the CLI (tools/lint/main.cpp) wraps lint_tree for CI.
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace adam2::lint {

struct Diagnostic {
  std::string file;     ///< Path as given to the linter.
  int line = 0;         ///< 1-based.
  std::string rule;     ///< One of rule_names().
  std::string message;  ///< Human-readable explanation.
};

/// All rule identifiers, in R1..R6 order.
[[nodiscard]] const std::vector<std::string>& rule_names();

struct Options {
  /// Enabled rules; defaults to all of rule_names().
  std::set<std::string> rules;

  /// Layer rank per top-level src/ directory; an include may only point at a
  /// rank <= the includer's. Directories absent from the map (and files not
  /// under src/) rank as "top" and may include anything. obs/ sits beside
  /// host/ (rank 4): engines above record into it, and it must never reach
  /// back into sim/ or runtime/ — an obs/ file including either is a
  /// layering violation.
  std::map<std::string, int> layers = {
      {"rng", 0},  {"stats", 1}, {"data", 2},    {"wire", 2},
      {"core", 3}, {"host", 4},  {"obs", 4},     {"sim", 5},
      {"runtime", 5},            {"baselines", 6},
  };

  /// Logical-path prefixes whose files may call *_clock::now() (wall-clock
  /// substrates and timing harnesses).
  std::vector<std::string> clock_whitelist = {"src/runtime/", "bench/",
                                              "tests/"};

  /// Logical-path prefixes whose files may use std:: concurrency primitives.
  std::vector<std::string> concurrency_whitelist = {"src/host/",
                                                    "src/runtime/"};

  /// Logical-path prefixes forming the gossip hot path, where node-based
  /// std:: maps are rejected (R6 hot-path-container).
  std::vector<std::string> hot_path_prefixes = {"src/core/"};

  Options();
};

/// Classifies a path into its logical project-relative form: the suffix
/// starting at the *last* occurrence of src/, tools/, bench/, tests/ or
/// examples/ ("/repo/tests/lint_fixtures/src/core/x.cpp" -> "src/core/x.cpp",
/// which is what lets the fixture corpus exercise src/-scoped rules).
/// Returns the path unchanged when no marker occurs.
[[nodiscard]] std::string logical_path(std::string_view path);

/// Lints one in-memory source. `path` is used for classification (layering,
/// whitelists) and for Diagnostic::file.
[[nodiscard]] std::vector<Diagnostic> lint_source(std::string_view path,
                                                  std::string_view text,
                                                  const Options& options = {});

/// Lints one file on disk.
[[nodiscard]] std::vector<Diagnostic> lint_file(
    const std::filesystem::path& path, const Options& options = {});

/// Recursively lints every .hpp/.h/.cpp/.cc under each root (a root may also
/// be a single file). Skips directories named "build*", ".git", and
/// "lint_fixtures". Diagnostics are sorted by file, then line.
[[nodiscard]] std::vector<Diagnostic> lint_tree(
    const std::vector<std::filesystem::path>& roots,
    const Options& options = {});

}  // namespace adam2::lint
