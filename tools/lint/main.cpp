// adam2_lint CLI: lints the given files/directories (default: src tools bench
// tests, resolved against the current directory) and prints one
// `file:line: [rule] message` diagnostic per violation. Exits 1 when any
// diagnostic is emitted, 2 on usage errors — so CI can simply run it.
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage: adam2_lint [--rule <name>]... [--quiet] [path...]\n"
         "  Lints the adam2 tree against the DESIGN.md section 10 invariants.\n"
         "  Default paths: src tools bench tests (under the current "
         "directory).\n"
         "  --rule <name>  enable only the named rule(s); repeatable. Rules:\n";
  for (const std::string& rule : adam2::lint::rule_names()) {
    out << "                   " << rule << "\n";
  }
  out << "  --quiet        print only the final count\n";
}

}  // namespace

int main(int argc, char** argv) {
  adam2::lint::Options options;
  std::vector<std::filesystem::path> roots;
  std::set<std::string> selected;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--rule") {
      if (i + 1 >= argc) {
        std::cerr << "adam2_lint: --rule needs an argument\n";
        return 2;
      }
      const std::string rule = argv[++i];
      if (!options.rules.contains(rule)) {
        std::cerr << "adam2_lint: unknown rule '" << rule << "'\n";
        usage(std::cerr);
        return 2;
      }
      selected.insert(rule);
      continue;
    }
    if (arg.starts_with("-")) {
      std::cerr << "adam2_lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (!selected.empty()) options.rules = std::move(selected);
  if (roots.empty()) {
    for (const char* dir : {"src", "tools", "bench", "tests"}) {
      if (std::filesystem::exists(dir)) roots.emplace_back(dir);
    }
    if (roots.empty()) {
      std::cerr << "adam2_lint: no default roots found here; pass paths "
                   "explicitly\n";
      return 2;
    }
  }

  const std::vector<adam2::lint::Diagnostic> diagnostics =
      adam2::lint::lint_tree(roots, options);
  if (!quiet) {
    for (const adam2::lint::Diagnostic& d : diagnostics) {
      std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
                << d.message << "\n";
    }
  }
  std::cout << "adam2_lint: " << diagnostics.size() << " violation"
            << (diagnostics.size() == 1 ? "" : "s") << "\n";
  return diagnostics.empty() ? 0 : 1;
}
