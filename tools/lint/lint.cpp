#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace adam2::lint {

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kRules = {
      "nondeterminism",  // R1
      "rng-copy",        // R2
      "layering",        // R3
      "unordered-iter",      // R4
      "confinement",         // R5
      "hot-path-container",  // R6
  };
  return kRules;
}

Options::Options() {
  rules.insert(rule_names().begin(), rule_names().end());
}

std::string logical_path(std::string_view path) {
  static const std::string_view kMarkers[] = {"src/", "tools/", "bench/",
                                              "tests/", "examples/"};
  std::size_t best = std::string_view::npos;
  for (std::string_view marker : kMarkers) {
    std::size_t pos = path.rfind(marker);
    while (pos != std::string_view::npos) {
      // Component boundary only: "src/" must not match inside "mysrc/".
      if (pos == 0 || path[pos - 1] == '/') {
        if (best == std::string_view::npos || pos > best) best = pos;
        break;
      }
      pos = pos == 0 ? std::string_view::npos : path.rfind(marker, pos - 1);
    }
  }
  if (best == std::string_view::npos) return std::string(path);
  return std::string(path.substr(best));
}

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind;
  std::string text;
  int line = 0;
};

struct IncludeDirective {
  std::string target;
  int line = 0;
  bool angle = false;  ///< <system> vs "project" include.
};

struct Suppressions {
  std::set<std::string> file_rules;
  std::map<int, std::set<std::string>> line_rules;

  [[nodiscard]] bool allows(const std::string& rule, int line) const {
    if (file_rules.contains(rule)) return true;
    auto it = line_rules.find(line);
    return it != line_rules.end() && it->second.contains(rule);
  }
};

struct Scan {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  Suppressions suppressions;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses `allow(...)` / `allow-file(...)` directives out of one comment and
/// applies them. A directive suppresses its rules on every line the comment
/// touches plus the following line, so both trailing annotations
/// (`code;  // adam2-lint: allow(r)`) and preceding ones (comment line above
/// the flagged statement) work.
void apply_annotations(std::string_view comment, int first_line, int last_line,
                       Suppressions& out) {
  const std::size_t tag = comment.find("adam2-lint:");
  if (tag == std::string_view::npos) return;
  std::size_t pos = tag;
  while (true) {
    const std::size_t file_at = comment.find("allow-file(", pos);
    const std::size_t line_at = comment.find("allow(", pos);
    const bool is_file = file_at != std::string_view::npos &&
                         (line_at == std::string_view::npos || file_at < line_at);
    const std::size_t at = is_file ? file_at : line_at;
    if (at == std::string_view::npos) break;
    const std::size_t open = comment.find('(', at);
    const std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) break;
    std::string name;
    auto flush = [&] {
      if (name.empty()) return;
      if (is_file) {
        out.file_rules.insert(name);
      } else {
        for (int l = first_line; l <= last_line + 1; ++l) {
          out.line_rules[l].insert(name);
        }
      }
      name.clear();
    };
    for (std::size_t i = open + 1; i < close; ++i) {
      const char c = comment[i];
      if (ident_char(c) || c == '-') {
        name.push_back(c);
      } else {
        flush();
      }
    }
    flush();
    pos = close;
  }
}

Scan scan_source(std::string_view text) {
  Scan scan;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  // Set after `#` `include` so the next `<...>` or "..." is a header name.
  bool expect_header = false;

  auto peek = [&](std::size_t k) -> char { return k < n ? text[k] : '\0'; };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      expect_header = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(i + 1) == '/') {
      const std::size_t start = i;
      while (i < n && text[i] != '\n') ++i;
      apply_annotations(text.substr(start, i - start), line, line,
                        scan.suppressions);
      continue;
    }
    // Block comment.
    if (c == '/' && peek(i + 1) == '*') {
      const std::size_t start = i;
      const int first_line = line;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(i + 2, n);
      apply_annotations(text.substr(start, i - start), first_line, line,
                        scan.suppressions);
      continue;
    }
    // Header name after #include.
    if (expect_header && c == '<') {
      const std::size_t start = ++i;
      while (i < n && text[i] != '>' && text[i] != '\n') ++i;
      scan.includes.push_back(
          {std::string(text.substr(start, i - start)), line, /*angle=*/true});
      if (i < n && text[i] == '>') ++i;
      expect_header = false;
      continue;
    }
    // String literal (also the quoted form of a header name).
    if (c == '"') {
      ++i;
      const std::size_t start = i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\') ++i;
        if (i < n && text[i] == '\n') ++line;
        ++i;
      }
      std::string value(text.substr(start, i - start));
      if (i < n) ++i;
      if (expect_header) {
        scan.includes.push_back({value, line, /*angle=*/false});
        expect_header = false;
      }
      scan.tokens.push_back({Token::Kind::kString, std::move(value), line});
      continue;
    }
    // Char literal.
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\') ++i;
        ++i;
      }
      if (i < n) ++i;
      scan.tokens.push_back({Token::Kind::kChar, "", line});
      continue;
    }
    // Number (pp-number: handles 1'000, 0x1p-3, 1e+9, trailing suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(i + 1))))) {
      const std::size_t start = i;
      ++i;
      while (i < n) {
        const char d = text[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                    text[i - 1] == 'p' || text[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      scan.tokens.push_back(
          {Token::Kind::kNumber, std::string(text.substr(start, i - start)),
           line});
      continue;
    }
    // Identifier (or raw-string prefix).
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(text[i])) ++i;
      std::string word(text.substr(start, i - start));
      // Raw string literal: R"delim( ... )delim".
      if (peek(i) == '"' && (word == "R" || word == "u8R" || word == "uR" ||
                             word == "UR" || word == "LR")) {
        ++i;  // Consume the quote.
        std::string delim;
        while (i < n && text[i] != '(') delim.push_back(text[i++]);
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = text.find(closer, i);
        const std::size_t stop = end == std::string_view::npos
                                     ? n
                                     : end + closer.size();
        for (std::size_t k = i; k < stop; ++k) {
          if (text[k] == '\n') ++line;
        }
        i = stop;
        scan.tokens.push_back({Token::Kind::kString, "", line});
        continue;
      }
      if (word == "include" && !scan.tokens.empty() &&
          scan.tokens.back().text == "#" &&
          scan.tokens.back().line == line) {
        expect_header = true;
      }
      scan.tokens.push_back({Token::Kind::kIdent, std::move(word), line});
      continue;
    }
    // Punctuation; multi-char only where a rule needs to see it as one unit.
    if (c == ':' && peek(i + 1) == ':') {
      scan.tokens.push_back({Token::Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(i + 1) == '>') {
      scan.tokens.push_back({Token::Kind::kPunct, "->", line});
      i += 2;
      continue;
    }
    if (c == '&' && peek(i + 1) == '&') {
      scan.tokens.push_back({Token::Kind::kPunct, "&&", line});
      i += 2;
      continue;
    }
    scan.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

bool has_prefix(const std::string& s, const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) { return s.starts_with(p); });
}

class Analyzer {
 public:
  Analyzer(std::string path, const Scan& scan, const Options& options)
      : path_(std::move(path)),
        logical_(logical_path(path_)),
        scan_(scan),
        options_(options) {
    depth_.resize(scan_.tokens.size() + 1, 0);
    int depth = 0;
    for (std::size_t i = 0; i < scan_.tokens.size(); ++i) {
      depth_[i] = depth;
      const Token& t = scan_.tokens[i];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "(") ++depth;
        if (t.text == ")") depth = std::max(0, depth - 1);
      }
    }
  }

  std::vector<Diagnostic> run() {
    if (enabled("nondeterminism")) check_nondeterminism();
    if (enabled("rng-copy")) check_rng_copy();
    if (enabled("layering")) check_layering();
    if (enabled("unordered-iter")) check_unordered_iter();
    if (enabled("confinement")) check_confinement();
    if (enabled("hot-path-container")) check_hot_path_container();
    return std::move(diagnostics_);
  }

 private:
  [[nodiscard]] bool enabled(const std::string& rule) const {
    return options_.rules.contains(rule);
  }

  void emit(int line, const std::string& rule, std::string message) {
    if (scan_.suppressions.allows(rule, line)) return;
    diagnostics_.push_back({path_, line, rule, std::move(message)});
  }

  [[nodiscard]] const Token* tok(std::size_t i) const {
    return i < scan_.tokens.size() ? &scan_.tokens[i] : nullptr;
  }
  [[nodiscard]] bool is_ident(std::size_t i, std::string_view text) const {
    const Token* t = tok(i);
    return t != nullptr && t->kind == Token::Kind::kIdent && t->text == text;
  }
  [[nodiscard]] bool is_punct(std::size_t i, std::string_view text) const {
    const Token* t = tok(i);
    return t != nullptr && t->kind == Token::Kind::kPunct && t->text == text;
  }

  /// True when tokens[i] is *called* as a free function or via std:: — i.e.
  /// not a member access (`x.time(...)`), not another namespace's name
  /// (`fmt::time(...)`), and not a declaration (`long time() const` — a
  /// preceding identifier is a return type, except `return` itself).
  [[nodiscard]] bool free_or_std_call(std::size_t i) const {
    if (i == 0) return true;
    const Token& prev = scan_.tokens[i - 1];
    if (prev.kind == Token::Kind::kPunct) {
      if (prev.text == "." || prev.text == "->") return false;
      if (prev.text == "::") return i >= 2 && is_ident(i - 2, "std");
      return true;
    }
    if (prev.kind == Token::Kind::kIdent) return prev.text == "return";
    return true;
  }

  // -- R1 -------------------------------------------------------------------
  void check_nondeterminism() {
    const bool clock_ok = has_prefix(logical_, options_.clock_whitelist);
    const auto& tokens = scan_.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != Token::Kind::kIdent) continue;
      if (t.text == "random_device") {
        emit(t.line, "nondeterminism",
             "std::random_device is an entropy source: a run can never be "
             "replayed. Seed an rng::Rng from configuration instead.");
        continue;
      }
      if ((t.text == "rand" || t.text == "srand") && is_punct(i + 1, "(") &&
          free_or_std_call(i)) {
        emit(t.line, "nondeterminism",
             t.text + "() uses hidden global state outside the rng::Rng "
                      "stream discipline; draws cannot be attributed or "
                      "replayed.");
        continue;
      }
      if ((t.text == "time" || t.text == "clock_gettime" ||
           t.text == "gettimeofday") &&
          is_punct(i + 1, "(") && free_or_std_call(i)) {
        emit(t.line, "nondeterminism",
             t.text + "() reads the wall clock; simulated components must "
                      "take time from their engine (rounds / virtual time).");
        continue;
      }
      if (t.text.size() > 6 && t.text.ends_with("_clock") &&
          is_punct(i + 1, "::") && is_ident(i + 2, "now") && !clock_ok) {
        emit(t.line, "nondeterminism",
             t.text + "::now() outside the wall-clock whitelist "
                      "(src/runtime/, bench/, tests/); simulated components "
                      "must not read real time.");
      }
    }
  }

  // -- R2 -------------------------------------------------------------------
  void check_rng_copy() {
    const auto& tokens = scan_.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (!is_ident(i, "Rng")) continue;
      // Accept both `Rng` and `rng::Rng`; skip other namespaces' Rng.
      if (i >= 2 && is_punct(i - 1, "::") && !is_ident(i - 2, "rng")) continue;
      const std::size_t j = i + 1;
      const Token* next = tok(j);
      if (next == nullptr) continue;
      if (next->kind == Token::Kind::kPunct) {
        // `rng::Rng&`, `rng::Rng*`, `rng::Rng&&` are all fine; a bare
        // `rng::Rng` directly before `,` or `)` is an unnamed by-value
        // parameter.
        if ((next->text == "," || next->text == ")") && depth_[i] > 0) {
          emit(next->line, "rng-copy",
               "rng::Rng passed by value: the callee works on a fork of the "
               "stream and the caller's draw positions silently diverge. "
               "Pass rng::Rng& (or rng::Rng&& for ownership transfer).");
        }
        continue;
      }
      if (next->kind != Token::Kind::kIdent) continue;
      const Token* after = tok(j + 1);
      if (after == nullptr || after->kind != Token::Kind::kPunct) continue;
      if ((after->text == "," || after->text == ")") && depth_[i] > 0) {
        emit(next->line, "rng-copy",
             "parameter '" + next->text +
                 "' takes rng::Rng by value — a silent stream fork. Pass "
                 "rng::Rng& (or rng::Rng&& for ownership transfer).");
        continue;
      }
      if (after->text == "=") {
        // Copy-initialisation. A trailing `)` / `}` means a factory call or
        // braced seed (a fresh stream — fine); a trailing identifier means
        // the initialiser is an lvalue path (`other`, `table.at(a).rng`) and
        // the local is a stream fork.
        const Token* last = nullptr;
        for (std::size_t k = j + 2; k < tokens.size(); ++k) {
          const Token& e = tokens[k];
          if (e.kind == Token::Kind::kPunct &&
              (e.text == ";" || (e.text == "," && depth_[k] == depth_[i]))) {
            break;
          }
          last = &e;
        }
        if (last != nullptr && last->kind == Token::Kind::kIdent) {
          emit(next->line, "rng-copy",
               "local '" + next->text +
                   "' copy-initialises an rng::Rng from an existing stream — "
                   "both copies will replay the same draws. Bind a reference "
                   "or split a fresh stream instead.");
        }
      }
      // `Rng name;` (owning member), `Rng name(seed)`, `Rng name{seed}` and
      // function declarations `Rng split(...)` are all legitimate.
    }
  }

  // -- R3 -------------------------------------------------------------------
  [[nodiscard]] static std::string first_component(const std::string& path) {
    const std::size_t slash = path.find('/');
    return slash == std::string::npos ? std::string() : path.substr(0, slash);
  }

  void check_layering() {
    if (!logical_.starts_with("src/")) return;  // tools/bench/tests sit on top.
    const std::string from =
        first_component(logical_.substr(4));  // src/<dir>/...
    const auto self = options_.layers.find(from);
    if (self == options_.layers.end()) return;
    for (const IncludeDirective& inc : scan_.includes) {
      if (inc.angle) continue;
      const std::string to = first_component(inc.target);
      const auto target = options_.layers.find(to);
      if (target == options_.layers.end()) continue;
      if (target->second > self->second) {
        emit(inc.line, "layering",
             "src/" + from + "/ (layer " + std::to_string(self->second) +
                 ") must not include \"" + inc.target + "\" (layer " +
                 std::to_string(target->second) +
                 "): the DESIGN.md DAG is rng < stats < data/wire < core < "
                 "host/obs < sim/runtime < baselines.");
      }
    }
  }

  // -- R4 -------------------------------------------------------------------
  void check_unordered_iter() {
    if (!logical_.starts_with("src/")) return;  // Library TUs only.
    const auto& tokens = scan_.tokens;

    // Pass 1: names declared with an unordered container type.
    std::set<std::string> unordered;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != Token::Kind::kIdent) continue;
      if (t.text != "unordered_map" && t.text != "unordered_set" &&
          t.text != "unordered_multimap" && t.text != "unordered_multiset") {
        continue;
      }
      std::size_t j = i + 1;
      if (!is_punct(j, "<")) continue;
      int angle = 1;
      ++j;
      while (j < tokens.size() && angle > 0) {
        if (is_punct(j, "<")) ++angle;
        if (is_punct(j, ">")) --angle;
        ++j;
      }
      const Token* name = tok(j);
      if (name != nullptr && name->kind == Token::Kind::kIdent) {
        unordered.insert(name->text);
      }
    }
    if (unordered.empty()) return;

    // Pass 2a: range-for over one of those names.
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!is_ident(i, "for") || !is_punct(i + 1, "(")) continue;
      // depth_[] is the depth *before* each token, so every token inside the
      // for-parens (including the matching close paren) sits at base + 1.
      const int base = depth_[i + 1];
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t k = i + 2; k < tokens.size(); ++k) {
        if (depth_[k] == base + 1 && is_punct(k, ")")) {
          close = k;
          break;
        }
        if (colon == 0 && depth_[k] == base + 1 && is_punct(k, ":")) {
          colon = k;
        }
      }
      if (colon == 0 || close == 0) continue;
      // Range expression: `name`, `this->name`, or `obj.name` — flag when
      // the final identifier is a known unordered container.
      const Token* last = tok(close - 1);
      if (last == nullptr || last->kind != Token::Kind::kIdent ||
          !unordered.contains(last->text)) {
        continue;
      }
      emit(last->text.empty() ? tokens[colon].line : last->line,
           "unordered-iter",
           "iteration over unordered container '" + last->text +
               "': bucket order is not deterministic across standard "
               "libraries and must not feed wire payloads, metrics, or "
               "evaluation series. Keep an insertion-order index (see "
               "core::InstanceStore's order walk) or sort first.");
    }

    // Pass 2b: ordered-access member calls on those names.
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != Token::Kind::kIdent || !unordered.contains(t.text)) {
        continue;
      }
      if (!is_punct(i + 1, ".") && !is_punct(i + 1, "->")) continue;
      if ((is_ident(i + 2, "begin") || is_ident(i + 2, "cbegin")) &&
          is_punct(i + 3, "(")) {
        emit(t.line, "unordered-iter",
             "'" + t.text + "." + tok(i + 2)->text +
                 "()' exposes hash-bucket order; use an insertion-order "
                 "index or sort into a vector first.");
      }
    }
  }

  // -- R5 -------------------------------------------------------------------
  void check_confinement() {
    if (!logical_.starts_with("src/")) return;  // Library TUs only.
    const auto& tokens = scan_.tokens;

    // I/O: libraries must stay silent; printing belongs to tools and benches.
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != Token::Kind::kIdent) continue;
      if (t.text == "cout" && i >= 2 && is_punct(i - 1, "::") &&
          is_ident(i - 2, "std")) {
        emit(t.line, "confinement",
             "std::cout in a src/ library: estimation code must not write to "
             "the process's streams — return data and let tools/bench print.");
        continue;
      }
      if ((t.text == "printf" || t.text == "puts" || t.text == "fprintf") &&
          is_punct(i + 1, "(") && free_or_std_call(i)) {
        emit(t.line, "confinement",
             t.text + "() in a src/ library: estimation code must not write "
                      "to the process's streams — return data and let "
                      "tools/bench print.");
      }
    }

    // Concurrency: only the substrates that own threads may synchronise.
    if (has_prefix(logical_, options_.concurrency_whitelist)) return;
    static const std::set<std::string> kPrimitives = {
        "mutex",          "recursive_mutex",
        "timed_mutex",    "shared_mutex",
        "atomic",         "atomic_flag",
        "atomic_ref",     "condition_variable",
        "condition_variable_any", "lock_guard",
        "unique_lock",    "scoped_lock",
        "shared_lock",    "thread",
        "jthread",        "this_thread",
        "future",         "promise",
        "async",          "counting_semaphore",
        "binary_semaphore", "barrier",
        "latch",
    };
    static const std::set<std::string> kHeaders = {
        "mutex",     "atomic",    "thread",     "condition_variable",
        "future",    "semaphore", "barrier",    "latch",
        "shared_mutex", "stop_token"};
    for (const IncludeDirective& inc : scan_.includes) {
      if (inc.angle && kHeaders.contains(inc.target)) {
        emit(inc.line, "confinement",
             "<" + inc.target + "> outside src/host/ and src/runtime/: "
             "concurrency lives in the substrates (plus the sharded "
             "parallel engine's documented exception), never in protocol "
             "or statistics code.");
      }
    }
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != Token::Kind::kIdent || !kPrimitives.contains(t.text)) {
        continue;
      }
      if (!is_punct(i - 1, "::") || !is_ident(i - 2, "std")) continue;
      emit(t.line, "confinement",
           "std::" + t.text + " outside src/host/ and src/runtime/: "
           "concurrency lives in the substrates (plus the sharded parallel "
           "engine's documented exception), never in protocol or statistics "
           "code.");
    }
  }

  // -- R6 -------------------------------------------------------------------
  void check_hot_path_container() {
    if (!has_prefix(logical_, options_.hot_path_prefixes)) return;
    static const std::set<std::string> kNodeMaps = {
        "map", "multimap", "unordered_map", "unordered_multimap"};
    const auto& tokens = scan_.tokens;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != Token::Kind::kIdent || !kNodeMaps.contains(t.text)) {
        continue;
      }
      // `std::map<...>` / `std::unordered_map<...>` only: a following `<`
      // separates the type from locals that merely *call* something named
      // map, and the std:: qualifier from other namespaces' types.
      if (!is_punct(i - 1, "::") || !is_ident(i - 2, "std")) continue;
      if (!is_punct(i + 1, "<")) continue;
      emit(t.line, "hot-path-container",
           "std::" + t.text + " in the gossip hot path (src/core/): "
           "node-based maps cost one cache miss per instance per traversal "
           "at scale. Keep per-instance state in the arena-backed "
           "core::InstanceStore (DESIGN.md §7.5); annotate genuinely cold "
           "paths with allow(hot-path-container).");
    }
  }

  std::string path_;
  std::string logical_;
  const Scan& scan_;
  const Options& options_;
  std::vector<int> depth_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace

std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view text,
                                    const Options& options) {
  const Scan scan = scan_source(text);
  Analyzer analyzer(std::string(path), scan, options);
  return analyzer.run();
}

std::vector<Diagnostic> lint_file(const std::filesystem::path& path,
                                  const Options& options) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(path.generic_string(), buffer.str(), options);
}

std::vector<Diagnostic> lint_tree(
    const std::vector<std::filesystem::path>& roots, const Options& options) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExtensions = {".hpp", ".h",  ".hh",
                                                    ".cpp", ".cc", ".cxx"};
  auto skip_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name.starts_with("build") || name == ".git" ||
           name == "lint_fixtures";
  };

  std::vector<Diagnostic> all;
  for (const fs::path& root : roots) {
    if (fs::is_regular_file(root)) {
      auto diags = lint_file(root, options);
      all.insert(all.end(), diags.begin(), diags.end());
      continue;
    }
    if (!fs::is_directory(root)) continue;
    fs::recursive_directory_iterator it(root), end;
    while (it != end) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
        ++it;
        continue;
      }
      if (it->is_regular_file() &&
          kExtensions.contains(it->path().extension().string())) {
        auto diags = lint_file(it->path(), options);
        all.insert(all.end(), diags.begin(), diags.end());
      }
      ++it;
    }
  }
  std::sort(all.begin(), all.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return all;
}

}  // namespace adam2::lint
