#!/usr/bin/env python3
"""Compare fresh bench JSON reports against the committed baselines.

Usage:
    python3 scripts/bench_diff.py [--baseline bench/baselines] \
        [--current bench-json] [--tolerance 10] [--strict]

For every BENCH_<name>.json in the baseline directory, the matching report in
the current directory is compared field by field:

  * `phases_seconds` and timing-like metrics (`*_s`, `*speedup*`) are
    wall-clock measurements: deltas beyond the tolerance (default +/-10%)
    produce a warning. Shared CI runners are noisy, so timing drift NEVER
    fails the job -- it is a nudge to look, or to refresh the baseline.
  * Exact metrics (allocation counts, bit-mismatch counters, failure
    counters, byte totals -- all deterministic given the same config) warn on
    ANY change. A deliberate protocol or wire change should land together
    with a baseline refresh.
  * Config fields (`nodes`, `seed`, `peer_sample`, `threads`) must match;
    otherwise the report pair is skipped with a warning, since comparing
    different workloads is meaningless.

Exit code is 0 unless --strict is given (then any warning fails) or the
inputs are unreadable. Under GitHub Actions, warnings are also emitted as
::warning:: annotations.

Refreshing baselines (from the repo root, after a Release build):
    ADAM2_BENCH_MICRO_ACCEPT_ONLY=1 ADAM2_BENCH_JSON=bench/baselines \
        ./build/bench/micro_core
    ADAM2_BENCH_N=500 ADAM2_BENCH_PEERS=100 ADAM2_BENCH_THREADS=2 \
        ADAM2_BENCH_JSON=bench/baselines ./build/bench/fig11_scalability
    rm -f bench/baselines/MANIFEST_* bench/baselines/METRICS_*
"""
import argparse
import glob
import json
import os
import re
import sys

CONFIG_KEYS = ("nodes", "seed", "peer_sample", "threads")

# Deterministic counters: any drift is a real behaviour change, not noise.
# `digest` covers the snapshot-state digests the resume-smoke job compares
# between an uninterrupted run and a save/resume run (DESIGN.md §12).
EXACT_RE = re.compile(r"(_allocs$|_iterations$|mismatch|failures|bytes|digest)")

# Wall-clock measurements and their ratios: compare with tolerance.
TIMING_RE = re.compile(r"(_s$|speedup|seconds)")


def classify(key: str) -> str:
    if EXACT_RE.search(key):
        return "exact"
    if TIMING_RE.search(key):
        return "timing"
    return "timing"  # Unknown numerics are treated as noisy, not exact.


def iter_values(report: dict):
    for key, value in sorted(report.get("phases_seconds", {}).items()):
        yield f"phases_seconds.{key}", "timing", value
    for key, value in sorted(report.get("metrics", {}).items()):
        if isinstance(value, (int, float)):
            yield f"metrics.{key}", classify(key), value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="bench/baselines")
    parser.add_argument("--current", default="bench-json")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed timing drift in percent (default 10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if anything drifted")
    args = parser.parse_args()

    baselines = sorted(glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not baselines:
        print(f"bench_diff: no baselines under {args.baseline}",
              file=sys.stderr)
        return 1

    in_actions = os.environ.get("GITHUB_ACTIONS") == "true"
    warnings = 0

    def warn(message: str) -> None:
        nonlocal warnings
        warnings += 1
        print(f"  WARN {message}")
        if in_actions:
            print(f"::warning title=bench drift::{message}")

    for baseline_path in baselines:
        name = os.path.basename(baseline_path)
        current_path = os.path.join(args.current, name)
        print(f"== {name}")
        if not os.path.exists(current_path):
            warn(f"{name}: no current report under {args.current}")
            continue
        with open(baseline_path, encoding="utf-8") as fh:
            base = json.load(fh)
        with open(current_path, encoding="utf-8") as fh:
            cur = json.load(fh)

        config_mismatch = [k for k in CONFIG_KEYS
                           if base.get(k) != cur.get(k)]
        if config_mismatch:
            warn(f"{name}: config mismatch on {config_mismatch} "
                 f"(baseline {[base.get(k) for k in config_mismatch]} vs "
                 f"current {[cur.get(k) for k in config_mismatch]}) -- "
                 "skipping comparison")
            continue

        cur_values = {key: (kind, value)
                      for key, kind, value in iter_values(cur)}
        for key, kind, base_value in iter_values(base):
            if key not in cur_values:
                warn(f"{name}: {key} missing from current report")
                continue
            cur_value = cur_values.pop(key)[1]
            if kind == "exact":
                if base_value != cur_value:
                    warn(f"{name}: {key} changed {base_value} -> {cur_value} "
                         "(deterministic metric; refresh the baseline if "
                         "intended)")
                else:
                    print(f"  ok   {key} = {cur_value}")
                continue
            if base_value == 0:
                status = "ok" if cur_value == 0 else "drift"
                delta_text = f"{base_value} -> {cur_value}"
            else:
                delta = 100.0 * (cur_value - base_value) / abs(base_value)
                status = "ok" if abs(delta) <= args.tolerance else "drift"
                delta_text = (f"{base_value:.6g} -> {cur_value:.6g} "
                              f"({delta:+.1f}%)")
            if status == "ok":
                print(f"  ok   {key} {delta_text}")
            else:
                warn(f"{name}: {key} drifted beyond "
                     f"+/-{args.tolerance:.0f}%: {delta_text}")
        for key in cur_values:
            print(f"  new  {key} (not in baseline)")

    print(f"bench_diff: {warnings} warning(s)")
    if warnings and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
