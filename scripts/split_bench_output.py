#!/usr/bin/env python3
"""Split a bench_output.txt (the `for b in build/bench/*` transcript) into
per-figure TSV files ready for gnuplot/pandas.

Usage:
    python3 scripts/split_bench_output.py bench_output.txt out_dir/

Each `# <title>` banner starts a new section; table rows (label + numeric
columns) are written to out_dir/<slug>.tsv with the header preserved.
"""
import os
import re
import sys


def slugify(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    return slug[:60]


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 1
    src, out_dir = sys.argv[1], sys.argv[2]
    os.makedirs(out_dir, exist_ok=True)

    current = None
    handle = None
    written = []
    with open(src, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.rstrip("\n")
            banner = re.match(r"^# (?!nodes=)(.+)$", line)
            if banner:
                if handle:
                    handle.close()
                current = slugify(banner.group(1))
                path = os.path.join(out_dir, current + ".tsv")
                handle = open(path, "w", encoding="utf-8")
                written.append(path)
                continue
            if handle is None or not line or line.startswith(("#", "/bin/")):
                continue
            # Sub-section markers become comment lines inside the TSV.
            if line.startswith("##"):
                handle.write("# " + line.lstrip("# ") + "\n")
                continue
            handle.write(re.sub(r"\s\s+", "\t", line.strip()) + "\n")
    if handle:
        handle.close()
    print(f"wrote {len(written)} files to {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
