#include "stats/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace adam2::stats {

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace adam2::stats
