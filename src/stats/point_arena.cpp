#include "stats/point_arena.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace adam2::stats {
namespace {

constexpr std::size_t kMinClass = PointArena::kMinClassPoints;

std::size_t class_index(std::uint32_t capacity) {
  return static_cast<std::size_t>(std::bit_width(capacity) - 1) - 3;
}

}  // namespace

std::uint32_t PointArena::class_of(std::size_t count) {
  if (count <= kMinClass) return kMinClass;
  if (count > (std::size_t{1} << kMaxClassLog2)) {
    throw std::length_error("PointArena: point sequence too large");
  }
  return static_cast<std::uint32_t>(std::bit_ceil(count));
}

PointArena::Block PointArena::allocate(std::size_t count) {
  if (count == 0) return {};
  const std::uint32_t capacity = class_of(count);
  std::vector<CdfPoint*>& list = free_[class_index(capacity)];
  if (!list.empty()) {
    CdfPoint* data = list.back();
    list.pop_back();
    return {data, capacity};
  }
  return {bump(capacity), capacity};
}

void PointArena::release(CdfPoint* data, std::uint32_t capacity) {
  if (data == nullptr) return;
  assert(capacity >= kMinClass && std::has_single_bit(capacity));
  free_[class_index(capacity)].push_back(data);
}

CdfPoint* PointArena::bump(std::size_t capacity) {
  if (static_cast<std::size_t>(page_end_ - cursor_) < capacity) {
    // The tail of the old page (always smaller than one class of the
    // request) is abandoned; bounded waste per page, recovered when the
    // block is eventually recycled anyway.
    const std::size_t page = capacity > kPageCapacity ? capacity : kPageCapacity;
    pages_.push_back(std::make_unique<CdfPoint[]>(page));
    cursor_ = pages_.back().get();
    page_end_ = cursor_ + page;
    reserved_ += page;
  }
  CdfPoint* data = cursor_;
  cursor_ += capacity;
  return data;
}

std::size_t PointArena::free_blocks() const {
  std::size_t n = 0;
  for (const std::vector<CdfPoint*>& list : free_) n += list.size();
  return n;
}

}  // namespace adam2::stats
