// Histogram utilities shared by the data generators and the EquiDepth
// baseline: equi-width counting, and equi-depth (quantile) boundaries over
// plain or weighted samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/cdf.hpp"

namespace adam2::stats {

/// A weighted sample point: `weight` copies of `value` (weights may be
/// fractional after synopsis merging).
struct WeightedValue {
  double value = 0.0;
  double weight = 0.0;

  friend bool operator==(const WeightedValue&, const WeightedValue&) = default;
};

/// Counts of `values` over `bins` equal-width buckets spanning [lo, hi].
/// Values outside the range are clamped into the edge buckets.
/// Precondition: bins >= 1 and hi > lo.
[[nodiscard]] std::vector<std::size_t> equi_width_counts(
    std::span<const Value> values, std::size_t bins, double lo, double hi);

/// Equi-depth boundaries: the (i/bins)-quantiles of `values` for
/// i = 1..bins-1. `values` need not be sorted. Precondition: bins >= 1,
/// values non-empty.
[[nodiscard]] std::vector<double> equi_depth_boundaries(
    std::span<const Value> values, std::size_t bins);

/// Compresses weighted samples to at most `capacity` centroids while
/// preserving total weight: sorts by value and greedily merges adjacent
/// centroids into equal-weight groups (the synopsis compression step of the
/// EquiDepth baseline, ref [3]). Returns centroids sorted by value.
[[nodiscard]] std::vector<WeightedValue> compress_equi_depth(
    std::vector<WeightedValue> samples, std::size_t capacity);

/// Interprets weighted centroids as a distribution and returns its CDF
/// interpolation: knot k holds (value_k, cumulative weight fraction through
/// centroid k, midpoint convention). Precondition: total weight > 0.
[[nodiscard]] PiecewiseLinearCdf centroids_to_cdf(
    std::span<const WeightedValue> centroids);

}  // namespace adam2::stats
