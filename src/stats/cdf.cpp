#include "stats/cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace adam2::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<Value> values) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  total_ = values.size();
  distinct_.reserve(64);
  cumulative_.reserve(64);
  const double inv_n = 1.0 / static_cast<double>(total_);
  for (std::size_t i = 0; i < values.size();) {
    std::size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    distinct_.push_back(values[i]);
    cumulative_.push_back(static_cast<double>(j) * inv_n);
    i = j;
  }
  // Guard against accumulated rounding: the last fraction is exactly 1.
  cumulative_.back() = 1.0;
}

double EmpiricalCdf::operator()(double x) const {
  assert(!distinct_.empty());
  // Largest distinct value <= x; its cumulative fraction is F(x).
  auto it = std::upper_bound(distinct_.begin(), distinct_.end(), x,
                             [](double lhs, Value rhs) {
                               return lhs < static_cast<double>(rhs);
                             });
  if (it == distinct_.begin()) return 0.0;
  return cumulative_[static_cast<std::size_t>(it - distinct_.begin()) - 1];
}

Value EmpiricalCdf::quantile(double q) const {
  assert(!distinct_.empty());
  if (q <= 0.0) return min();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), q);
  if (it == cumulative_.end()) return max();
  return distinct_[static_cast<std::size_t>(it - cumulative_.begin())];
}

PiecewiseLinearCdf::PiecewiseLinearCdf(std::vector<CdfPoint> knots) {
  std::sort(knots.begin(), knots.end(),
            [](const CdfPoint& a, const CdfPoint& b) { return a.t < b.t; });
  knots_.reserve(knots.size());
  for (CdfPoint k : knots) {
    k.f = std::clamp(k.f, 0.0, 1.0);
    if (!knots_.empty() && knots_.back().t == k.t) {
      knots_.back().f = std::max(knots_.back().f, k.f);
    } else {
      knots_.push_back(k);
    }
  }
}

double PiecewiseLinearCdf::operator()(double x) const {
  assert(!knots_.empty());
  if (x <= knots_.front().t) return x < knots_.front().t ? 0.0 : knots_.front().f;
  if (x >= knots_.back().t) return knots_.back().f;
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double lhs, const CdfPoint& rhs) { return lhs < rhs.t; });
  const CdfPoint& hi = *it;
  const CdfPoint& lo = *(it - 1);
  const double span = hi.t - lo.t;
  if (span <= 0.0) return hi.f;
  const double w = (x - lo.t) / span;
  return lo.f + w * (hi.f - lo.f);
}

double PiecewiseLinearCdf::inverse(double q) const {
  assert(!knots_.empty());
  if (q <= knots_.front().f) return knots_.front().t;
  if (q >= knots_.back().f) return knots_.back().t;
  auto it = std::lower_bound(
      knots_.begin(), knots_.end(), q,
      [](const CdfPoint& lhs, double rhs) { return lhs.f < rhs; });
  const CdfPoint& hi = *it;
  const CdfPoint& lo = *(it - 1);
  const double rise = hi.f - lo.f;
  if (rise <= 0.0) return hi.t;
  const double w = (q - lo.f) / rise;
  return lo.t + w * (hi.t - lo.t);
}

bool PiecewiseLinearCdf::is_monotone() const {
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i].f < knots_[i - 1].f) return false;
  }
  return true;
}

PiecewiseLinearCdf PiecewiseLinearCdf::make_monotone() const {
  PiecewiseLinearCdf out = *this;
  double running = 0.0;
  for (CdfPoint& k : out.knots_) {
    running = std::max(running, k.f);
    k.f = running;
  }
  return out;
}

double PiecewiseLinearCdf::arc_length(double t_scale) const {
  assert(t_scale > 0.0);
  double total = 0.0;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    const double dt = (knots_[i].t - knots_[i - 1].t) / t_scale;
    const double df = knots_[i].f - knots_[i - 1].f;
    total += std::hypot(dt, df);
  }
  return total;
}

PiecewiseLinearCdf interpolate_with_extremes(std::span<const CdfPoint> points,
                                             double min_value,
                                             double max_value) {
  std::vector<CdfPoint> knots;
  knots.reserve(points.size() + 2);
  knots.push_back({min_value, 0.0});
  for (const CdfPoint& p : points) {
    if (p.t > min_value && p.t < max_value) knots.push_back(p);
  }
  knots.push_back({max_value, 1.0});
  return PiecewiseLinearCdf{std::move(knots)};
}

}  // namespace adam2::stats
