#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace adam2::stats {

std::vector<std::size_t> equi_width_counts(std::span<const Value> values,
                                           std::size_t bins, double lo,
                                           double hi) {
  assert(bins >= 1);
  assert(hi > lo);
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (Value v : values) {
    auto idx = static_cast<std::ptrdiff_t>((static_cast<double>(v) - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

std::vector<double> equi_depth_boundaries(std::span<const Value> values,
                                          std::size_t bins) {
  assert(bins >= 1);
  assert(!values.empty());
  std::vector<Value> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> boundaries;
  boundaries.reserve(bins - 1);
  for (std::size_t i = 1; i < bins; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(bins);
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size()))) -
        1;
    rank = std::min(rank, sorted.size() - 1);
    boundaries.push_back(static_cast<double>(sorted[rank]));
  }
  return boundaries;
}

std::vector<WeightedValue> compress_equi_depth(
    std::vector<WeightedValue> samples, std::size_t capacity) {
  assert(capacity >= 1);
  std::sort(samples.begin(), samples.end(),
            [](const WeightedValue& a, const WeightedValue& b) {
              return a.value < b.value;
            });
  if (samples.size() <= capacity) return samples;

  double total = 0.0;
  for (const WeightedValue& s : samples) total += s.weight;
  const double per_bin = total / static_cast<double>(capacity);

  std::vector<WeightedValue> out;
  out.reserve(capacity);
  double bin_weight = 0.0;
  double bin_moment = 0.0;  // weight-weighted sum of values
  for (const WeightedValue& s : samples) {
    double remaining = s.weight;
    double value = s.value;
    // A heavy sample can span several bins; split its weight across them.
    while (remaining > 0.0) {
      const double room = per_bin - bin_weight;
      const double take =
          (out.size() + 1 < capacity) ? std::min(remaining, room) : remaining;
      bin_weight += take;
      bin_moment += take * value;
      remaining -= take;
      if (out.size() + 1 < capacity && bin_weight >= per_bin * (1.0 - 1e-12)) {
        out.push_back({bin_moment / bin_weight, bin_weight});
        bin_weight = 0.0;
        bin_moment = 0.0;
      }
    }
  }
  if (bin_weight > 0.0) out.push_back({bin_moment / bin_weight, bin_weight});
  return out;
}

PiecewiseLinearCdf centroids_to_cdf(std::span<const WeightedValue> centroids) {
  assert(!centroids.empty());
  double total = 0.0;
  for (const WeightedValue& c : centroids) total += c.weight;
  assert(total > 0.0);

  std::vector<CdfPoint> knots;
  knots.reserve(centroids.size());
  double cum = 0.0;
  for (const WeightedValue& c : centroids) {
    // Midpoint convention: a centroid of weight w sits at the middle of the
    // probability mass it represents.
    const double f = (cum + c.weight / 2.0) / total;
    knots.push_back({c.value, f});
    cum += c.weight;
  }
  return PiecewiseLinearCdf{std::move(knots)};
}

}  // namespace adam2::stats
