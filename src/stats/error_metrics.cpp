#include "stats/error_metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace adam2::stats {
namespace {

/// Sum of |h(x)| for integer x in [a, b] where h is linear with endpoint
/// values ha = h(a) and hb = h(b). Splits at the sign change so every
/// sub-series has a constant sign and the arithmetic-series formula applies.
double abs_linear_sum(std::int64_t a, std::int64_t b, double ha, double hb) {
  const double n = static_cast<double>(b - a + 1);
  if (ha == 0.0 || hb == 0.0 || (ha > 0.0) == (hb > 0.0)) {
    return std::abs(ha + hb) * n / 2.0;
  }
  // Sign change strictly inside; b > a is implied (ha != hb, opposite signs).
  const double slope = (hb - ha) / static_cast<double>(b - a);
  const double root = static_cast<double>(a) - ha / slope;
  auto k = static_cast<std::int64_t>(std::floor(root));
  k = std::clamp(k, a, b - 1);
  const double hk = ha + slope * static_cast<double>(k - a);
  const double hk1 = ha + slope * static_cast<double>(k + 1 - a);
  const double left = std::abs(ha + hk) * static_cast<double>(k - a + 1) / 2.0;
  const double right = std::abs(hk1 + hb) * static_cast<double>(b - k) / 2.0;
  return left + right;
}

}  // namespace

ErrorPair discrete_errors(const EmpiricalCdf& truth,
                          const PiecewiseLinearCdf& approx) {
  assert(!truth.empty());
  assert(!approx.empty());
  const std::int64_t m = truth.min();
  const std::int64_t big_m = truth.max();
  if (m == big_m) {
    const double err = std::abs(1.0 - approx(static_cast<double>(m)));
    return {err, err};
  }

  // Run starts: every integer where F's level or Fp's linear segment changes.
  std::vector<std::int64_t> starts;
  const auto distinct = truth.distinct_values();
  starts.reserve(distinct.size() + approx.knots().size() + 1);
  starts.push_back(m);
  for (std::size_t j = 1; j < distinct.size(); ++j) starts.push_back(distinct[j]);
  for (const CdfPoint& k : approx.knots()) {
    const auto c = static_cast<std::int64_t>(std::ceil(k.t));
    if (c > m && c <= big_m) starts.push_back(c);
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  double max_err = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::int64_t a = starts[i];
    const std::int64_t b = (i + 1 < starts.size()) ? starts[i + 1] - 1 : big_m;
    const double level = truth(static_cast<double>(a));
    const double ha = level - approx(static_cast<double>(a));
    const double hb = level - approx(static_cast<double>(b));
    max_err = std::max({max_err, std::abs(ha), std::abs(hb)});
    sum += abs_linear_sum(a, b, ha, hb);
  }
  return {max_err, sum / static_cast<double>(big_m - m)};
}

DiscreteErrorEvaluator::DiscreteErrorEvaluator(const EmpiricalCdf& truth)
    : distinct_(truth.distinct_values()),
      cumulative_(truth.cumulative_fractions()),
      min_(truth.min()),
      max_(truth.max()) {
  assert(!truth.empty());
}

ErrorPair DiscreteErrorEvaluator::operator()(
    const PiecewiseLinearCdf& approx) const {
  assert(!distinct_.empty());
  assert(!approx.empty());
  if (min_ == max_) {
    const double err = std::abs(1.0 - approx(static_cast<double>(min_)));
    return {err, err};
  }

  const std::span<const CdfPoint> knots = approx.knots();
  constexpr std::int64_t kNone = std::numeric_limits<std::int64_t>::max();

  // Forward cursor replicating PiecewiseLinearCdf::operator() for the
  // non-decreasing query sequence a0 <= b0 < a1 <= b1 < ... (each run's
  // endpoints, in run order). `hi` only ever moves right, so a full call is
  // one linear walk over the knots instead of a binary search per query.
  std::size_t hi = 1;
  const auto approx_at = [&](double x) -> double {
    if (x <= knots.front().t) return x < knots.front().t ? 0.0 : knots.front().f;
    if (x >= knots.back().t) return knots.back().f;
    while (knots[hi].t <= x) ++hi;
    const CdfPoint& khi = knots[hi];
    const CdfPoint& klo = knots[hi - 1];
    const double span = khi.t - klo.t;
    if (span <= 0.0) return khi.f;
    const double w = (x - klo.t) / span;
    return klo.f + w * (khi.f - klo.f);
  };

  // Knot-derived run starts: ceil(k.t) restricted to (min, max]. The knots
  // are sorted by t, so these arrive already sorted; peek skips the
  // out-of-domain prefix/suffix lazily.
  std::size_t ki = 0;
  const auto knot_peek = [&]() -> std::int64_t {
    while (ki < knots.size()) {
      const auto c = static_cast<std::int64_t>(std::ceil(knots[ki].t));
      if (c > min_ && c <= max_) return c;
      ++ki;
    }
    return kNone;
  };

  // Merged sweep: the run sequence is the sorted, deduplicated union of the
  // truth breakpoints (distinct_[1..]) and the knot starts — exactly the
  // `starts` vector discrete_errors builds, visited in the same order.
  std::size_t ti = 1;   ///< Next truth breakpoint to start a run at.
  std::size_t lvl = 0;  ///< Truth level index for the current run.
  double max_err = 0.0;
  double sum = 0.0;
  std::int64_t a = min_;
  while (true) {
    // Truth level at a: largest breakpoint <= a under the same double
    // comparison truth(x) uses, so rounding behaves identically.
    const double ax = static_cast<double>(a);
    while (lvl + 1 < distinct_.size() &&
           static_cast<double>(distinct_[lvl + 1]) <= ax) {
      ++lvl;
    }
    const double level = cumulative_[lvl];

    const std::int64_t next_truth = ti < distinct_.size()
                                        ? static_cast<std::int64_t>(distinct_[ti])
                                        : kNone;
    const std::int64_t next_knot = knot_peek();
    const std::int64_t next = std::min(next_truth, next_knot);
    const std::int64_t b = next == kNone ? max_ : next - 1;

    const double ha = level - approx_at(static_cast<double>(a));
    const double hb = level - approx_at(static_cast<double>(b));
    max_err = std::max({max_err, std::abs(ha), std::abs(hb)});
    sum += abs_linear_sum(a, b, ha, hb);

    if (next == kNone) break;
    if (next_truth == next) ++ti;
    while (knot_peek() == next) ++ki;  // Dedup (several knots may round up
                                       // to the same integer).
    a = next;
  }
  return {max_err, sum / static_cast<double>(max_ - min_)};
}

ErrorPair discrete_errors_brute(const EmpiricalCdf& truth,
                                const PiecewiseLinearCdf& approx) {
  assert(!truth.empty());
  assert(!approx.empty());
  const std::int64_t m = truth.min();
  const std::int64_t big_m = truth.max();
  if (m == big_m) {
    const double err = std::abs(1.0 - approx(static_cast<double>(m)));
    return {err, err};
  }
  double max_err = 0.0;
  double sum = 0.0;
  for (std::int64_t x = m; x <= big_m; ++x) {
    const double d = std::abs(truth(static_cast<double>(x)) -
                              approx(static_cast<double>(x)));
    max_err = std::max(max_err, d);
    sum += d;
  }
  return {max_err, sum / static_cast<double>(big_m - m)};
}

ErrorPair point_errors(const EmpiricalCdf& truth,
                       std::span<const CdfPoint> points) {
  if (points.empty()) return {};
  double max_err = 0.0;
  double sum = 0.0;
  for (const CdfPoint& p : points) {
    const double d = std::abs(truth(p.t) - p.f);
    max_err = std::max(max_err, d);
    sum += d;
  }
  return {max_err, sum / static_cast<double>(points.size())};
}

ErrorPair estimation_errors(const PiecewiseLinearCdf& approx,
                            std::span<const CdfPoint> verification) {
  if (verification.empty() || approx.empty()) return {};
  double max_err = 0.0;
  double sum = 0.0;
  for (const CdfPoint& p : verification) {
    const double d = std::abs(approx(p.t) - p.f);
    max_err = std::max(max_err, d);
    sum += d;
  }
  return {max_err, sum / static_cast<double>(verification.size())};
}

}  // namespace adam2::stats
