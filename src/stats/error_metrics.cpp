#include "stats/error_metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace adam2::stats {
namespace {

/// Sum of |h(x)| for integer x in [a, b] where h is linear with endpoint
/// values ha = h(a) and hb = h(b). Splits at the sign change so every
/// sub-series has a constant sign and the arithmetic-series formula applies.
double abs_linear_sum(std::int64_t a, std::int64_t b, double ha, double hb) {
  const double n = static_cast<double>(b - a + 1);
  if (ha == 0.0 || hb == 0.0 || (ha > 0.0) == (hb > 0.0)) {
    return std::abs(ha + hb) * n / 2.0;
  }
  // Sign change strictly inside; b > a is implied (ha != hb, opposite signs).
  const double slope = (hb - ha) / static_cast<double>(b - a);
  const double root = static_cast<double>(a) - ha / slope;
  auto k = static_cast<std::int64_t>(std::floor(root));
  k = std::clamp(k, a, b - 1);
  const double hk = ha + slope * static_cast<double>(k - a);
  const double hk1 = ha + slope * static_cast<double>(k + 1 - a);
  const double left = std::abs(ha + hk) * static_cast<double>(k - a + 1) / 2.0;
  const double right = std::abs(hk1 + hb) * static_cast<double>(b - k) / 2.0;
  return left + right;
}

}  // namespace

ErrorPair discrete_errors(const EmpiricalCdf& truth,
                          const PiecewiseLinearCdf& approx) {
  assert(!truth.empty());
  assert(!approx.empty());
  const std::int64_t m = truth.min();
  const std::int64_t big_m = truth.max();
  if (m == big_m) {
    const double err = std::abs(1.0 - approx(static_cast<double>(m)));
    return {err, err};
  }

  // Run starts: every integer where F's level or Fp's linear segment changes.
  std::vector<std::int64_t> starts;
  const auto distinct = truth.distinct_values();
  starts.reserve(distinct.size() + approx.knots().size() + 1);
  starts.push_back(m);
  for (std::size_t j = 1; j < distinct.size(); ++j) starts.push_back(distinct[j]);
  for (const CdfPoint& k : approx.knots()) {
    const auto c = static_cast<std::int64_t>(std::ceil(k.t));
    if (c > m && c <= big_m) starts.push_back(c);
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  double max_err = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::int64_t a = starts[i];
    const std::int64_t b = (i + 1 < starts.size()) ? starts[i + 1] - 1 : big_m;
    const double level = truth(static_cast<double>(a));
    const double ha = level - approx(static_cast<double>(a));
    const double hb = level - approx(static_cast<double>(b));
    max_err = std::max({max_err, std::abs(ha), std::abs(hb)});
    sum += abs_linear_sum(a, b, ha, hb);
  }
  return {max_err, sum / static_cast<double>(big_m - m)};
}

ErrorPair discrete_errors_brute(const EmpiricalCdf& truth,
                                const PiecewiseLinearCdf& approx) {
  assert(!truth.empty());
  assert(!approx.empty());
  const std::int64_t m = truth.min();
  const std::int64_t big_m = truth.max();
  if (m == big_m) {
    const double err = std::abs(1.0 - approx(static_cast<double>(m)));
    return {err, err};
  }
  double max_err = 0.0;
  double sum = 0.0;
  for (std::int64_t x = m; x <= big_m; ++x) {
    const double d = std::abs(truth(static_cast<double>(x)) -
                              approx(static_cast<double>(x)));
    max_err = std::max(max_err, d);
    sum += d;
  }
  return {max_err, sum / static_cast<double>(big_m - m)};
}

ErrorPair point_errors(const EmpiricalCdf& truth,
                       std::span<const CdfPoint> points) {
  if (points.empty()) return {};
  double max_err = 0.0;
  double sum = 0.0;
  for (const CdfPoint& p : points) {
    const double d = std::abs(truth(p.t) - p.f);
    max_err = std::max(max_err, d);
    sum += d;
  }
  return {max_err, sum / static_cast<double>(points.size())};
}

ErrorPair estimation_errors(const PiecewiseLinearCdf& approx,
                            std::span<const CdfPoint> verification) {
  if (verification.empty() || approx.empty()) return {};
  double max_err = 0.0;
  double sum = 0.0;
  for (const CdfPoint& p : verification) {
    const double d = std::abs(approx(p.t) - p.f);
    max_err = std::max(max_err, d);
    sum += d;
  }
  return {max_err, sum / static_cast<double>(verification.size())};
}

}  // namespace adam2::stats
