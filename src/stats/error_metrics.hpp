// Approximation-error metrics between a true CDF and an interpolated one.
//
// The paper (§III) uses two metrics over the discrete attribute domain
// [min, max]:
//
//   Errm(p) = max_x |F(x) - Fp(x)|                      (Kolmogorov-Smirnoff)
//   Erra(p) = sum_{x=min}^{max} |F(x) - Fp(x)| / (max - min)
//
// Scanning every integer x is infeasible for wide domains (bandwidth spans
// ~1e9 values), so `discrete_errors` evaluates both metrics *exactly* using
// closed forms: between breakpoints of either curve, F is constant and Fp is
// linear, so |F - Fp| is maximised at run endpoints and its sum over the
// integers in the run is an arithmetic series (split at the sign change).
// `discrete_errors_brute` scans integers directly and is used to validate the
// closed forms in tests.
#pragma once

#include <span>

#include "stats/cdf.hpp"

namespace adam2::stats {

/// Both paper metrics, computed in one pass.
struct ErrorPair {
  double max_err = 0.0;  ///< Errm: maximum vertical distance.
  double avg_err = 0.0;  ///< Erra: average vertical distance over the domain.
};

/// Exact Errm/Erra between `truth` and `approx` over the integer domain
/// [truth.min(), truth.max()].
[[nodiscard]] ErrorPair discrete_errors(const EmpiricalCdf& truth,
                                        const PiecewiseLinearCdf& approx);

/// Caches the truth side of `discrete_errors` so the same truth ECDF can be
/// held against many peer approximations cheaply (the evaluation hot path:
/// one truth, thousands of peers, every round of every bench).
///
/// `discrete_errors` rebuilds, sorts, and deduplicates the full run-start
/// vector — truth breakpoints plus approximation knots — on every call. The
/// evaluator instead borrows the truth's distinct values and cumulative
/// fractions once, and each call merges the (already sorted) truth
/// breakpoints with the (already sorted) knot ceilings in a single sweep,
/// walking both curves with forward cursors. No allocation, no sort, no
/// binary search per call — and bit-identical results: the sweep visits the
/// exact run sequence of `discrete_errors` and reuses its arithmetic,
/// including `PiecewiseLinearCdf::operator()`'s branch structure.
///
/// Borrows spans from `truth`; the EmpiricalCdf must outlive the evaluator.
/// operator() is const and keeps all cursors on the stack, so one evaluator
/// may be shared across threads (the sharded population evaluation does).
class DiscreteErrorEvaluator {
 public:
  explicit DiscreteErrorEvaluator(const EmpiricalCdf& truth);

  /// Exact Errm/Erra of `approx`; equals discrete_errors(truth, approx).
  [[nodiscard]] ErrorPair operator()(const PiecewiseLinearCdf& approx) const;

 private:
  std::span<const Value> distinct_;     ///< Truth breakpoints, ascending.
  std::span<const double> cumulative_;  ///< Level after each breakpoint.
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Direct integer scan of the same metrics; O(max - min). Test oracle only.
[[nodiscard]] ErrorPair discrete_errors_brute(const EmpiricalCdf& truth,
                                              const PiecewiseLinearCdf& approx);

/// Errors restricted to a point set: max/avg of |F(t_i) - f_i| over `points`.
/// Used for the paper's "interpolation points" error series (Fig. 6/12) and
/// for confidence estimation at verification points (§VI).
[[nodiscard]] ErrorPair point_errors(const EmpiricalCdf& truth,
                                     std::span<const CdfPoint> points);

/// Errors of `approx` evaluated at verification points carrying exact
/// fractions: max/avg of |approx(t_i) - f_i| (the EstErr formulas of §VI).
[[nodiscard]] ErrorPair estimation_errors(const PiecewiseLinearCdf& approx,
                                          std::span<const CdfPoint> verification);

}  // namespace adam2::stats
