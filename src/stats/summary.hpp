// Streaming summary statistics used by the metric probes: Welford running
// mean/variance plus min/max, and simple percentile helpers over vectors.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace adam2::stats {

/// Numerically stable running mean / variance / min / max accumulator.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

  /// Merges another accumulator (parallel Welford combine).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// q-th percentile (q in [0,1]) of `xs` by nearest-rank; copies and sorts.
/// Precondition: xs non-empty.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

}  // namespace adam2::stats
