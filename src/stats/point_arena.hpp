// Slab arena for CdfPoint sequences (the H and V series of live
// aggregation instances).
//
// The Adam2 merge loop touches every point of every active instance every
// round; with the points scattered across per-instance std::vector heap
// blocks that walk is pointer-chasing through the allocator's layout. The
// arena packs point blocks into large contiguous pages instead, so one
// agent's working set occupies a handful of cache-resident slabs, and it
// recycles freed blocks through per-size-class freelists so the steady-state
// instance lifecycle (create / join / expire) performs zero heap
// allocations once the high-water mark has been seen (DESIGN.md §7.5).
//
// Allocation model:
//  * Requests are rounded up to a power-of-two capacity class (min 8
//    points, 128 B). A freed block of class c serves any later request of
//    class c — instance churn at a fixed lambda recycles perfectly.
//  * Fresh blocks are bump-allocated from the current page. The first page
//    is inline storage inside the arena object (kInlineCapacity points,
//    sized so one instance at the paper's default lambda = 50 plus a small
//    verification series fits without any heap traffic at all); overflow
//    pages of kPageCapacity points come from the heap, and a request larger
//    than a page gets a dedicated page of exactly its class size.
//  * Blocks never move: pages are retained until the arena dies, so
//    CdfPoint* handles stay valid for the lifetime of the block.
//
// The arena is neither copyable nor movable — handed-out pointers (and the
// inline page) pin its address.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/cdf.hpp"

namespace adam2::stats {

class PointArena {
 public:
  /// Inline (in-object) first page: covers lambda = 50 interpolation points
  /// (class 64) plus a typical verification series (class 8 or 16).
  static constexpr std::size_t kInlineCapacity = 128;
  /// Heap page size in points (16 KiB pages).
  static constexpr std::size_t kPageCapacity = 1024;
  /// Smallest capacity class, in points.
  static constexpr std::size_t kMinClassPoints = 8;

  /// A block handle: `capacity` is the rounded-up class size that must be
  /// passed back to release(). data == nullptr iff the request was empty.
  struct Block {
    CdfPoint* data = nullptr;
    std::uint32_t capacity = 0;
  };

  PointArena() = default;
  PointArena(const PointArena&) = delete;
  PointArena& operator=(const PointArena&) = delete;
  PointArena(PointArena&&) = delete;
  PointArena& operator=(PointArena&&) = delete;

  /// Returns a block with capacity >= count (the next capacity class),
  /// recycled from the freelist when possible. count == 0 returns the null
  /// block. The points are uninitialised; callers overwrite them.
  [[nodiscard]] Block allocate(std::size_t count);

  /// Returns a block to its class freelist. `capacity` must be the value
  /// allocate() handed out. Accepts the null block as a no-op.
  void release(CdfPoint* data, std::uint32_t capacity);

  // -- Introspection (tests, benches) ---------------------------------------

  /// Heap pages allocated so far (excludes the inline page). Differential
  /// tests pin this to stop growing once the working set has been seen.
  [[nodiscard]] std::size_t heap_pages() const { return pages_.size(); }
  /// Total point capacity reserved, inline page included.
  [[nodiscard]] std::size_t reserved_points() const { return reserved_; }
  /// Blocks currently parked on freelists.
  [[nodiscard]] std::size_t free_blocks() const;

  /// Capacity class for a request of `count` points (what allocate() would
  /// round up to). Exposed for tests.
  [[nodiscard]] static std::uint32_t class_of(std::size_t count);

 private:
  // Classes are powers of two from 2^3 to 2^26 points; index = log2 - 3.
  static constexpr std::size_t kMaxClassLog2 = 26;
  static constexpr std::size_t kClassCount = kMaxClassLog2 - 3 + 1;

  [[nodiscard]] CdfPoint* bump(std::size_t capacity);

  alignas(CdfPoint) std::array<CdfPoint, kInlineCapacity> inline_page_{};
  std::vector<std::unique_ptr<CdfPoint[]>> pages_;
  CdfPoint* cursor_ = inline_page_.data();
  CdfPoint* page_end_ = inline_page_.data() + kInlineCapacity;
  std::size_t reserved_ = kInlineCapacity;
  /// Per-class stacks of recycled blocks. The stacks themselves are
  /// vectors: they allocate only while their high-water mark grows, so a
  /// steady churn workload stops touching the heap after warm-up.
  std::array<std::vector<CdfPoint*>, kClassCount> free_;
};

}  // namespace adam2::stats
