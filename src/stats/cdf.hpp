// Cumulative distribution functions over a discrete attribute domain.
//
// The paper's system model (§III) defines the CDF of attribute A as
// F(x) = |{p : A(p) <= x}| / N over a *discrete* attribute space. We
// represent attribute values as 64-bit integers and model two CDF kinds:
//
//  * EmpiricalCdf        — the true step function built from all values;
//  * PiecewiseLinearCdf  — the approximation a peer builds by linearly
//                          interpolating its (t_i, f_i) points (§IV).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace adam2::stats {

/// Discrete attribute value (the paper's attribute space is discrete).
using Value = std::int64_t;

/// One interpolation point: fraction `f` of values at or below threshold `t`.
struct CdfPoint {
  double t = 0.0;
  double f = 0.0;

  friend bool operator==(const CdfPoint&, const CdfPoint&) = default;
};

/// True cumulative distribution of a finite multiset of attribute values.
/// Right-continuous step function: F(x) = fraction of values <= x.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Builds the CDF from the multiset `values` (need not be sorted).
  /// Precondition: `values` is non-empty.
  explicit EmpiricalCdf(std::vector<Value> values);

  /// Fraction of values at or below x. 0 below the minimum, 1 at/above the
  /// maximum.
  [[nodiscard]] double operator()(double x) const;

  [[nodiscard]] Value min() const { return distinct_.front(); }
  [[nodiscard]] Value max() const { return distinct_.back(); }
  [[nodiscard]] std::size_t size() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }

  /// Smallest value v with F(v) >= q, for q in (0, 1]; q <= 0 gives min().
  [[nodiscard]] Value quantile(double q) const;

  /// Distinct values in increasing order.
  [[nodiscard]] std::span<const Value> distinct_values() const {
    return distinct_;
  }

  /// cumulative_fraction()[j] == F(distinct_values()[j]); the last entry is 1.
  [[nodiscard]] std::span<const double> cumulative_fractions() const {
    return cumulative_;
  }

 private:
  std::vector<Value> distinct_;
  std::vector<double> cumulative_;
  std::size_t total_ = 0;
};

/// Piecewise-linear CDF approximation interpolating a peer's points.
///
/// The curve is anchored by its knots: 0 left of the first knot, linear
/// between consecutive knots, and the last knot's fraction at/after the last
/// knot. Adam2 peers anchor the curve with the gossiped global extremes as
/// (min, 0) and (max, 1) plus the lambda interpolation points in between.
class PiecewiseLinearCdf {
 public:
  PiecewiseLinearCdf() = default;

  /// Builds the interpolation from `knots`. Knots are sorted by threshold;
  /// exact duplicates (same t) are collapsed keeping the larger fraction.
  /// Fractions are clamped to [0, 1].
  explicit PiecewiseLinearCdf(std::vector<CdfPoint> knots);

  [[nodiscard]] double operator()(double x) const;

  [[nodiscard]] bool empty() const { return knots_.empty(); }
  [[nodiscard]] std::span<const CdfPoint> knots() const { return knots_; }

  /// Smallest x with value >= q (by linear inverse); clamps to knot range.
  /// Precondition: the curve is monotone (see is_monotone()).
  [[nodiscard]] double inverse(double q) const;

  /// True iff fractions are non-decreasing in t. Gossip noise can produce
  /// tiny inversions; make_monotone() repairs them.
  [[nodiscard]] bool is_monotone() const;

  /// Returns a monotone copy (isotonic clamp with running maximum).
  [[nodiscard]] PiecewiseLinearCdf make_monotone() const;

  /// Total Euclidean arc length of the curve with the t-axis rescaled by
  /// `t_scale` (the paper's LCut rescales by max - min to equalise axes).
  [[nodiscard]] double arc_length(double t_scale) const;

 private:
  std::vector<CdfPoint> knots_;
};

/// Convenience: anchors `points` with (min,0) and (max,1) and interpolates,
/// exactly as an Adam2 peer converts its H set into a CDF at instance end.
[[nodiscard]] PiecewiseLinearCdf interpolate_with_extremes(
    std::span<const CdfPoint> points, double min_value, double max_value);

}  // namespace adam2::stats
