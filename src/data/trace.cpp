#include "data/trace.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "data/boinc_synth.hpp"

namespace adam2::data {
namespace {

constexpr char kHeader[] = "host_id,cpu_mflops,ram_mb,bandwidth_kbps,disk_gb";

// Paper-style sanity bounds; readings outside are considered faulty.
constexpr stats::Value kMaxCpuMflops = 10'000'000;       // 10 TFLOPS/host
constexpr stats::Value kMaxRamMb = 4'194'304;            // 4 TB
constexpr stats::Value kMaxBandwidthKbps = 100'000'000;  // 100 Gbit/s
constexpr stats::Value kMaxDiskGb = 1'048'576;           // 1 PB

bool is_sane(const HostRecord& r) {
  return r.cpu_mflops > 0 && r.cpu_mflops <= kMaxCpuMflops && r.ram_mb > 0 &&
         r.ram_mb <= kMaxRamMb && r.bandwidth_kbps > 0 &&
         r.bandwidth_kbps <= kMaxBandwidthKbps && r.disk_gb > 0 &&
         r.disk_gb <= kMaxDiskGb;
}

}  // namespace

stats::Value attribute_of(const HostRecord& record, Attribute kind) {
  switch (kind) {
    case Attribute::kCpuMflops: return record.cpu_mflops;
    case Attribute::kRamMb: return record.ram_mb;
    case Attribute::kBandwidthKbps: return record.bandwidth_kbps;
    case Attribute::kDiskGb: return record.disk_gb;
  }
  assert(false && "unknown attribute");
  return 0;
}

std::vector<stats::Value> attribute_column(
    const std::vector<HostRecord>& records, Attribute kind) {
  std::vector<stats::Value> column;
  column.reserve(records.size());
  for (const HostRecord& r : records) column.push_back(attribute_of(r, kind));
  return column;
}

std::vector<HostRecord> filter_faulty(std::vector<HostRecord> records) {
  std::erase_if(records, [](const HostRecord& r) { return !is_sane(r); });
  return records;
}

std::vector<HostRecord> synthesize_trace(std::size_t n, rng::Rng& rng) {
  std::vector<HostRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(HostRecord{
        .host_id = static_cast<std::int64_t>(i),
        .cpu_mflops = sample_attribute(Attribute::kCpuMflops, rng),
        .ram_mb = sample_attribute(Attribute::kRamMb, rng),
        .bandwidth_kbps = sample_attribute(Attribute::kBandwidthKbps, rng),
        .disk_gb = sample_attribute(Attribute::kDiskGb, rng),
    });
  }
  return records;
}

void write_csv(std::ostream& out, const std::vector<HostRecord>& records) {
  out << kHeader << '\n';
  for (const HostRecord& r : records) {
    out << r.host_id << ',' << r.cpu_mflops << ',' << r.ram_mb << ','
        << r.bandwidth_kbps << ',' << r.disk_gb << '\n';
  }
}

std::vector<HostRecord> read_csv(std::istream& in) {
  std::vector<HostRecord> records;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line == kHeader) continue;  // Header optional.
    }
    std::istringstream row(line);
    HostRecord r;
    char comma = ',';
    row >> r.host_id >> comma >> r.cpu_mflops >> comma >> r.ram_mb >> comma >>
        r.bandwidth_kbps >> comma >> r.disk_gb;
    if (!row) {
      throw std::runtime_error("trace CSV parse error at line " +
                               std::to_string(line_no));
    }
    records.push_back(r);
  }
  return records;
}

void save_trace(const std::string& path,
                const std::vector<HostRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace for writing: " + path);
  write_csv(out, records);
  if (!out) throw std::runtime_error("error writing trace: " + path);
}

std::vector<HostRecord> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace for reading: " + path);
  return read_csv(in);
}

}  // namespace adam2::data
