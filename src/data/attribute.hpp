// Node attribute identities for the evaluation workloads.
//
// The paper evaluates on per-host attributes extracted from the 2008 BOINC
// volunteer-computing trace [5]: measured CPU performance, installed memory,
// measured downstream bandwidth, and installed disk space. We generate
// synthetic equivalents (see data/boinc_synth.hpp and DESIGN.md §4).
#pragma once

#include <string_view>

namespace adam2::data {

enum class Attribute {
  kCpuMflops,      ///< Measured CPU performance — smooth CDF (Fig. 4).
  kRamMb,          ///< Installed memory — heavily stepped CDF (Fig. 4).
  kBandwidthKbps,  ///< Measured downstream bandwidth — tiered heavy tail.
  kDiskGb,         ///< Installed disk space — mildly stepped mixture.
};

[[nodiscard]] constexpr std::string_view attribute_name(Attribute a) noexcept {
  switch (a) {
    case Attribute::kCpuMflops: return "cpu_mflops";
    case Attribute::kRamMb: return "ram_mb";
    case Attribute::kBandwidthKbps: return "bandwidth_kbps";
    case Attribute::kDiskGb: return "disk_gb";
  }
  return "unknown";
}

inline constexpr Attribute kAllAttributes[] = {
    Attribute::kCpuMflops, Attribute::kRamMb, Attribute::kBandwidthKbps,
    Attribute::kDiskGb};

}  // namespace adam2::data
