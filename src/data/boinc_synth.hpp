// Synthetic stand-in for the 2008 BOINC host trace [5].
//
// The real trace is not redistributable, so we generate attribute populations
// calibrated to the qualitative CDF shapes the paper's Figure 4 shows and the
// evaluation depends on:
//
//  * CPU (MFLOPS): smooth lognormal mixture spanning ~50-25,000 MFLOPS —
//    the "easy" curve every heuristic approximates well.
//  * RAM (MB): mass concentrated on commodity module sizes (256 MB ... 8 GB)
//    with a small fraction of off-step values (e.g. memory shared with
//    integrated graphics) — the heavily stepped curve where interpolation
//    point placement decides accuracy.
//  * Bandwidth (kbps): access-technology tiers with multiplicative
//    measurement noise — a heavy-tailed, semi-stepped curve.
//  * Disk (GB): commodity drive sizes with wide jitter — mildly stepped.
//
// All values are positive integers (the paper's discrete attribute space).
// DESIGN.md §4 documents why this substitution preserves the evaluation.
#pragma once

#include <vector>

#include "data/attribute.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"

namespace adam2::data {

/// Draws one attribute value from the synthetic population of `kind`.
[[nodiscard]] stats::Value sample_attribute(Attribute kind, rng::Rng& rng);

/// Generates `n` attribute values of `kind`.
[[nodiscard]] std::vector<stats::Value> generate_population(Attribute kind,
                                                            std::size_t n,
                                                            rng::Rng& rng);

}  // namespace adam2::data
