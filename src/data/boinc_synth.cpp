#include "data/boinc_synth.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

namespace adam2::data {
namespace {

using stats::Value;

Value clamp_round(double x, double lo, double hi) {
  return static_cast<Value>(std::llround(std::clamp(x, lo, hi)));
}

/// Smooth mixture of lognormals: host Whetstone/Dhrystone scores in 2008
/// spanned old Pentium-III boxes (~100s MFLOPS) to multi-core Core 2 /
/// Phenom machines (~10,000 MFLOPS).
Value sample_cpu_mflops(rng::Rng& rng) {
  static constexpr std::array<double, 3> weights{0.25, 0.55, 0.20};
  static const std::array<double, 3> mus{std::log(800.0), std::log(2200.0),
                                         std::log(5200.0)};
  static constexpr std::array<double, 3> sigmas{0.55, 0.50, 0.40};
  const std::size_t k = rng.weighted_index(weights);
  return clamp_round(rng.lognormal(mus[k], sigmas[k]), 50.0, 25000.0);
}

/// Stepped distribution over commodity memory configurations, with ~10% of
/// hosts reporting off-step values (shared-graphics deductions, kernel
/// reservations, odd vendor mixes). Calibrated so the largest single-value
/// step carries ~10% of the mass — matching the regime of Figure 4's RAM
/// curve, whose single-instance interpolation error floors around 8%
/// (Fig. 6a); a larger dominant step would force a larger floor.
Value sample_ram_mb(rng::Rng& rng) {
  static constexpr std::array<double, 20> sizes{
      128,  192,  256,  320,  384,  448,  512,  640,  768,  896,
      1024, 1280, 1536, 1792, 2048, 2560, 3072, 4096, 6144, 8192};
  static constexpr std::array<double, 20> weights{
      0.015, 0.010, 0.055, 0.015, 0.030, 0.015, 0.100, 0.030, 0.065, 0.025,
      0.105, 0.040, 0.070, 0.025, 0.100, 0.030, 0.045, 0.060, 0.015, 0.020};
  const std::size_t k = rng.weighted_index(weights);
  double value = sizes[k];
  const double odd = rng.uniform();
  if (odd < 0.07) {
    // Integrated graphics / kernel reserving part of a module.
    static constexpr std::array<double, 4> stolen{16.0, 32.0, 64.0, 128.0};
    value -= stolen[rng.below(stolen.size())];
  } else if (odd < 0.10) {
    // Odd vendor configurations scattered between the steps.
    value *= rng.uniform(0.8, 1.2);
  }
  return clamp_round(value, 64.0, 16384.0);
}

/// Access-technology tiers (dial-up, DSL grades, cable, fibre) with
/// multiplicative measurement noise inside each tier.
Value sample_bandwidth_kbps(rng::Rng& rng) {
  static constexpr std::array<double, 9> tiers{56,    256,   512,   1024, 2048,
                                               4096,  8192,  20480, 102400};
  static constexpr std::array<double, 9> weights{0.04, 0.08, 0.14, 0.20, 0.21,
                                                 0.15, 0.11, 0.06, 0.01};
  const std::size_t k = rng.weighted_index(weights);
  const double noisy = tiers[k] * rng.lognormal(0.0, 0.22);
  return clamp_round(noisy, 8.0, 1048576.0);
}

/// Commodity drive sizes with wide jitter (partitions, multiple volumes).
Value sample_disk_gb(rng::Rng& rng) {
  static constexpr std::array<double, 8> sizes{40,  80,  120, 160,
                                               250, 320, 500, 1000};
  static constexpr std::array<double, 8> weights{0.08, 0.18, 0.12, 0.20,
                                                 0.18, 0.12, 0.09, 0.03};
  const std::size_t k = rng.weighted_index(weights);
  const double noisy = sizes[k] * rng.lognormal(0.0, 0.18);
  return clamp_round(noisy, 4.0, 8192.0);
}

}  // namespace

stats::Value sample_attribute(Attribute kind, rng::Rng& rng) {
  switch (kind) {
    case Attribute::kCpuMflops: return sample_cpu_mflops(rng);
    case Attribute::kRamMb: return sample_ram_mb(rng);
    case Attribute::kBandwidthKbps: return sample_bandwidth_kbps(rng);
    case Attribute::kDiskGb: return sample_disk_gb(rng);
  }
  assert(false && "unknown attribute");
  return 0;
}

std::vector<stats::Value> generate_population(Attribute kind, std::size_t n,
                                              rng::Rng& rng) {
  std::vector<stats::Value> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) values.push_back(sample_attribute(kind, rng));
  return values;
}

}  // namespace adam2::data
