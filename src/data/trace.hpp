// Host trace records and CSV persistence.
//
// Mirrors what the paper extracted from the BOINC 2008 data set: one record
// per host with the four measured attributes. Anyone holding the real trace
// can export it to this CSV schema and run every experiment on it; the bench
// harness otherwise generates synthetic populations (data/boinc_synth.hpp).
// `filter_faulty` reproduces the paper's cleaning step (dropping obviously
// broken readings such as negative memory).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/attribute.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"

namespace adam2::data {

/// One host's attribute readings (CSV row).
struct HostRecord {
  std::int64_t host_id = 0;
  stats::Value cpu_mflops = 0;
  stats::Value ram_mb = 0;
  stats::Value bandwidth_kbps = 0;
  stats::Value disk_gb = 0;

  friend bool operator==(const HostRecord&, const HostRecord&) = default;
};

/// Returns the value of `kind` within `record`.
[[nodiscard]] stats::Value attribute_of(const HostRecord& record,
                                        Attribute kind);

/// Extracts one attribute column from a trace.
[[nodiscard]] std::vector<stats::Value> attribute_column(
    const std::vector<HostRecord>& records, Attribute kind);

/// Drops records with non-positive or absurd readings, as the paper does
/// ("a machine with a bandwidth capacity above 10^31 bps or one with a
/// negative amount of memory").
[[nodiscard]] std::vector<HostRecord> filter_faulty(
    std::vector<HostRecord> records);

/// Generates a synthetic trace of `n` hosts (boinc_synth distributions).
[[nodiscard]] std::vector<HostRecord> synthesize_trace(std::size_t n,
                                                       rng::Rng& rng);

/// CSV round-trip. The header line is
/// `host_id,cpu_mflops,ram_mb,bandwidth_kbps,disk_gb`.
void write_csv(std::ostream& out, const std::vector<HostRecord>& records);
[[nodiscard]] std::vector<HostRecord> read_csv(std::istream& in);

/// File-path conveniences; throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::vector<HostRecord>& records);
[[nodiscard]] std::vector<HostRecord> load_trace(const std::string& path);

}  // namespace adam2::data
