// Identity vocabulary shared by the wire formats, the protocol layer
// (core/), and every agent-hosting substrate (host/, sim/, runtime/).
//
// It lives at the wire layer — the lowest layer that speaks about nodes,
// rounds, and traffic channels — so the DESIGN.md layer DAG
// (rng ← stats ← data/wire ← core ← host ← sim/runtime) holds without
// core/ reaching up into host/ for a typedef. host/types.hpp re-exports
// these names into adam2::host for the substrates and their consumers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace adam2::wire {

/// Stable node identity. Ids are never reused: nodes that churn in get fresh
/// ids, so an id uniquely names one node lifetime.
using NodeId = std::uint64_t;

/// Simulation round (gossip cycle) counter.
using Round = std::uint32_t;

/// Traffic category, so the cost evaluation (§VII-I) can report aggregation
/// traffic separately from overlay maintenance and bootstrap traffic.
enum class Channel : std::uint8_t {
  kAggregation = 0,  ///< Adam2 / baseline gossip exchanges.
  kOverlay = 1,      ///< Peer-sampling shuffles.
  kBootstrap = 2,    ///< Join-time state transfer.
};

inline constexpr std::size_t kChannelCount = 3;

[[nodiscard]] constexpr const char* channel_name(Channel c) noexcept {
  switch (c) {
    case Channel::kAggregation: return "aggregation";
    case Channel::kOverlay: return "overlay";
    case Channel::kBootstrap: return "bootstrap";
  }
  return "unknown";
}

}  // namespace adam2::wire
