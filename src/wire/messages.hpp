// Wire formats for every message the protocols exchange.
//
// One gossip exchange is a request/response pair (§IV: "nodes need to
// exchange a pair of messages during each gossip round"). An Adam2 message
// carries one payload per aggregation instance the sender participates in;
// each payload holds the instance identity and TTL, the averaging weight used
// for system-size estimation, the gossiped global extremes, the lambda
// interpolation points H and the optional verification points V (§VI).
//
// With lambda = 50 points and no verification points a payload is ~850 bytes,
// matching the paper's "approximately 800 bytes" (§VII-I).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <vector>

#include "stats/cdf.hpp"
#include "stats/histogram.hpp"
#include "wire/buffer.hpp"

namespace adam2::wire {

/// Discriminates message kinds on the wire (first byte of every buffer).
enum class MessageType : std::uint8_t {
  kAdam2Request = 1,
  kAdam2Response = 2,
  kBootstrapRequest = 3,
  kBootstrapResponse = 4,
  kEquiDepthRequest = 5,
  kEquiDepthResponse = 6,
  kShuffleRequest = 7,
  kShuffleResponse = 8,
};

/// Reads the type tag without consuming the buffer.
[[nodiscard]] MessageType peek_type(std::span<const std::byte> buffer);

/// Globally unique aggregation-instance identity: the initiator's node id
/// plus the initiator-local sequence number.
struct InstanceId {
  std::uint64_t initiator = 0;
  std::uint32_t seq = 0;

  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
};

struct InstanceIdHash {
  [[nodiscard]] std::size_t operator()(const InstanceId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.initiator * 0x9e3779b97f4a7c15ULL +
                                      id.seq);
  }
};

/// Payload flag bits.
inline constexpr std::uint8_t kFlagEmptySet = 0x01;  ///< Paper-literal join marker.

/// Per-instance state as it travels between two peers.
struct InstancePayload {
  InstanceId id;
  std::uint32_t start_round = 0;  ///< Engine round the instance started in.
  std::uint16_t ttl = 0;          ///< Rounds left before termination.
  std::uint8_t flags = 0;
  double weight = 0.0;      ///< System-size averaging weight (initiator: 1).
  double min_value = 0.0;   ///< Gossiped global minimum (merged with min).
  double max_value = 0.0;   ///< Gossiped global maximum (merged with max).
  std::vector<stats::CdfPoint> points;        ///< H: interpolation points.
  std::vector<stats::CdfPoint> verification;  ///< V: verification points.

  friend bool operator==(const InstancePayload&, const InstancePayload&) =
      default;
};

/// A full Adam2 gossip message (request or response).
struct Adam2Message {
  MessageType type = MessageType::kAdam2Request;
  std::uint64_t sender = 0;
  std::vector<InstancePayload> instances;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static Adam2Message decode(std::span<const std::byte> buffer);
  /// Exact size encode() would produce, without allocating.
  [[nodiscard]] std::size_t encoded_size() const;

  friend bool operator==(const Adam2Message&, const Adam2Message&) = default;
};

/// Zero-copy encoder for Adam2 messages: appends payloads straight from the
/// sender's live state, avoiding the intermediate Adam2Message copies on the
/// per-exchange hot path. The payload count is patched in at finish().
class Adam2MessageBuilder {
 public:
  Adam2MessageBuilder(MessageType type, std::uint64_t sender);

  void add(const InstancePayload& payload);

  /// Appends the paper-literal "empty set" marker for `like`'s instance.
  void add_empty_set(const InstancePayload& like);

  [[nodiscard]] std::size_t count() const { return count_; }

  /// Finalises and returns the buffer (the builder is spent afterwards).
  [[nodiscard]] std::vector<std::byte> finish();

 private:
  Writer writer_;
  std::uint32_t count_ = 0;
};

/// Sent by a node joining the overlay to one of its initial neighbours.
struct BootstrapRequest {
  std::uint64_t sender = 0;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static BootstrapRequest decode(std::span<const std::byte> buffer);

  friend bool operator==(const BootstrapRequest&, const BootstrapRequest&) =
      default;
};

/// Bootstrap reply: the neighbour's current view of the world, giving the
/// joiner an initial CDF approximation and system-size estimate (§IV, §VII-G).
struct BootstrapResponse {
  std::uint64_t sender = 0;
  double n_estimate = 0.0;  ///< 0 when the neighbour has none yet.
  double min_value = 0.0;
  double max_value = 0.0;
  std::vector<stats::CdfPoint> cdf_knots;  ///< Empty when no estimate yet.

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static BootstrapResponse decode(
      std::span<const std::byte> buffer);

  friend bool operator==(const BootstrapResponse&, const BootstrapResponse&) =
      default;
};

/// EquiDepth baseline gossip message: a phase identity plus the equi-depth
/// synopsis (weighted centroids) being disseminated.
struct EquiDepthMessage {
  MessageType type = MessageType::kEquiDepthRequest;
  std::uint64_t sender = 0;
  InstanceId phase;
  std::uint32_t start_round = 0;
  std::uint16_t ttl = 0;
  std::uint8_t flags = 0;
  std::vector<stats::WeightedValue> synopsis;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static EquiDepthMessage decode(
      std::span<const std::byte> buffer);
  [[nodiscard]] std::size_t encoded_size() const;

  friend bool operator==(const EquiDepthMessage&, const EquiDepthMessage&) =
      default;
};

/// Peer-sampling descriptor: overlay address, gossip age, and the node's
/// current attribute value (piggybacked so neighbour-based bootstrap can use
/// cached neighbour values, §V / §VII-B).
struct NodeDescriptor {
  std::uint64_t id = 0;
  std::uint32_t age = 0;
  std::int64_t attribute = 0;

  friend bool operator==(const NodeDescriptor&, const NodeDescriptor&) =
      default;
};

/// Cyclon-style view-shuffle message (overlay maintenance channel).
struct ShuffleMessage {
  MessageType type = MessageType::kShuffleRequest;
  std::uint64_t sender = 0;
  std::vector<NodeDescriptor> descriptors;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static ShuffleMessage decode(std::span<const std::byte> buffer);
  [[nodiscard]] std::size_t encoded_size() const;

  friend bool operator==(const ShuffleMessage&, const ShuffleMessage&) = default;
};

}  // namespace adam2::wire
