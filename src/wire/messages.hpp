// Wire formats for every message the protocols exchange.
//
// One gossip exchange is a request/response pair (§IV: "nodes need to
// exchange a pair of messages during each gossip round"). An Adam2 message
// carries one payload per aggregation instance the sender participates in;
// each payload holds the instance identity and TTL, the averaging weight used
// for system-size estimation, the gossiped global extremes, the lambda
// interpolation points H and the optional verification points V (§VI).
//
// With lambda = 50 points and no verification points a payload is ~850 bytes,
// matching the paper's "approximately 800 bytes" (§VII-I).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "stats/cdf.hpp"
#include "stats/histogram.hpp"
#include "wire/buffer.hpp"

namespace adam2::wire {

/// Discriminates message kinds on the wire (first byte of every buffer).
enum class MessageType : std::uint8_t {
  kAdam2Request = 1,
  kAdam2Response = 2,
  kBootstrapRequest = 3,
  kBootstrapResponse = 4,
  kEquiDepthRequest = 5,
  kEquiDepthResponse = 6,
  kShuffleRequest = 7,
  kShuffleResponse = 8,
};

/// Reads the type tag without consuming the buffer.
[[nodiscard]] MessageType peek_type(std::span<const std::byte> buffer);

/// Globally unique aggregation-instance identity: the initiator's node id
/// plus the initiator-local sequence number.
struct InstanceId {
  std::uint64_t initiator = 0;
  std::uint32_t seq = 0;

  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
};

struct InstanceIdHash {
  [[nodiscard]] std::size_t operator()(const InstanceId& id) const noexcept {
    // splitmix64 finalizer: libstdc++'s std::hash<uint64_t> is the identity,
    // so without the avalanche rounds sequential seqs from one initiator map
    // to consecutive buckets — which turns open-addressing tables into one
    // dense probe cluster (every miss/erase scans the whole run).
    std::uint64_t x = id.initiator * 0x9e3779b97f4a7c15ULL + id.seq;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// Payload flag bits.
inline constexpr std::uint8_t kFlagEmptySet = 0x01;  ///< Paper-literal join marker.

/// Encoded size of an instance payload's fixed part: id (12) + start_round
/// (4) + ttl (2) + flags (1) + weight/min/max (24) + the two sequence
/// length prefixes (8). Each point then adds 16 bytes. Senders use this to
/// reserve exact scratch capacity before encoding.
inline constexpr std::size_t kInstancePayloadFixedSize = 12 + 4 + 2 + 1 + 24 + 8;

/// Per-instance state as it travels between two peers.
struct InstancePayload {
  InstanceId id;
  std::uint32_t start_round = 0;  ///< Engine round the instance started in.
  std::uint16_t ttl = 0;          ///< Rounds left before termination.
  std::uint8_t flags = 0;
  double weight = 0.0;      ///< System-size averaging weight (initiator: 1).
  double min_value = 0.0;   ///< Gossiped global minimum (merged with min).
  double max_value = 0.0;   ///< Gossiped global maximum (merged with max).
  std::vector<stats::CdfPoint> points;        ///< H: interpolation points.
  std::vector<stats::CdfPoint> verification;  ///< V: verification points.

  friend bool operator==(const InstancePayload&, const InstancePayload&) =
      default;
};

/// Non-owning view of one instance's live state for encoding: the fixed
/// header by value, the H and V series as spans over the sender's storage
/// (arena slots in core::InstanceStore, or any contiguous CdfPoint run).
/// This is how agents hand their per-instance state to Adam2MessageBuilder
/// without materialising an InstancePayload copy. Valid only while the
/// referenced storage is alive and unmodified.
struct InstancePayloadRef {
  InstanceId id;
  std::uint32_t start_round = 0;
  std::uint16_t ttl = 0;
  std::uint8_t flags = 0;
  double weight = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  std::span<const stats::CdfPoint> points;
  std::span<const stats::CdfPoint> verification;
};

/// A full Adam2 gossip message (request or response). This is the *owning*
/// decoded form, kept for tests, tools, and cold paths; the exchange hot
/// path decodes with the zero-copy Adam2MessageView below instead.
struct Adam2Message {
  MessageType type = MessageType::kAdam2Request;
  std::uint64_t sender = 0;
  std::vector<InstancePayload> instances;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static Adam2Message decode(std::span<const std::byte> buffer);
  /// Exact size encode() would produce, without allocating.
  [[nodiscard]] std::size_t encoded_size() const;

  friend bool operator==(const Adam2Message&, const Adam2Message&) = default;
};

/// Zero-copy view over an encoded point sequence: `count` little-endian
/// (f64 t, f64 f) records starting at `data`. Iteration decodes on the fly;
/// nothing is materialised.
class PointsView {
 public:
  class iterator {
   public:
    using value_type = stats::CdfPoint;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const std::byte* at) : at_(at) {}

    [[nodiscard]] stats::CdfPoint operator*() const;
    iterator& operator++() {
      at_ += 16;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      at_ += 16;
      return old;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    const std::byte* at_ = nullptr;
  };

  PointsView() = default;
  PointsView(const std::byte* data, std::size_t count)
      : data_(data), count_(count) {}

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Decodes record `i`. Precondition: i < size().
  [[nodiscard]] stats::CdfPoint operator[](std::size_t i) const;

  [[nodiscard]] iterator begin() const { return iterator(data_); }
  [[nodiscard]] iterator end() const { return iterator(data_ + 16 * count_); }

  /// Owning copy (cold paths and tests).
  [[nodiscard]] std::vector<stats::CdfPoint> materialize() const;

 private:
  const std::byte* data_ = nullptr;
  std::size_t count_ = 0;
};

/// Zero-copy decoded instance payload: the fixed header is unpacked into
/// fields, the H and V sequences stay in the underlying buffer as
/// PointsViews. Valid only while the decoded buffer is alive.
struct InstancePayloadView {
  InstanceId id;
  std::uint32_t start_round = 0;
  std::uint16_t ttl = 0;
  std::uint8_t flags = 0;
  double weight = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  PointsView points;
  PointsView verification;

  /// Owning copy, byte-identical to what Adam2Message::decode produces.
  [[nodiscard]] InstancePayload materialize() const;
};

/// Zero-copy decode of an Adam2 gossip message. parse() validates the whole
/// buffer up front with exactly the bounds checks of Adam2Message::decode
/// (same DecodeError on the same corrupt inputs) but allocates nothing;
/// iteration then unpacks payload headers on the fly. The responder hot path
/// (Adam2Agent::handle_request) runs entirely off such views, so a
/// steady-state exchange decodes with zero heap allocations.
class Adam2MessageView {
 public:
  class iterator {
   public:
    using value_type = InstancePayloadView;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const std::byte* at, std::size_t index, std::size_t count);

    [[nodiscard]] const InstancePayloadView& operator*() const { return view_; }
    [[nodiscard]] const InstancePayloadView* operator->() const {
      return &view_;
    }
    iterator& operator++();
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.index_ == b.index_;
    }

   private:
    void load();

    const std::byte* at_ = nullptr;  ///< Start of the current payload.
    std::size_t index_ = 0;
    std::size_t count_ = 0;
    InstancePayloadView view_;
  };

  /// Validates and wraps `buffer`. Throws DecodeError on truncated or
  /// structurally invalid input — identically to Adam2Message::decode.
  [[nodiscard]] static Adam2MessageView parse(std::span<const std::byte> buffer);

  [[nodiscard]] MessageType type() const { return type_; }
  [[nodiscard]] std::uint64_t sender() const { return sender_; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] iterator begin() const {
    return iterator(payloads_, 0, count_);
  }
  [[nodiscard]] iterator end() const {
    return iterator(nullptr, count_, count_);
  }

  /// Owning copy (convenience for tests).
  [[nodiscard]] Adam2Message materialize() const;

 private:
  Adam2MessageView() = default;

  MessageType type_ = MessageType::kAdam2Request;
  std::uint64_t sender_ = 0;
  std::size_t count_ = 0;
  const std::byte* payloads_ = nullptr;  ///< First payload's first byte.
};

/// Zero-copy encoder for Adam2 messages: appends payloads straight from the
/// sender's live state into a *borrowed* Writer, avoiding the intermediate
/// Adam2Message copies on the per-exchange hot path. Agents keep the Writer
/// as a reusable scratch buffer, so once its capacity has grown to the
/// steady-state message size, encoding allocates nothing. The payload count
/// is patched in at finish().
class Adam2MessageBuilder {
 public:
  /// Clears `scratch` (keeping capacity) and writes the message header.
  /// The builder borrows the writer; the encoded bytes live in it.
  Adam2MessageBuilder(Writer& scratch, MessageType type, std::uint64_t sender);

  void add(const InstancePayload& payload);
  /// Same encoding, straight from live state (spans instead of owned
  /// vectors) — the byte-for-byte fast path InstanceStore slots use. On
  /// little-endian hosts the point series are appended with one memcpy.
  void add(const InstancePayloadRef& payload);

  /// Appends the paper-literal "empty set" marker for `like`'s instance.
  void add_empty_set(const InstancePayload& like);
  void add_empty_set(const InstancePayloadRef& like);

  [[nodiscard]] std::size_t count() const { return count_; }

  /// Finalises and returns a view of the encoded message. The view aliases
  /// the scratch writer: valid until the writer is next cleared or written.
  [[nodiscard]] std::span<const std::byte> finish();

 private:
  Writer& writer_;
  std::uint32_t count_ = 0;
};

/// Sent by a node joining the overlay to one of its initial neighbours.
struct BootstrapRequest {
  std::uint64_t sender = 0;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static BootstrapRequest decode(std::span<const std::byte> buffer);

  friend bool operator==(const BootstrapRequest&, const BootstrapRequest&) =
      default;
};

/// Bootstrap reply: the neighbour's current view of the world, giving the
/// joiner an initial CDF approximation and system-size estimate (§IV, §VII-G).
struct BootstrapResponse {
  std::uint64_t sender = 0;
  double n_estimate = 0.0;  ///< 0 when the neighbour has none yet.
  double min_value = 0.0;
  double max_value = 0.0;
  std::vector<stats::CdfPoint> cdf_knots;  ///< Empty when no estimate yet.

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static BootstrapResponse decode(
      std::span<const std::byte> buffer);

  friend bool operator==(const BootstrapResponse&, const BootstrapResponse&) =
      default;
};

/// EquiDepth baseline gossip message: a phase identity plus the equi-depth
/// synopsis (weighted centroids) being disseminated.
struct EquiDepthMessage {
  MessageType type = MessageType::kEquiDepthRequest;
  std::uint64_t sender = 0;
  InstanceId phase;
  std::uint32_t start_round = 0;
  std::uint16_t ttl = 0;
  std::uint8_t flags = 0;
  std::vector<stats::WeightedValue> synopsis;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static EquiDepthMessage decode(
      std::span<const std::byte> buffer);
  [[nodiscard]] std::size_t encoded_size() const;

  friend bool operator==(const EquiDepthMessage&, const EquiDepthMessage&) =
      default;
};

/// Peer-sampling descriptor: overlay address, gossip age, and the node's
/// current attribute value (piggybacked so neighbour-based bootstrap can use
/// cached neighbour values, §V / §VII-B).
struct NodeDescriptor {
  std::uint64_t id = 0;
  std::uint32_t age = 0;
  std::int64_t attribute = 0;

  friend bool operator==(const NodeDescriptor&, const NodeDescriptor&) =
      default;
};

/// Cyclon-style view-shuffle message (overlay maintenance channel).
struct ShuffleMessage {
  MessageType type = MessageType::kShuffleRequest;
  std::uint64_t sender = 0;
  std::vector<NodeDescriptor> descriptors;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static ShuffleMessage decode(std::span<const std::byte> buffer);
  [[nodiscard]] std::size_t encoded_size() const;

  friend bool operator==(const ShuffleMessage&, const ShuffleMessage&) = default;
};

}  // namespace adam2::wire
