// Bounded binary encoding/decoding.
//
// Every message the simulator transports is actually serialised to bytes and
// decoded on receipt. This keeps protocol implementations honest about what
// crosses the wire and makes the cost evaluation (§VII-I) exact: traffic
// accounting simply sums encoded buffer sizes.
//
// Encoding: little-endian fixed-width integers, IEEE-754 doubles, and
// u32-length-prefixed sequences. No varints — message sizes stay predictable
// (the paper's ~800 B at lambda = 50 assumes 16 B per interpolation point).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace adam2::wire {

/// Thrown when a buffer is truncated or structurally invalid.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder.
class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { little_endian(v); }
  void u32(std::uint32_t v) { little_endian(v); }
  void u64(std::uint64_t v) { little_endian(v); }
  void i64(std::int64_t v) { little_endian(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// Appends a pre-encoded byte run verbatim. Used by the zero-copy encode
  /// fast path: on little-endian hosts a trivially-copyable record array
  /// already has the wire layout, so a sequence is one bulk append instead
  /// of a per-field loop.
  void bytes(std::span<const std::byte> data) { raw(data.data(), data.size()); }

  /// Sequence length prefix (u32). Caller then writes `n` elements.
  void length(std::size_t n) {
    if (n > UINT32_MAX) throw DecodeError("sequence too long to encode");
    u32(static_cast<std::uint32_t>(n));
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// View of the encoded bytes; invalidated by any further write or clear().
  [[nodiscard]] std::span<const std::byte> view() const { return buf_; }

  /// Drops the contents but keeps the capacity, so a Writer reused as a
  /// per-agent scratch buffer stops allocating once it has seen its largest
  /// message (the exchange hot path's allocation discipline, DESIGN.md §7).
  void clear() { buf_.clear(); }

  /// Pre-allocates for a message whose encoded size is known.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  /// Overwrites 4 already-written bytes at `offset` (little endian). Used to
  /// patch sequence counts that are only known after the elements were
  /// appended. Precondition: offset + 4 <= size().
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) {
      buf_[offset + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
    }
  }

 private:
  template <typename T>
  void little_endian(T v) {
    if constexpr (std::endian::native == std::endian::little) {
      raw(&v, sizeof(T));  // Host layout already matches the wire format.
    } else {
      std::byte tmp[sizeof(T)];
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        tmp[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
      }
      raw(tmp, sizeof(T));
    }
  }

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::byte> buf_;
};

/// Bounds-checked decoder over a byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint16_t u16() { return little_endian<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return little_endian<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return little_endian<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Reads a sequence length and validates it against the remaining bytes
  /// (each element needs at least `min_element_size` bytes), so a corrupt
  /// length cannot trigger a huge allocation.
  [[nodiscard]] std::size_t length(std::size_t min_element_size) {
    const std::uint32_t n = u32();
    if (min_element_size > 0 && n > remaining() / min_element_size) {
      throw DecodeError("sequence length exceeds remaining buffer");
    }
    return n;
  }

  /// Advances past `n` bytes without decoding them (validation walks).
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  /// A view of the next `n` bytes, advancing past them. Used for nested
  /// length-prefixed blobs (e.g. the per-agent state blobs inside a
  /// host::snapshot node record); the view stays valid as long as the
  /// underlying buffer does.
  [[nodiscard]] std::span<const std::byte> bytes(std::size_t n) {
    need(n);
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  /// Throws unless the entire buffer was consumed.
  void expect_done() const {
    if (!done()) throw DecodeError("trailing bytes after message");
  }

 private:
  template <typename T>
  [[nodiscard]] T little_endian() {
    need(sizeof(T));
    T v = 0;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, data_.data() + pos_, sizeof(T));
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
      }
    }
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t n) const {
    if (remaining() < n) throw DecodeError("buffer truncated");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace adam2::wire
