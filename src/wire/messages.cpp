#include "wire/messages.hpp"

#include <cassert>
#include <type_traits>

namespace adam2::wire {
namespace {

void check_type(MessageType got, MessageType a, MessageType b,
                const char* what) {
  if (got != a && got != b) throw DecodeError(std::string("bad type tag for ") + what);
}

// CdfPoint is two packed IEEE-754 doubles — exactly the 16-byte wire record
// — so on little-endian hosts an in-memory run already has the wire layout
// and a whole sequence is appended with one bulk copy.
static_assert(sizeof(stats::CdfPoint) == 16 &&
              std::is_trivially_copyable_v<stats::CdfPoint>);

void encode_points(Writer& w, std::span<const stats::CdfPoint> points) {
  w.length(points.size());
  if constexpr (std::endian::native == std::endian::little) {
    w.bytes(std::as_bytes(points));
  } else {
    for (const stats::CdfPoint& p : points) {
      w.f64(p.t);
      w.f64(p.f);
    }
  }
}

std::vector<stats::CdfPoint> decode_points(Reader& r) {
  const std::size_t n = r.length(16);
  std::vector<stats::CdfPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stats::CdfPoint p;
    p.t = r.f64();
    p.f = r.f64();
    points.push_back(p);
  }
  return points;
}

// One encode routine serves the owning payload and the span-based ref
// alike (both expose the same field names and point ranges), so the two
// paths are byte-identical by construction.
template <typename PayloadT>
void encode_payload(Writer& w, const PayloadT& p) {
  w.u64(p.id.initiator);
  w.u32(p.id.seq);
  w.u32(p.start_round);
  w.u16(p.ttl);
  w.u8(p.flags);
  w.f64(p.weight);
  w.f64(p.min_value);
  w.f64(p.max_value);
  encode_points(w, p.points);
  encode_points(w, p.verification);
}

// The paper-literal "empty set" marker: `like`'s identity and TTL with the
// flag set, zeroed averaging fields, no point series.
template <typename PayloadT>
void encode_empty_set(Writer& w, const PayloadT& like) {
  w.u64(like.id.initiator);
  w.u32(like.id.seq);
  w.u32(like.start_round);
  w.u16(like.ttl);
  w.u8(kFlagEmptySet);
  w.f64(0.0);
  w.f64(0.0);
  w.f64(0.0);
  w.length(0);
  w.length(0);
}

InstancePayload decode_payload(Reader& r) {
  InstancePayload p;
  p.id.initiator = r.u64();
  p.id.seq = r.u32();
  p.start_round = r.u32();
  p.ttl = r.u16();
  p.flags = r.u8();
  p.weight = r.f64();
  p.min_value = r.f64();
  p.max_value = r.f64();
  p.points = decode_points(r);
  p.verification = decode_points(r);
  return p;
}

constexpr std::size_t payload_fixed_size() { return kInstancePayloadFixedSize; }

// Unaligned little-endian loads for the zero-copy views. memcpy keeps the
// reads well-defined at any offset; the byte-swap branch mirrors Reader.
template <typename T>
T load_le(const std::byte* at) {
  T v = 0;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, at, sizeof(T));
  } else {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(at[i])) << (8 * i);
    }
  }
  return v;
}

double load_f64(const std::byte* at) {
  const std::uint64_t bits = load_le<std::uint64_t>(at);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace

Adam2MessageBuilder::Adam2MessageBuilder(Writer& scratch, MessageType type,
                                         std::uint64_t sender)
    : writer_(scratch) {
  writer_.clear();
  writer_.u8(static_cast<std::uint8_t>(type));
  writer_.u64(sender);
  writer_.u32(0);  // Payload count, patched in finish().
}

void Adam2MessageBuilder::add(const InstancePayload& payload) {
  encode_payload(writer_, payload);
  ++count_;
}

void Adam2MessageBuilder::add(const InstancePayloadRef& payload) {
  encode_payload(writer_, payload);
  ++count_;
}

void Adam2MessageBuilder::add_empty_set(const InstancePayload& like) {
  encode_empty_set(writer_, like);
  ++count_;
}

void Adam2MessageBuilder::add_empty_set(const InstancePayloadRef& like) {
  encode_empty_set(writer_, like);
  ++count_;
}

std::span<const std::byte> Adam2MessageBuilder::finish() {
  writer_.patch_u32(1 + 8, count_);
  return writer_.view();
}

stats::CdfPoint PointsView::iterator::operator*() const {
  return {load_f64(at_), load_f64(at_ + 8)};
}

stats::CdfPoint PointsView::operator[](std::size_t i) const {
  assert(i < count_);
  return {load_f64(data_ + 16 * i), load_f64(data_ + 16 * i + 8)};
}

std::vector<stats::CdfPoint> PointsView::materialize() const {
  std::vector<stats::CdfPoint> points;
  points.reserve(count_);
  for (const stats::CdfPoint p : *this) points.push_back(p);
  return points;
}

InstancePayload InstancePayloadView::materialize() const {
  InstancePayload p;
  p.id = id;
  p.start_round = start_round;
  p.ttl = ttl;
  p.flags = flags;
  p.weight = weight;
  p.min_value = min_value;
  p.max_value = max_value;
  p.points = points.materialize();
  p.verification = verification.materialize();
  return p;
}

Adam2MessageView::iterator::iterator(const std::byte* at, std::size_t index,
                                     std::size_t count)
    : at_(at), index_(index), count_(count) {
  if (index_ < count_) load();
}

void Adam2MessageView::iterator::load() {
  // Structure was validated by parse(); decode without re-checking bounds.
  const std::byte* p = at_;
  view_.id.initiator = load_le<std::uint64_t>(p);
  view_.id.seq = load_le<std::uint32_t>(p + 8);
  view_.start_round = load_le<std::uint32_t>(p + 12);
  view_.ttl = load_le<std::uint16_t>(p + 16);
  view_.flags = static_cast<std::uint8_t>(p[18]);
  view_.weight = load_f64(p + 19);
  view_.min_value = load_f64(p + 27);
  view_.max_value = load_f64(p + 35);
  p += 43;
  const auto n_points = load_le<std::uint32_t>(p);
  view_.points = PointsView(p + 4, n_points);
  p += 4 + 16 * static_cast<std::size_t>(n_points);
  const auto n_verification = load_le<std::uint32_t>(p);
  view_.verification = PointsView(p + 4, n_verification);
}

Adam2MessageView::iterator& Adam2MessageView::iterator::operator++() {
  at_ += 43 + 4 + 16 * view_.points.size() + 4 + 16 * view_.verification.size();
  ++index_;
  if (index_ < count_) load();
  return *this;
}

Adam2MessageView Adam2MessageView::parse(std::span<const std::byte> buffer) {
  // One validation walk with exactly the checks of Adam2Message::decode, so
  // both reject the same corrupt buffers with the same DecodeError — but
  // without materialising anything. Iteration afterwards cannot fail.
  Reader r(buffer);
  Adam2MessageView view;
  view.type_ = static_cast<MessageType>(r.u8());
  check_type(view.type_, MessageType::kAdam2Request,
             MessageType::kAdam2Response, "Adam2Message");
  view.sender_ = r.u64();
  view.count_ = r.length(payload_fixed_size());
  view.payloads_ = buffer.data() + r.position();
  for (std::size_t i = 0; i < view.count_; ++i) {
    r.skip(12 + 4 + 2 + 1 + 24);  // Fixed payload header.
    const std::size_t n_points = r.length(16);
    r.skip(16 * n_points);
    const std::size_t n_verification = r.length(16);
    r.skip(16 * n_verification);
  }
  r.expect_done();
  return view;
}

Adam2Message Adam2MessageView::materialize() const {
  Adam2Message m;
  m.type = type_;
  m.sender = sender_;
  m.instances.reserve(count_);
  for (const InstancePayloadView& p : *this) {
    m.instances.push_back(p.materialize());
  }
  return m;
}

MessageType peek_type(std::span<const std::byte> buffer) {
  if (buffer.empty()) throw DecodeError("empty buffer");
  return static_cast<MessageType>(buffer[0]);
}

std::vector<std::byte> Adam2Message::encode() const {
  Writer w;
  w.reserve(encoded_size());
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(sender);
  w.length(instances.size());
  for (const InstancePayload& p : instances) encode_payload(w, p);
  return w.take();
}

Adam2Message Adam2Message::decode(std::span<const std::byte> buffer) {
  Reader r(buffer);
  Adam2Message m;
  m.type = static_cast<MessageType>(r.u8());
  check_type(m.type, MessageType::kAdam2Request, MessageType::kAdam2Response,
             "Adam2Message");
  m.sender = r.u64();
  const std::size_t n = r.length(payload_fixed_size());
  m.instances.reserve(n);
  for (std::size_t i = 0; i < n; ++i) m.instances.push_back(decode_payload(r));
  r.expect_done();
  return m;
}

std::size_t Adam2Message::encoded_size() const {
  std::size_t size = 1 + 8 + 4;  // type + sender + count
  for (const InstancePayload& p : instances) {
    size += payload_fixed_size() + 16 * (p.points.size() + p.verification.size());
  }
  return size;
}

std::vector<std::byte> BootstrapRequest::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::kBootstrapRequest));
  w.u64(sender);
  return w.take();
}

BootstrapRequest BootstrapRequest::decode(std::span<const std::byte> buffer) {
  Reader r(buffer);
  check_type(static_cast<MessageType>(r.u8()), MessageType::kBootstrapRequest,
             MessageType::kBootstrapRequest, "BootstrapRequest");
  BootstrapRequest m;
  m.sender = r.u64();
  r.expect_done();
  return m;
}

std::vector<std::byte> BootstrapResponse::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::kBootstrapResponse));
  w.u64(sender);
  w.f64(n_estimate);
  w.f64(min_value);
  w.f64(max_value);
  encode_points(w, cdf_knots);
  return w.take();
}

BootstrapResponse BootstrapResponse::decode(std::span<const std::byte> buffer) {
  Reader r(buffer);
  check_type(static_cast<MessageType>(r.u8()), MessageType::kBootstrapResponse,
             MessageType::kBootstrapResponse, "BootstrapResponse");
  BootstrapResponse m;
  m.sender = r.u64();
  m.n_estimate = r.f64();
  m.min_value = r.f64();
  m.max_value = r.f64();
  m.cdf_knots = decode_points(r);
  r.expect_done();
  return m;
}

std::vector<std::byte> EquiDepthMessage::encode() const {
  Writer w;
  w.reserve(encoded_size());
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(sender);
  w.u64(phase.initiator);
  w.u32(phase.seq);
  w.u32(start_round);
  w.u16(ttl);
  w.u8(flags);
  w.length(synopsis.size());
  for (const stats::WeightedValue& s : synopsis) {
    w.f64(s.value);
    w.f64(s.weight);
  }
  return w.take();
}

EquiDepthMessage EquiDepthMessage::decode(std::span<const std::byte> buffer) {
  Reader r(buffer);
  EquiDepthMessage m;
  m.type = static_cast<MessageType>(r.u8());
  check_type(m.type, MessageType::kEquiDepthRequest,
             MessageType::kEquiDepthResponse, "EquiDepthMessage");
  m.sender = r.u64();
  m.phase.initiator = r.u64();
  m.phase.seq = r.u32();
  m.start_round = r.u32();
  m.ttl = r.u16();
  m.flags = r.u8();
  const std::size_t n = r.length(16);
  m.synopsis.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stats::WeightedValue s;
    s.value = r.f64();
    s.weight = r.f64();
    m.synopsis.push_back(s);
  }
  r.expect_done();
  return m;
}

std::size_t EquiDepthMessage::encoded_size() const {
  return 1 + 8 + 12 + 4 + 2 + 1 + 4 + 16 * synopsis.size();
}

std::vector<std::byte> ShuffleMessage::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(sender);
  w.length(descriptors.size());
  for (const NodeDescriptor& d : descriptors) {
    w.u64(d.id);
    w.u32(d.age);
    w.i64(d.attribute);
  }
  return w.take();
}

std::size_t ShuffleMessage::encoded_size() const {
  return 1 + 8 + 4 + 20 * descriptors.size();
}

ShuffleMessage ShuffleMessage::decode(std::span<const std::byte> buffer) {
  Reader r(buffer);
  ShuffleMessage m;
  m.type = static_cast<MessageType>(r.u8());
  check_type(m.type, MessageType::kShuffleRequest,
             MessageType::kShuffleResponse, "ShuffleMessage");
  m.sender = r.u64();
  const std::size_t n = r.length(20);
  m.descriptors.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeDescriptor d;
    d.id = r.u64();
    d.age = r.u32();
    d.attribute = r.i64();
    m.descriptors.push_back(d);
  }
  r.expect_done();
  return m;
}

}  // namespace adam2::wire
