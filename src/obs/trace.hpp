// Fixed-capacity ring buffer of trace events (DESIGN.md §11).
//
// The ring grows lazily up to its capacity, then overwrites the oldest
// retained event; `total()` keeps counting, so `dropped()` reports exactly
// how much history was lost. Sequence numbers are stamped at push time and
// never reused, which makes the stream order part of the determinism
// contract: two runs are trace-equal iff the rings hold the same events at
// the same sequence numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/events.hpp"

namespace adam2::obs {

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1U << 16U;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Appends `event`, stamping its sequence number. Overwrites the oldest
  /// retained event once the ring is full.
  void push(TraceEvent event) {
    event.seq = total_++;
    if (buffer_.size() < capacity_) {
      buffer_.push_back(event);
    } else {
      buffer_[static_cast<std::size_t>(event.seq % capacity_)] = event;
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] bool empty() const { return buffer_.empty(); }

  /// Events ever pushed (including overwritten ones).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Events lost to wraparound.
  [[nodiscard]] std::uint64_t dropped() const { return total_ - size(); }

  /// Chronological access: at(0) is the oldest *retained* event, at(size()-1)
  /// the newest.
  [[nodiscard]] const TraceEvent& at(std::size_t i) const {
    const std::uint64_t seq = total_ - size() + i;
    return buffer_.size() < capacity_
               ? buffer_[i]
               : buffer_[static_cast<std::size_t>(seq % capacity_)];
  }

  void clear() {
    buffer_.clear();
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> buffer_;
  std::uint64_t total_ = 0;
};

/// FNV-1a digest over every retained event's fields, in chronological order.
/// Two rings digest equal iff their retained streams are identical — the
/// cheap form of the serial ≡ parallel trace-determinism check (the full
/// form compares exported JSONL byte-for-byte).
[[nodiscard]] std::uint64_t trace_digest(const TraceRing& ring);

}  // namespace adam2::obs
