// Exporters for the observability artifacts (DESIGN.md §11):
//
//   * trace_jsonl()    — one JSON object per trace event, newline-separated;
//   * metrics_json()   — registry snapshot, registration order;
//   * manifest_json()  — the run manifest;
//   * series_csv()     — the per-round sample series as a CSV table.
//
// Every builder returns the artifact as a string (unit-testable, digestible)
// and has a write_* companion that lands it on disk through
// atomic_write_file(): write to `<path>.tmp`, flush, fsync, rename — so an
// interrupted run never leaves a truncated artifact behind. bench/common
// reuses the same helper for its BENCH_*.json reports.
//
// All number formatting goes through std::to_chars: locale-independent and
// byte-deterministic, which is what lets the trace-determinism test compare
// serial and parallel exports byte-for-byte.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace adam2::obs {

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

[[nodiscard]] std::string trace_jsonl(const TraceRing& trace);
[[nodiscard]] std::string metrics_json(const MetricsRegistry& metrics);
[[nodiscard]] std::string manifest_json(const RunManifest& manifest);
[[nodiscard]] std::string series_csv(const Recorder& recorder);

/// Writes `content` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target. Creates parent directories. Returns false
/// (leaving no partial target) on any failure.
bool atomic_write_file(const std::filesystem::path& path,
                       std::string_view content);

bool write_trace_jsonl(const std::filesystem::path& path,
                       const TraceRing& trace);
bool write_metrics_json(const std::filesystem::path& path,
                        const MetricsRegistry& metrics);
bool write_manifest_json(const std::filesystem::path& path,
                         const RunManifest& manifest);
bool write_series_csv(const std::filesystem::path& path,
                      const Recorder& recorder);

}  // namespace adam2::obs
