#include "obs/metrics.hpp"

#include <stdexcept>

namespace adam2::obs {

MetricsRegistry::Id MetricsRegistry::intern(std::string_view name,
                                            MetricKind kind) {
  if (auto it = index_.find(name); it != index_.end()) {
    const Metric& existing = metrics_[it->second];
    if (existing.kind != kind) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered as " +
                             metric_kind_name(existing.kind));
    }
    return it->second;
  }
  const Id id = static_cast<Id>(metrics_.size());
  Metric metric;
  metric.name = std::string(name);
  metric.kind = kind;
  metrics_.push_back(std::move(metric));
  index_.emplace(metrics_.back().name, id);
  return id;
}

Metric& MetricsRegistry::checked(Id id, MetricKind kind) {
  if (id >= metrics_.size()) throw std::out_of_range("unknown metric id");
  Metric& metric = metrics_[id];
  if (metric.kind != kind) {
    throw std::logic_error("metric '" + metric.name + "' is a " +
                           std::string(metric_kind_name(metric.kind)) +
                           ", not a " + metric_kind_name(kind));
  }
  return metric;
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  return intern(name, MetricKind::kCounter);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
  return intern(name, MetricKind::kGauge);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name,
                                               std::span<const double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) {
      throw std::invalid_argument("histogram bounds must strictly increase");
    }
  }
  const Id id = intern(name, MetricKind::kHistogram);
  Metric& metric = metrics_[id];
  if (metric.buckets.empty()) {
    metric.bounds.assign(bounds.begin(), bounds.end());
    metric.buckets.assign(bounds.size() + 1, 0);
  }
  return id;
}

void MetricsRegistry::add(Id id, std::uint64_t delta) {
  checked(id, MetricKind::kCounter).count += delta;
}

void MetricsRegistry::set_counter(Id id, std::uint64_t value) {
  checked(id, MetricKind::kCounter).count = value;
}

void MetricsRegistry::set(Id id, double value) {
  checked(id, MetricKind::kGauge).value = value;
}

void MetricsRegistry::observe(Id id, double sample) {
  Metric& metric = checked(id, MetricKind::kHistogram);
  ++metric.count;
  metric.value += sample;
  std::size_t bucket = metric.bounds.size();
  for (std::size_t i = 0; i < metric.bounds.size(); ++i) {
    if (sample <= metric.bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++metric.buckets[bucket];
}

const Metric* MetricsRegistry::find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Metric* metric = find(name);
  return metric != nullptr && metric->kind == MetricKind::kCounter
             ? metric->count
             : 0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const Metric* metric = find(name);
  return metric != nullptr && metric->kind == MetricKind::kGauge ? metric->value
                                                                 : 0.0;
}

}  // namespace adam2::obs
