// Metrics registry: named counters, gauges and histograms with stable
// integer ids (DESIGN.md §11).
//
// The registry unifies what used to be three ad-hoc ledgers — the engines'
// host::TrafficStats totals, the UDP runtime's SharedTrafficLedger snapshot,
// and the benches' report_metric() scalars — behind one name → value map
// that every exporter understands. Registration order defines the id and the
// export order, so two runs that register the same metrics in the same order
// produce byte-identical snapshots.
//
// Not thread-safe by design: the lint `confinement` rule keeps concurrency
// primitives out of obs/, so the threaded runtimes funnel all recording
// through their driver thread (see DESIGN.md §11 "who records what").
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace adam2::obs {

enum class MetricKind : std::uint8_t {
  kCounter,    ///< Monotonic uint64 (messages, bytes, fault fates).
  kGauge,      ///< Last-written double (live nodes, current round).
  kHistogram,  ///< Bucketed samples with count and sum (payload sizes).
};

[[nodiscard]] constexpr const char* metric_kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// One registered metric. For counters `count` holds the value; for gauges
/// `value` does; histograms use `count` (samples), `value` (sum), `bounds`
/// (upper bucket edges) and `buckets` (bounds.size() + 1 tallies, the last
/// one catching samples above every bound).
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;
  double value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

class MetricsRegistry {
 public:
  /// Stable handle: the metric's registration index. Hot-path updates go
  /// through ids so the name lookup happens once, at registration.
  using Id = std::uint32_t;

  /// Find-or-create. Re-registering an existing name returns the same id;
  /// registering it under a different kind throws std::logic_error.
  Id counter(std::string_view name);
  Id gauge(std::string_view name);
  Id histogram(std::string_view name, std::span<const double> bounds);

  void add(Id id, std::uint64_t delta = 1);     ///< Counter increment.
  void set_counter(Id id, std::uint64_t value); ///< Absorb an external total.
  void set(Id id, double value);                ///< Gauge write.
  void observe(Id id, double sample);           ///< Histogram sample.

  /// All metrics in registration (= export) order.
  [[nodiscard]] std::span<const Metric> metrics() const { return metrics_; }

  /// Lookup by name; nullptr when absent.
  [[nodiscard]] const Metric* find(std::string_view name) const;

  /// Convenience readers (0 when the name is absent).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

 private:
  Id intern(std::string_view name, MetricKind kind);
  Metric& checked(Id id, MetricKind kind);

  std::vector<Metric> metrics_;
  std::map<std::string, Id, std::less<>> index_;
};

}  // namespace adam2::obs
