#include "obs/export.hpp"

#include <charconv>
#include <cstdio>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define ADAM2_OBS_HAVE_FSYNC 1
#endif

namespace adam2::obs {

namespace {

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, ptr);
}

void append_double(std::string& out, double value) {
  char buffer[40];
  // Shortest round-trip representation: byte-deterministic across runs and
  // locale-independent (unlike any printf-family formatting).
  auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, ptr);
}

void append_bool(std::string& out, bool value) {
  out += value ? "true" : "false";
}

void append_quoted(std::string& out, std::string_view text) {
  out += '"';
  out += json_escape(text);
  out += '"';
}

void append_field(std::string& out, const char* key, std::uint64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  append_u64(out, value);
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20U) {
          out += "\\u00";
          const char* hex = "0123456789abcdef";
          out += hex[(static_cast<unsigned char>(c) >> 4U) & 0xfU];
          out += hex[static_cast<unsigned char>(c) & 0xfU];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

std::string trace_jsonl(const TraceRing& trace) {
  std::string out;
  out.reserve(trace.size() * 96);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace.at(i);
    out += "{\"seq\":";
    append_u64(out, e.seq);
    out += ",\"round\":";
    append_u64(out, e.round);
    out += ",\"kind\":";
    append_quoted(out, event_kind_name(e.kind));
    switch (e.kind) {
      case EventKind::kEngineStart:
        append_field(out, "nodes", e.value_a);
        break;
      case EventKind::kEngineStop:
        break;
      case EventKind::kRoundBegin:
        append_field(out, "live", e.value_a);
        break;
      case EventKind::kRoundEnd:
        append_field(out, "live", e.value_a);
        append_field(out, "nodes_ever", e.value_b);
        break;
      case EventKind::kExchange:
        append_field(out, "initiator", e.a);
        append_field(out, "target", e.b);
        out += ",\"status\":";
        append_quoted(out, exchange_status_name(e.status));
        append_field(out, "req_copies", e.request_copies);
        append_field(out, "resp_copies", e.response_copies);
        out += ",\"req_corrupt\":";
        append_bool(out, e.request_corrupted);
        out += ",\"resp_corrupt\":";
        append_bool(out, e.response_corrupted);
        append_field(out, "req_bytes", e.value_a);
        append_field(out, "resp_bytes", e.value_b);
        break;
      case EventKind::kCrashRestart:
      case EventKind::kNodeJoin:
      case EventKind::kNodeDepart:
        append_field(out, "node", e.a);
        break;
      case EventKind::kInstanceStart:
      case EventKind::kInstanceEnd:
        append_field(out, "node", e.a);
        append_field(out, "instance", e.value_a);
        break;
    }
    out += "}\n";
  }
  return out;
}

std::string metrics_json(const MetricsRegistry& metrics) {
  std::string out = "{\n  \"schema\": \"adam2.metrics.v1\",\n  \"metrics\": [";
  bool first = true;
  for (const Metric& metric : metrics.metrics()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\":";
    append_quoted(out, metric.name);
    out += ",\"kind\":";
    append_quoted(out, metric_kind_name(metric.kind));
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":";
        append_u64(out, metric.count);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":";
        append_double(out, metric.value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":";
        append_u64(out, metric.count);
        out += ",\"sum\":";
        append_double(out, metric.value);
        out += ",\"bounds\":[";
        for (std::size_t i = 0; i < metric.bounds.size(); ++i) {
          if (i > 0) out += ',';
          append_double(out, metric.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (std::size_t i = 0; i < metric.buckets.size(); ++i) {
          if (i > 0) out += ',';
          append_u64(out, metric.buckets[i]);
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string manifest_json(const RunManifest& manifest) {
  std::string out = "{\n  \"schema\": ";
  append_quoted(out, manifest.schema);
  out += ",\n  \"name\": ";
  append_quoted(out, manifest.name);
  out += ",\n  \"engine\": ";
  append_quoted(out, manifest.engine);
  out += ",\n  \"seed\": ";
  append_u64(out, manifest.seed);
  out += ",\n  \"threads\": ";
  append_u64(out, manifest.threads);
  out += ",\n  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : manifest.config) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, key);
    out += ": ";
    append_quoted(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"compiler\": ";
  append_quoted(out, manifest.compiler);
  out += ",\n  \"build\": ";
  append_quoted(out, manifest.build);
  out += "\n}\n";
  return out;
}

std::string series_csv(const Recorder& recorder) {
  std::string out =
      "round,live,nodes_ever,bytes_sent,dropped,duplicated,corrupted,"
      "partitioned,failed_contacts,crash_restarts\n";
  for (const RoundSample& s : recorder.series()) {
    append_u64(out, s.round);
    out += ',';
    append_u64(out, s.live);
    out += ',';
    append_u64(out, s.nodes_ever);
    out += ',';
    append_u64(out, s.bytes_sent);
    out += ',';
    append_u64(out, s.dropped);
    out += ',';
    append_u64(out, s.duplicated);
    out += ',';
    append_u64(out, s.corrupted);
    out += ',';
    append_u64(out, s.partitioned);
    out += ',';
    append_u64(out, s.failed_contacts);
    out += ',';
    append_u64(out, s.crash_restarts);
    out += '\n';
  }
  return out;
}

bool atomic_write_file(const std::filesystem::path& path,
                       std::string_view content) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::FILE* out = std::fopen(tmp.string().c_str(), "wb");
  if (out == nullptr) return false;
  bool ok = content.empty() ||
            std::fwrite(content.data(), 1, content.size(), out) ==
                content.size();
  ok = std::fflush(out) == 0 && ok;
#ifdef ADAM2_OBS_HAVE_FSYNC
  // The rename below is only crash-atomic once the temp file's bytes are
  // durable; without the fsync a crash can rename an empty inode over a
  // previous good artifact.
  ok = ::fsync(fileno(out)) == 0 && ok;
#endif
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

bool write_trace_jsonl(const std::filesystem::path& path,
                       const TraceRing& trace) {
  return atomic_write_file(path, trace_jsonl(trace));
}

bool write_metrics_json(const std::filesystem::path& path,
                        const MetricsRegistry& metrics) {
  return atomic_write_file(path, metrics_json(metrics));
}

bool write_manifest_json(const std::filesystem::path& path,
                         const RunManifest& manifest) {
  return atomic_write_file(path, manifest_json(manifest));
}

bool write_series_csv(const std::filesystem::path& path,
                      const Recorder& recorder) {
  return atomic_write_file(path, series_csv(recorder));
}

}  // namespace adam2::obs
