// obs::Recorder — the single observability facade every substrate and bench
// consumes (DESIGN.md §11).
//
// One recorder owns the three artifacts of a run:
//   * a MetricsRegistry   — named counters/gauges/histograms unifying the
//                           TrafficStats totals, fault-fate counts and
//                           exchange-size distributions;
//   * a TraceRing         — the deterministic structured event trace;
//   * a RunManifest       — seed, engine kind, config echo, build flags;
// plus a per-round sample series feeding the CSV exporter.
//
// Overhead contract: engines hold a `Recorder*` that defaults to nullptr and
// guard every call site with a null check, so a run without a recorder
// executes the exact pre-obs instruction stream (micro_core's zero-alloc
// acceptance pins this). With a recorder attached, the typed record methods
// below cost a ring write plus a handful of id-indexed metric updates.
//
// Threading contract: NOT thread-safe (the lint `confinement` rule keeps
// mutexes out of obs/). The cycle engines record from the driver thread only
// — the parallel engine buffers per-unit ExchangeOutcomes in plan-position
// slots and drains them serially after the exchange barrier, which is also
// what makes its trace byte-identical to the serial engine's. The wall-clock
// runtimes record lifecycle events and absorb traffic snapshots from the
// controlling thread, before start() and after stop()/joins.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "host/traffic.hpp"
#include "host/types.hpp"
#include "obs/events.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace adam2::obs {

struct RecorderConfig {
  std::size_t trace_capacity = TraceRing::kDefaultCapacity;
  /// Record a kExchange trace event per initiated exchange. Metrics are
  /// always updated; turning this off keeps long runs inside the ring.
  bool trace_exchanges = true;
};

/// One per-round sample for the CSV series exporter.
struct RoundSample {
  host::Round round = 0;
  std::uint64_t live = 0;
  std::uint64_t nodes_ever = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t partitioned = 0;
  std::uint64_t failed_contacts = 0;
  std::uint64_t crash_restarts = 0;
};

class Recorder {
 public:
  explicit Recorder(RecorderConfig config = {});

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] TraceRing& trace() { return trace_; }
  [[nodiscard]] const TraceRing& trace() const { return trace_; }
  [[nodiscard]] RunManifest& manifest() { return manifest_; }
  [[nodiscard]] const RunManifest& manifest() const { return manifest_; }
  [[nodiscard]] const std::vector<RoundSample>& series() const {
    return series_;
  }

  // -- Typed record methods (engine hook points) ---------------------------

  /// Substrate attached/started. Also fills the manifest's engine kind when
  /// it is still empty.
  void engine_start(std::string_view kind, host::Round round,
                    std::size_t nodes);
  void engine_stop(host::Round round);

  void round_begin(host::Round round, std::size_t live);

  /// End of a round/cycle: traces the event, refreshes the round gauges,
  /// absorbs `totals` into the traffic counters and appends a series sample.
  void round_end(host::Round round, std::size_t live, std::size_t nodes_ever,
                 const host::TrafficStats& totals);

  /// One initiated exchange (cycle engines: in plan order).
  void exchange(host::Round round, const ExchangeOutcome& outcome);

  void crash_restart(host::Round round, host::NodeId node);
  void node_join(host::Round round, host::NodeId node);
  void node_depart(host::Round round, host::NodeId node);
  void instance_start(host::Round round, host::NodeId initiator,
                      std::uint64_t instance);
  void instance_end(host::Round round, host::NodeId initiator,
                    std::uint64_t instance);

  /// Absorbs a TrafficStats snapshot into the traffic.* counters (set, not
  /// add: the snapshot is already a monotonic total). The wall-clock
  /// runtimes call this after stop(); the cycle engines via round_end.
  void set_traffic(const host::TrafficStats& totals);

 private:
  void push(TraceEvent event) { trace_.push(event); }

  RecorderConfig config_;
  MetricsRegistry metrics_;
  TraceRing trace_;
  RunManifest manifest_;
  std::vector<RoundSample> series_;

  // Cached metric ids (registered in the constructor, so every recorder
  // exports the same schema in the same order).
  struct ChannelIds {
    MetricsRegistry::Id messages_sent, bytes_sent, messages_received,
        bytes_received;
  };
  ChannelIds channel_ids_[host::kChannelCount];
  MetricsRegistry::Id failed_contacts_, dropped_, busy_, duplicated_,
      corrupted_, partitioned_, delayed_, crash_restarts_, rejected_;
  MetricsRegistry::Id round_gauge_, live_gauge_, nodes_ever_gauge_;
  MetricsRegistry::Id exchange_status_[7];
  MetricsRegistry::Id request_bytes_hist_, response_bytes_hist_;
};

}  // namespace adam2::obs
