#include "obs/trace.hpp"

namespace adam2::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& digest, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    digest ^= (value >> shift) & 0xffU;
    digest *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t trace_digest(const TraceRing& ring) {
  std::uint64_t digest = kFnvOffset;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const TraceEvent& e = ring.at(i);
    mix(digest, e.seq);
    mix(digest, e.round);
    mix(digest, static_cast<std::uint64_t>(e.kind));
    mix(digest, static_cast<std::uint64_t>(e.status));
    mix(digest, static_cast<std::uint64_t>(e.request_copies) |
                    (static_cast<std::uint64_t>(e.response_copies) << 8U) |
                    (static_cast<std::uint64_t>(e.request_corrupted) << 16U) |
                    (static_cast<std::uint64_t>(e.response_corrupted) << 17U));
    mix(digest, e.a);
    mix(digest, e.b);
    mix(digest, e.value_a);
    mix(digest, e.value_b);
  }
  return digest;
}

}  // namespace adam2::obs
