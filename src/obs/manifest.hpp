// Run manifest: the reproduction record emitted next to every trace/metrics
// export (DESIGN.md §11). Captures everything needed to re-run the exact
// same experiment — seed, engine kind, thread count, and a full ordered echo
// of the effective configuration — plus the build flavour, because a
// sanitizer build's timings are not comparable to a release build's.
//
// Deliberately no wall-clock timestamp: the manifest is part of the
// deterministic artifact set (two identical runs produce byte-identical
// manifests), and the CI artifact store supplies upload times anyway.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adam2::obs {

/// Compiler identification string baked in at build time.
[[nodiscard]] inline std::string build_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// "release" / "debug", with sanitizer suffixes when detectable.
[[nodiscard]] inline std::string build_kind() {
#ifdef NDEBUG
  std::string kind = "release";
#else
  std::string kind = "debug";
#endif
#if defined(__SANITIZE_ADDRESS__)
  kind += "+asan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  kind += "+asan";
#endif
#if __has_feature(thread_sanitizer)
  kind += "+tsan";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  kind += "+tsan";
#endif
  return kind;
}

struct RunManifest {
  std::string schema = "adam2.manifest.v1";
  std::string name;    ///< Run / bench name (file stem of the artifacts).
  std::string engine;  ///< serial | parallel | async | cluster | udp.
  std::uint64_t seed = 0;
  std::size_t threads = 1;
  /// Ordered key → value echo of the effective configuration.
  std::vector<std::pair<std::string, std::string>> config;
  std::string compiler = build_compiler();
  std::string build = build_kind();

  /// Upsert preserving first-insertion order (deterministic export).
  void set(std::string_view key, std::string_view value) {
    for (auto& [k, v] : config) {
      if (k == key) {
        v = std::string(value);
        return;
      }
    }
    config.emplace_back(std::string(key), std::string(value));
  }
  void set(std::string_view key, std::uint64_t value) {
    set(key, std::string_view(std::to_string(value)));
  }
  void set(std::string_view key, double value) {
    set(key, std::string_view(std::to_string(value)));
  }

  [[nodiscard]] const std::string* get(std::string_view key) const {
    for (const auto& [k, v] : config) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

}  // namespace adam2::obs
