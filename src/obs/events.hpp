// Observability event vocabulary (DESIGN.md §11).
//
// The trace is a stream of fixed-size, trivially-copyable events stamped by
// *logical* time only — the round (or maintenance-cycle) counter plus a
// monotonic sequence number assigned by the ring. No wall clock appears
// anywhere, which is what lets the serial Engine and the sharded
// ParallelEngine emit byte-identical traces for the same seed at any thread
// count: both record the same events in plan order, and plan order is the
// replayed order.
//
// This header sits at the bottom of obs/ so the exchange fabric
// (host/exchange.hpp, same layer rank) can fill an ExchangeOutcome without
// pulling in the recorder, the registry, or any exporter.
#pragma once

#include <cstdint>

#include "host/types.hpp"

namespace adam2::obs {

using host::NodeId;
using host::Round;

/// Typed trace events. The taxonomy covers every state transition the five
/// substrates share; per-engine coverage is documented in DESIGN.md §11.
enum class EventKind : std::uint8_t {
  kEngineStart = 0,  ///< Substrate attached / started (a = node count).
  kEngineStop,       ///< Substrate stopped (wall-clock runtimes).
  kRoundBegin,       ///< Cycle engines: top of run_round (a = live count).
  kRoundEnd,         ///< All engines: round/cycle finished.
  kExchange,         ///< One initiated gossip exchange and its fate.
  kCrashRestart,     ///< Fault-plan crash-restart with state loss.
  kNodeJoin,         ///< Churn-in (bootstrap join).
  kNodeDepart,       ///< Churn-out / targeted kill.
  kInstanceStart,    ///< Aggregation instance started on a node.
  kInstanceEnd,      ///< Scripted instance finished (run_instance returned).
};

[[nodiscard]] constexpr const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kEngineStart: return "engine_start";
    case EventKind::kEngineStop: return "engine_stop";
    case EventKind::kRoundBegin: return "round_begin";
    case EventKind::kRoundEnd: return "round_end";
    case EventKind::kExchange: return "exchange";
    case EventKind::kCrashRestart: return "crash_restart";
    case EventKind::kNodeJoin: return "node_join";
    case EventKind::kNodeDepart: return "node_depart";
    case EventKind::kInstanceStart: return "instance_start";
    case EventKind::kInstanceEnd: return "instance_end";
  }
  return "unknown";
}

/// How far one initiated exchange got before it ended. Mirrors the stages of
/// Conduit::run_cycle_exchange in order; every exchange ends in exactly one.
enum class ExchangeStatus : std::uint8_t {
  kSilent = 0,          ///< The agent had nothing to send.
  kFailedContact,       ///< Target missing, dead, or self.
  kRequestLost,         ///< Request leg lost/dropped by the pipeline.
  kRequestPartitioned,  ///< Request blocked by an overlay partition.
  kNoResponse,          ///< Responder had nothing to answer.
  kResponseLost,        ///< Response leg lost/dropped by the pipeline.
  kCompleted,           ///< Response merged by the initiator.
};

[[nodiscard]] constexpr const char* exchange_status_name(
    ExchangeStatus status) noexcept {
  switch (status) {
    case ExchangeStatus::kSilent: return "silent";
    case ExchangeStatus::kFailedContact: return "failed_contact";
    case ExchangeStatus::kRequestLost: return "request_lost";
    case ExchangeStatus::kRequestPartitioned: return "request_partitioned";
    case ExchangeStatus::kNoResponse: return "no_response";
    case ExchangeStatus::kResponseLost: return "response_lost";
    case ExchangeStatus::kCompleted: return "completed";
  }
  return "unknown";
}

/// Everything the exchange fabric can report about one initiated exchange.
/// Filled by Conduit::run_cycle_exchange when the caller passes a slot; the
/// fabric's hot path is untouched when no slot is passed (null pointer).
struct ExchangeOutcome {
  NodeId initiator = 0;
  NodeId target = 0;  ///< Valid only when has_target.
  bool has_target = false;
  ExchangeStatus status = ExchangeStatus::kSilent;
  std::uint8_t request_copies = 0;   ///< Copies delivered (2 = duplicated).
  std::uint8_t response_copies = 0;
  bool request_corrupted = false;
  bool response_corrupted = false;
  std::uint32_t request_bytes = 0;   ///< Encoded payload sizes (pre-fault).
  std::uint32_t response_bytes = 0;
};

/// One fixed-size trace record. Field meaning depends on `kind`:
///   kEngineStart    a = —, value_a = node count
///   kEngineStop     —
///   kRoundBegin     value_a = live count
///   kRoundEnd       value_a = live count, value_b = nodes ever created
///   kExchange       a = initiator, b = target, status/copies/corrupt set,
///                   value_a = request bytes, value_b = response bytes
///   kCrashRestart   a = node
///   kNodeJoin       a = node
///   kNodeDepart     a = node
///   kInstanceStart  a = initiator, value_a = instance id
///   kInstanceEnd    a = initiator, value_a = instance id
struct TraceEvent {
  std::uint64_t seq = 0;  ///< Stamped by the ring: position in the stream.
  Round round = 0;
  EventKind kind = EventKind::kRoundBegin;
  ExchangeStatus status = ExchangeStatus::kSilent;
  std::uint8_t request_copies = 0;
  std::uint8_t response_copies = 0;
  bool request_corrupted = false;
  bool response_corrupted = false;
  NodeId a = 0;
  NodeId b = 0;
  std::uint64_t value_a = 0;
  std::uint64_t value_b = 0;
};

}  // namespace adam2::obs
