#include "obs/recorder.hpp"

#include <array>
#include <string>

namespace adam2::obs {

namespace {

// Payload-size buckets covering the paper's ~800 B messages with headroom.
constexpr std::array<double, 9> kByteBounds = {64,   128,  256,  512,  1024,
                                               2048, 4096, 8192, 16384};

}  // namespace

Recorder::Recorder(RecorderConfig config)
    : config_(config), trace_(config.trace_capacity) {
  using host::Channel;
  for (std::size_t c = 0; c < host::kChannelCount; ++c) {
    const std::string prefix =
        std::string("traffic.") +
        host::channel_name(static_cast<Channel>(c)) + ".";
    channel_ids_[c].messages_sent = metrics_.counter(prefix + "messages_sent");
    channel_ids_[c].bytes_sent = metrics_.counter(prefix + "bytes_sent");
    channel_ids_[c].messages_received =
        metrics_.counter(prefix + "messages_received");
    channel_ids_[c].bytes_received =
        metrics_.counter(prefix + "bytes_received");
  }
  failed_contacts_ = metrics_.counter("traffic.failed_contacts");
  dropped_ = metrics_.counter("traffic.dropped_messages");
  busy_ = metrics_.counter("traffic.busy_rejections");
  duplicated_ = metrics_.counter("traffic.duplicated_messages");
  corrupted_ = metrics_.counter("traffic.corrupted_messages");
  partitioned_ = metrics_.counter("traffic.partitioned_messages");
  delayed_ = metrics_.counter("traffic.delayed_messages");
  crash_restarts_ = metrics_.counter("traffic.crash_restarts");
  rejected_ = metrics_.counter("traffic.rejected_messages");

  round_gauge_ = metrics_.gauge("round.current");
  live_gauge_ = metrics_.gauge("round.live_nodes");
  nodes_ever_gauge_ = metrics_.gauge("round.nodes_ever");

  for (std::uint8_t s = 0; s < 7; ++s) {
    exchange_status_[s] = metrics_.counter(
        std::string("exchange.") +
        exchange_status_name(static_cast<ExchangeStatus>(s)));
  }
  request_bytes_hist_ = metrics_.histogram("exchange.request_bytes",
                                           kByteBounds);
  response_bytes_hist_ = metrics_.histogram("exchange.response_bytes",
                                            kByteBounds);
}

void Recorder::engine_start(std::string_view kind, host::Round round,
                            std::size_t nodes) {
  if (manifest_.engine.empty()) manifest_.engine = std::string(kind);
  TraceEvent event;
  event.kind = EventKind::kEngineStart;
  event.round = round;
  event.value_a = nodes;
  push(event);
}

void Recorder::engine_stop(host::Round round) {
  TraceEvent event;
  event.kind = EventKind::kEngineStop;
  event.round = round;
  push(event);
}

void Recorder::round_begin(host::Round round, std::size_t live) {
  TraceEvent event;
  event.kind = EventKind::kRoundBegin;
  event.round = round;
  event.value_a = live;
  push(event);
}

void Recorder::round_end(host::Round round, std::size_t live,
                         std::size_t nodes_ever,
                         const host::TrafficStats& totals) {
  TraceEvent event;
  event.kind = EventKind::kRoundEnd;
  event.round = round;
  event.value_a = live;
  event.value_b = nodes_ever;
  push(event);

  metrics_.set(round_gauge_, static_cast<double>(round));
  metrics_.set(live_gauge_, static_cast<double>(live));
  metrics_.set(nodes_ever_gauge_, static_cast<double>(nodes_ever));
  set_traffic(totals);

  RoundSample sample;
  sample.round = round;
  sample.live = live;
  sample.nodes_ever = nodes_ever;
  sample.bytes_sent = totals.total_bytes_sent();
  sample.dropped = totals.dropped_messages;
  sample.duplicated = totals.duplicated_messages;
  sample.corrupted = totals.corrupted_messages;
  sample.partitioned = totals.partitioned_messages;
  sample.failed_contacts = totals.failed_contacts;
  sample.crash_restarts = totals.crash_restarts;
  series_.push_back(sample);
}

void Recorder::exchange(host::Round round, const ExchangeOutcome& outcome) {
  metrics_.add(exchange_status_[static_cast<std::uint8_t>(outcome.status)]);
  if (outcome.request_bytes > 0) {
    metrics_.observe(request_bytes_hist_,
                     static_cast<double>(outcome.request_bytes));
  }
  if (outcome.response_bytes > 0) {
    metrics_.observe(response_bytes_hist_,
                     static_cast<double>(outcome.response_bytes));
  }
  if (!config_.trace_exchanges) return;

  TraceEvent event;
  event.kind = EventKind::kExchange;
  event.round = round;
  event.status = outcome.status;
  event.request_copies = outcome.request_copies;
  event.response_copies = outcome.response_copies;
  event.request_corrupted = outcome.request_corrupted;
  event.response_corrupted = outcome.response_corrupted;
  event.a = outcome.initiator;
  event.b = outcome.has_target ? outcome.target : outcome.initiator;
  event.value_a = outcome.request_bytes;
  event.value_b = outcome.response_bytes;
  push(event);
}

void Recorder::crash_restart(host::Round round, host::NodeId node) {
  TraceEvent event;
  event.kind = EventKind::kCrashRestart;
  event.round = round;
  event.a = node;
  push(event);
}

void Recorder::node_join(host::Round round, host::NodeId node) {
  TraceEvent event;
  event.kind = EventKind::kNodeJoin;
  event.round = round;
  event.a = node;
  push(event);
}

void Recorder::node_depart(host::Round round, host::NodeId node) {
  TraceEvent event;
  event.kind = EventKind::kNodeDepart;
  event.round = round;
  event.a = node;
  push(event);
}

void Recorder::instance_start(host::Round round, host::NodeId initiator,
                              std::uint64_t instance) {
  TraceEvent event;
  event.kind = EventKind::kInstanceStart;
  event.round = round;
  event.a = initiator;
  event.value_a = instance;
  push(event);
}

void Recorder::instance_end(host::Round round, host::NodeId initiator,
                            std::uint64_t instance) {
  TraceEvent event;
  event.kind = EventKind::kInstanceEnd;
  event.round = round;
  event.a = initiator;
  event.value_a = instance;
  push(event);
}

void Recorder::set_traffic(const host::TrafficStats& totals) {
  for (std::size_t c = 0; c < host::kChannelCount; ++c) {
    const host::ChannelTraffic& channel = totals.channels[c];
    metrics_.set_counter(channel_ids_[c].messages_sent, channel.messages_sent);
    metrics_.set_counter(channel_ids_[c].bytes_sent, channel.bytes_sent);
    metrics_.set_counter(channel_ids_[c].messages_received,
                         channel.messages_received);
    metrics_.set_counter(channel_ids_[c].bytes_received,
                         channel.bytes_received);
  }
  metrics_.set_counter(failed_contacts_, totals.failed_contacts);
  metrics_.set_counter(dropped_, totals.dropped_messages);
  metrics_.set_counter(busy_, totals.busy_rejections);
  metrics_.set_counter(duplicated_, totals.duplicated_messages);
  metrics_.set_counter(corrupted_, totals.corrupted_messages);
  metrics_.set_counter(partitioned_, totals.partitioned_messages);
  metrics_.set_counter(delayed_, totals.delayed_messages);
  metrics_.set_counter(crash_restarts_, totals.crash_restarts);
  metrics_.set_counter(rejected_, totals.rejected_messages);
}

}  // namespace adam2::obs
