// Sharded substrate TU — see the exception note in parallel_engine.hpp.
// adam2-lint: allow-file(confinement)
#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <mutex>

namespace adam2::sim {

namespace {

/// Per-thread traffic accumulator binding. Workers point this at their slot
/// for the duration of a parallel phase; the main thread (and every serial
/// phase) leaves it null and accumulates into the engine's global totals.
thread_local host::TrafficStats* tls_totals = nullptr;

}  // namespace

ParallelEngine::ParallelEngine(EngineConfig config, std::size_t threads,
                               std::vector<stats::Value> initial_attributes,
                               std::unique_ptr<Overlay> overlay,
                               AgentFactory agent_factory,
                               AttributeSource attribute_source)
    : CycleEngine(config, std::move(initial_attributes), std::move(overlay),
                  std::move(agent_factory), std::move(attribute_source)),
      threads_(std::max<std::size_t>(threads, 1)) {
  if (threads_ > 1) {
    pool_ = std::make_unique<host::WorkerPool>(threads_);
    worker_totals_.resize(threads_);
  }
}

TrafficStats& ParallelEngine::totals() {
  return tls_totals != nullptr ? *tls_totals : total_traffic_;
}

void ParallelEngine::parallel_for(std::size_t count,
                                  const std::function<void(std::size_t)>& fn) {
  if (!pool_ || count == 0) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t chunk =
      std::max<std::size_t>(1, count / (pool_->size() * 8));
  pool_->run([&](std::size_t worker) {
    tls_totals = &worker_totals_[worker];
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= count) break;
      const std::size_t end = std::min(count, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
    tls_totals = nullptr;
  });
  merge_worker_totals();
}

void ParallelEngine::merge_worker_totals() {
  for (TrafficStats& slot : worker_totals_) {
    total_traffic_ += slot;
    slot = TrafficStats{};
  }
}

void ParallelEngine::run_round() {
  record_round_begin();

  // 1. Round start for every live agent — parallel: an agent only mutates
  //    its own node's state; host and overlay reads are const this phase.
  {
    const auto live = table_.live_ids();
    parallel_for(live.size(), [&](std::size_t i) {
      Node& n = table_.at(live[i]);
      AgentContext ctx = make_context(*this, *overlay_, n, round_);
      n.agent->on_round_start(ctx);
    });
  }

  // 2. Overlay maintenance — serial (shuffles mutate shared views).
  overlay_->maintain(*this, rng_);

  // 3. Plan: initiation order from the global stream (serial, identical to
  //    the serial engine's shuffle), then every initiator's target from its
  //    own control stream (parallel, order-free).
  const auto live = table_.live_ids();
  order_.assign(live.begin(), live.end());
  rng_.shuffle(order_);
  plan_targets();

  // 4. Exchange units in dependency order. With a recorder attached, every
  //    unit writes its outcome into its own plan-position slot; draining the
  //    slots serially after the phase barrier reproduces the serial engine's
  //    record order exactly.
  if (recorder_ != nullptr) outcomes_.assign(order_.size(), {});
  run_units();
  if (recorder_ != nullptr) {
    for (const obs::ExchangeOutcome& outcome : outcomes_) {
      recorder_->exchange(round_, outcome);
    }
  }

  // 5. Fault-plan crash-restarts (serial; same table state and per-node
  //    fault streams as the serial engine at this point, so the same nodes
  //    crash).
  apply_crashes();

  // 6. Churn (serial, global stream).
  apply_churn();

  // 7. Observers, metrics sinks.
  finish_round();
}

void ParallelEngine::plan_targets() {
  targets_.resize(order_.size());
  parallel_for(order_.size(), [&](std::size_t p) {
    Node& initiator = table_.at(order_[p]);
    targets_[p] = overlay_->pick_gossip_target(order_[p], initiator.pick_rng);
  });
}

void ParallelEngine::exec_unit(std::uint32_t position) {
  exchange_with(table_.at(order_[position]), targets_[position],
                recorder_ != nullptr ? &outcomes_[position] : nullptr);
}

void ParallelEngine::run_units() {
  if (!pool_) {
    // Plan order trivially respects the dependency order.
    for (std::uint32_t p = 0; p < order_.size(); ++p) exec_unit(p);
    return;
  }
  run_units_parallel();
}

void ParallelEngine::run_units_parallel() {
  const std::size_t unit_count = order_.size();
  if (unit_count == 0) return;
  const std::size_t slot_count = table_.size();

  // Participants per unit: the initiator always; the target when the
  // exchange can actually reach it. (exchange_with re-checks validity, so a
  // conservative mismatch here could only over-serialise, never diverge —
  // but liveness is frozen during this phase, so the check is exact.)
  unit_slots_.assign(2 * unit_count, kNoSlot);
  std::vector<std::uint32_t> counts(slot_count, 0);
  for (std::size_t p = 0; p < unit_count; ++p) {
    const std::uint32_t initiator_slot =
        static_cast<std::uint32_t>(table_.slot_of(order_[p]));
    unit_slots_[2 * p] = initiator_slot;
    ++counts[initiator_slot];
    const auto& target = targets_[p];
    if (target && *target != order_[p] && table_.is_live(*target)) {
      const std::uint32_t target_slot =
          static_cast<std::uint32_t>(table_.slot_of(*target));
      unit_slots_[2 * p + 1] = target_slot;
      ++counts[target_slot];
    }
  }

  // Plan-ordered unit list per participant slot (CSR layout). Filling in
  // ascending p keeps each list sorted by plan position.
  slot_offsets_.assign(slot_count + 1, 0);
  for (std::size_t s = 0; s < slot_count; ++s) {
    slot_offsets_[s + 1] = slot_offsets_[s] + counts[s];
  }
  slot_units_.resize(slot_offsets_[slot_count]);
  slot_cursor_.assign(slot_count, 0);
  {
    std::vector<std::uint32_t> fill(slot_offsets_.begin(),
                                    slot_offsets_.end() - 1);
    for (std::size_t p = 0; p < unit_count; ++p) {
      for (int k = 0; k < 2; ++k) {
        const std::uint32_t s = unit_slots_[2 * p + k];
        if (s != kNoSlot) slot_units_[fill[s]++] = static_cast<std::uint32_t>(p);
      }
    }
  }

  // A unit is ready when it heads the list of every participant. Start each
  // unit's gate at its participant count, take one off per list it heads.
  if (pending_capacity_ < unit_count) {
    pending_ = std::make_unique<std::atomic<std::uint32_t>[]>(unit_count);
    pending_capacity_ = unit_count;
  }
  for (std::size_t p = 0; p < unit_count; ++p) {
    const std::uint32_t participants =
        1 + (unit_slots_[2 * p + 1] != kNoSlot ? 1 : 0);
    pending_[p].store(participants, std::memory_order_relaxed);
  }
  std::vector<std::uint32_t> ready;
  for (std::size_t s = 0; s < slot_count; ++s) {
    if (counts[s] == 0) continue;
    const std::uint32_t head = slot_units_[slot_offsets_[s]];
    if (pending_[head].fetch_sub(1, std::memory_order_relaxed) == 1) {
      ready.push_back(head);
    }
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t completed = 0;

  pool_->run([&](std::size_t worker) {
    tls_totals = &worker_totals_[worker];
    for (;;) {
      std::uint32_t p = 0;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock,
                [&] { return completed == unit_count || !ready.empty(); });
        if (completed == unit_count) break;
        p = ready.back();
        ready.pop_back();
      }
      exec_unit(p);

      // Advance both participants' lists; a successor unit that is now at
      // the head of all its lists becomes ready. The acq_rel RMW chain on
      // its gate (plus the queue mutex) publishes every predecessor's
      // writes to whichever worker picks it up.
      std::array<std::uint32_t, 2> fresh{};
      int fresh_count = 0;
      for (int k = 0; k < 2; ++k) {
        const std::uint32_t s = unit_slots_[2 * p + k];
        if (s == kNoSlot) continue;
        const std::uint32_t pos = ++slot_cursor_[s];
        if (slot_offsets_[s] + pos < slot_offsets_[s + 1]) {
          const std::uint32_t next_unit = slot_units_[slot_offsets_[s] + pos];
          if (pending_[next_unit].fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            fresh[static_cast<std::size_t>(fresh_count++)] = next_unit;
          }
        }
      }
      {
        std::lock_guard lock(mutex);
        ++completed;
        for (int i = 0; i < fresh_count; ++i) {
          ready.push_back(fresh[static_cast<std::size_t>(i)]);
        }
        cv.notify_all();
      }
    }
    tls_totals = nullptr;
  });
  merge_worker_totals();
}

}  // namespace adam2::sim
