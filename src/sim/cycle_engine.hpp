// Shared base of the cycle-driven engines (serial Engine, sharded
// ParallelEngine): node registry, churn, bootstrap, traffic accounting,
// observers and metrics sinks — everything except the round scheduling
// itself, which each engine defines in run_round().
//
// Random-stream discipline (the key to parallel determinism):
//
//  * the global engine stream (`rng_`) is consumed only in serial phases —
//    overlay maintenance, exchange-order shuffles, churn victim/attribute
//    draws, node-stream derivation;
//  * each node's agent stream (`Node::rng`) is consumed only inside that
//    node's agent callbacks;
//  * each node's control stream (`Node::pick_rng`) is consumed only for
//    engine decisions about that node — exactly one gossip-target pick per
//    live node per round (drawn before make_request, whether or not the
//    agent stays silent) followed by that initiator's message-loss draws,
//    plus bootstrap contact picks at join time.
//
// Because no stream is shared between nodes inside a round's exchange phase,
// an engine may evaluate exchanges in any schedule that preserves the
// per-node plan order and obtain bit-identical results (see ParallelEngine).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "host/exchange.hpp"
#include "host/fault.hpp"
#include "host/metrics.hpp"
#include "host/node.hpp"
#include "host/registry.hpp"
#include "obs/recorder.hpp"
#include "rng/rng.hpp"
#include "host/agent.hpp"
#include "sim/overlay.hpp"
#include "host/traffic.hpp"
#include "host/types.hpp"

namespace adam2::sim {

// The sim vocabulary: these are the host substrate's types, re-exported so
// the simulator's established spellings stay valid for engine code and
// experiment drivers written against `namespace adam2::sim`.
using host::AgentContext;
using host::AgentFactory;
using host::AttributeSource;
using host::Channel;
using host::channel_name;
using host::ChannelTraffic;
using host::kChannelCount;
using host::make_context;
using host::Node;
using host::NodeAgent;
using host::NodeId;
using host::Round;
using host::TrafficStats;

struct EngineConfig {
  /// Fraction of live nodes replaced per round (0.001 = the paper's typical
  /// churn of 0.1% per round, §VII-G).
  double churn_rate = 0.0;
  /// Probability that any single message (request or response) is lost.
  double message_loss = 0.0;
  /// Master seed; every node and subsystem derives its stream from it.
  std::uint64_t seed = 0xada2;
  /// Deterministic fault schedule (drop/duplicate/corrupt/crash/partition).
  /// The default all-zero plan draws nothing and changes nothing — runs are
  /// bit-identical to an engine without fault support.
  host::FaultPlan faults;
};

class CycleEngine : public HostView {
 public:
  ~CycleEngine() override = default;

  CycleEngine(const CycleEngine&) = delete;
  CycleEngine& operator=(const CycleEngine&) = delete;

  /// Advances the simulation by one gossip cycle.
  virtual void run_round() = 0;
  void run_rounds(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) run_round();
  }

  // -- HostView ----------------------------------------------------------
  [[nodiscard]] bool is_live(NodeId id) const override {
    return table_.is_live(id);
  }
  [[nodiscard]] stats::Value attribute_of(NodeId id) const override {
    return table_.attribute_of(id);
  }
  [[nodiscard]] Round round() const override { return round_; }
  [[nodiscard]] std::span<const NodeId> live_ids() const override {
    return table_.live_ids();
  }
  void record_traffic(NodeId sender, NodeId receiver, Channel channel,
                      std::size_t bytes) override;

  // -- Introspection / experiment control --------------------------------
  [[nodiscard]] std::size_t live_count() const { return table_.live_count(); }
  [[nodiscard]] NodeAgent& agent(NodeId id) { return *table_.at(id).agent; }
  [[nodiscard]] const Node& node(NodeId id) const { return table_.at(id); }
  [[nodiscard]] Node& mutable_node(NodeId id) { return table_.at(id); }
  [[nodiscard]] Overlay& overlay() { return *overlay_; }
  [[nodiscard]] rng::Rng& rng() { return rng_; }
  [[nodiscard]] const host::FaultInjector& fault_injector() const {
    return conduit_.faults();
  }
  [[nodiscard]] NodeId random_live_node() { return table_.random_live(rng_); }

  /// Attribute values of all live nodes (the ground truth population).
  [[nodiscard]] std::vector<stats::Value> live_attribute_values() const {
    return table_.live_attribute_values();
  }

  /// Updates a node's attribute (dynamic-attribute scenarios, §VII-F).
  void set_attribute(NodeId id, stats::Value value) {
    table_.set_attribute(id, value);
  }

  /// Global traffic totals (sums over all nodes, including departed ones).
  [[nodiscard]] const TrafficStats& total_traffic() const {
    return total_traffic_;
  }

  /// Count of all nodes ever created (live + departed).
  [[nodiscard]] std::size_t nodes_ever() const { return table_.size(); }

  /// Attaches the observability recorder (nullptr detaches). Not owned; must
  /// outlive the engine. With no recorder the engine executes the exact
  /// pre-obs instruction stream (every hook is null-checked), so detached
  /// runs stay bit-identical and allocation-free. With one attached, the
  /// engine records round begin/end, every exchange outcome in plan order,
  /// crash-restarts and churn joins/departures — identically on the serial
  /// and sharded engines (DESIGN.md §11).
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }
  [[nodiscard]] obs::Recorder* recorder() const { return recorder_; }

  /// Runs `fn(*this)` after every round.
  ///
  /// Legacy hook, kept as a thin adapter for one release: new code should
  /// attach an obs::Recorder (round_end events + round gauges) instead.
  using Observer = std::function<void(CycleEngine&)>;
  void add_observer(Observer fn) { observers_.push_back(std::move(fn)); }

  /// Registers a metrics sink notified with aggregate state after every
  /// round. The sink must outlive the engine (not owned).
  ///
  /// Legacy hook, kept as a thin adapter for one release: the RoundSnapshot
  /// it delivers is the same data an obs::Recorder captures per round.
  void add_metrics_sink(host::MetricsSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  /// Builds the context for a direct agent call from experiment drivers
  /// (e.g. to start a scripted aggregation instance on a chosen node).
  [[nodiscard]] AgentContext context_for(NodeId id) {
    return make_context(*this, *overlay_, table_.at(id), round_);
  }

  /// Immediately replaces `count` random live nodes (manual churn trigger,
  /// also used by failure-injection tests).
  void churn_nodes(std::size_t count);

  /// Removes one specific node (targeted failure injection).
  void kill_node(NodeId id);

  // -- Checkpoint / resume (host::snapshot, DESIGN.md §12) -----------------

  /// Serialises the engine's complete deterministic state (config echo,
  /// round counter, global stream, traffic ledger, every node record with
  /// its three streams and agent blob, the overlay) into one versioned
  /// snapshot. Serial and sharded engines share the layout: the shards hold
  /// only per-round scratch. Throws host::snapshot::SnapshotError when an
  /// attached agent or overlay type has no snapshot support.
  [[nodiscard]] std::vector<std::byte> save_snapshot() const;

  /// Restores a snapshot produced by save_snapshot on an engine built with
  /// the same configuration. Resume + run-to-round-R is bit-identical to the
  /// uninterrupted run (golden-resume fixtures). Throws wire::DecodeError on
  /// any malformed or mismatched input, leaving the engine untouched.
  void restore_snapshot(std::span<const std::byte> bytes);

 protected:
  CycleEngine(EngineConfig config, std::vector<stats::Value> initial_attributes,
              std::unique_ptr<Overlay> overlay, AgentFactory agent_factory,
              AttributeSource attribute_source);

  /// Creates a node; `bootstrap` runs the join-time state transfer and marks
  /// the node born next round (churned-in nodes arrive at the end of the
  /// current round, so instances started this round must not count them).
  void spawn_node(stats::Value attribute, bool bootstrap);

  /// One full gossip exchange initiated by `initiator` towards the
  /// pre-picked `target` (request -> response, loss and failed-contact
  /// accounting). The control-stream draws (loss legs) come from the
  /// initiator's pick_rng, so the unit is self-contained: it touches only
  /// the two participants' state plus `totals()` (and `outcome` when the
  /// caller records traces).
  void exchange_with(Node& initiator, const std::optional<NodeId>& target,
                     obs::ExchangeOutcome* outcome = nullptr);

  /// Records the round-begin trace event (no-op without a recorder). Each
  /// engine calls this at the top of run_round.
  void record_round_begin() {
    if (recorder_ != nullptr) {
      recorder_->round_begin(round_, table_.live_count());
    }
  }

  /// Stochastic churn at config_.churn_rate (serial phase).
  void apply_churn();

  /// Fault-plan crash-restarts (serial phase, after the exchanges): each
  /// crashing node keeps its identity, attribute and overlay links but loses
  /// all agent state and rejoins next round like a churned-in newcomer. The
  /// crash draw comes from the node's own fault stream, so the schedule is
  /// identical across serial and parallel engines.
  void apply_crashes();

  /// Observers, metrics sinks, round increment.
  void finish_round();

  /// The traffic accumulator for the calling context. The parallel engine
  /// overrides this to route global counters into per-worker slots during
  /// parallel phases (merged — commutatively — at the phase barrier).
  [[nodiscard]] virtual TrafficStats& totals() { return total_traffic_; }

  EngineConfig config_;
  /// The shared exchange fabric: owns legacy loss, partitions and the whole
  /// fault-fate pipeline (host/exchange.hpp). Engines only schedule.
  host::Conduit conduit_;
  rng::Rng rng_;
  std::unique_ptr<Overlay> overlay_;
  AgentFactory agent_factory_;
  AttributeSource attribute_source_;
  host::NodeTable table_;
  Round round_ = 0;
  TrafficStats total_traffic_;
  std::vector<Observer> observers_;
  std::vector<host::MetricsSink*> sinks_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace adam2::sim
