#include "sim/cycle_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "host/bootstrap.hpp"
#include "host/churn.hpp"
#include "host/snapshot.hpp"

namespace adam2::sim {
namespace {

namespace snap = host::snapshot;

bool same_plan(const host::FaultPlan& a, const host::FaultPlan& b) {
  return a.drop_rate == b.drop_rate && a.duplicate_rate == b.duplicate_rate &&
         a.corrupt_rate == b.corrupt_rate && a.delay_rate == b.delay_rate &&
         a.max_delay == b.max_delay && a.crash_rate == b.crash_rate &&
         a.partition_count == b.partition_count &&
         a.partition_start == b.partition_start &&
         a.partition_heal_after == b.partition_heal_after &&
         a.seed == b.seed && a.warm_restart == b.warm_restart;
}

}  // namespace

CycleEngine::CycleEngine(EngineConfig config,
                         std::vector<stats::Value> initial_attributes,
                         std::unique_ptr<Overlay> overlay,
                         AgentFactory agent_factory,
                         AttributeSource attribute_source)
    : config_(config),
      conduit_(config.faults, config.message_loss),
      rng_(config.seed),
      overlay_(std::move(overlay)),
      agent_factory_(std::move(agent_factory)),
      attribute_source_(std::move(attribute_source)) {
  if (!overlay_) throw std::invalid_argument("engine requires an overlay");
  if (!agent_factory_) {
    throw std::invalid_argument("engine requires an agent factory");
  }
  if (config_.churn_rate > 0.0 && !attribute_source_) {
    throw std::invalid_argument("churn requires an attribute source");
  }

  table_.reserve(initial_attributes.size());
  for (stats::Value value : initial_attributes) {
    spawn_node(value, /*bootstrap=*/false);
  }
  overlay_->build_initial(table_.live_ids(), *this, rng_);
}

void CycleEngine::record_traffic(NodeId sender, NodeId receiver,
                                 Channel channel, std::size_t bytes) {
  table_.record_traffic(sender, receiver, channel, bytes, totals());
}

void CycleEngine::spawn_node(stats::Value attribute, bool bootstrap) {
  Node& stored =
      table_.spawn(attribute, bootstrap ? round_ + 1 : round_, rng_);
  // Stateless derivation: consumes nothing from rng_, so seeding the fault
  // stream preserves bit-identity with pre-fault engines.
  stored.fault_rng = conduit_.faults().node_stream(stored.id);
  AgentContext ctx = make_context(*this, *overlay_, stored, round_);
  stored.agent = agent_factory_(ctx);
  if (!stored.agent) throw std::runtime_error("agent factory returned null");

  if (!bootstrap) return;

  // Wire the newcomer into the overlay, then run the join-time state
  // transfer (§IV, DESIGN §1 decision 4).
  overlay_->add_node(stored.id, *this, rng_);
  host::bootstrap_joiner(stored, table_, *overlay_, *this, round_,
                         total_traffic_);
  // Initial-population spawns happen before a recorder can be attached, so
  // only churn-in joins (bootstrap) ever reach the trace — on serial and
  // parallel engines alike (both churn in the same serial phase).
  if (recorder_ != nullptr) recorder_->node_join(round_, stored.id);
}

void CycleEngine::exchange_with(Node& initiator,
                                const std::optional<NodeId>& target,
                                obs::ExchangeOutcome* outcome) {
  // The fabric owns the whole pipeline (legacy loss, partitions, fates,
  // duplicate-delivery policy); this engine contributes only the traffic
  // accumulator, which the sharded subclass reroutes per worker.
  conduit_.run_cycle_exchange(*this, *overlay_, table_, round_, initiator,
                              target, totals(), outcome);
}

void CycleEngine::apply_crashes() {
  if (conduit_.faults().plan().crash_rate <= 0.0) return;
  const bool warm = conduit_.faults().plan().warm_restart;
  wire::Writer warm_blob;
  for (NodeId id : table_.live_ids()) {
    Node& n = table_.at(id);
    if (!conduit_.faults().crashes(n.fault_rng)) continue;
    // Warm restart (plan.warm_restart): the agent's protocol state is
    // checkpointed through the host::snapshot hooks and handed to the
    // replacement, so the node rejoins its running instances; birth_round
    // stays put. Pure behaviour switch — no draws, so the crash schedule is
    // identical warm or cold.
    warm_blob.clear();
    const bool carry = warm && n.agent->save_state(warm_blob);
    if (!carry) {
      // Cold crash-restart with state loss: identity, attribute and overlay
      // links survive; all protocol state is gone. birth_round moves forward
      // so the restarted node ignores instances started before the crash
      // (they would otherwise absorb a partial, state-free contribution).
      n.birth_round = round_ + 1;
    }
    AgentContext ctx = make_context(*this, *overlay_, n, round_);
    n.agent = agent_factory_(ctx);
    if (!n.agent) throw std::runtime_error("agent factory returned null");
    if (carry) {
      wire::Reader in(warm_blob.view());
      if (!n.agent->restore_state(in)) {
        // The blob was produced by save_state moments ago; rejection means
        // the agent's save/restore pair is asymmetric — a bug, not bad input.
        throw std::runtime_error(
            "warm restart: agent rejected its own state blob");
      }
      in.expect_done();
    }
    ++n.traffic.crash_restarts;
    ++total_traffic_.crash_restarts;
    if (recorder_ != nullptr) recorder_->crash_restart(round_, id);
  }
}

void CycleEngine::apply_churn() {
  if (config_.churn_rate <= 0.0 || table_.live_count() == 0) return;
  const double expected =
      config_.churn_rate * static_cast<double>(table_.live_count());
  // stochastic_count rounds its fractional part up probabilistically, so
  // with churn rates >= 1.0 (or a table shrunk mid-round by kill_node) it
  // can exceed the live population; never ask for more than exists.
  churn_nodes(
      std::min(host::stochastic_count(expected, rng_), table_.live_count()));
}

void CycleEngine::churn_nodes(std::size_t count) {
  count = std::min(count, table_.live_count());
  for (std::size_t i = 0; i < count; ++i) {
    kill_node(table_.random_live(rng_));
  }
  if (!attribute_source_) return;
  for (std::size_t i = 0; i < count; ++i) {
    spawn_node(attribute_source_(rng_), /*bootstrap=*/true);
  }
}

void CycleEngine::kill_node(NodeId id) {
  if (!table_.is_live(id)) {
    (void)table_.at(id);  // Preserve the out_of_range on unknown ids.
    return;
  }
  overlay_->remove_node(id);
  table_.kill(id);
  if (recorder_ != nullptr) recorder_->node_depart(round_, id);
}

void CycleEngine::finish_round() {
  // Legacy adapters first (their callbacks may still mutate the engine),
  // then the recorder captures the settled end-of-round state.
  for (const Observer& fn : observers_) fn(*this);
  if (!sinks_.empty()) {
    const host::RoundSnapshot snapshot{round_, table_.live_count(),
                                       table_.size(), total_traffic_};
    for (host::MetricsSink* sink : sinks_) sink->on_round_end(snapshot);
  }
  if (recorder_ != nullptr) {
    recorder_->round_end(round_, table_.live_count(), table_.size(),
                         total_traffic_);
  }
  ++round_;
}

std::vector<std::byte> CycleEngine::save_snapshot() const {
  snap::SnapshotWriter writer(snap::EngineKind::kCycle);

  writer.begin_section(snap::kSectionMeta);
  writer.out().f64(config_.churn_rate);
  writer.out().f64(config_.message_loss);
  writer.out().u64(config_.seed);
  snap::write_fault_plan(writer.out(), config_.faults);
  writer.end_section();

  writer.begin_section(snap::kSectionEngine);
  writer.out().u32(round_);
  snap::write_rng(writer.out(), rng_);
  snap::write_traffic(writer.out(), total_traffic_);
  writer.end_section();

  writer.begin_section(snap::kSectionNodes);
  snap::write_node_table(writer.out(), table_);
  writer.end_section();

  writer.begin_section(snap::kSectionOverlay);
  const std::uint32_t overlay_kind = overlay_->snapshot_kind();
  if (overlay_kind == 0) {
    throw snap::SnapshotError("overlay type does not support snapshotting");
  }
  writer.out().u32(overlay_kind);
  overlay_->save_state(writer.out());
  writer.end_section();

  return writer.finish();
}

void CycleEngine::restore_snapshot(std::span<const std::byte> bytes) {
  snap::SnapshotReader reader(bytes, snap::EngineKind::kCycle);
  wire::Reader meta = reader.section(snap::kSectionMeta);
  wire::Reader engine = reader.section(snap::kSectionEngine);
  wire::Reader nodes = reader.section(snap::kSectionNodes);
  wire::Reader overlay = reader.section(snap::kSectionOverlay);
  reader.expect_end();

  // A snapshot only resumes under the exact configuration that produced it:
  // any divergence (different seed, rates, fault plan) would silently change
  // the replayed schedule, so mismatches reject instead.
  const double churn_rate = meta.f64();
  const double message_loss = meta.f64();
  const std::uint64_t seed = meta.u64();
  const host::FaultPlan plan = snap::read_fault_plan(meta);
  meta.expect_done();
  if (churn_rate != config_.churn_rate ||
      message_loss != config_.message_loss || seed != config_.seed ||
      !same_plan(plan, config_.faults)) {
    throw wire::DecodeError("snapshot engine config mismatch");
  }

  const Round round = engine.u32();
  rng::Rng global(0);
  snap::read_rng(engine, global);
  TrafficStats totals;
  snap::read_traffic(engine, totals);
  engine.expect_done();

  // Everything below parses into scratch state; the engine's own members are
  // only swapped once the whole snapshot (overlay included) validated.
  host::NodeTable scratch;
  snap::read_node_table(nodes, scratch, [&](Node& n) {
    AgentContext ctx = make_context(*this, *overlay_, n, round);
    return agent_factory_(ctx);
  });
  nodes.expect_done();

  if (overlay.u32() != overlay_->snapshot_kind()) {
    throw wire::DecodeError("snapshot overlay kind mismatch");
  }
  overlay_->restore_state(overlay);  // Transactional (host/overlay.hpp).

  table_ = std::move(scratch);
  round_ = round;
  rng_ = global;
  total_traffic_ = totals;
  if (recorder_ != nullptr) {
    recorder_->manifest().set("resume_round",
                              static_cast<std::uint64_t>(round_));
    recorder_->manifest().set("resume_digest", snap::fnv1a(bytes));
  }
}

}  // namespace adam2::sim
