// Basic identifiers shared across the simulator.
//
// The definitions live in the host substrate library (host/types.hpp) so the
// runtime substrates can share them; these aliases keep the established
// sim:: spellings working.
#pragma once

#include "host/types.hpp"

namespace adam2::sim {

using host::Channel;
using host::channel_name;
using host::kChannelCount;
using host::NodeId;
using host::Round;

}  // namespace adam2::sim
