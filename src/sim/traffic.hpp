// Traffic accounting types (see host/traffic.hpp for the definitions; these
// aliases keep the established sim:: spellings working).
#pragma once

#include "host/traffic.hpp"
#include "sim/types.hpp"

namespace adam2::sim {

using host::ChannelTraffic;
using host::TrafficStats;

}  // namespace adam2::sim
