// Protocol-side interface of the simulator (see host/agent.hpp for the
// definitions; these aliases keep the established sim:: spellings working).
#pragma once

#include "host/agent.hpp"
#include "sim/overlay.hpp"
#include "sim/types.hpp"

namespace adam2::sim {

using host::AgentContext;
using host::AgentFactory;
using host::AttributeSource;
using host::NodeAgent;

}  // namespace adam2::sim
