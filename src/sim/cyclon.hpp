// Cyclon-style gossip-based peer sampling (Voulgaris et al.; the paper's
// reference [11] family).
//
// Each node keeps a small partial view of (id, age, attribute) descriptors.
// Once per round it shuffles with its oldest view entry: it sends a random
// subset of its view plus a fresh self-descriptor, receives a subset back,
// and installs the received descriptors preferentially over the slots it
// sent away. Dead entries are discovered through failed shuffles and evicted,
// which keeps the overlay connected under churn.
//
// Descriptors piggyback the peer's attribute value; every node additionally
// remembers the most recent `value_cache_size` values it saw, feeding the
// neighbour-based interpolation-point bootstrap (§V, §VII-B).
#pragma once

#include <deque>
#include <unordered_map>

#include "sim/overlay.hpp"
#include "wire/messages.hpp"

namespace adam2::sim {

struct CyclonConfig {
  std::size_t view_size = 20;      ///< Partial view capacity (c), at most 64.
  std::size_t shuffle_size = 8;    ///< Descriptors exchanged per shuffle (l).
  std::size_t value_cache_size = 128;  ///< Recently seen attribute values.
};

class CyclonOverlay final : public Overlay {
 public:
  explicit CyclonOverlay(CyclonConfig config);

  void build_initial(std::span<const NodeId> ids, const HostView& host,
                     rng::Rng& rng) override;
  void add_node(NodeId id, const HostView& host, rng::Rng& rng) override;
  void remove_node(NodeId id) override;
  [[nodiscard]] std::optional<NodeId> pick_gossip_target(
      NodeId id, rng::Rng& rng) const override;
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const override;
  [[nodiscard]] std::vector<stats::Value> known_attribute_values(
      NodeId id, const HostView& host) const override;
  void maintain(HostView& host, rng::Rng& rng) override;

  [[nodiscard]] const CyclonConfig& config() const { return config_; }

  // host::snapshot integration (DESIGN.md §12): kind 2 = Cyclon. Views are
  // encoded per node in sorted id order; each view's descriptor entries and
  // value cache keep their stored order (shuffles and the bootstrap consume
  // them positionally).
  [[nodiscard]] std::uint32_t snapshot_kind() const override { return 2; }
  void save_state(wire::Writer& out) const override;
  void restore_state(wire::Reader& in) override;

 private:
  struct View {
    std::vector<wire::NodeDescriptor> entries;
    std::deque<stats::Value> value_cache;
  };

  /// One shuffle initiated by `id` with its oldest live view entry.
  void shuffle_once(NodeId id, HostView& host, rng::Rng& rng);

  /// Installs `received` into `view`, replacing sent-away slots (bits set in
  /// `sent_mask`) first, then filling free capacity, never duplicating ids
  /// or storing `self`.
  void install(NodeId self, View& view,
               std::span<const wire::NodeDescriptor> received,
               std::uint64_t sent_mask);

  void remember_values(View& view,
                       std::span<const wire::NodeDescriptor> descriptors);

  CyclonConfig config_;
  std::unordered_map<NodeId, View> views_;
  // Scratch messages reused across shuffles (hot path: one shuffle per node
  // per round).
  wire::ShuffleMessage request_scratch_;
  wire::ShuffleMessage response_scratch_;
};

}  // namespace adam2::sim
