// Event-driven asynchronous simulation mode (PeerSim's event-driven
// analogue).
//
// The cycle-driven Engine assumes globally synchronised rounds. Real
// deployments have neither synchronised clocks nor instant messages: each
// node gossips on its own jittered timer and messages take a random one-way
// latency. AsyncEngine models exactly that with a discrete-event queue while
// hosting the *same* NodeAgent implementations — demonstrating that the
// protocol only relies on the request/response exchange semantics, not on
// round synchrony (§VII-F: the gossip period is bounded below by the message
// round-trip time).
//
// Event kinds:
//   * node tick      — the node runs its round-start hook and initiates one
//                      exchange; the next tick is scheduled one jittered
//                      period later;
//   * request/response delivery — after a sampled latency; lost with the
//                      configured probability; deliveries to dead nodes are
//                      dropped (requester side counts a failed contact);
//   * maintenance    — overlay shuffles and churn, once per mean period.
//
// Exchange atomicity: with message latency, a node's state could change
// between sending a request and receiving the matching response, which
// permanently creates or destroys averaging mass (the well-known atomicity
// requirement of push-pull gossip). A node with an exchange in flight is
// therefore *busy*: it initiates nothing and silently refuses incoming
// requests until its response arrives or a worst-case-RTT timeout passes.
// With that discipline the averaging conserves mass exactly (up to messages
// deliberately lost by `message_loss`).
//
// A node's protocol "round" is its own tick count, so TTLs advance at the
// node's pace exactly as §IV describes.
#pragma once

#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "host/exchange.hpp"
#include "host/fault.hpp"
#include "host/registry.hpp"
#include "obs/recorder.hpp"
#include "rng/rng.hpp"
#include "host/agent.hpp"
#include "sim/engine.hpp"
#include "sim/overlay.hpp"
#include "host/traffic.hpp"
#include "host/types.hpp"

namespace adam2::sim {

struct AsyncConfig {
  double gossip_period = 1.0;   ///< Mean seconds between a node's initiations.
  double period_jitter = 0.05;  ///< Relative uniform jitter per period.
  double latency_min = 0.010;   ///< One-way message latency bounds (uniform).
  double latency_max = 0.100;
  double message_loss = 0.0;    ///< Per-message loss probability.
  /// Fraction of nodes replaced per second (0.001 at a 1 s period matches
  /// the paper's typical churn).
  double churn_per_second = 0.0;
  std::uint64_t seed = 0xa5ada2;
  /// Deterministic fault schedule. The event-driven engine expresses the
  /// full taxonomy including bounded extra delay, which reorders deliveries
  /// through the event queue. Default: no faults, bit-identical replay.
  host::FaultPlan faults;
};

class AsyncEngine final : public HostView {
 public:
  AsyncEngine(AsyncConfig config, std::vector<stats::Value> initial_attributes,
              std::unique_ptr<Overlay> overlay, AgentFactory agent_factory,
              AttributeSource attribute_source);

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Processes events until simulated time reaches `time` (seconds).
  void run_until(double time);

  [[nodiscard]] double now() const { return now_; }

  // -- HostView ----------------------------------------------------------
  [[nodiscard]] bool is_live(NodeId id) const override;
  [[nodiscard]] stats::Value attribute_of(NodeId id) const override;
  /// Global round index: elapsed mean periods (used for instance
  /// eligibility; individual nodes tick at their own jittered pace).
  [[nodiscard]] Round round() const override {
    return static_cast<Round>(now_ / config_.gossip_period);
  }
  [[nodiscard]] std::span<const NodeId> live_ids() const override {
    return table_.live_ids();
  }
  void record_traffic(NodeId sender, NodeId receiver, Channel channel,
                      std::size_t bytes) override;

  // -- Introspection -----------------------------------------------------
  [[nodiscard]] std::size_t live_count() const { return table_.live_count(); }
  [[nodiscard]] NodeAgent& agent(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Overlay& overlay() { return *overlay_; }
  [[nodiscard]] rng::Rng& rng() { return rng_; }
  [[nodiscard]] NodeId random_live_node();
  [[nodiscard]] std::vector<stats::Value> live_attribute_values() const;
  [[nodiscard]] const TrafficStats& total_traffic() const {
    return total_traffic_;
  }
  [[nodiscard]] AgentContext context_for(NodeId id);
  [[nodiscard]] const host::FaultInjector& fault_injector() const {
    return conduit_.faults();
  }

  // -- Checkpoint / resume (host::snapshot, DESIGN.md §12) ---------------

  /// Serialises the engine's complete deterministic state, including the
  /// event queue (drained in pop order — the canonical (time, seq) order)
  /// and the virtual-time busy set. Throws host::snapshot::SnapshotError
  /// when an attached agent or overlay type has no snapshot support.
  [[nodiscard]] std::vector<std::byte> save_snapshot() const;

  /// Restores a snapshot produced by save_snapshot on an engine built with
  /// the same configuration. Resume + run_until(T) is bit-identical to the
  /// uninterrupted run. Throws wire::DecodeError on malformed or mismatched
  /// input, leaving the engine untouched.
  void restore_snapshot(std::span<const std::byte> bytes);

  /// Attaches the observability recorder (nullptr detaches; not owned).
  /// The event-driven engine has no synchronised rounds, so its trace
  /// coverage is the lifecycle taxonomy: one kRoundEnd per maintenance cycle
  /// (with the traffic totals absorbed into the metrics registry), plus
  /// crash-restarts and churn joins/departures. Per-exchange fate events are
  /// a cycle-engine feature — here message legs resolve independently inside
  /// the event queue and are fully counted by the traffic.* metrics
  /// (DESIGN.md §11).
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }
  [[nodiscard]] obs::Recorder* recorder() const { return recorder_; }

 private:
  enum class EventKind : std::uint8_t {
    kNodeTick,
    kRequestDelivery,
    kResponseDelivery,
    kMaintenance,
  };

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break for identical timestamps.
    EventKind kind = EventKind::kNodeTick;
    NodeId from = 0;
    NodeId to = 0;
    std::vector<std::byte> payload;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  void schedule(double time, EventKind kind, NodeId from, NodeId to,
                std::vector<std::byte> payload = {});
  void handle(Event&& event);
  void on_tick(NodeId id);
  void on_request(Event&& event);
  void on_response(Event&& event);
  void on_maintenance();
  void apply_crashes();
  void spawn_node(stats::Value attribute, bool bootstrap);
  /// Runs one leg through the exchange fabric (loss, partitions, fates,
  /// injected delay) and schedules each surviving copy with its own sampled
  /// latency, so duplicates genuinely reorder through the event queue.
  void deliver(EventKind kind, NodeId from, NodeId to,
               std::span<const std::byte> payload, rng::Rng& fault_stream);
  [[nodiscard]] double sample_latency();
  [[nodiscard]] double next_period();
  [[nodiscard]] AgentContext context_ref(Node& n);

  AsyncConfig config_;
  /// The shared exchange fabric (host/exchange.hpp): this engine schedules
  /// deliveries, the conduit decides their fate.
  host::Conduit conduit_;
  rng::Rng rng_;
  std::unique_ptr<Overlay> overlay_;
  AgentFactory agent_factory_;
  AttributeSource attribute_source_;

  host::NodeTable table_;
  [[nodiscard]] bool is_busy(NodeId id) const;
  void set_busy(NodeId id);
  void clear_busy(NodeId id);

  /// Nodes with an exchange in flight: id -> time the lock expires.
  std::unordered_map<NodeId, double> busy_until_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  TrafficStats total_traffic_;
  obs::Recorder* recorder_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace adam2::sim
