#include "sim/cyclon.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace adam2::sim {
namespace {

using wire::NodeDescriptor;

bool contains(const std::vector<NodeDescriptor>& entries, NodeId id) {
  return std::any_of(entries.begin(), entries.end(),
                     [id](const NodeDescriptor& d) { return d.id == id; });
}

}  // namespace

CyclonOverlay::CyclonOverlay(CyclonConfig config) : config_(config) {
  assert(config_.view_size >= 1);
  assert(config_.view_size <= 64);  // Slot masks are 64-bit.
  assert(config_.shuffle_size >= 1);
  assert(config_.shuffle_size <= config_.view_size);
}

void CyclonOverlay::build_initial(std::span<const NodeId> ids,
                                  const HostView& host, rng::Rng& rng) {
  views_.clear();
  views_.reserve(ids.size());
  for (NodeId id : ids) views_[id];
  if (ids.size() < 2) return;
  for (NodeId id : ids) {
    View& view = views_[id];
    for (std::size_t attempts = 0;
         view.entries.size() < config_.view_size && attempts < config_.view_size * 8;
         ++attempts) {
      const NodeId other = ids[rng.below(ids.size())];
      if (other == id || contains(view.entries, other)) continue;
      view.entries.push_back(
          {other, 0, host.is_live(other) ? host.attribute_of(other) : 0});
    }
  }
}

void CyclonOverlay::add_node(NodeId id, const HostView& host, rng::Rng& rng) {
  View& view = views_[id];
  const auto live = host.live_ids();
  if (live.empty()) return;
  // A joining node copies (a subset of) the view of one live contact, as in
  // Cyclon's join by random walks from an introducer.
  const NodeId contact = live[rng.below(live.size())];
  if (contact != id) {
    view.entries.push_back({contact, 0, host.attribute_of(contact)});
    auto it = views_.find(contact);
    if (it != views_.end()) {
      for (const NodeDescriptor& d : it->second.entries) {
        if (view.entries.size() >= config_.view_size) break;
        if (d.id == id || contains(view.entries, d.id)) continue;
        view.entries.push_back(d);
      }
    }
  }
  // Fill any remaining slots with random live peers.
  for (std::size_t attempts = 0;
       view.entries.size() < config_.view_size && attempts < config_.view_size * 4;
       ++attempts) {
    const NodeId other = live[rng.below(live.size())];
    if (other == id || contains(view.entries, other)) continue;
    view.entries.push_back({other, 0, host.attribute_of(other)});
  }
}

void CyclonOverlay::remove_node(NodeId id) { views_.erase(id); }

std::optional<NodeId> CyclonOverlay::pick_gossip_target(NodeId id,
                                                        rng::Rng& rng) const {
  auto it = views_.find(id);
  if (it == views_.end() || it->second.entries.empty()) return std::nullopt;
  const auto& entries = it->second.entries;
  return entries[rng.below(entries.size())].id;
}

std::vector<NodeId> CyclonOverlay::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  auto it = views_.find(id);
  if (it == views_.end()) return out;
  out.reserve(it->second.entries.size());
  for (const NodeDescriptor& d : it->second.entries) out.push_back(d.id);
  return out;
}

std::vector<stats::Value> CyclonOverlay::known_attribute_values(
    NodeId id, const HostView& /*host*/) const {
  std::vector<stats::Value> values;
  auto it = views_.find(id);
  if (it == views_.end()) return values;
  values.reserve(it->second.entries.size() + it->second.value_cache.size());
  for (const NodeDescriptor& d : it->second.entries) {
    values.push_back(d.attribute);
  }
  values.insert(values.end(), it->second.value_cache.begin(),
                it->second.value_cache.end());
  return values;
}

void CyclonOverlay::maintain(HostView& host, rng::Rng& rng) {
  // Iterate over a stable id snapshot: shuffles mutate views_ entries but
  // never insert/erase map keys. The snapshot order feeds rng.shuffle and so
  // determines which draws each node's shuffle consumes; it is deterministic
  // for a fixed insertion history on a fixed standard library, and the
  // golden replay digests (tests/golden_replay_test.cpp) are pinned to it —
  // sorting here would change every digest. Revisit at the next digest
  // re-capture; until then this is a documented exception (DESIGN.md §10).
  std::vector<NodeId> ids;
  ids.reserve(views_.size());
  for (const auto& [id, view] : views_) ids.push_back(id);  // adam2-lint: allow(unordered-iter)
  rng.shuffle(ids);
  for (NodeId id : ids) {
    if (host.is_live(id)) shuffle_once(id, host, rng);
  }
}

namespace {

/// Picks `want` distinct random slots out of [0, size) in addition to the
/// bits already set in `mask`. Rejection sampling on a 64-bit slot mask —
/// views are small (<= 64), so this is allocation-free and fast.
std::uint64_t pick_slots(std::uint64_t mask, std::size_t size,
                         std::size_t want, rng::Rng& rng) {
  while (want > 0) {
    const std::uint64_t bit = 1ULL << rng.below(size);
    if ((mask & bit) != 0) continue;
    mask |= bit;
    --want;
  }
  return mask;
}

}  // namespace

void CyclonOverlay::shuffle_once(NodeId id, HostView& host, rng::Rng& rng) {
  View& view = views_.at(id);
  if (view.entries.empty()) return;

  for (NodeDescriptor& d : view.entries) ++d.age;

  // Contact the oldest entry (Cyclon's tail-swap rule).
  auto oldest = std::max_element(
      view.entries.begin(), view.entries.end(),
      [](const NodeDescriptor& a, const NodeDescriptor& b) {
        return a.age < b.age;
      });
  const NodeId target = oldest->id;
  if (!host.is_live(target)) {
    view.entries.erase(oldest);  // Evict the dead entry; retry next round.
    return;
  }

  // Send the oldest entry plus shuffle_size - 1 random others, and a fresh
  // self-descriptor.
  const std::size_t oldest_slot =
      static_cast<std::size_t>(oldest - view.entries.begin());
  const std::size_t extra =
      std::min(config_.shuffle_size - 1, view.entries.size() - 1);
  const std::uint64_t sent_mask =
      pick_slots(1ULL << oldest_slot, view.entries.size(), extra, rng);

  wire::ShuffleMessage& request = request_scratch_;
  request.type = wire::MessageType::kShuffleRequest;
  request.sender = id;
  request.descriptors.clear();
  request.descriptors.push_back({id, 0, host.attribute_of(id)});
  for (std::size_t slot = 0; slot < view.entries.size(); ++slot) {
    if ((sent_mask >> slot) & 1) request.descriptors.push_back(view.entries[slot]);
  }
  host.record_traffic(id, target, Channel::kOverlay, request.encoded_size());

  // Responder builds its reply from a random subset of its own view.
  View& peer_view = views_.at(target);
  const std::size_t peer_count =
      std::min(config_.shuffle_size, peer_view.entries.size());
  const std::uint64_t peer_mask =
      peer_view.entries.empty()
          ? 0
          : pick_slots(0, peer_view.entries.size(), peer_count, rng);
  wire::ShuffleMessage& response = response_scratch_;
  response.type = wire::MessageType::kShuffleResponse;
  response.sender = target;
  response.descriptors.clear();
  for (std::size_t slot = 0; slot < peer_view.entries.size(); ++slot) {
    if ((peer_mask >> slot) & 1) {
      response.descriptors.push_back(peer_view.entries[slot]);
    }
  }
  host.record_traffic(target, id, Channel::kOverlay, response.encoded_size());

  remember_values(peer_view, request.descriptors);
  remember_values(view, response.descriptors);

  install(target, peer_view, request.descriptors, peer_mask);
  install(id, view, response.descriptors, sent_mask);
}

void CyclonOverlay::install(NodeId self, View& view,
                            std::span<const wire::NodeDescriptor> received,
                            std::uint64_t sent_mask) {
  for (const NodeDescriptor& d : received) {
    if (d.id == self || contains(view.entries, d.id)) continue;
    if (view.entries.size() < config_.view_size) {
      view.entries.push_back(d);
      continue;
    }
    if (sent_mask == 0) break;  // View full, nothing left that was sent away.
    const auto slot = static_cast<std::size_t>(std::countr_zero(sent_mask));
    sent_mask &= sent_mask - 1;
    if (slot >= view.entries.size()) break;
    view.entries[slot] = d;
  }
}

void CyclonOverlay::remember_values(
    View& view, std::span<const wire::NodeDescriptor> descriptors) {
  for (const wire::NodeDescriptor& d : descriptors) {
    view.value_cache.push_back(d.attribute);
    while (view.value_cache.size() > config_.value_cache_size) {
      view.value_cache.pop_front();
    }
  }
}

void CyclonOverlay::save_state(wire::Writer& out) const {
  out.u64(config_.view_size);
  out.u64(config_.shuffle_size);
  out.u64(config_.value_cache_size);
  std::vector<NodeId> ids;
  ids.reserve(views_.size());
  // Bucket order cannot leak into the snapshot: ids are sorted before
  // anything is encoded.
  // adam2-lint: allow(unordered-iter)
  for (const auto& [id, view] : views_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  out.length(ids.size());
  for (NodeId id : ids) {
    const View& view = views_.at(id);
    out.u64(id);
    out.length(view.entries.size());
    for (const wire::NodeDescriptor& d : view.entries) {
      out.u64(d.id);
      out.u32(d.age);
      out.i64(d.attribute);
    }
    out.length(view.value_cache.size());
    for (stats::Value value : view.value_cache) out.i64(value);
  }
}

void CyclonOverlay::restore_state(wire::Reader& in) {
  if (in.u64() != config_.view_size || in.u64() != config_.shuffle_size ||
      in.u64() != config_.value_cache_size) {
    throw wire::DecodeError("cyclon overlay config mismatch");
  }
  const std::size_t count = in.length(16);  // id + two empty sequences.
  std::unordered_map<NodeId, View> views;
  views.reserve(count);
  bool have_prev = false;
  NodeId prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId id = in.u64();
    if (have_prev && id <= prev) {
      throw wire::DecodeError("cyclon view ids not in sorted order");
    }
    prev = id;
    have_prev = true;
    View& view = views[id];
    const std::size_t entries = in.length(20);
    if (entries > config_.view_size) {
      throw wire::DecodeError("cyclon view exceeds configured capacity");
    }
    view.entries.reserve(entries);
    for (std::size_t j = 0; j < entries; ++j) {
      wire::NodeDescriptor d;
      d.id = in.u64();
      d.age = in.u32();
      d.attribute = in.i64();
      view.entries.push_back(d);
    }
    const std::size_t cached = in.length(8);
    if (cached > config_.value_cache_size) {
      throw wire::DecodeError("cyclon value cache exceeds configured size");
    }
    for (std::size_t j = 0; j < cached; ++j) {
      view.value_cache.push_back(in.i64());
    }
  }
  // Transactional commit: nothing is mutated until the whole payload parsed
  // (trailing bytes included), so a rejected blob leaves the overlay intact.
  in.expect_done();
  views_ = std::move(views);
}

}  // namespace adam2::sim
