#include "sim/async_engine.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "host/bootstrap.hpp"
#include "host/churn.hpp"

namespace adam2::sim {

AsyncEngine::AsyncEngine(AsyncConfig config,
                         std::vector<stats::Value> initial_attributes,
                         std::unique_ptr<Overlay> overlay,
                         AgentFactory agent_factory,
                         AttributeSource attribute_source)
    : config_(config),
      conduit_(config.faults, config.message_loss),
      rng_(config.seed),
      overlay_(std::move(overlay)),
      agent_factory_(std::move(agent_factory)),
      attribute_source_(std::move(attribute_source)) {
  if (!overlay_) throw std::invalid_argument("engine requires an overlay");
  if (!agent_factory_) {
    throw std::invalid_argument("engine requires an agent factory");
  }
  if (config_.churn_per_second > 0.0 && !attribute_source_) {
    throw std::invalid_argument("churn requires an attribute source");
  }
  if (!(config_.gossip_period > 0.0)) {
    throw std::invalid_argument("gossip period must be positive");
  }
  if (config_.latency_max < config_.latency_min) {
    throw std::invalid_argument("latency bounds inverted");
  }

  table_.reserve(initial_attributes.size());
  for (stats::Value value : initial_attributes) {
    spawn_node(value, /*bootstrap=*/false);
  }
  overlay_->build_initial(table_.live_ids(), *this, rng_);

  // Desynchronised start: first ticks are spread over one full period.
  for (NodeId id : table_.live_ids()) {
    schedule(rng_.uniform(0.0, config_.gossip_period), EventKind::kNodeTick,
             id, id);
  }
  schedule(config_.gossip_period, EventKind::kMaintenance, 0, 0);
}

void AsyncEngine::spawn_node(stats::Value attribute, bool bootstrap) {
  Node& stored =
      table_.spawn(attribute, bootstrap ? round() + 1 : round(), rng_);
  // Stateless derivation: consumes nothing from rng_ (golden replay).
  stored.fault_rng = conduit_.faults().node_stream(stored.id);
  const NodeId id = stored.id;
  AgentContext ctx = context_ref(stored);
  stored.agent = agent_factory_(ctx);
  if (!stored.agent) throw std::runtime_error("agent factory returned null");

  if (!bootstrap) return;

  // Join-time state transfer, shared with the cycle-driven engines
  // (retrying a few neighbours until one has usable state).
  overlay_->add_node(id, *this, rng_);
  host::bootstrap_joiner(stored, table_, *overlay_, *this, round(),
                         total_traffic_);
  schedule(now_ + next_period(), EventKind::kNodeTick, id, id);
  if (recorder_ != nullptr) recorder_->node_join(round(), id);
}

AgentContext AsyncEngine::context_ref(Node& n) {
  return AgentContext{*this,  *overlay_,   n.id, round(),
                      n.birth_round, n.attribute, n.rng};
}

bool AsyncEngine::is_live(NodeId id) const { return table_.is_live(id); }

stats::Value AsyncEngine::attribute_of(NodeId id) const {
  return table_.attribute_of(id);
}

void AsyncEngine::record_traffic(NodeId sender, NodeId receiver,
                                 Channel channel, std::size_t bytes) {
  table_.record_traffic(sender, receiver, channel, bytes, total_traffic_);
}

NodeAgent& AsyncEngine::agent(NodeId id) { return *table_.at(id).agent; }

const Node& AsyncEngine::node(NodeId id) const { return table_.at(id); }

NodeId AsyncEngine::random_live_node() { return table_.random_live(rng_); }

std::vector<stats::Value> AsyncEngine::live_attribute_values() const {
  return table_.live_attribute_values();
}

AgentContext AsyncEngine::context_for(NodeId id) {
  return context_ref(table_.at(id));
}

double AsyncEngine::sample_latency() {
  return rng_.uniform(config_.latency_min, config_.latency_max);
}

double AsyncEngine::next_period() {
  const double jitter = config_.period_jitter;
  return config_.gossip_period * rng_.uniform(1.0 - jitter, 1.0 + jitter);
}

void AsyncEngine::schedule(double time, EventKind kind, NodeId from, NodeId to,
                           std::vector<std::byte> payload) {
  queue_.push(Event{time, next_seq_++, kind, from, to, std::move(payload)});
}

void AsyncEngine::run_until(double time) {
  while (!queue_.empty() && queue_.top().time <= time) {
    // top() is const; moving the payload out before pop() avoids copying the
    // message buffer (the moved-from element is removed immediately).
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    handle(std::move(event));
  }
  now_ = time;
}

void AsyncEngine::handle(Event&& event) {
  switch (event.kind) {
    case EventKind::kNodeTick:
      on_tick(event.from);
      return;
    case EventKind::kRequestDelivery:
      on_request(std::move(event));
      return;
    case EventKind::kResponseDelivery:
      on_response(std::move(event));
      return;
    case EventKind::kMaintenance:
      on_maintenance();
      return;
  }
}

bool AsyncEngine::is_busy(NodeId id) const {
  auto it = busy_until_.find(id);
  return it != busy_until_.end() && now_ < it->second;
}

void AsyncEngine::set_busy(NodeId id) {
  // Worst-case round trip plus slack; a lost response frees the node then.
  busy_until_[id] = now_ + 2.0 * config_.latency_max + 1e-9;
}

void AsyncEngine::clear_busy(NodeId id) { busy_until_.erase(id); }

void AsyncEngine::on_tick(NodeId id) {
  if (!is_live(id)) return;  // Died while the tick was in flight.
  Node& n = table_.at(id);
  AgentContext ctx = context_ref(n);
  n.agent->on_round_start(ctx);

  // Exchange atomicity: never two exchanges in flight from one node.
  if (!is_busy(id)) {
    auto request = n.agent->make_request(ctx);
    if (!request.empty()) {
      const auto target = overlay_->pick_gossip_target(id, n.pick_rng);
      if (!target || !is_live(*target) || *target == id) {
        ++n.traffic.failed_contacts;
        ++total_traffic_.failed_contacts;
      } else {
        record_traffic(id, *target, Channel::kAggregation, request.size());
        // The busy lock opens whether or not the request survives the
        // pipeline: a lost request frees the node at its timeout, exactly as
        // in a deployment.
        set_busy(id);
        deliver(EventKind::kRequestDelivery, id, *target, request,
                n.fault_rng);
      }
    }
  }
  schedule(now_ + next_period(), EventKind::kNodeTick, id, id);
}

void AsyncEngine::on_request(Event&& event) {
  if (!is_live(event.to)) return;  // Responder died in flight.
  Node& responder = table_.at(event.to);
  if (is_busy(event.to)) {
    // Atomicity: the responder's state could still change when its own
    // outstanding response arrives, so it must not commit to an answer now.
    ++responder.traffic.busy_rejections;
    ++total_traffic_.busy_rejections;
    return;
  }
  AgentContext ctx = context_ref(responder);
  auto response = responder.agent->handle_request(ctx, event.payload);
  if (response.empty()) return;
  record_traffic(event.to, event.from, Channel::kAggregation, response.size());
  deliver(EventKind::kResponseDelivery, event.to, event.from, response,
          responder.fault_rng);
}

void AsyncEngine::deliver(EventKind kind, NodeId from, NodeId to,
                          std::span<const std::byte> payload,
                          rng::Rng& fault_stream) {
  // The fabric resolves loss (legacy knob, global engine stream — matching
  // the pre-fabric draw position), partitions, fate and extra delay; this
  // engine turns the surviving copies into events. Each copy samples its own
  // latency, so duplicates genuinely reorder through the event queue.
  std::vector<std::byte> scratch;
  const host::Conduit::Delivery delivery = conduit_.resolve(
      host::Conduit::Leg{from, to, round(), &rng_, &fault_stream,
                         /*partition_check=*/true, /*draw_delay=*/true},
      payload, scratch, total_traffic_);
  for (unsigned copy = 0; copy < delivery.copies; ++copy) {
    // The span aliases agent (or corruption) scratch; events own copies.
    schedule(now_ + sample_latency() + delivery.extra_delay, kind, from, to,
             std::vector<std::byte>(delivery.payload.begin(),
                                    delivery.payload.end()));
  }
}

void AsyncEngine::apply_crashes() {
  if (conduit_.faults().plan().crash_rate <= 0.0) return;
  for (NodeId id : table_.live_ids()) {
    Node& n = table_.at(id);
    if (!conduit_.faults().crashes(n.fault_rng)) continue;
    // Crash-restart with state loss (see CycleEngine::apply_crashes). The
    // busy lock dies with the old process; any in-flight response addressed
    // to it is ignored through the birth_round eligibility guard.
    n.birth_round = round() + 1;
    AgentContext ctx = context_ref(n);
    n.agent = agent_factory_(ctx);
    if (!n.agent) throw std::runtime_error("agent factory returned null");
    busy_until_.erase(id);
    ++n.traffic.crash_restarts;
    ++total_traffic_.crash_restarts;
    if (recorder_ != nullptr) recorder_->crash_restart(round(), id);
  }
}

void AsyncEngine::on_response(Event&& event) {
  clear_busy(event.to);
  if (!is_live(event.to)) return;  // Requester died in flight.
  Node& requester = table_.at(event.to);
  AgentContext ctx = context_ref(requester);
  requester.agent->handle_response(ctx, event.payload);
}

void AsyncEngine::on_maintenance() {
  overlay_->maintain(*this, rng_);
  apply_crashes();
  if (config_.churn_per_second > 0.0 && table_.live_count() > 0) {
    const double expected = config_.churn_per_second * config_.gossip_period *
                            static_cast<double>(table_.live_count());
    std::size_t count =
        std::min(host::stochastic_count(expected, rng_), table_.live_count());
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId victim = table_.random_live(rng_);
      overlay_->remove_node(victim);
      table_.kill(victim);
      busy_until_.erase(victim);
      if (recorder_ != nullptr) recorder_->node_depart(round(), victim);
    }
    for (std::size_t i = 0; i < count; ++i) {
      spawn_node(attribute_source_(rng_), /*bootstrap=*/true);
    }
  }
  // One kRoundEnd per maintenance cycle: the event-driven analogue of the
  // cycle engines' end-of-round sample (same gauges, same traffic absorb).
  if (recorder_ != nullptr) {
    recorder_->round_end(round(), table_.live_count(), table_.size(),
                         total_traffic_);
  }
  schedule(now_ + config_.gossip_period, EventKind::kMaintenance, 0, 0);
}

}  // namespace adam2::sim
