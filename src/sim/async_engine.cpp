#include "sim/async_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "host/bootstrap.hpp"
#include "host/churn.hpp"
#include "host/snapshot.hpp"

namespace adam2::sim {
namespace {

namespace snap = host::snapshot;

bool same_async_plan(const host::FaultPlan& a, const host::FaultPlan& b) {
  return a.drop_rate == b.drop_rate && a.duplicate_rate == b.duplicate_rate &&
         a.corrupt_rate == b.corrupt_rate && a.delay_rate == b.delay_rate &&
         a.max_delay == b.max_delay && a.crash_rate == b.crash_rate &&
         a.partition_count == b.partition_count &&
         a.partition_start == b.partition_start &&
         a.partition_heal_after == b.partition_heal_after &&
         a.seed == b.seed && a.warm_restart == b.warm_restart;
}

}  // namespace

AsyncEngine::AsyncEngine(AsyncConfig config,
                         std::vector<stats::Value> initial_attributes,
                         std::unique_ptr<Overlay> overlay,
                         AgentFactory agent_factory,
                         AttributeSource attribute_source)
    : config_(config),
      conduit_(config.faults, config.message_loss),
      rng_(config.seed),
      overlay_(std::move(overlay)),
      agent_factory_(std::move(agent_factory)),
      attribute_source_(std::move(attribute_source)) {
  if (!overlay_) throw std::invalid_argument("engine requires an overlay");
  if (!agent_factory_) {
    throw std::invalid_argument("engine requires an agent factory");
  }
  if (config_.churn_per_second > 0.0 && !attribute_source_) {
    throw std::invalid_argument("churn requires an attribute source");
  }
  if (!(config_.gossip_period > 0.0)) {
    throw std::invalid_argument("gossip period must be positive");
  }
  if (config_.latency_max < config_.latency_min) {
    throw std::invalid_argument("latency bounds inverted");
  }

  table_.reserve(initial_attributes.size());
  for (stats::Value value : initial_attributes) {
    spawn_node(value, /*bootstrap=*/false);
  }
  overlay_->build_initial(table_.live_ids(), *this, rng_);

  // Desynchronised start: first ticks are spread over one full period.
  for (NodeId id : table_.live_ids()) {
    schedule(rng_.uniform(0.0, config_.gossip_period), EventKind::kNodeTick,
             id, id);
  }
  schedule(config_.gossip_period, EventKind::kMaintenance, 0, 0);
}

void AsyncEngine::spawn_node(stats::Value attribute, bool bootstrap) {
  Node& stored =
      table_.spawn(attribute, bootstrap ? round() + 1 : round(), rng_);
  // Stateless derivation: consumes nothing from rng_ (golden replay).
  stored.fault_rng = conduit_.faults().node_stream(stored.id);
  const NodeId id = stored.id;
  AgentContext ctx = context_ref(stored);
  stored.agent = agent_factory_(ctx);
  if (!stored.agent) throw std::runtime_error("agent factory returned null");

  if (!bootstrap) return;

  // Join-time state transfer, shared with the cycle-driven engines
  // (retrying a few neighbours until one has usable state).
  overlay_->add_node(id, *this, rng_);
  host::bootstrap_joiner(stored, table_, *overlay_, *this, round(),
                         total_traffic_);
  schedule(now_ + next_period(), EventKind::kNodeTick, id, id);
  if (recorder_ != nullptr) recorder_->node_join(round(), id);
}

AgentContext AsyncEngine::context_ref(Node& n) {
  return AgentContext{*this,  *overlay_,   n.id, round(),
                      n.birth_round, n.attribute, n.rng};
}

bool AsyncEngine::is_live(NodeId id) const { return table_.is_live(id); }

stats::Value AsyncEngine::attribute_of(NodeId id) const {
  return table_.attribute_of(id);
}

void AsyncEngine::record_traffic(NodeId sender, NodeId receiver,
                                 Channel channel, std::size_t bytes) {
  table_.record_traffic(sender, receiver, channel, bytes, total_traffic_);
}

NodeAgent& AsyncEngine::agent(NodeId id) { return *table_.at(id).agent; }

const Node& AsyncEngine::node(NodeId id) const { return table_.at(id); }

NodeId AsyncEngine::random_live_node() { return table_.random_live(rng_); }

std::vector<stats::Value> AsyncEngine::live_attribute_values() const {
  return table_.live_attribute_values();
}

AgentContext AsyncEngine::context_for(NodeId id) {
  return context_ref(table_.at(id));
}

double AsyncEngine::sample_latency() {
  return rng_.uniform(config_.latency_min, config_.latency_max);
}

double AsyncEngine::next_period() {
  const double jitter = config_.period_jitter;
  return config_.gossip_period * rng_.uniform(1.0 - jitter, 1.0 + jitter);
}

void AsyncEngine::schedule(double time, EventKind kind, NodeId from, NodeId to,
                           std::vector<std::byte> payload) {
  queue_.push(Event{time, next_seq_++, kind, from, to, std::move(payload)});
}

void AsyncEngine::run_until(double time) {
  while (!queue_.empty() && queue_.top().time <= time) {
    // top() is const; moving the payload out before pop() avoids copying the
    // message buffer (the moved-from element is removed immediately).
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    handle(std::move(event));
  }
  // Monotone: a target already in the past (e.g. a warm-up call after
  // restore_snapshot resumed at a later time) must not rewind the clock.
  if (time > now_) now_ = time;
}

void AsyncEngine::handle(Event&& event) {
  switch (event.kind) {
    case EventKind::kNodeTick:
      on_tick(event.from);
      return;
    case EventKind::kRequestDelivery:
      on_request(std::move(event));
      return;
    case EventKind::kResponseDelivery:
      on_response(std::move(event));
      return;
    case EventKind::kMaintenance:
      on_maintenance();
      return;
  }
}

bool AsyncEngine::is_busy(NodeId id) const {
  auto it = busy_until_.find(id);
  return it != busy_until_.end() && now_ < it->second;
}

void AsyncEngine::set_busy(NodeId id) {
  // Worst-case round trip plus slack; a lost response frees the node then.
  busy_until_[id] = now_ + 2.0 * config_.latency_max + 1e-9;
}

void AsyncEngine::clear_busy(NodeId id) { busy_until_.erase(id); }

void AsyncEngine::on_tick(NodeId id) {
  if (!is_live(id)) return;  // Died while the tick was in flight.
  Node& n = table_.at(id);
  AgentContext ctx = context_ref(n);
  n.agent->on_round_start(ctx);

  // Exchange atomicity: never two exchanges in flight from one node.
  if (!is_busy(id)) {
    auto request = n.agent->make_request(ctx);
    if (!request.empty()) {
      const auto target = overlay_->pick_gossip_target(id, n.pick_rng);
      if (!target || !is_live(*target) || *target == id) {
        ++n.traffic.failed_contacts;
        ++total_traffic_.failed_contacts;
      } else {
        record_traffic(id, *target, Channel::kAggregation, request.size());
        // The busy lock opens whether or not the request survives the
        // pipeline: a lost request frees the node at its timeout, exactly as
        // in a deployment.
        set_busy(id);
        deliver(EventKind::kRequestDelivery, id, *target, request,
                n.fault_rng);
      }
    }
  }
  schedule(now_ + next_period(), EventKind::kNodeTick, id, id);
}

void AsyncEngine::on_request(Event&& event) {
  if (!is_live(event.to)) return;  // Responder died in flight.
  Node& responder = table_.at(event.to);
  if (is_busy(event.to)) {
    // Atomicity: the responder's state could still change when its own
    // outstanding response arrives, so it must not commit to an answer now.
    ++responder.traffic.busy_rejections;
    ++total_traffic_.busy_rejections;
    return;
  }
  AgentContext ctx = context_ref(responder);
  auto response = responder.agent->handle_request(ctx, event.payload);
  if (response.empty()) return;
  record_traffic(event.to, event.from, Channel::kAggregation, response.size());
  deliver(EventKind::kResponseDelivery, event.to, event.from, response,
          responder.fault_rng);
}

void AsyncEngine::deliver(EventKind kind, NodeId from, NodeId to,
                          std::span<const std::byte> payload,
                          rng::Rng& fault_stream) {
  // The fabric resolves loss (legacy knob, global engine stream — matching
  // the pre-fabric draw position), partitions, fate and extra delay; this
  // engine turns the surviving copies into events. Each copy samples its own
  // latency, so duplicates genuinely reorder through the event queue.
  std::vector<std::byte> scratch;
  const host::Conduit::Delivery delivery = conduit_.resolve(
      host::Conduit::Leg{from, to, round(), &rng_, &fault_stream,
                         /*partition_check=*/true, /*draw_delay=*/true},
      payload, scratch, total_traffic_);
  for (unsigned copy = 0; copy < delivery.copies; ++copy) {
    // The span aliases agent (or corruption) scratch; events own copies.
    schedule(now_ + sample_latency() + delivery.extra_delay, kind, from, to,
             std::vector<std::byte>(delivery.payload.begin(),
                                    delivery.payload.end()));
  }
}

void AsyncEngine::apply_crashes() {
  if (conduit_.faults().plan().crash_rate <= 0.0) return;
  const bool warm = conduit_.faults().plan().warm_restart;
  wire::Writer warm_blob;
  for (NodeId id : table_.live_ids()) {
    Node& n = table_.at(id);
    if (!conduit_.faults().crashes(n.fault_rng)) continue;
    // Warm restart (plan.warm_restart): protocol state carries over through
    // the host::snapshot hooks and birth_round stays put; otherwise the cold
    // crash-restart with state loss (see CycleEngine::apply_crashes). Either
    // way the busy lock dies with the old process; a stale in-flight
    // response is ignored through the birth_round guard (cold) or merges
    // harmlessly into the carried-over state (warm — same instances).
    warm_blob.clear();
    const bool carry = warm && n.agent->save_state(warm_blob);
    if (!carry) n.birth_round = round() + 1;
    AgentContext ctx = context_ref(n);
    n.agent = agent_factory_(ctx);
    if (!n.agent) throw std::runtime_error("agent factory returned null");
    if (carry) {
      wire::Reader in(warm_blob.view());
      if (!n.agent->restore_state(in)) {
        throw std::runtime_error(
            "warm restart: agent rejected its own state blob");
      }
      in.expect_done();
    }
    busy_until_.erase(id);
    ++n.traffic.crash_restarts;
    ++total_traffic_.crash_restarts;
    if (recorder_ != nullptr) recorder_->crash_restart(round(), id);
  }
}

void AsyncEngine::on_response(Event&& event) {
  clear_busy(event.to);
  if (!is_live(event.to)) return;  // Requester died in flight.
  Node& requester = table_.at(event.to);
  AgentContext ctx = context_ref(requester);
  requester.agent->handle_response(ctx, event.payload);
}

void AsyncEngine::on_maintenance() {
  overlay_->maintain(*this, rng_);
  apply_crashes();
  if (config_.churn_per_second > 0.0 && table_.live_count() > 0) {
    const double expected = config_.churn_per_second * config_.gossip_period *
                            static_cast<double>(table_.live_count());
    std::size_t count =
        std::min(host::stochastic_count(expected, rng_), table_.live_count());
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId victim = table_.random_live(rng_);
      overlay_->remove_node(victim);
      table_.kill(victim);
      busy_until_.erase(victim);
      if (recorder_ != nullptr) recorder_->node_depart(round(), victim);
    }
    for (std::size_t i = 0; i < count; ++i) {
      spawn_node(attribute_source_(rng_), /*bootstrap=*/true);
    }
  }
  // One kRoundEnd per maintenance cycle: the event-driven analogue of the
  // cycle engines' end-of-round sample (same gauges, same traffic absorb).
  if (recorder_ != nullptr) {
    recorder_->round_end(round(), table_.live_count(), table_.size(),
                         total_traffic_);
  }
  schedule(now_ + config_.gossip_period, EventKind::kMaintenance, 0, 0);
}

std::vector<std::byte> AsyncEngine::save_snapshot() const {
  snap::SnapshotWriter writer(snap::EngineKind::kAsync);

  writer.begin_section(snap::kSectionMeta);
  writer.out().f64(config_.gossip_period);
  writer.out().f64(config_.period_jitter);
  writer.out().f64(config_.latency_min);
  writer.out().f64(config_.latency_max);
  writer.out().f64(config_.message_loss);
  writer.out().f64(config_.churn_per_second);
  writer.out().u64(config_.seed);
  snap::write_fault_plan(writer.out(), config_.faults);
  writer.end_section();

  writer.begin_section(snap::kSectionEngine);
  writer.out().f64(now_);
  writer.out().u64(next_seq_);
  snap::write_rng(writer.out(), rng_);
  snap::write_traffic(writer.out(), total_traffic_);
  {
    // The busy set is an unordered map; sorted ids keep the encoding a
    // function of state, not bucket layout.
    std::vector<NodeId> busy_ids;
    busy_ids.reserve(busy_until_.size());
    // adam2-lint: allow(unordered-iter)
    for (const auto& [id, until] : busy_until_) busy_ids.push_back(id);
    std::sort(busy_ids.begin(), busy_ids.end());
    writer.out().length(busy_ids.size());
    for (NodeId id : busy_ids) {
      writer.out().u64(id);
      writer.out().f64(busy_until_.at(id));
    }
  }
  writer.end_section();

  writer.begin_section(snap::kSectionNodes);
  snap::write_node_table(writer.out(), table_);
  writer.end_section();

  writer.begin_section(snap::kSectionOverlay);
  const std::uint32_t overlay_kind = overlay_->snapshot_kind();
  if (overlay_kind == 0) {
    throw snap::SnapshotError("overlay type does not support snapshotting");
  }
  writer.out().u32(overlay_kind);
  overlay_->save_state(writer.out());
  writer.end_section();

  writer.begin_section(snap::kSectionQueue);
  {
    // Drain a copy in pop order — the canonical (time, seq) order, which is
    // also exactly the order a restored engine re-encounters the events in.
    auto pending = queue_;
    writer.out().length(pending.size());
    while (!pending.empty()) {
      const Event& event = pending.top();
      writer.out().f64(event.time);
      writer.out().u64(event.seq);
      writer.out().u8(static_cast<std::uint8_t>(event.kind));
      writer.out().u64(event.from);
      writer.out().u64(event.to);
      writer.out().length(event.payload.size());
      writer.out().bytes(event.payload);
      pending.pop();
    }
  }
  writer.end_section();

  return writer.finish();
}

void AsyncEngine::restore_snapshot(std::span<const std::byte> bytes) {
  snap::SnapshotReader reader(bytes, snap::EngineKind::kAsync);
  wire::Reader meta = reader.section(snap::kSectionMeta);
  wire::Reader engine = reader.section(snap::kSectionEngine);
  wire::Reader nodes = reader.section(snap::kSectionNodes);
  wire::Reader overlay = reader.section(snap::kSectionOverlay);
  wire::Reader queue = reader.section(snap::kSectionQueue);
  reader.expect_end();

  if (meta.f64() != config_.gossip_period ||
      meta.f64() != config_.period_jitter ||
      meta.f64() != config_.latency_min ||
      meta.f64() != config_.latency_max ||
      meta.f64() != config_.message_loss ||
      meta.f64() != config_.churn_per_second ||
      meta.u64() != config_.seed ||
      !same_async_plan(snap::read_fault_plan(meta), config_.faults)) {
    throw wire::DecodeError("snapshot engine config mismatch");
  }
  meta.expect_done();

  const double now = engine.f64();
  const std::uint64_t next_seq = engine.u64();
  rng::Rng global(0);
  snap::read_rng(engine, global);
  TrafficStats totals;
  snap::read_traffic(engine, totals);
  std::unordered_map<NodeId, double> busy;
  {
    const std::size_t count = engine.length(16);
    busy.reserve(count);
    bool have_prev = false;
    NodeId prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId id = engine.u64();
      if (have_prev && id <= prev) {
        throw wire::DecodeError("busy set ids not in sorted order");
      }
      prev = id;
      have_prev = true;
      busy[id] = engine.f64();
    }
  }
  engine.expect_done();

  host::NodeTable scratch;
  snap::read_node_table(nodes, scratch, [&](Node& n) {
    AgentContext ctx = context_ref(n);
    return agent_factory_(ctx);
  });
  nodes.expect_done();

  std::vector<Event> events;
  {
    const std::size_t count = queue.length(37);  // Fixed fields + lengths.
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      Event event;
      event.time = queue.f64();
      event.seq = queue.u64();
      // Canonical form: events appear in strict pop order (time, then seq;
      // a NaN time can never compare as ordered and is rejected here too),
      // and every seq predates the scheduler's counter.
      if (i > 0 && !(event.time > events.back().time ||
                     (event.time == events.back().time &&
                      event.seq > events.back().seq))) {
        throw wire::DecodeError("event queue not in pop order");
      }
      if (event.seq >= next_seq) {
        throw wire::DecodeError("event seq ahead of scheduler counter");
      }
      const std::uint8_t kind = queue.u8();
      if (kind > static_cast<std::uint8_t>(EventKind::kMaintenance)) {
        throw wire::DecodeError("unknown event kind in snapshot");
      }
      event.kind = static_cast<EventKind>(kind);
      event.from = queue.u64();
      event.to = queue.u64();
      const std::size_t payload = queue.length(1);
      const auto view = queue.bytes(payload);
      event.payload.assign(view.begin(), view.end());
      events.push_back(std::move(event));
    }
  }
  queue.expect_done();

  if (overlay.u32() != overlay_->snapshot_kind()) {
    throw wire::DecodeError("snapshot overlay kind mismatch");
  }
  overlay_->restore_state(overlay);  // Transactional (host/overlay.hpp).

  table_ = std::move(scratch);
  now_ = now;
  next_seq_ = next_seq;
  rng_ = global;
  total_traffic_ = totals;
  busy_until_ = std::move(busy);
  queue_ = std::priority_queue<Event, std::vector<Event>, EventLater>(
      EventLater{}, std::move(events));
  if (recorder_ != nullptr) {
    recorder_->manifest().set("resume_round",
                              static_cast<std::uint64_t>(round()));
    recorder_->manifest().set("resume_digest", snap::fnv1a(bytes));
  }
}

}  // namespace adam2::sim
