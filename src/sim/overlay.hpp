// Overlay abstraction: who can gossip with whom.
//
// The abstract Overlay and the HostView seam live in the host substrate
// library (host/overlay.hpp, host/view.hpp); the aliases below keep the
// established sim:: spellings working. Two concrete overlays are provided
// here, matching the paper's system model (§III):
//
//  * StaticRandomOverlay — a fixed random graph (the controlled setting for
//    convergence experiments without churn);
//  * CyclonOverlay (sim/cyclon.hpp) — a Cyclon-style peer-sampling service
//    whose descriptors piggyback attribute values, which also feeds the
//    neighbour-based bootstrap of §V/§VII-B.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "host/overlay.hpp"
#include "host/view.hpp"
#include "rng/rng.hpp"
#include "host/types.hpp"
#include "stats/cdf.hpp"

namespace adam2::sim {

using host::Channel;
using host::HostView;
using host::NodeId;
using host::Overlay;
using host::Round;

/// Fixed random graph of target degree `degree`. Links are bidirectional;
/// churned-in nodes link to `degree` random live peers.
class StaticRandomOverlay final : public Overlay {
 public:
  explicit StaticRandomOverlay(std::size_t degree);

  void build_initial(std::span<const NodeId> ids, const HostView& host,
                     rng::Rng& rng) override;
  void add_node(NodeId id, const HostView& host, rng::Rng& rng) override;
  void remove_node(NodeId id) override;
  [[nodiscard]] std::optional<NodeId> pick_gossip_target(
      NodeId id, rng::Rng& rng) const override;
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const override;
  [[nodiscard]] std::vector<stats::Value> known_attribute_values(
      NodeId id, const HostView& host) const override;

  // host::snapshot integration (DESIGN.md §12): kind 1 = static random
  // graph. Links are encoded per node in sorted id order, each node's
  // neighbour list in stored order (pick_gossip_target indexes into it).
  [[nodiscard]] std::uint32_t snapshot_kind() const override { return 1; }
  void save_state(wire::Writer& out) const override;
  void restore_state(wire::Reader& in) override;

 private:
  struct Links {
    std::vector<NodeId> out;
  };

  void link(NodeId a, NodeId b);

  std::size_t degree_;
  std::unordered_map<NodeId, Links> links_;
};

}  // namespace adam2::sim
