// Overlay abstraction: who can gossip with whom.
//
// The paper's system model (§III) organises peers in a P2P overlay where each
// peer maintains links to a small number of randomly selected neighbours, and
// neighbour sets change over time through gossip-based peer sampling [11].
// Two implementations are provided:
//
//  * StaticRandomOverlay — a fixed random graph (the controlled setting for
//    convergence experiments without churn);
//  * CyclonOverlay      — a Cyclon-style peer-sampling service whose
//    descriptors piggyback attribute values, which also feeds the
//    neighbour-based bootstrap of §V/§VII-B.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "rng/rng.hpp"
#include "sim/types.hpp"
#include "stats/cdf.hpp"

namespace adam2::sim {

/// The narrow engine interface substrate components may call back into.
class HostView {
 public:
  virtual ~HostView() = default;

  [[nodiscard]] virtual bool is_live(NodeId id) const = 0;
  [[nodiscard]] virtual stats::Value attribute_of(NodeId id) const = 0;
  [[nodiscard]] virtual Round round() const = 0;
  [[nodiscard]] virtual std::span<const NodeId> live_ids() const = 0;

  /// Records one message of `bytes` bytes from `sender` to `receiver`.
  virtual void record_traffic(NodeId sender, NodeId receiver, Channel channel,
                              std::size_t bytes) = 0;
};

class Overlay {
 public:
  virtual ~Overlay() = default;

  /// Builds the initial topology over `ids`. Default: add nodes one by one.
  virtual void build_initial(std::span<const NodeId> ids, const HostView& host,
                             rng::Rng& rng);

  /// Wires a (new) node into the overlay using currently live peers.
  virtual void add_node(NodeId id, const HostView& host, rng::Rng& rng) = 0;

  /// Tears a departed node out of the overlay (its links become stale).
  virtual void remove_node(NodeId id) = 0;

  /// A uniformly random current neighbour to gossip with; nullopt when the
  /// node has no usable neighbour. The returned node may be dead — the engine
  /// detects that and records a failed contact, as a real system would.
  [[nodiscard]] virtual std::optional<NodeId> pick_gossip_target(
      NodeId id, rng::Rng& rng) const = 0;

  /// Current neighbour ids of `id` (for inspection and bootstrap).
  [[nodiscard]] virtual std::vector<NodeId> neighbors(NodeId id) const = 0;

  /// Attribute values of peers this node has (recently) learned about, used
  /// by the neighbour-based interpolation-point bootstrap (§V). For static
  /// overlays these are the direct neighbours' values; Cyclon additionally
  /// caches values carried by shuffled descriptors.
  [[nodiscard]] virtual std::vector<stats::Value> known_attribute_values(
      NodeId id, const HostView& host) const = 0;

  /// Per-round maintenance (e.g. Cyclon view shuffles). Default: none.
  virtual void maintain(HostView& host, rng::Rng& rng);
};

/// Fixed random graph of target degree `degree`. Links are bidirectional;
/// churned-in nodes link to `degree` random live peers.
class StaticRandomOverlay final : public Overlay {
 public:
  explicit StaticRandomOverlay(std::size_t degree);

  void build_initial(std::span<const NodeId> ids, const HostView& host,
                     rng::Rng& rng) override;
  void add_node(NodeId id, const HostView& host, rng::Rng& rng) override;
  void remove_node(NodeId id) override;
  [[nodiscard]] std::optional<NodeId> pick_gossip_target(
      NodeId id, rng::Rng& rng) const override;
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const override;
  [[nodiscard]] std::vector<stats::Value> known_attribute_values(
      NodeId id, const HostView& host) const override;

 private:
  struct Links {
    std::vector<NodeId> out;
  };

  void link(NodeId a, NodeId b);

  std::size_t degree_;
  std::unordered_map<NodeId, Links> links_;
};

}  // namespace adam2::sim
