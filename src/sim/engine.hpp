// Cycle-driven gossip simulation engine (PeerSim-equivalent substrate).
//
// Execution model per round, matching §IV and PeerSim's cycle-driven mode:
//   1. every live agent gets on_round_start (TTL bookkeeping, instance
//      creation);
//   2. the overlay runs its maintenance (peer-sampling shuffles);
//   3. every live node, in random order, initiates one gossip exchange with
//      an overlay-chosen neighbour: request -> response, both as encoded
//      byte buffers with traffic accounted; dead targets count as failed
//      contacts; optional message loss can drop either direction;
//   4. churn replaces a configured fraction of nodes with fresh ones (the
//      model of §VII-G), each bootstrapped by a live neighbour;
//   5. registered observers and metrics sinks run (metric probes).
//
// Everything is deterministic given the config seed, and — thanks to the
// per-node stream discipline documented in cycle_engine.hpp — bit-identical
// to sim::ParallelEngine at any thread count.
#pragma once

#include <memory>
#include <vector>

#include "sim/cycle_engine.hpp"

namespace adam2::sim {

class Engine final : public CycleEngine {
 public:
  /// Creates `initial_attributes.size()` nodes with those attribute values,
  /// builds the overlay over them, and instantiates one agent per node.
  /// `attribute_source` supplies values for churned-in nodes; pass nullptr
  /// only if churn_rate == 0.
  Engine(EngineConfig config, std::vector<stats::Value> initial_attributes,
         std::unique_ptr<Overlay> overlay, AgentFactory agent_factory,
         AttributeSource attribute_source);

  void run_round() override;

 private:
  std::vector<NodeId> order_scratch_;
};

}  // namespace adam2::sim
