// Cycle-driven gossip simulation engine (PeerSim-equivalent substrate).
//
// Execution model per round, matching §IV and PeerSim's cycle-driven mode:
//   1. every live agent gets on_round_start (TTL bookkeeping, instance
//      creation);
//   2. the overlay runs its maintenance (peer-sampling shuffles);
//   3. every live node, in random order, initiates one gossip exchange with
//      an overlay-chosen neighbour: request -> response, both as encoded
//      byte buffers with traffic accounted; dead targets count as failed
//      contacts; optional message loss can drop either direction;
//   4. churn replaces a configured fraction of nodes with fresh ones (the
//      model of §VII-G), each bootstrapped by a live neighbour;
//   5. registered observers run (metric probes).
//
// Everything is deterministic given the config seed.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "rng/rng.hpp"
#include "sim/agent.hpp"
#include "sim/overlay.hpp"
#include "sim/traffic.hpp"
#include "sim/types.hpp"

namespace adam2::sim {

struct EngineConfig {
  /// Fraction of live nodes replaced per round (0.001 = the paper's typical
  /// churn of 0.1% per round, §VII-G).
  double churn_rate = 0.0;
  /// Probability that any single message (request or response) is lost.
  double message_loss = 0.0;
  /// Master seed; every node and subsystem derives its stream from it.
  std::uint64_t seed = 0xada2;
};

/// One simulated node.
struct Node {
  NodeId id = 0;
  stats::Value attribute = 0;
  Round birth_round = 0;
  bool alive = false;
  TrafficStats traffic;
  rng::Rng rng{0};
  std::unique_ptr<NodeAgent> agent;
};

class Engine final : public HostView {
 public:
  /// Creates `initial_attributes.size()` nodes with those attribute values,
  /// builds the overlay over them, and instantiates one agent per node.
  /// `attribute_source` supplies values for churned-in nodes; pass nullptr
  /// only if churn_rate == 0.
  Engine(EngineConfig config, std::vector<stats::Value> initial_attributes,
         std::unique_ptr<Overlay> overlay, AgentFactory agent_factory,
         AttributeSource attribute_source);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  void run_round();
  void run_rounds(std::size_t count);

  // -- HostView ----------------------------------------------------------
  [[nodiscard]] bool is_live(NodeId id) const override;
  [[nodiscard]] stats::Value attribute_of(NodeId id) const override;
  [[nodiscard]] Round round() const override { return round_; }
  [[nodiscard]] std::span<const NodeId> live_ids() const override {
    return live_ids_;
  }
  void record_traffic(NodeId sender, NodeId receiver, Channel channel,
                      std::size_t bytes) override;

  // -- Introspection / experiment control --------------------------------
  [[nodiscard]] std::size_t live_count() const { return live_ids_.size(); }
  [[nodiscard]] NodeAgent& agent(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Node& mutable_node(NodeId id);
  [[nodiscard]] Overlay& overlay() { return *overlay_; }
  [[nodiscard]] rng::Rng& rng() { return rng_; }
  [[nodiscard]] NodeId random_live_node();

  /// Attribute values of all live nodes (the ground truth population).
  [[nodiscard]] std::vector<stats::Value> live_attribute_values() const;

  /// Updates a node's attribute (dynamic-attribute scenarios, §VII-F).
  void set_attribute(NodeId id, stats::Value value);

  /// Global traffic totals (sums over all nodes, including departed ones).
  [[nodiscard]] const TrafficStats& total_traffic() const { return total_traffic_; }

  /// Count of all nodes ever created (live + departed).
  [[nodiscard]] std::size_t nodes_ever() const { return nodes_.size(); }

  /// Runs `fn(*this)` after every round.
  using Observer = std::function<void(Engine&)>;
  void add_observer(Observer fn) { observers_.push_back(std::move(fn)); }

  /// Builds the context for a direct agent call from experiment drivers
  /// (e.g. to start a scripted aggregation instance on a chosen node).
  [[nodiscard]] AgentContext context_for(NodeId id);

  /// Immediately replaces `count` random live nodes (manual churn trigger,
  /// also used by failure-injection tests).
  void churn_nodes(std::size_t count);

  /// Removes one specific node (targeted failure injection).
  void kill_node(NodeId id);

 private:
  Node& node_ref(NodeId id);
  const Node& node_ref(NodeId id) const;

  void spawn_node(stats::Value attribute, bool bootstrap);
  void remove_from_live(NodeId id);
  void do_exchange(Node& initiator);
  void apply_churn();

  EngineConfig config_;
  rng::Rng rng_;
  std::unique_ptr<Overlay> overlay_;
  AgentFactory agent_factory_;
  AttributeSource attribute_source_;

  std::vector<Node> nodes_;                       // Indexed by creation order.
  std::unordered_map<NodeId, std::size_t> index_; // id -> nodes_ slot.
  std::vector<NodeId> live_ids_;
  std::unordered_map<NodeId, std::size_t> live_pos_;  // id -> live_ids_ slot.
  NodeId next_id_ = 0;
  Round round_ = 0;
  TrafficStats total_traffic_;
  std::vector<Observer> observers_;
  std::vector<NodeId> order_scratch_;
};

}  // namespace adam2::sim
