#include "sim/engine.hpp"

namespace adam2::sim {

Engine::Engine(EngineConfig config, std::vector<stats::Value> initial_attributes,
               std::unique_ptr<Overlay> overlay, AgentFactory agent_factory,
               AttributeSource attribute_source)
    : CycleEngine(config, std::move(initial_attributes), std::move(overlay),
                  std::move(agent_factory), std::move(attribute_source)) {}

void Engine::run_round() {
  record_round_begin();

  // 1. Round start for every live agent.
  for (NodeId id : table_.live_ids()) {
    Node& n = table_.at(id);
    AgentContext ctx = make_context(*this, *overlay_, n, round_);
    n.agent->on_round_start(ctx);
  }

  // 2. Overlay maintenance (peer-sampling shuffles).
  overlay_->maintain(*this, rng_);

  // 3. Gossip exchanges in random order. The target pick comes first and
  //    from the initiator's control stream — one pick per live node per
  //    round, silent or not — which is exactly the plan phase of the
  //    parallel engine run inline.
  const auto live = table_.live_ids();
  order_scratch_.assign(live.begin(), live.end());
  rng_.shuffle(order_scratch_);
  for (NodeId id : order_scratch_) {
    if (!table_.is_live(id)) continue;  // Killed mid-round by a test hook.
    Node& initiator = table_.at(id);
    const auto target = overlay_->pick_gossip_target(id, initiator.pick_rng);
    if (recorder_ == nullptr) {
      exchange_with(initiator, target);
    } else {
      // Recorded inline, which is plan order — exactly the order the
      // parallel engine drains its outcome slots in, so both traces match.
      obs::ExchangeOutcome outcome;
      exchange_with(initiator, target, &outcome);
      recorder_->exchange(round_, outcome);
    }
  }

  // 4. Fault-plan crash-restarts (serial; no-op without a plan).
  apply_crashes();

  // 5. Churn.
  apply_churn();

  // 6. Observers, metrics sinks.
  finish_round();
}

}  // namespace adam2::sim
