#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace adam2::sim {

Engine::Engine(EngineConfig config,
               std::vector<stats::Value> initial_attributes,
               std::unique_ptr<Overlay> overlay, AgentFactory agent_factory,
               AttributeSource attribute_source)
    : config_(config),
      rng_(config.seed),
      overlay_(std::move(overlay)),
      agent_factory_(std::move(agent_factory)),
      attribute_source_(std::move(attribute_source)) {
  if (!overlay_) throw std::invalid_argument("engine requires an overlay");
  if (!agent_factory_) throw std::invalid_argument("engine requires an agent factory");
  if (config_.churn_rate > 0.0 && !attribute_source_) {
    throw std::invalid_argument("churn requires an attribute source");
  }

  nodes_.reserve(initial_attributes.size());
  live_ids_.reserve(initial_attributes.size());
  for (stats::Value value : initial_attributes) {
    spawn_node(value, /*bootstrap=*/false);
  }
  overlay_->build_initial(live_ids_, *this, rng_);
}

void Engine::spawn_node(stats::Value attribute, bool bootstrap) {
  const NodeId id = next_id_++;
  Node node;
  node.id = id;
  node.attribute = attribute;
  // Churned-in nodes (bootstrap=true) arrive at the end of the current round
  // and are only present from the next one, so instances started this round
  // must not count them as participants.
  node.birth_round = bootstrap ? round_ + 1 : round_;
  node.alive = true;
  node.rng = rng_.split(id);
  nodes_.push_back(std::move(node));
  index_[id] = nodes_.size() - 1;
  live_pos_[id] = live_ids_.size();
  live_ids_.push_back(id);

  Node& stored = nodes_.back();
  AgentContext ctx{*this, *overlay_, id, round_, stored.birth_round, stored.attribute,
                   stored.rng};
  stored.agent = agent_factory_(ctx);
  if (!stored.agent) throw std::runtime_error("agent factory returned null");

  if (!bootstrap) return;

  // Wire the newcomer into the overlay, then run the join-time state
  // transfer (§IV: joining nodes are bootstrapped by their initial
  // neighbours). A joiner keeps asking neighbours until one supplies a
  // usable state or a few attempts fail — a dead contact or a neighbour
  // that churned in moments ago and has nothing yet must not leave the
  // newcomer permanently uninitialised.
  overlay_->add_node(id, *this, rng_);
  auto request = stored.agent->make_bootstrap_request(ctx);
  if (request.empty()) return;
  constexpr int kBootstrapAttempts = 4;
  for (int attempt = 0; attempt < kBootstrapAttempts; ++attempt) {
    const auto target = overlay_->pick_gossip_target(id, stored.rng);
    if (!target || !is_live(*target)) {
      ++stored.traffic.failed_contacts;
      ++total_traffic_.failed_contacts;
      continue;
    }
    record_traffic(id, *target, Channel::kBootstrap, request.size());
    Node& neighbour = node_ref(*target);
    AgentContext nctx{*this,
                      *overlay_,
                      neighbour.id,
                      round_,
                      neighbour.birth_round,
                      neighbour.attribute,
                      neighbour.rng};
    auto response = neighbour.agent->handle_bootstrap_request(nctx, request);
    if (response.empty()) continue;
    record_traffic(*target, id, Channel::kBootstrap, response.size());
    if (stored.agent->handle_bootstrap_response(ctx, response)) break;
  }
}

Node& Engine::node_ref(NodeId id) {
  auto it = index_.find(id);
  if (it == index_.end()) throw std::out_of_range("unknown node id");
  return nodes_[it->second];
}

const Node& Engine::node_ref(NodeId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) throw std::out_of_range("unknown node id");
  return nodes_[it->second];
}

bool Engine::is_live(NodeId id) const {
  auto it = index_.find(id);
  return it != index_.end() && nodes_[it->second].alive;
}

stats::Value Engine::attribute_of(NodeId id) const {
  return node_ref(id).attribute;
}

void Engine::record_traffic(NodeId sender, NodeId receiver, Channel channel,
                            std::size_t bytes) {
  auto record = [&](NodeId id, auto&& fn) {
    auto it = index_.find(id);
    if (it != index_.end()) fn(nodes_[it->second].traffic);
  };
  record(sender, [&](TrafficStats& t) { t.on(channel).add_send(bytes); });
  record(receiver, [&](TrafficStats& t) { t.on(channel).add_receive(bytes); });
  total_traffic_.on(channel).add_send(bytes);
  total_traffic_.on(channel).add_receive(bytes);
}

NodeAgent& Engine::agent(NodeId id) {
  Node& n = node_ref(id);
  return *n.agent;
}

const Node& Engine::node(NodeId id) const { return node_ref(id); }

Node& Engine::mutable_node(NodeId id) { return node_ref(id); }

NodeId Engine::random_live_node() {
  if (live_ids_.empty()) throw std::runtime_error("no live nodes");
  return live_ids_[rng_.below(live_ids_.size())];
}

std::vector<stats::Value> Engine::live_attribute_values() const {
  std::vector<stats::Value> values;
  values.reserve(live_ids_.size());
  for (NodeId id : live_ids_) values.push_back(node_ref(id).attribute);
  return values;
}

void Engine::set_attribute(NodeId id, stats::Value value) {
  node_ref(id).attribute = value;
}

AgentContext Engine::context_for(NodeId id) {
  Node& n = node_ref(id);
  return AgentContext{*this, *overlay_, n.id, round_, n.birth_round, n.attribute, n.rng};
}

void Engine::run_round() {
  // 1. Round start for every live agent.
  for (NodeId id : live_ids_) {
    Node& n = node_ref(id);
    AgentContext ctx{*this, *overlay_, n.id, round_, n.birth_round, n.attribute, n.rng};
    n.agent->on_round_start(ctx);
  }

  // 2. Overlay maintenance (peer-sampling shuffles).
  overlay_->maintain(*this, rng_);

  // 3. Gossip exchanges in random order.
  order_scratch_ = live_ids_;
  rng_.shuffle(order_scratch_);
  for (NodeId id : order_scratch_) {
    if (!is_live(id)) continue;  // Killed mid-round by a test hook.
    do_exchange(node_ref(id));
  }

  // 4. Churn.
  apply_churn();

  // 5. Observers.
  for (const Observer& fn : observers_) fn(*this);

  ++round_;
}

void Engine::run_rounds(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) run_round();
}

void Engine::do_exchange(Node& initiator) {
  AgentContext ictx{*this,
                    *overlay_,
                    initiator.id,
                    round_,
                    initiator.birth_round,
                    initiator.attribute,
                    initiator.rng};
  auto request = initiator.agent->make_request(ictx);
  if (request.empty()) return;

  const auto target = overlay_->pick_gossip_target(initiator.id, initiator.rng);
  if (!target || !is_live(*target) || *target == initiator.id) {
    ++initiator.traffic.failed_contacts;
    ++total_traffic_.failed_contacts;
    return;
  }

  record_traffic(initiator.id, *target, Channel::kAggregation, request.size());
  if (config_.message_loss > 0.0 && rng_.bernoulli(config_.message_loss)) {
    ++total_traffic_.dropped_messages;
    return;
  }

  Node& responder = node_ref(*target);
  AgentContext rctx{*this,
                    *overlay_,
                    responder.id,
                    round_,
                    responder.birth_round,
                    responder.attribute,
                    responder.rng};
  auto response = responder.agent->handle_request(rctx, request);
  if (response.empty()) return;

  record_traffic(responder.id, initiator.id, Channel::kAggregation,
                 response.size());
  if (config_.message_loss > 0.0 && rng_.bernoulli(config_.message_loss)) {
    ++total_traffic_.dropped_messages;
    return;
  }
  initiator.agent->handle_response(ictx, response);
}

void Engine::apply_churn() {
  if (config_.churn_rate <= 0.0 || live_ids_.empty()) return;
  const double expected = config_.churn_rate * static_cast<double>(live_ids_.size());
  auto count = static_cast<std::size_t>(expected);
  if (rng_.bernoulli(expected - std::floor(expected))) ++count;
  churn_nodes(count);
}

void Engine::churn_nodes(std::size_t count) {
  count = std::min(count, live_ids_.size());
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId victim = live_ids_[rng_.below(live_ids_.size())];
    kill_node(victim);
  }
  if (!attribute_source_) return;
  for (std::size_t i = 0; i < count; ++i) {
    spawn_node(attribute_source_(rng_), /*bootstrap=*/true);
  }
}

void Engine::kill_node(NodeId id) {
  Node& n = node_ref(id);
  if (!n.alive) return;
  n.alive = false;
  n.agent.reset();  // State dies with the node (its mass is lost, §VII-G).
  overlay_->remove_node(id);
  remove_from_live(id);
}

void Engine::remove_from_live(NodeId id) {
  auto it = live_pos_.find(id);
  assert(it != live_pos_.end());
  const std::size_t pos = it->second;
  const NodeId moved = live_ids_.back();
  live_ids_[pos] = moved;
  live_ids_.pop_back();
  live_pos_[moved] = pos;
  live_pos_.erase(id);
}

}  // namespace adam2::sim
