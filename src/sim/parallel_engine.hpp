// Sharded parallel cycle engine for paper-scale runs (N = 100,000 and up).
//
// Runs the exact round structure of the serial Engine, but executes the
// embarrassingly-parallel phases on a worker pool and the exchange phase
// under a dependency-ordered scheduler. A given seed produces bit-identical
// results at any thread count, including thread count 1 and the serial
// Engine itself (golden replay test in tests/parallel_engine_test.cpp).
//
// Round phases:
//   1. round start   — parallel: agents only touch their own node's state
//                      and read immutable-for-the-phase host/overlay state;
//   2. maintenance   — serial: overlay shuffles mutate shared views;
//   3. plan          — serial shuffle of the initiation order (global
//                      stream), then parallel: each initiator's gossip
//                      target is pre-drawn from its own control stream;
//   4. exchange      — parallel: one *unit* per initiator (make_request,
//                      loss draw, handle_request, loss draw,
//                      handle_response — all state it touches belongs to the
//                      two participants). Units conflict when they share a
//                      participant; conflicting units must run in plan
//                      (shuffle) order to match the serial engine, so each
//                      node keeps the plan-ordered list of units it
//                      participates in and a unit becomes ready only when it
//                      is at the head of all its participants' lists. The
//                      dependency DAG is fixed by the plan (targets are
//                      pre-drawn), every unit draws randomness only from its
//                      initiator's control/agent streams, and global traffic
//                      counters accumulate into per-worker slots merged at
//                      the phase barrier — so the outcome is independent of
//                      the actual interleaving;
//   5. churn         — serial (global stream);
//   6. observers     — serial.
//
// Concurrency primitives normally live in host/ and runtime/ only
// (adam2_lint rule `confinement`); this engine is the sanctioned third
// place — it IS the sharded substrate, and its unit gates (atomics) are
// the mechanism behind the bit-identical-at-any-thread-count guarantee.
// adam2-lint: allow-file(confinement)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "host/pool.hpp"
#include "sim/cycle_engine.hpp"

namespace adam2::sim {

class ParallelEngine final : public CycleEngine {
 public:
  /// Same contract as Engine, plus `threads`: worker threads used for the
  /// parallel phases (0 and 1 both mean single-threaded execution).
  ParallelEngine(EngineConfig config, std::size_t threads,
                 std::vector<stats::Value> initial_attributes,
                 std::unique_ptr<Overlay> overlay, AgentFactory agent_factory,
                 AttributeSource attribute_source);

  void run_round() override;

  [[nodiscard]] std::size_t threads() const { return threads_; }

 protected:
  [[nodiscard]] TrafficStats& totals() override;

 private:
  /// Runs fn(0..count-1) across the pool (chunked work stealing); inline
  /// when single-threaded. Worker totals slots are bound for the duration.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);
  /// Merges per-worker traffic accumulators into the global totals
  /// (commutative integer sums — deterministic regardless of which worker
  /// counted what).
  void merge_worker_totals();

  void plan_targets();
  void run_units();
  void run_units_parallel();
  void exec_unit(std::uint32_t position);

  std::size_t threads_;
  std::unique_ptr<host::WorkerPool> pool_;  // Only when threads_ > 1.
  std::vector<TrafficStats> worker_totals_;

  // Per-round plan: shuffled initiation order and pre-drawn targets.
  std::vector<NodeId> order_;
  std::vector<std::optional<NodeId>> targets_;

  // Exchange-outcome slots, one per plan position, used only with a recorder
  // attached: workers fill their own unit's slot during the exchange phase
  // and the main thread drains them in plan order after the barrier — so the
  // recorded stream is byte-identical to the serial engine's at any thread
  // count (the pool join publishes the writes).
  std::vector<obs::ExchangeOutcome> outcomes_;

  // Exchange scheduler scratch, rebuilt each round (indices are *positions*
  // in order_; node slots are NodeTable creation slots).
  static constexpr std::uint32_t kNoSlot = 0xffffffffU;
  std::vector<std::uint32_t> unit_slots_;    // 2 per unit: initiator, target.
  std::vector<std::uint32_t> slot_offsets_;  // per-slot prefix into slot_units_.
  std::vector<std::uint32_t> slot_units_;    // plan-ordered unit lists.
  std::vector<std::uint32_t> slot_cursor_;   // per-slot progress.
  std::unique_ptr<std::atomic<std::uint32_t>[]> pending_;  // per-unit gate.
  std::size_t pending_capacity_ = 0;
};

}  // namespace adam2::sim
