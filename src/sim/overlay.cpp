#include "sim/overlay.hpp"

#include <algorithm>
#include <cassert>

namespace adam2::sim {

StaticRandomOverlay::StaticRandomOverlay(std::size_t degree)
    : degree_(degree) {
  assert(degree_ >= 1);
}

void StaticRandomOverlay::link(NodeId a, NodeId b) {
  links_[a].out.push_back(b);
  links_[b].out.push_back(a);
}

void StaticRandomOverlay::build_initial(std::span<const NodeId> ids,
                                        const HostView& /*host*/,
                                        rng::Rng& rng) {
  links_.clear();
  links_.reserve(ids.size());
  if (ids.size() < 2) {
    for (NodeId id : ids) links_[id];
    return;
  }
  // Random ring (guarantees connectivity) plus random chords up to `degree_`.
  std::vector<NodeId> order(ids.begin(), ids.end());
  rng.shuffle(order);
  for (std::size_t i = 0; i < order.size(); ++i) {
    link(order[i], order[(i + 1) % order.size()]);
  }
  const std::size_t chords_per_node = degree_ > 2 ? (degree_ - 2) / 2 : 0;
  for (NodeId id : ids) {
    for (std::size_t c = 0; c < chords_per_node; ++c) {
      NodeId other = ids[rng.below(ids.size())];
      if (other != id) link(id, other);
    }
  }
}

void StaticRandomOverlay::add_node(NodeId id, const HostView& host,
                                   rng::Rng& rng) {
  links_[id];  // Ensure the entry exists even if no peer is available.
  const auto live = host.live_ids();
  if (live.empty()) return;
  for (std::size_t attempts = 0, added = 0;
       added < degree_ && attempts < degree_ * 8; ++attempts) {
    NodeId other = live[rng.below(live.size())];
    if (other == id) continue;
    link(id, other);
    ++added;
  }
}

void StaticRandomOverlay::remove_node(NodeId id) {
  auto it = links_.find(id);
  if (it == links_.end()) return;
  // Drop the reverse links eagerly so neighbour lists stay small; a dead
  // forward link discovered by a peer is handled as a failed contact.
  for (NodeId peer : it->second.out) {
    auto peer_it = links_.find(peer);
    if (peer_it == links_.end()) continue;
    std::erase(peer_it->second.out, id);
  }
  links_.erase(it);
}

std::optional<NodeId> StaticRandomOverlay::pick_gossip_target(
    NodeId id, rng::Rng& rng) const {
  auto it = links_.find(id);
  if (it == links_.end() || it->second.out.empty()) return std::nullopt;
  const auto& out = it->second.out;
  return out[rng.below(out.size())];
}

std::vector<NodeId> StaticRandomOverlay::neighbors(NodeId id) const {
  auto it = links_.find(id);
  if (it == links_.end()) return {};
  return it->second.out;
}

std::vector<stats::Value> StaticRandomOverlay::known_attribute_values(
    NodeId id, const HostView& host) const {
  std::vector<stats::Value> values;
  auto it = links_.find(id);
  if (it == links_.end()) return values;
  values.reserve(it->second.out.size());
  for (NodeId peer : it->second.out) {
    if (host.is_live(peer)) values.push_back(host.attribute_of(peer));
  }
  return values;
}

void StaticRandomOverlay::save_state(wire::Writer& out) const {
  out.u64(degree_);
  std::vector<NodeId> ids;
  ids.reserve(links_.size());
  // Bucket order cannot leak into the snapshot: ids are sorted before
  // anything is encoded.
  // adam2-lint: allow(unordered-iter)
  for (const auto& [id, links] : links_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  out.length(ids.size());
  for (NodeId id : ids) {
    out.u64(id);
    const std::vector<NodeId>& neighbours = links_.at(id).out;
    out.length(neighbours.size());
    for (NodeId peer : neighbours) out.u64(peer);
  }
}

void StaticRandomOverlay::restore_state(wire::Reader& in) {
  if (in.u64() != degree_) {
    throw wire::DecodeError("static overlay degree mismatch");
  }
  const std::size_t count = in.length(12);  // id + empty neighbour list.
  std::unordered_map<NodeId, Links> links;
  links.reserve(count);
  bool have_prev = false;
  NodeId prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId id = in.u64();
    if (have_prev && id <= prev) {
      throw wire::DecodeError("overlay node ids not in sorted order");
    }
    prev = id;
    have_prev = true;
    const std::size_t n = in.length(8);
    Links& entry = links[id];
    entry.out.reserve(n);
    for (std::size_t j = 0; j < n; ++j) entry.out.push_back(in.u64());
  }
  // Transactional commit: nothing is mutated until the whole payload parsed
  // (trailing bytes included), so a rejected blob leaves the overlay intact.
  in.expect_done();
  links_ = std::move(links);
}

}  // namespace adam2::sim
