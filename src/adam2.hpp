// Umbrella header: the sanctioned public surface of the Adam2 codebase.
//
// Applications (the examples/ programs, external embedders) include this one
// header and get everything the project supports as API:
//
//   * core/      — the Adam2 protocol, the Adam2System facade, multi-value
//                  aggregation and estimate evaluation;
//   * sim/       — the serial, sharded-parallel and event-driven simulation
//                  substrates plus the overlay implementations;
//   * runtime/   — the wall-clock deployments (thread-per-node Cluster,
//                  loopback-UDP peers);
//   * obs/       — the observability layer: obs::Recorder with its metrics
//                  registry, deterministic trace and run-manifest exporters;
//   * data/      — synthetic BOINC-style populations and host-trace loading;
//   * stats/     — empirical CDFs and the paper's error metrics;
//   * rng/       — the deterministic RNG used throughout.
//
// Everything not reachable from here (host/ internals, wire/ codecs,
// baselines/) is implementation detail and may change without notice.
// Layering: this file lives directly in src/, which the adam2_lint layer map
// ranks as "top" — the one place that may name every subsystem.
#pragma once

#include "core/config.hpp"
#include "core/evaluation.hpp"
#include "core/multi.hpp"
#include "core/protocol.hpp"
#include "core/system.hpp"

#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/overlay.hpp"
#include "sim/parallel_engine.hpp"

#include "runtime/cluster.hpp"
#include "runtime/udp.hpp"

#include "obs/export.hpp"
#include "obs/recorder.hpp"

#include "data/boinc_synth.hpp"
#include "data/trace.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"
#include "stats/error_metrics.hpp"
