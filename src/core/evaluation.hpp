// Population-level error evaluation (§III aggregates):
//
//   Errm = max over peers of Errm(p),   Erra = avg over peers of Erra(p),
//
// computed either from the peers' completed Estimates or from the in-flight
// state of a specific instance (per-round curves like Fig. 6/12). Evaluating
// every peer is exact but O(N * (V + lambda)); a uniform peer sample is
// supported for large sweeps (the paper reports cross-peer standard
// deviations below 1e-5, so sampling loses essentially nothing).
//
// The evaluators are templates over the hosting engine: both the
// cycle-driven sim::Engine and the event-driven sim::AsyncEngine expose the
// required surface (live_ids/node/agent/rng).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>

#include "core/protocol.hpp"
// WorkerPool is the substrates' fork-join pool; the sharded evaluation mode
// borrows it so the claiming counter and all synchronisation stay inside
// host/. Documented layering exception (DESIGN.md §10): observer-side
// tooling, no protocol state crosses the boundary.
#include "host/pool.hpp"  // adam2-lint: allow(layering)
#include "stats/error_metrics.hpp"
#include "stats/summary.hpp"

namespace adam2::core {

struct EvaluationOptions {
  /// Evaluate at most this many uniformly sampled live peers (0 = all).
  std::size_t peer_sample = 0;

  /// Include peers whose estimate was inherited from a neighbour at join
  /// time (Fig. 13 includes them; Fig. 12 does not).
  bool include_inherited = true;

  /// Only evaluate peers born at or before this round (excludes nodes that
  /// joined during the instance under evaluation, §VII-G).
  std::optional<wire::Round> born_by;

  /// Peers without a usable estimate count with the maximum error of one
  /// (the paper's convention while an instance has not reached everyone).
  bool missing_counts_as_one = true;

  /// Worker threads for the per-peer error computation (<= 1 = serial).
  /// Results are reduced serially in fixed peer order, so the six
  /// PopulationErrors fields are bit-identical at any thread count.
  std::size_t threads = 1;
};

struct PopulationErrors {
  double max_err = 0.0;      ///< Errm: max over peers of max distance.
  double avg_err = 0.0;      ///< Erra: avg over peers of avg distance.
  double stddev_max = 0.0;   ///< Cross-peer stddev of Errm(p).
  double stddev_avg = 0.0;   ///< Cross-peer stddev of Erra(p).
  std::size_t peers = 0;     ///< Peers evaluated.
  std::size_t missing = 0;   ///< Peers lacking a usable estimate.
};

namespace detail {

/// Applies the sampling option and returns the peer ids to evaluate.
/// Sampling uses a private stream seeded from the round number, so observing
/// the system never perturbs the protocol's randomness (evaluating or not
/// evaluating leaves every later round bit-identical).
template <typename Host>
std::vector<wire::NodeId> pick_peers(Host& engine,
                                    const EvaluationOptions& options) {
  const auto live = engine.live_ids();
  std::vector<wire::NodeId> peers(live.begin(), live.end());
  if (options.peer_sample > 0 && peers.size() > options.peer_sample) {
    rng::Rng sampler(0xE7A10000ULL ^
                     (static_cast<std::uint64_t>(engine.round()) + 1) *
                         0x9e3779b97f4a7c15ULL);
    std::vector<wire::NodeId> sampled;
    sampled.reserve(options.peer_sample);
    for (std::size_t idx :
         sampler.sample_indices(peers.size(), options.peer_sample)) {
      sampled.push_back(peers[idx]);
    }
    peers = std::move(sampled);
  }
  return peers;
}

/// Core aggregation loop: `errors_of` returns a peer's ErrorPair or nullopt
/// when the peer has nothing usable.
///
/// With options.threads > 1 the per-peer calls — the expensive part, each a
/// full-domain error sweep — fan out over a WorkerPool. The peer list is
/// fixed up front and every worker writes only its claimed slots, so the
/// engine is read concurrently but never mutated; `errors_of` must therefore
/// be const with respect to engine state (all evaluators are). The reduction
/// deliberately stays serial and walks the slots in peer order: floating-
/// point accumulation order is what makes serial and sharded runs
/// bit-identical, which a parallel RunningStat merge would not be.
template <typename Host, typename ErrorsOf>
PopulationErrors aggregate(Host& engine, const EvaluationOptions& options,
                           ErrorsOf&& errors_of) {
  std::vector<wire::NodeId> peers;
  for (wire::NodeId id : pick_peers(engine, options)) {
    const auto& node = engine.node(id);
    if (options.born_by && node.birth_round > *options.born_by) continue;
    peers.push_back(id);
  }

  std::vector<std::optional<stats::ErrorPair>> results(peers.size());
  if (options.threads > 1 && peers.size() > 1) {
    host::WorkerPool pool(std::min(options.threads, peers.size()));
    pool.run_indexed(peers.size(),
                     [&](std::size_t i) { results[i] = errors_of(peers[i]); });
  } else {
    for (std::size_t i = 0; i < peers.size(); ++i) {
      results[i] = errors_of(peers[i]);
    }
  }

  PopulationErrors out;
  stats::RunningStat max_stat;
  stats::RunningStat avg_stat;
  for (std::optional<stats::ErrorPair>& errors : results) {
    if (!errors) {
      ++out.missing;
      if (!options.missing_counts_as_one) continue;
      errors = stats::ErrorPair{1.0, 1.0};
    }
    max_stat.add(errors->max_err);
    avg_stat.add(errors->avg_err);
  }
  out.peers = max_stat.count();
  if (out.peers > 0) {
    out.max_err = max_stat.max();
    out.avg_err = avg_stat.mean();
    out.stddev_max = max_stat.stddev();
    out.stddev_avg = avg_stat.stddev();
  }
  return out;
}

template <typename Host>
const Adam2Agent* adam2_agent(Host& engine, wire::NodeId id) {
  return dynamic_cast<const Adam2Agent*>(&engine.agent(id));
}

template <typename Host>
const Estimate* usable_estimate(Host& engine, wire::NodeId id,
                                const EvaluationOptions& options) {
  const Adam2Agent* agent = adam2_agent(engine, id);
  if (agent == nullptr || !agent->estimate()) return nullptr;
  const Estimate& est = *agent->estimate();
  if (est.inherited && !options.include_inherited) return nullptr;
  if (est.cdf.empty()) return nullptr;
  return &est;
}

}  // namespace detail

/// Errors of the peers' *completed* estimates over the entire CDF domain.
template <typename Host>
PopulationErrors evaluate_estimates(Host& engine,
                                    const stats::EmpiricalCdf& truth,
                                    const EvaluationOptions& options = {}) {
  const stats::DiscreteErrorEvaluator errors_against_truth(truth);
  return detail::aggregate(
      engine, options, [&](wire::NodeId id) -> std::optional<stats::ErrorPair> {
        const Estimate* est = detail::usable_estimate(engine, id, options);
        if (est == nullptr) return std::nullopt;
        return errors_against_truth(est->cdf);
      });
}

/// Errors at the estimates' own interpolation points only.
template <typename Host>
PopulationErrors evaluate_estimate_points(
    Host& engine, const stats::EmpiricalCdf& truth,
    const EvaluationOptions& options = {}) {
  return detail::aggregate(
      engine, options, [&](wire::NodeId id) -> std::optional<stats::ErrorPair> {
        const Estimate* est = detail::usable_estimate(engine, id, options);
        if (est == nullptr || est->points.empty()) return std::nullopt;
        return stats::point_errors(truth, est->points);
      });
}

/// In-flight errors of a running instance, over the entire CDF domain
/// (each participant's current H interpolated with its current extremes).
template <typename Host>
PopulationErrors evaluate_instance_cdf(Host& engine, wire::InstanceId id,
                                       const stats::EmpiricalCdf& truth,
                                       const EvaluationOptions& options = {}) {
  const stats::DiscreteErrorEvaluator errors_against_truth(truth);
  return detail::aggregate(
      engine, options,
      [&](wire::NodeId peer) -> std::optional<stats::ErrorPair> {
        const Adam2Agent* agent = detail::adam2_agent(engine, peer);
        if (agent == nullptr) return std::nullopt;
        const InstanceSlot* state = agent->instance(id);
        if (state == nullptr) return std::nullopt;
        const auto cdf = stats::interpolate_with_extremes(
            state->points(), state->min_value, state->max_value);
        return errors_against_truth(cdf);
      });
}

/// In-flight errors of a running instance at its interpolation points.
template <typename Host>
PopulationErrors evaluate_instance_points(
    Host& engine, wire::InstanceId id, const stats::EmpiricalCdf& truth,
    const EvaluationOptions& options = {}) {
  return detail::aggregate(
      engine, options,
      [&](wire::NodeId peer) -> std::optional<stats::ErrorPair> {
        const Adam2Agent* agent = detail::adam2_agent(engine, peer);
        if (agent == nullptr) return std::nullopt;
        const InstanceSlot* state = agent->instance(id);
        if (state == nullptr) return std::nullopt;
        return stats::point_errors(truth, state->points());
      });
}

/// Mean relative error of the peers' self-assessment (§VII-H):
/// avg over peers of |Err(p) - EstErr(p)| / Err(p), where `use_max` selects
/// the Errm (true) or Erra (false) variant.
template <typename Host>
double confidence_estimation_error(Host& engine,
                                   const stats::EmpiricalCdf& truth,
                                   bool use_max,
                                   const EvaluationOptions& options = {}) {
  const stats::DiscreteErrorEvaluator errors_against_truth(truth);
  stats::RunningStat relative;
  for (wire::NodeId id : detail::pick_peers(engine, options)) {
    const auto& node = engine.node(id);
    if (options.born_by && node.birth_round > *options.born_by) continue;
    const Estimate* est = detail::usable_estimate(engine, id, options);
    if (est == nullptr || !est->self_assessment) continue;
    const stats::ErrorPair actual = errors_against_truth(est->cdf);
    const double true_err = use_max ? actual.max_err : actual.avg_err;
    const double est_err = use_max ? est->self_assessment->max_err
                                   : est->self_assessment->avg_err;
    if (true_err <= 0.0) continue;
    relative.add(std::abs(true_err - est_err) / true_err);
  }
  return relative.mean();
}

}  // namespace adam2::core
