#include "core/instance_store.hpp"

#include <algorithm>
#include <cassert>

#include "core/point_ops.hpp"

namespace adam2::core {

// ---------------------------------------------------------------- InstanceSlot

bool InstanceSlot::mergeable_with(const wire::InstancePayload& other) const {
  return other.id == id && point_ops::same_thresholds(points(), other.points) &&
         point_ops::same_thresholds(verification(), other.verification);
}

bool InstanceSlot::mergeable_with(const wire::InstancePayloadView& other) const {
  return other.id == id && point_ops::same_thresholds(points(), other.points) &&
         point_ops::same_thresholds(verification(), other.verification);
}

void InstanceSlot::average_with(const wire::InstancePayload& other) {
  assert(other.id == id);
  point_ops::average_points(points(), other.points);
  point_ops::average_points(verification(), other.verification);
  weight = (weight + other.weight) / 2.0;
  min_value = std::min(min_value, other.min_value);
  max_value = std::max(max_value, other.max_value);
}

void InstanceSlot::average_with(const wire::InstancePayloadView& other) {
  assert(other.id == id);
  point_ops::average_points(points(), other.points);
  point_ops::average_points(verification(), other.verification);
  weight = (weight + other.weight) / 2.0;
  min_value = std::min(min_value, other.min_value);
  max_value = std::max(max_value, other.max_value);
}

// --------------------------------------------------------------- InstanceStore

InstanceStore::InstanceStore()
    : index_(kInitialBuckets, kNpos), mask_(kInitialBuckets - 1) {}

InstanceSlot* InstanceStore::find(wire::InstanceId id) {
  std::size_t b = bucket_of(id);
  while (index_[b] != kNpos) {
    InstanceSlot& slot = slots_[index_[b]];
    if (slot.id == id) return &slot;
    b = (b + 1) & mask_;
  }
  return nullptr;
}

const InstanceSlot* InstanceStore::find(wire::InstanceId id) const {
  return const_cast<InstanceStore*>(this)->find(id);
}

void InstanceStore::insert_index(std::uint32_t row) {
  std::size_t b = bucket_of(slots_[row].id);
  while (index_[b] != kNpos) b = (b + 1) & mask_;
  index_[b] = row;
}

void InstanceStore::rehash(std::size_t buckets) {
  index_.assign(buckets, kNpos);
  mask_ = buckets - 1;
  for (std::uint32_t row : order_) insert_index(row);
}

InstanceSlot& InstanceStore::emplace_row(wire::InstanceId id) {
  assert(find(id) == nullptr);
  // Grow at 70% occupancy, before the new element lands.
  if ((order_.size() + 1) * 10 >= index_.size() * 7) rehash(index_.size() * 2);
  std::uint32_t row;
  if (!free_rows_.empty()) {
    row = free_rows_.back();
    free_rows_.pop_back();
    slots_[row] = InstanceSlot{};
  } else {
    row = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[row].id = id;
  insert_index(row);
  order_.push_back(row);
  return slots_[row];
}

InstanceSlot& InstanceStore::start(wire::InstanceId id,
                                   std::uint32_t start_round, std::uint16_t ttl,
                                   std::span<const double> thresholds,
                                   std::span<const double> verification,
                                   const ContributionFn& contribution,
                                   double local_min, double local_max) {
  InstanceSlot& slot = emplace_row(id);
  slot.start_round = start_round;
  slot.ttl = ttl;
  slot.weight = 1.0;  // Unique initiator: the averaged mean becomes 1/N.
  slot.min_value = local_min;
  slot.max_value = local_max;
  slot.points_ = arena_.allocate(thresholds.size());
  slot.points_count_ = static_cast<std::uint32_t>(thresholds.size());
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    slot.points_.data[i] = {thresholds[i], contribution(thresholds[i])};
  }
  slot.verification_ = arena_.allocate(verification.size());
  slot.verification_count_ = static_cast<std::uint32_t>(verification.size());
  for (std::size_t i = 0; i < verification.size(); ++i) {
    slot.verification_.data[i] = {verification[i],
                                  contribution(verification[i])};
  }
  return slot;
}

template <typename Payload>
InstanceSlot& InstanceStore::join_impl(const Payload& payload,
                                       const ContributionFn& contribution,
                                       double local_min, double local_max) {
  InstanceSlot& slot = emplace_row(payload.id);
  slot.start_round = payload.start_round;
  slot.ttl = payload.ttl;
  slot.weight = 0.0;
  slot.min_value = local_min;
  slot.max_value = local_max;
  slot.points_ = arena_.allocate(payload.points.size());
  slot.points_count_ = static_cast<std::uint32_t>(payload.points.size());
  std::size_t i = 0;
  for (const stats::CdfPoint p : payload.points) {
    slot.points_.data[i++] = {p.t, contribution(p.t)};
  }
  slot.verification_ = arena_.allocate(payload.verification.size());
  slot.verification_count_ =
      static_cast<std::uint32_t>(payload.verification.size());
  i = 0;
  for (const stats::CdfPoint p : payload.verification) {
    slot.verification_.data[i++] = {p.t, contribution(p.t)};
  }
  return slot;
}

InstanceSlot& InstanceStore::join(const wire::InstancePayloadView& payload,
                                  const ContributionFn& contribution,
                                  double local_min, double local_max) {
  return join_impl(payload, contribution, local_min, local_max);
}

InstanceSlot& InstanceStore::join(const wire::InstancePayload& payload,
                                  const ContributionFn& contribution,
                                  double local_min, double local_max) {
  return join_impl(payload, contribution, local_min, local_max);
}

void InstanceStore::erase_bucket(std::size_t hole) {
  index_[hole] = kNpos;
  std::size_t next = hole;
  while (true) {
    next = (next + 1) & mask_;
    if (index_[next] == kNpos) return;
    const std::size_t home = bucket_of(slots_[index_[next]].id);
    // `next`'s element may fill the hole only if the hole lies on its probe
    // path, i.e. its displacement from home reaches at least back to the
    // hole (cyclic distances).
    if (((next - home) & mask_) >= ((next - hole) & mask_)) {
      index_[hole] = index_[next];
      index_[next] = kNpos;
      hole = next;
    }
  }
}

InstanceSlot& InstanceStore::restore(wire::InstanceId id,
                                     std::uint32_t start_round,
                                     std::uint16_t ttl, std::uint8_t flags,
                                     double weight, double min_value,
                                     double max_value,
                                     std::uint64_t touched_epoch,
                                     std::span<const stats::CdfPoint> points,
                                     std::span<const stats::CdfPoint> verification) {
  InstanceSlot& slot = emplace_row(id);
  slot.start_round = start_round;
  slot.ttl = ttl;
  slot.flags = flags;
  slot.weight = weight;
  slot.min_value = min_value;
  slot.max_value = max_value;
  slot.touched_epoch = touched_epoch;
  slot.points_ = arena_.allocate(points.size());
  slot.points_count_ = static_cast<std::uint32_t>(points.size());
  std::copy(points.begin(), points.end(), slot.points_.data);
  slot.verification_ = arena_.allocate(verification.size());
  slot.verification_count_ = static_cast<std::uint32_t>(verification.size());
  std::copy(verification.begin(), verification.end(),
            slot.verification_.data);
  return slot;
}

void InstanceStore::clear() {
  for (std::uint32_t row : order_) {
    InstanceSlot& slot = slots_[row];
    arena_.release(slot.points_.data, slot.points_.capacity);
    arena_.release(slot.verification_.data, slot.verification_.capacity);
    slot = InstanceSlot{};
    free_rows_.push_back(row);
  }
  order_.clear();
  std::fill(index_.begin(), index_.end(), kNpos);
}

void InstanceStore::erase(wire::InstanceId id) {
  std::size_t b = bucket_of(id);
  while (true) {
    assert(index_[b] != kNpos);  // Precondition: id is present.
    if (slots_[index_[b]].id == id) break;
    b = (b + 1) & mask_;
  }
  const std::uint32_t row = index_[b];
  erase_bucket(b);
  InstanceSlot& slot = slots_[row];
  arena_.release(slot.points_.data, slot.points_.capacity);
  arena_.release(slot.verification_.data, slot.verification_.capacity);
  slot = InstanceSlot{};
  free_rows_.push_back(row);
  std::erase(order_, row);
}

}  // namespace adam2::core
