#include "core/instance.hpp"

#include <algorithm>
#include <cassert>

#include "core/point_ops.hpp"

namespace adam2::core {
namespace {

std::vector<stats::CdfPoint> contribute(const std::vector<double>& thresholds,
                                        const ContributionFn& contribution) {
  std::vector<stats::CdfPoint> points;
  points.reserve(thresholds.size());
  for (double t : thresholds) points.push_back({t, contribution(t)});
  return points;
}

// Works for owned vectors and zero-copy wire::PointsView alike; both yield
// stats::CdfPoint elements.
template <typename PointRange>
std::vector<stats::CdfPoint> contribute_at(const PointRange& received,
                                           const ContributionFn& contribution) {
  std::vector<stats::CdfPoint> points;
  points.reserve(received.size());
  for (const stats::CdfPoint p : received) {
    points.push_back({p.t, contribution(p.t)});
  }
  return points;
}

using point_ops::average_points;
using point_ops::same_thresholds;

}  // namespace

bool InstanceState::mergeable_with(const wire::InstancePayload& other) const {
  return other.id == id && same_thresholds(points, other.points) &&
         same_thresholds(verification, other.verification);
}

bool InstanceState::mergeable_with(
    const wire::InstancePayloadView& other) const {
  return other.id == id && same_thresholds(points, other.points) &&
         same_thresholds(verification, other.verification);
}

InstanceState InstanceState::start(
    wire::InstanceId id, wire::Round round, std::uint16_t ttl,
    const std::vector<double>& thresholds,
    const std::vector<double>& verification_thresholds,
    const ContributionFn& contribution, double local_min, double local_max) {
  InstanceState state;
  state.id = id;
  state.start_round = round;
  state.ttl = ttl;
  state.weight = 1.0;  // Unique initiator: the averaged mean becomes 1/N.
  state.min_value = local_min;
  state.max_value = local_max;
  state.points = contribute(thresholds, contribution);
  state.verification = contribute(verification_thresholds, contribution);
  return state;
}

InstanceState InstanceState::join(const wire::InstancePayload& payload,
                                  const ContributionFn& contribution,
                                  double local_min, double local_max) {
  InstanceState state;
  state.id = payload.id;
  state.start_round = payload.start_round;
  state.ttl = payload.ttl;
  state.weight = 0.0;
  state.min_value = local_min;
  state.max_value = local_max;
  state.points = contribute_at(payload.points, contribution);
  state.verification = contribute_at(payload.verification, contribution);
  return state;
}

InstanceState InstanceState::join(const wire::InstancePayloadView& payload,
                                  const ContributionFn& contribution,
                                  double local_min, double local_max) {
  InstanceState state;
  state.id = payload.id;
  state.start_round = payload.start_round;
  state.ttl = payload.ttl;
  state.weight = 0.0;
  state.min_value = local_min;
  state.max_value = local_max;
  state.points = contribute_at(payload.points, contribution);
  state.verification = contribute_at(payload.verification, contribution);
  return state;
}

void InstanceState::average_with(const wire::InstancePayload& other) {
  assert(other.id == id);
  average_points(points, other.points);
  average_points(verification, other.verification);
  weight = (weight + other.weight) / 2.0;
  min_value = std::min(min_value, other.min_value);
  max_value = std::max(max_value, other.max_value);
}

void InstanceState::average_with(const wire::InstancePayloadView& other) {
  assert(other.id == id);
  average_points(points, other.points);
  average_points(verification, other.verification);
  weight = (weight + other.weight) / 2.0;
  min_value = std::min(min_value, other.min_value);
  max_value = std::max(max_value, other.max_value);
}

}  // namespace adam2::core
