// Multi-value-per-node extension (§IV, "Multiple Attribute Values per Node").
//
// When each node p holds a *set* A(p) of values (e.g. the sizes of its
// files), the target CDF is F(x) = |{a in A : a <= x}| / |A| over the union
// A of all sets. Each node contributes |{a in A(p) : a <= t_i}| for every
// threshold, plus |A(p)| once. Averaging drives those to avg_i (mean number
// of values below t_i per node) and avg (mean set size per node); the final
// fraction is f_i = avg_i / avg.
//
// Implementation: the set-size stream rides as one extra bookkeeping point
// with threshold +infinity — |{a <= inf}| = |A(p)| — so it averages through
// the unchanged §IV machinery and is divided out (and dropped) at
// finalisation.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace adam2::core {

class MultiValueAdam2Agent final : public Adam2Agent {
 public:
  MultiValueAdam2Agent(Adam2Config config, std::vector<stats::Value> own_values);

  [[nodiscard]] const std::vector<stats::Value>& own_values() const {
    return values_;
  }

 protected:
  [[nodiscard]] ContributionFn contribution_fn(
      const host::AgentContext& ctx) const override;
  [[nodiscard]] std::pair<double, double> local_extremes(
      const host::AgentContext& ctx) const override;
  void augment_thresholds(std::vector<double>& thresholds) const override;
  void finalize_points(std::vector<stats::CdfPoint>& points,
                       std::vector<stats::CdfPoint>& verification)
      const override;

 private:
  std::vector<stats::Value> values_;  // Sorted ascending.
};

}  // namespace adam2::core
