// Adam2System: the convenience facade tying the substrates together.
//
// Builds an Engine over the chosen overlay, one Adam2Agent per node, and
// exposes instance control plus result access — the public API the examples
// and most experiments use. Scripted experiments start instances explicitly;
// setting Adam2Config::restart_every_r > 0 instead lets nodes self-select
// probabilistically as in a real deployment (§IV).
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "core/config.hpp"
#include "core/evaluation.hpp"
#include "core/protocol.hpp"
// Adam2System is the convenience facade that *assembles* a simulator around
// the protocol; it deliberately sits on top of sim/ and is kept in core:: so
// the examples' and experiments' entry point stays `core::Adam2System`.
// Documented layering exception (DESIGN.md §10): nothing else in core/ may
// name a concrete engine.
#include "sim/cyclon.hpp"           // adam2-lint: allow(layering)
#include "sim/engine.hpp"           // adam2-lint: allow(layering)
#include "sim/parallel_engine.hpp"  // adam2-lint: allow(layering)
// Same documented exception: the facade wires the recorder into the engine
// it assembled and echoes its config into the run manifest.
#include "obs/recorder.hpp"  // adam2-lint: allow(layering)

namespace adam2::core {

enum class OverlayKind : std::uint8_t {
  kStaticRandom,  ///< Fixed random graph.
  kCyclon,        ///< Gossip peer sampling (default; feeds neighbour bootstrap).
};

struct SystemConfig {
  sim::EngineConfig engine;
  Adam2Config protocol;
  OverlayKind overlay = OverlayKind::kCyclon;
  /// Degree of the static graph / view size of Cyclon.
  std::size_t overlay_degree = 20;
  /// Worker threads for the cycle engine. 0 and 1 select the serial Engine;
  /// larger values select the sharded ParallelEngine, which produces
  /// bit-identical results at any thread count.
  std::size_t engine_threads = 0;
};

class Adam2System {
 public:
  /// Builds a system of `attributes.size()` nodes holding those values.
  /// `churn_source` provides attribute values for churned-in nodes (required
  /// when engine.churn_rate > 0, unused otherwise).
  Adam2System(SystemConfig config, std::vector<stats::Value> attributes,
              host::AttributeSource churn_source = nullptr);

  [[nodiscard]] sim::CycleEngine& engine() { return *engine_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

  /// Attaches `recorder` to the underlying engine, records the engine-start
  /// event, and echoes the effective configuration into the recorder's run
  /// manifest (seed, engine kind, protocol and overlay parameters). The
  /// facade also traces instance transitions through it. Pass nullptr to
  /// detach. The recorder is not owned and must outlive the system.
  void attach_recorder(obs::Recorder* recorder);

  /// The Adam2 agent running on `id`.
  [[nodiscard]] Adam2Agent& agent_of(host::NodeId id);

  /// Ground-truth CDF of the current live population.
  [[nodiscard]] stats::EmpiricalCdf truth() const;

  /// Starts an aggregation instance on `initiator` (default: random node).
  wire::InstanceId start_instance(std::optional<host::NodeId> initiator = {});

  /// Starts an instance and runs rounds until it has terminated everywhere;
  /// afterwards every participating node holds a fresh Estimate.
  wire::InstanceId run_instance(std::optional<host::NodeId> initiator = {});

  void run_rounds(std::size_t count) { engine_->run_rounds(count); }

  /// Population errors of the completed estimates against current truth.
  [[nodiscard]] PopulationErrors errors(
      const EvaluationOptions& options = {}) const;

 private:
  /// Shared start path returning the resolved initiator alongside the id
  /// (run_instance needs it for the instance-end trace event).
  std::pair<host::NodeId, wire::InstanceId> start_instance_on(
      std::optional<host::NodeId> initiator);

  SystemConfig config_;
  std::unique_ptr<sim::CycleEngine> engine_;
};

/// Builds the overlay for `kind` (shared with the baselines' drivers).
[[nodiscard]] std::unique_ptr<host::Overlay> make_overlay(OverlayKind kind,
                                                         std::size_t degree);

}  // namespace adam2::core
