#include "core/protocol.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "core/combine.hpp"
#include "core/point_selection.hpp"
#include "stats/error_metrics.hpp"

namespace adam2::core {
namespace {

// A parsed payload can still be hostile: the wire validation walk checks
// framing, not semantics. Reject values no honest peer can produce — an
// oversized ttl (a stuck instance that would keep a session alive for up to
// 65535 rounds), a non-finite or out-of-[0,1] weight, broken extremes, or
// non-finite threshold/value pairs. f is deliberately NOT bounded above by
// 1: the multi-value extension (§IV) legitimately exceeds it.
bool plausible(const wire::InstancePayloadView& payload,
               std::uint16_t max_ttl) {
  if (payload.ttl > max_ttl) return false;
  if (!std::isfinite(payload.weight) || payload.weight < 0.0 ||
      payload.weight > 1.0) {
    return false;
  }
  if (!std::isfinite(payload.min_value) || !std::isfinite(payload.max_value) ||
      payload.min_value > payload.max_value) {
    return false;
  }
  // Thresholds may be ±inf (the multi-value size sentinel rides along as
  // t = +inf), so only NaN is impossible there. Values must be finite and
  // non-negative; in single-value payloads (no sentinel) they are averages
  // of 0/1 indicators and so also bounded by 1 — a bound that catches
  // bit-flips landing in an f mantissa, which framing cannot detect.
  bool multi_value = false;
  for (const stats::CdfPoint p : payload.points) {
    if (std::isnan(p.t) || !std::isfinite(p.f) || p.f < 0.0) return false;
    if (std::isinf(p.t)) multi_value = true;
  }
  if (!multi_value) {
    for (const stats::CdfPoint p : payload.points) {
      if (p.f > 1.0) return false;
    }
  }
  for (const stats::CdfPoint p : payload.verification) {
    if (std::isnan(p.t) || !std::isfinite(p.f) || p.f < 0.0) return false;
    if (!multi_value && p.f > 1.0) return false;
  }
  return true;
}

}  // namespace

Adam2Agent::Adam2Agent(Adam2Config config)
    : config_(config), lambda_(config.lambda) {
  assert(config_.lambda >= 1);
  assert(config_.instance_ttl >= 1);
}

ContributionFn Adam2Agent::contribution_fn(
    const host::AgentContext& ctx) const {
  const double attribute = static_cast<double>(ctx.attribute);
  return [attribute](double t) { return attribute <= t ? 1.0 : 0.0; };
}

std::pair<double, double> Adam2Agent::local_extremes(
    const host::AgentContext& ctx) const {
  const double attribute = static_cast<double>(ctx.attribute);
  return {attribute, attribute};
}

bool Adam2Agent::eligible(const host::AgentContext& ctx,
                          std::uint32_t start_round,
                          wire::InstanceId id) const {
  // Nodes ignore instances that started before they entered the system
  // (§VII-G), so a partial contribution never distorts a running average —
  // and never rejoin an instance this node already finalised (stragglers'
  // messages can arrive after local termination).
  return start_round >= ctx.birth_round && !finalized_ids_.contains(id);
}

void Adam2Agent::on_round_start(host::AgentContext& ctx) {
  // TTL bookkeeping first. An instance with ttl == 0 has already gossiped
  // through its full ttl's worth of rounds and terminates now; the others
  // burn one round. (Finalising before decrementing gives an instance with
  // ttl = T exactly T exchange rounds.)
  std::vector<wire::InstanceId> finished;
  for (InstanceSlot& slot : store_) {
    if (slot.ttl == 0) {
      finished.push_back(slot.id);
      continue;
    }
    --slot.ttl;
  }
  for (wire::InstanceId id : finished) {
    // Finalisation leaves the hot path: copy the slot into the owning
    // cold-path form (the finalize pipeline builds vectors and an Estimate
    // anyway), recycle the slot, then finalise.
    const InstanceSlot& slot = *store_.find(id);
    InstanceState state;
    state.id = slot.id;
    state.start_round = slot.start_round;
    state.ttl = slot.ttl;
    state.flags = slot.flags;
    state.weight = slot.weight;
    state.min_value = slot.min_value;
    state.max_value = slot.max_value;
    state.points.assign(slot.points().begin(), slot.points().end());
    state.verification.assign(slot.verification().begin(),
                              slot.verification().end());
    store_.erase(id);
    finalize(ctx, std::move(state));
  }

  // Probabilistic instance creation: Ps = 1 / (Np * R) per round (§IV).
  if (config_.restart_every_r > 0.0) {
    const double np =
        n_estimate_ > 0.0 ? n_estimate_ : config_.initial_n_estimate;
    if (np >= 1.0) {
      const double ps = 1.0 / (np * config_.restart_every_r);
      if (ctx.rng.bernoulli(ps)) start_instance(ctx);
    }
  }
}

std::vector<double> Adam2Agent::choose_thresholds(host::AgentContext& ctx) {
  if (estimate_ && !estimate_->cdf.empty()) {
    return select_points(estimate_->cdf, lambda_, config_.heuristic);
  }
  // Bootstrap (§VII-B): no prior estimate.
  std::vector<stats::Value> known =
      ctx.overlay.known_attribute_values(ctx.self, ctx.host);
  known.push_back(ctx.attribute);
  if (config_.bootstrap == BootstrapPoints::kNeighbourBased) {
    return neighbour_thresholds(known, lambda_, ctx.rng);
  }
  const auto [lo_it, hi_it] = std::minmax_element(known.begin(), known.end());
  return uniform_thresholds(static_cast<double>(*lo_it),
                            static_cast<double>(*hi_it), lambda_);
}

std::vector<double> Adam2Agent::choose_verification(host::AgentContext& ctx,
                                                    double lo, double hi) {
  if (config_.verification_points == 0) return {};
  if (config_.verification_mode == VerificationMode::kBisection && estimate_ &&
      !estimate_->cdf.empty()) {
    return bisection_thresholds(estimate_->cdf, config_.verification_points);
  }
  // Uniform verification thresholds between the known extremes (§VI). Use a
  // private stream so verification never perturbs the threshold choice.
  (void)ctx;
  return uniform_thresholds(lo, hi, config_.verification_points);
}

wire::InstanceId Adam2Agent::start_instance(host::AgentContext& ctx) {
  const wire::InstanceId id{ctx.self, next_seq_++};
  std::vector<double> thresholds = choose_thresholds(ctx);

  double lo = 0.0;
  double hi = 0.0;
  if (estimate_ && !estimate_->cdf.empty()) {
    lo = estimate_->min_value;
    hi = estimate_->max_value;
  } else if (!thresholds.empty()) {
    lo = thresholds.front();
    hi = thresholds.back();
  }
  std::vector<double> verification = choose_verification(ctx, lo, hi);

  augment_thresholds(thresholds);
  const auto [local_min, local_max] = local_extremes(ctx);
  store_.start(id, ctx.round, config_.instance_ttl, thresholds, verification,
               contribution_fn(ctx), local_min, local_max);
  return id;
}

std::span<const std::byte> Adam2Agent::make_request(host::AgentContext& ctx) {
  if (store_.empty()) return {};
  // Exact-size reservation: skips the doubling-growth copies while the
  // scratch warms up to the steady-state message size (one cheap pass over
  // the slot headers; no effect once capacity has been seen).
  std::size_t encoded = 1 + 8 + 4;
  for (const InstanceSlot& slot : store_) {
    encoded += wire::kInstancePayloadFixedSize +
               16 * (slot.points().size() + slot.verification().size());
  }
  wire_scratch_.reserve(encoded);
  wire::Adam2MessageBuilder builder(wire_scratch_,
                                    wire::MessageType::kAdam2Request, ctx.self);
  // Payloads travel in join/start order: wire bytes must be a function of
  // protocol history, not of any hash-bucket layout.
  for (const InstanceSlot& slot : store_) builder.add(slot.ref());
  return builder.finish();
}

std::span<const std::byte> Adam2Agent::handle_request(
    host::AgentContext& ctx, std::span<const std::byte> request) {
  // The reply is encoded into this agent's scratch while the request is
  // iterated in place; the two must not alias (they never do: the request
  // lives in the initiator's scratch or in a substrate-owned envelope).
  assert(request.data() != wire_scratch_.view().data());

  std::optional<wire::Adam2MessageView> parsed;
  try {
    parsed = wire::Adam2MessageView::parse(request);
  } catch (const wire::DecodeError&) {
    return {};  // Corrupt or foreign message: drop it, as a deployment would.
  }
  const wire::Adam2MessageView& incoming = *parsed;

  wire::Adam2MessageBuilder reply(wire_scratch_,
                                  wire::MessageType::kAdam2Response, ctx.self);

  // Every active instance the request mentions — in any payload, even ones
  // the flag/eligibility skips below ignore — is marked with the current
  // epoch so the "unmentioned instances" pass stays linear in |active_|.
  const std::uint64_t epoch = ++request_epoch_;

  for (const wire::InstancePayloadView& payload : incoming) {
    InstanceSlot* slot = store_.find(payload.id);
    if (slot != nullptr) slot->touched_epoch = epoch;
    if ((payload.flags & wire::kFlagEmptySet) != 0) continue;
    if (!eligible(ctx, payload.start_round, payload.id)) continue;
    if (!plausible(payload, config_.instance_ttl)) continue;
    if (slot != nullptr) {
      // Corruption that survived the framing walk (or a foreign restart of
      // the same id) must not reach average_with: mismatched point counts
      // would read/write out of bounds.
      if (!slot->mergeable_with(payload)) continue;
      // Symmetric exchange: reply with the pre-merge state, then average.
      reply.add(slot->ref());
      slot->average_with(payload);
      continue;
    }
    // First contact with this instance: join it. (The join may grow the
    // store; `slot` is dead past this point.)
    const auto [local_min, local_max] = local_extremes(ctx);
    InstanceSlot& joined =
        store_.join(payload, contribution_fn(ctx), local_min, local_max);
    if (config_.join_policy == JoinPolicy::kMassConserving) {
      // Reply with the initial values so both sides end at the same average:
      // total mass grows by exactly this node's contribution.
      reply.add(joined.ref());
    } else {
      // Figure-1 literal: reply with an empty set, which the requester will
      // ignore. Not mass conserving; kept for the ablation bench.
      reply.add_empty_set(joined.ref());
    }
    joined.average_with(payload);
    joined.touched_epoch = epoch;
  }

  // Instances the requester did not mention spread through responses too —
  // again in join/start order, for the same replay-stability reason as
  // make_request.
  for (const InstanceSlot& slot : store_) {
    if (slot.touched_epoch != epoch) reply.add(slot.ref());
  }

  if (reply.count() == 0) return {};
  return reply.finish();
}

void Adam2Agent::handle_response(host::AgentContext& ctx,
                                 std::span<const std::byte> response) {
  std::optional<wire::Adam2MessageView> parsed;
  try {
    parsed = wire::Adam2MessageView::parse(response);
  } catch (const wire::DecodeError&) {
    return;
  }
  for (const wire::InstancePayloadView& payload : *parsed) {
    if ((payload.flags & wire::kFlagEmptySet) != 0) continue;
    if (!eligible(ctx, payload.start_round, payload.id)) continue;
    if (!plausible(payload, config_.instance_ttl)) continue;
    InstanceSlot* slot = store_.find(payload.id);
    if (slot != nullptr) {
      if (!slot->mergeable_with(payload)) continue;  // See handle_request.
      slot->average_with(payload);
      continue;
    }
    const auto [local_min, local_max] = local_extremes(ctx);
    InstanceSlot& joined =
        store_.join(payload, contribution_fn(ctx), local_min, local_max);
    if (config_.join_policy == JoinPolicy::kPaperLiteral) {
      joined.average_with(payload);
    }
    // Mass-conserving requester join: initialise only — the responder cannot
    // learn our initial values within this exchange, so averaging here would
    // create mass out of nothing.
  }
}

void Adam2Agent::finalize(host::AgentContext& /*ctx*/, InstanceState&& state) {
  finalized_ids_.insert(state.id);
  finalized_order_.push_back(state.id);
  while (finalized_order_.size() > kFinalizedMemory) {
    finalized_ids_.erase(finalized_order_.front());
    finalized_order_.pop_front();
  }

  std::vector<stats::CdfPoint> points = std::move(state.points);
  std::vector<stats::CdfPoint> verification = std::move(state.verification);
  finalize_points(points, verification);

  Estimate result;
  result.instance = state.id;
  result.completed_round = state.start_round + config_.instance_ttl;
  result.min_value = state.min_value;
  result.max_value = state.max_value;
  result.points = points;
  result.cdf =
      stats::interpolate_with_extremes(points, state.min_value, state.max_value);
  if (config_.enforce_monotone) result.cdf = result.cdf.make_monotone();
  if (state.weight > 1e-12) {
    result.n_estimate = 1.0 / state.weight;
    n_estimate_ = result.n_estimate;
  }
  if (!verification.empty()) {
    result.self_assessment = stats::estimation_errors(result.cdf, verification);
    if (config_.adaptive) apply_adaptive_tuning(*result.self_assessment);
  }
  if (config_.combine_last_instances > 1) {
    history_.push_back(result);
    while (history_.size() > config_.combine_last_instances) {
      history_.pop_front();
    }
    const std::vector<Estimate> window(history_.begin(), history_.end());
    estimate_ = combine_estimates(window);
  } else {
    estimate_ = std::move(result);
  }
  ++completed_;
}

void Adam2Agent::apply_adaptive_tuning(const stats::ErrorPair& assessment) {
  const AdaptiveTuning& tuning = *config_.adaptive;
  const double est = config_.verification_mode == VerificationMode::kBisection
                         ? assessment.max_err
                         : assessment.avg_err;
  double next = static_cast<double>(lambda_);
  if (est > tuning.target_avg_error) {
    next *= tuning.grow_factor;
  } else if (est < tuning.slack * tuning.target_avg_error) {
    next *= tuning.shrink_factor;
  }
  lambda_ = std::clamp(static_cast<std::size_t>(std::llround(next)),
                       tuning.min_lambda, tuning.max_lambda);
}

std::vector<std::byte> Adam2Agent::make_bootstrap_request(
    host::AgentContext& ctx) {
  return wire::BootstrapRequest{ctx.self}.encode();
}

std::vector<std::byte> Adam2Agent::handle_bootstrap_request(
    host::AgentContext& ctx, std::span<const std::byte> request) {
  try {
    (void)wire::BootstrapRequest::decode(request);
  } catch (const wire::DecodeError&) {
    return {};
  }
  wire::BootstrapResponse response;
  response.sender = ctx.self;
  response.n_estimate = n_estimate_;
  if (estimate_) {
    response.min_value = estimate_->min_value;
    response.max_value = estimate_->max_value;
    response.cdf_knots.assign(estimate_->cdf.knots().begin(),
                              estimate_->cdf.knots().end());
  }
  return response.encode();
}

bool Adam2Agent::handle_bootstrap_response(host::AgentContext& ctx,
                                           std::span<const std::byte> response) {
  wire::BootstrapResponse incoming;
  try {
    incoming = wire::BootstrapResponse::decode(response);
  } catch (const wire::DecodeError&) {
    return false;
  }
  // Same semantic hardening as gossip payloads: framing validated, values
  // not. A corrupted-but-decodable bootstrap must not seed a NaN estimate.
  if (std::isfinite(incoming.n_estimate) && incoming.n_estimate > 0.0) {
    n_estimate_ = incoming.n_estimate;
  }
  if (incoming.cdf_knots.empty()) return false;  // Neighbour had nothing yet.
  if (!std::isfinite(incoming.min_value) || !std::isfinite(incoming.max_value)) {
    return false;
  }
  for (const stats::CdfPoint& k : incoming.cdf_knots) {
    if (!std::isfinite(k.t) || !std::isfinite(k.f)) return false;
  }

  // Joining nodes receive an initial CDF approximation from a neighbour
  // (§VII-G); it is marked inherited so evaluations can distinguish it.
  Estimate inherited;
  inherited.completed_round = ctx.round;
  inherited.min_value = incoming.min_value;
  inherited.max_value = incoming.max_value;
  inherited.cdf = stats::PiecewiseLinearCdf{std::move(incoming.cdf_knots)};
  const auto knots = inherited.cdf.knots();
  if (knots.size() > 2) {
    inherited.points.assign(knots.begin() + 1, knots.end() - 1);
  }
  inherited.n_estimate = incoming.n_estimate;
  inherited.inherited = true;
  estimate_ = std::move(inherited);
  return true;
}

// ------------------------------------------------- host::snapshot (§12) ----

namespace {

void write_points(wire::Writer& out, std::span<const stats::CdfPoint> points) {
  out.length(points.size());
  for (const stats::CdfPoint p : points) {
    out.f64(p.t);
    out.f64(p.f);
  }
}

std::vector<stats::CdfPoint> read_points(wire::Reader& in) {
  const std::size_t count = in.length(16);
  std::vector<stats::CdfPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = in.f64();
    const double f = in.f64();
    points.push_back({t, f});
  }
  return points;
}

/// Canonical-form flag byte: anything but 0/1 is rejected, so every accepted
/// blob re-encodes to exactly the bytes it was restored from.
bool read_flag(wire::Reader& in, bool& value) {
  const std::uint8_t raw = in.u8();
  if (raw > 1) return false;
  value = raw != 0;
  return true;
}

/// Bit-level point equality. operator== is the wrong tool here: it calls
/// NaN != NaN and -0.0 == 0.0, while the canonical re-encode contract
/// compares encoded bytes.
bool bit_identical(std::span<const stats::CdfPoint> a,
                   std::span<const stats::CdfPoint> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(stats::CdfPoint)) == 0);
}

void write_estimate(wire::Writer& out, const Estimate& e) {
  out.u64(e.instance.initiator);
  out.u32(e.instance.seq);
  out.u32(e.completed_round);
  write_points(out, e.cdf.knots());
  write_points(out, e.points);
  out.f64(e.min_value);
  out.f64(e.max_value);
  out.f64(e.n_estimate);
  out.u8(e.self_assessment ? 1 : 0);
  if (e.self_assessment) {
    out.f64(e.self_assessment->max_err);
    out.f64(e.self_assessment->avg_err);
  }
  out.u8(e.inherited ? 1 : 0);
}

bool read_estimate(wire::Reader& in, Estimate& e) {
  e.instance.initiator = in.u64();
  e.instance.seq = in.u32();
  e.completed_round = in.u32();
  const std::vector<stats::CdfPoint> knots = read_points(in);
  e.cdf = stats::PiecewiseLinearCdf{knots};
  // The cdf constructor sorts, merges and clamps. Knots it would alter
  // cannot have come from save_state (the constructor is idempotent on its
  // own output) and would re-encode differently — reject as non-canonical
  // instead of accepting a silently different state.
  if (!bit_identical(e.cdf.knots(), knots)) return false;
  e.points = read_points(in);
  e.min_value = in.f64();
  e.max_value = in.f64();
  e.n_estimate = in.f64();
  bool have_assessment = false;
  if (!read_flag(in, have_assessment)) return false;
  if (have_assessment) {
    stats::ErrorPair pair;
    pair.max_err = in.f64();
    pair.avg_err = in.f64();
    e.self_assessment = pair;
  } else {
    e.self_assessment.reset();
  }
  bool inherited = false;
  if (!read_flag(in, inherited)) return false;
  e.inherited = inherited;
  return true;
}

// Minimum encoded sizes, used as length-prefix allocation guards.
constexpr std::size_t kMinSlotBytes = 8 + 4 + 4 + 2 + 1 + 3 * 8 + 8 + 4 + 4;
constexpr std::size_t kMinEstimateBytes = 8 + 4 + 4 + 4 + 4 + 3 * 8 + 1 + 1;

}  // namespace

bool Adam2Agent::save_state(wire::Writer& out) const {
  // Config echo — validated on restore, never restored (see protocol.hpp).
  out.u64(config_.lambda);
  out.u16(config_.instance_ttl);
  out.u64(config_.verification_points);
  out.u64(config_.combine_last_instances);

  out.u64(lambda_);
  out.length(store_.size());
  for (const InstanceSlot& slot : store_) {
    out.u64(slot.id.initiator);
    out.u32(slot.id.seq);
    out.u32(slot.start_round);
    out.u16(slot.ttl);
    out.u8(slot.flags);
    out.f64(slot.weight);
    out.f64(slot.min_value);
    out.f64(slot.max_value);
    out.u64(slot.touched_epoch);
    write_points(out, slot.points());
    write_points(out, slot.verification());
  }
  out.u8(estimate_ ? 1 : 0);
  if (estimate_) write_estimate(out, *estimate_);
  out.length(history_.size());
  for (const Estimate& e : history_) write_estimate(out, e);
  out.length(finalized_order_.size());
  for (const wire::InstanceId id : finalized_order_) {
    out.u64(id.initiator);
    out.u32(id.seq);
  }
  out.f64(n_estimate_);
  out.u32(next_seq_);
  out.u64(completed_);
  out.u64(request_epoch_);
  return true;
}

bool Adam2Agent::restore_state(wire::Reader& in) {
  if (in.u64() != config_.lambda || in.u16() != config_.instance_ttl ||
      in.u64() != config_.verification_points ||
      in.u64() != config_.combine_last_instances) {
    return false;  // Factory and checkpoint disagree on the protocol config.
  }

  // An honest live lambda is either the configured one or a value the
  // adaptive clamp produced; anything else (notably a corrupt huge count
  // that select_points would try to allocate) is rejected.
  const std::uint64_t lambda = in.u64();
  if (config_.adaptive) {
    if (lambda < config_.adaptive->min_lambda ||
        lambda > config_.adaptive->max_lambda) {
      return false;
    }
  } else if (lambda != config_.lambda) {
    return false;
  }
  lambda_ = static_cast<std::size_t>(lambda);

  store_.clear();
  estimate_.reset();
  history_.clear();
  finalized_ids_.clear();
  finalized_order_.clear();

  const std::size_t instances = in.length(kMinSlotBytes);
  for (std::size_t i = 0; i < instances; ++i) {
    const wire::InstanceId id{in.u64(), in.u32()};
    const std::uint32_t start_round = in.u32();
    const std::uint16_t ttl = in.u16();
    const std::uint8_t flags = in.u8();
    const double weight = in.f64();
    const double min_value = in.f64();
    const double max_value = in.f64();
    const std::uint64_t touched_epoch = in.u64();
    const std::vector<stats::CdfPoint> points = read_points(in);
    const std::vector<stats::CdfPoint> verification = read_points(in);
    if (store_.find(id) != nullptr) return false;  // Duplicate instance id.
    store_.restore(id, start_round, ttl, flags, weight, min_value, max_value,
                   touched_epoch, points, verification);
  }

  bool have_estimate = false;
  if (!read_flag(in, have_estimate)) return false;
  if (have_estimate) {
    Estimate e;
    if (!read_estimate(in, e)) return false;
    estimate_ = std::move(e);
  }

  const std::size_t history = in.length(kMinEstimateBytes);
  const bool history_fits = config_.combine_last_instances > 1
                                ? history <= config_.combine_last_instances
                                : history == 0;
  if (!history_fits) return false;
  for (std::size_t i = 0; i < history; ++i) {
    Estimate e;
    if (!read_estimate(in, e)) return false;
    history_.push_back(std::move(e));
  }

  const std::size_t finalized = in.length(12);
  if (finalized > kFinalizedMemory) return false;
  for (std::size_t i = 0; i < finalized; ++i) {
    const wire::InstanceId id{in.u64(), in.u32()};
    if (!finalized_ids_.insert(id).second) return false;  // Duplicate.
    finalized_order_.push_back(id);
  }

  n_estimate_ = in.f64();
  next_seq_ = in.u32();
  completed_ = in.u64();
  request_epoch_ = in.u64();
  return true;
}

}  // namespace adam2::core
