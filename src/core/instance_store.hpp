// Arena-backed container for a node's live aggregation instances.
//
// Replaces the map-of-vectors layout (std::unordered_map<InstanceId,
// InstanceState> + a separate insertion-order vector) that made the
// per-round merge loop chase pointers through three allocation tiers per
// instance. The store keeps:
//
//  * dense slot rows (`slots_`): one InstanceSlot per live instance — the
//    full fixed header inline plus descriptors of its H/V point blocks;
//    freed rows are recycled through a freelist;
//  * a flat open-addressing index (`index_`): power-of-two bucket array of
//    slot row numbers, linear probing, backward-shift deletion (no
//    tombstones), keyed by InstanceId;
//  * the iteration order (`order_`): slot row numbers in join/start order.
//    Every traversal — TTL pass, wire emission, the unmentioned-instances
//    reply pass — walks this, never the index: emitted payload order is a
//    function of protocol history, not of any hash layout (adam2_lint rule
//    `unordered-iter`);
//  * a stats::PointArena holding every instance's H and V series in slab
//    pages, recycled on expiry.
//
// Steady-state instance lifecycle (start / join / expire at a stable
// lambda) therefore performs zero heap allocations once all high-water
// marks have been seen (bench/micro_core pins this).
//
// Reference validity (DESIGN.md §7.5): InstanceSlot& / InstanceSlot* and
// iterators are invalidated by any start/join/erase — they may only be
// held within one handling pass that does not mutate the set of
// instances. The CdfPoint storage behind points()/verification() spans is
// stable for the lifetime of the owning instance (arena blocks never
// move), but is recycled at erase.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/instance.hpp"
#include "stats/point_arena.hpp"
#include "wire/messages.hpp"

namespace adam2::core {

/// One live instance: the wire header inline, the point series in the
/// store's arena. Field semantics are identical to InstanceState /
/// wire::InstancePayload — this is the same state in a flat layout.
class InstanceSlot {
 public:
  wire::InstanceId id;
  std::uint32_t start_round = 0;
  std::uint16_t ttl = 0;
  std::uint8_t flags = 0;
  double weight = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  /// Scratch mark used by Adam2Agent::handle_request (see InstanceState).
  std::uint64_t touched_epoch = 0;

  /// H: interpolation points, in the initiator's threshold order.
  [[nodiscard]] std::span<stats::CdfPoint> points() {
    return {points_.data, points_count_};
  }
  [[nodiscard]] std::span<const stats::CdfPoint> points() const {
    return {points_.data, points_count_};
  }
  /// V: verification points.
  [[nodiscard]] std::span<stats::CdfPoint> verification() {
    return {verification_.data, verification_count_};
  }
  [[nodiscard]] std::span<const stats::CdfPoint> verification() const {
    return {verification_.data, verification_count_};
  }

  /// Wire-encoding view of this slot (spans alias the arena storage).
  [[nodiscard]] wire::InstancePayloadRef ref() const {
    return {id,        start_round, ttl,      flags,         weight,
            min_value, max_value,   points(), verification()};
  }

  /// Same contracts as InstanceState::mergeable_with / average_with.
  [[nodiscard]] bool mergeable_with(const wire::InstancePayload& other) const;
  [[nodiscard]] bool mergeable_with(
      const wire::InstancePayloadView& other) const;
  void average_with(const wire::InstancePayload& other);
  void average_with(const wire::InstancePayloadView& other);

 private:
  friend class InstanceStore;

  stats::PointArena::Block points_;
  stats::PointArena::Block verification_;
  std::uint32_t points_count_ = 0;
  std::uint32_t verification_count_ = 0;
};

class InstanceStore {
 public:
  InstanceStore();
  // The arena pins the store's address (slots point into its inline page).
  InstanceStore(const InstanceStore&) = delete;
  InstanceStore& operator=(const InstanceStore&) = delete;

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] bool empty() const { return order_.empty(); }

  /// The slot for `id`, or nullptr. Invalidated by any start/join/erase.
  [[nodiscard]] InstanceSlot* find(wire::InstanceId id);
  [[nodiscard]] const InstanceSlot* find(wire::InstanceId id) const;

  /// Initiator-side creation (InstanceState::start semantics): weight 1,
  /// own contributions at the given thresholds, own extremes. `id` must not
  /// be present. Appended to the iteration order.
  InstanceSlot& start(wire::InstanceId id, std::uint32_t start_round,
                      std::uint16_t ttl, std::span<const double> thresholds,
                      std::span<const double> verification,
                      const ContributionFn& contribution, double local_min,
                      double local_max);

  /// Joiner-side creation from a received payload (InstanceState::join
  /// semantics): weight 0, own contributions at the payload's thresholds,
  /// own extremes. `payload.id` must not be present.
  InstanceSlot& join(const wire::InstancePayloadView& payload,
                     const ContributionFn& contribution, double local_min,
                     double local_max);
  InstanceSlot& join(const wire::InstancePayload& payload,
                     const ContributionFn& contribution, double local_min,
                     double local_max);

  /// Removes `id` (which must be present), recycling its slot row and point
  /// blocks. O(size) for the order-vector erase — identical to the old
  /// std::erase(active_order_, id).
  void erase(wire::InstanceId id);

  /// Checkpoint restore (host::snapshot, DESIGN.md §12): re-creates an
  /// instance verbatim — header fields, scratch epoch and both point series
  /// are installed exactly as given, with no contribution evaluation.
  /// Appended to the iteration order; `id` must not be present. Restoring
  /// into a non-empty store is supported (warm crash-restart hands a
  /// checkpoint to a node that kept gossiping) and differential-fuzzed.
  InstanceSlot& restore(wire::InstanceId id, std::uint32_t start_round,
                        std::uint16_t ttl, std::uint8_t flags, double weight,
                        double min_value, double max_value,
                        std::uint64_t touched_epoch,
                        std::span<const stats::CdfPoint> points,
                        std::span<const stats::CdfPoint> verification);

  /// Removes every instance, recycling all slot rows and point blocks.
  void clear();

  // Insertion-order iteration (join/start order), yielding InstanceSlot&.
  template <bool Const>
  class basic_iterator {
   public:
    using StoreT = std::conditional_t<Const, const InstanceStore, InstanceStore>;
    using SlotT = std::conditional_t<Const, const InstanceSlot, InstanceSlot>;
    using value_type = InstanceSlot;
    using difference_type = std::ptrdiff_t;

    basic_iterator() = default;
    basic_iterator(StoreT* store, std::size_t pos) : store_(store), pos_(pos) {}

    [[nodiscard]] SlotT& operator*() const {
      return store_->slots_[store_->order_[pos_]];
    }
    [[nodiscard]] SlotT* operator->() const { return &**this; }
    basic_iterator& operator++() {
      ++pos_;
      return *this;
    }
    basic_iterator operator++(int) {
      basic_iterator old = *this;
      ++pos_;
      return old;
    }
    friend bool operator==(const basic_iterator& a, const basic_iterator& b) {
      return a.pos_ == b.pos_;
    }

   private:
    StoreT* store_ = nullptr;
    std::size_t pos_ = 0;
  };
  using iterator = basic_iterator<false>;
  using const_iterator = basic_iterator<true>;

  [[nodiscard]] iterator begin() { return {this, 0}; }
  [[nodiscard]] iterator end() { return {this, order_.size()}; }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, order_.size()}; }

  // -- Introspection (tests, benches) ---------------------------------------

  /// The backing arena (heap-page / freelist counters).
  [[nodiscard]] const stats::PointArena& arena() const { return arena_; }
  /// Slot rows ever materialised (live + freelisted). Differential tests
  /// pin this to stop growing under steady churn.
  [[nodiscard]] std::size_t slot_rows() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  static constexpr std::size_t kInitialBuckets = 16;

  [[nodiscard]] std::size_t bucket_of(wire::InstanceId id) const {
    return wire::InstanceIdHash{}(id) & mask_;
  }
  /// Claims a slot row for `id` (freelist first), indexes it, appends it to
  /// the iteration order.
  InstanceSlot& emplace_row(wire::InstanceId id);
  void insert_index(std::uint32_t row);
  void rehash(std::size_t buckets);
  /// Backward-shift deletion at `hole`: keeps every remaining element
  /// reachable from its home bucket without tombstones.
  void erase_bucket(std::size_t hole);

  template <typename Payload>
  InstanceSlot& join_impl(const Payload& payload,
                          const ContributionFn& contribution, double local_min,
                          double local_max);

  stats::PointArena arena_;
  std::vector<InstanceSlot> slots_;
  std::vector<std::uint32_t> free_rows_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> index_;
  std::size_t mask_ = 0;
};

}  // namespace adam2::core
