// Configuration of the Adam2 protocol (§IV-§VI).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace adam2::core {

/// Interpolation-point refinement heuristic used when a node that already
/// holds a CDF estimate starts a new aggregation instance (§V).
enum class SelectionHeuristic : std::uint8_t {
  kHCut,    ///< Equal-quantile cut: minimises Errm on smooth CDFs (§V-A).
  kMinMax,  ///< Step-seeking split/merge (Figure 3): best Errm on steps.
  kLCut,    ///< Equal Euclidean arc-length cut: minimises Erra (§V-B).
};

/// How the very first instance (no prior estimate) places its points (§VII-B).
enum class BootstrapPoints : std::uint8_t {
  kUniform,         ///< Evenly spaced between the locally known extremes.
  kNeighbourBased,  ///< Random subset of neighbours' attribute values.
};

/// Placement of the verification points V used for self-assessment (§VI).
enum class VerificationMode : std::uint8_t {
  kUniform,    ///< Uniform thresholds: estimates Erra.
  kBisection,  ///< Iterative vertical-gap bisection: estimates Errm.
};

/// Join rule for peers that first hear of an instance. See DESIGN.md §1:
/// the literal Figure-1 rule is not mass conserving; the conserving variant
/// is the default and the literal one is kept for the ablation bench.
enum class JoinPolicy : std::uint8_t {
  kMassConserving,
  kPaperLiteral,
};

/// Self-tuning (§VI): after each instance whose self-assessment is available,
/// the number of interpolation points is adapted towards the target accuracy.
struct AdaptiveTuning {
  double target_avg_error = 0.001;  ///< Desired EstErra.
  std::size_t min_lambda = 10;
  std::size_t max_lambda = 200;
  double grow_factor = 1.5;    ///< Applied when above target.
  double shrink_factor = 0.8;  ///< Applied when far below target.
  double slack = 0.25;         ///< Shrink only when est < slack * target.
};

struct Adam2Config {
  /// Number of interpolation points lambda (paper default: 50).
  std::size_t lambda = 50;

  /// Rounds an instance lives before peers finalise it (paper: 25 rounds
  /// suffice for the averaging to converge, §VII-A).
  std::uint16_t instance_ttl = 25;

  SelectionHeuristic heuristic = SelectionHeuristic::kMinMax;
  BootstrapPoints bootstrap = BootstrapPoints::kNeighbourBased;
  JoinPolicy join_policy = JoinPolicy::kMassConserving;

  /// Number of verification points (0 disables self-assessment).
  std::size_t verification_points = 0;
  VerificationMode verification_mode = VerificationMode::kUniform;

  /// R: a node starts a new instance with probability 1 / (Np * R) per round
  /// (§IV). 0 disables probabilistic starts (scripted experiments drive
  /// instances explicitly).
  double restart_every_r = 0.0;

  /// Np used before the first completed instance provides an estimate.
  double initial_n_estimate = 0.0;

  /// Repair tiny gossip-noise inversions in the final interpolation.
  bool enforce_monotone = true;

  /// Combine the interpolation points of the last k instances into the
  /// working estimate (§VII-D; 1 = use only the newest instance). Only
  /// useful while the attribute CDF is static or slowly changing.
  std::size_t combine_last_instances = 1;

  /// Optional lambda self-tuning from the instance self-assessment.
  std::optional<AdaptiveTuning> adaptive;
};

}  // namespace adam2::core
