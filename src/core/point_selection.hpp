// Interpolation-point selection (§V) and verification-point placement (§VI).
//
// All functions are pure: they take the previous CDF interpolation (or raw
// neighbour values) and return the new threshold set, sorted and strictly
// increasing. Every selector returns exactly `lambda` thresholds, padding by
// splitting the widest gaps when a heuristic produces duplicates — constant
// message sizes keep the cost evaluation faithful.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"

namespace adam2::core {

/// `lambda` thresholds evenly spaced strictly inside (lo, hi).
[[nodiscard]] std::vector<double> uniform_thresholds(double lo, double hi,
                                                     std::size_t lambda);

/// Bootstrap from a random subset of neighbours' attribute values (§VII-B):
/// takes up to `lambda` distinct sampled values as thresholds and pads with
/// uniform points between the sampled extremes when too few are available.
[[nodiscard]] std::vector<double> neighbour_thresholds(
    std::span<const stats::Value> neighbour_values, std::size_t lambda,
    rng::Rng& rng);

/// HCut (§V-A): thresholds at the i/(lambda+1) quantiles of the previous
/// interpolation, bounding the vertical gap between consecutive points by
/// roughly 1/(lambda+1).
[[nodiscard]] std::vector<double> hcut(const stats::PiecewiseLinearCdf& prev,
                                       std::size_t lambda);

/// MinMax (Figure 3): iteratively splits the widest vertical gap while
/// removing the midpoint of the narrowest three-point cluster, homing in on
/// steps of the CDF.
[[nodiscard]] std::vector<double> minmax(const stats::PiecewiseLinearCdf& prev,
                                         std::size_t lambda);

/// LCut (§V-B): divides the previous interpolation curve into lambda + 1
/// segments of equal Euclidean length, with the t-axis rescaled by
/// (max - min) to equalise the coordinate ranges.
[[nodiscard]] std::vector<double> lcut(const stats::PiecewiseLinearCdf& prev,
                                       std::size_t lambda);

/// Verification thresholds for EstErrm (§VI): iteratively bisects the pair of
/// consecutive knots with the largest vertical distance, probing where the
/// true CDF and the interpolation most likely diverge.
[[nodiscard]] std::vector<double> bisection_thresholds(
    const stats::PiecewiseLinearCdf& prev, std::size_t count);

/// Dispatch helper over the configured heuristic.
[[nodiscard]] std::vector<double> select_points(
    const stats::PiecewiseLinearCdf& prev, std::size_t lambda,
    SelectionHeuristic heuristic);

/// Sorts, deduplicates (with tolerance), clamps into (lo, hi), and pads or
/// trims so exactly `lambda` strictly increasing thresholds remain.
/// Exposed for testing; all selectors call it on their way out.
[[nodiscard]] std::vector<double> sanitize_thresholds(std::vector<double> ts,
                                                      double lo, double hi,
                                                      std::size_t lambda);

}  // namespace adam2::core
