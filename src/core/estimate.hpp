// The result a peer holds after an aggregation instance terminates (§IV):
// the interpolated CDF, the final interpolation points, the gossiped
// extremes, the system-size estimate, and — when verification points were
// used — the node's own assessment of its approximation accuracy (§VI).
#pragma once

#include <optional>
#include <vector>

#include "stats/cdf.hpp"
#include "stats/error_metrics.hpp"
#include "wire/ids.hpp"
#include "wire/messages.hpp"

namespace adam2::core {

struct Estimate {
  wire::InstanceId instance;
  wire::Round completed_round = 0;

  /// The interpolated CDF approximation Fp.
  stats::PiecewiseLinearCdf cdf;

  /// Final interpolation points H (interior points; extremes excluded).
  std::vector<stats::CdfPoint> points;

  double min_value = 0.0;
  double max_value = 0.0;

  /// 1 / w at instance end; 0 when the weight never reached this node
  /// (e.g. the initiator died before spreading it).
  double n_estimate = 0.0;

  /// EstErr from the verification points (§VI); absent when disabled.
  /// max_err is EstErrm, avg_err is EstErra — which one is meaningful
  /// depends on the configured VerificationMode.
  std::optional<stats::ErrorPair> self_assessment;

  /// True when this estimate was copied from a neighbour at join time
  /// rather than computed by participating in the instance (§VII-G).
  bool inherited = false;
};

}  // namespace adam2::core
