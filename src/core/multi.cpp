#include "core/multi.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace adam2::core {
namespace {

constexpr double kSizeSentinel = std::numeric_limits<double>::infinity();

/// Divides every fraction by the converged mean set size and removes the
/// sentinel point (f_i = avg_i / avg).
void normalize(std::vector<stats::CdfPoint>& points) {
  if (points.empty()) return;
  auto sentinel =
      std::find_if(points.begin(), points.end(),
                   [](const stats::CdfPoint& p) { return p.t == kSizeSentinel; });
  if (sentinel == points.end()) return;
  const double avg = sentinel->f;
  points.erase(sentinel);
  if (avg <= 0.0) return;
  for (stats::CdfPoint& p : points) p.f /= avg;
}

}  // namespace

MultiValueAdam2Agent::MultiValueAdam2Agent(Adam2Config config,
                                           std::vector<stats::Value> own_values)
    : Adam2Agent(config), values_(std::move(own_values)) {
  assert(!values_.empty());
  std::sort(values_.begin(), values_.end());
}

ContributionFn MultiValueAdam2Agent::contribution_fn(
    const host::AgentContext& /*ctx*/) const {
  // Copy the sorted values so the closure stays valid even if the agent is
  // destroyed mid-instance (churn).
  return [values = values_](double t) {
    auto it = std::upper_bound(values.begin(), values.end(), t,
                               [](double lhs, stats::Value rhs) {
                                 return lhs < static_cast<double>(rhs);
                               });
    return static_cast<double>(it - values.begin());
  };
}

std::pair<double, double> MultiValueAdam2Agent::local_extremes(
    const host::AgentContext& /*ctx*/) const {
  return {static_cast<double>(values_.front()),
          static_cast<double>(values_.back())};
}

void MultiValueAdam2Agent::augment_thresholds(
    std::vector<double>& thresholds) const {
  thresholds.push_back(kSizeSentinel);
}

void MultiValueAdam2Agent::finalize_points(
    std::vector<stats::CdfPoint>& points,
    std::vector<stats::CdfPoint>& verification) const {
  // Both sequences need the same normalisation; the sentinel only rides with
  // the interpolation points.
  auto sentinel =
      std::find_if(points.begin(), points.end(),
                   [](const stats::CdfPoint& p) { return p.t == kSizeSentinel; });
  const double avg = sentinel != points.end() ? sentinel->f : 0.0;
  normalize(points);
  if (avg > 0.0) {
    for (stats::CdfPoint& p : verification) p.f /= avg;
  }
}

}  // namespace adam2::core
