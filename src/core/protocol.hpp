// The Adam2 per-node protocol (§IV-§VI) as a simulator agent.
//
// Each node continuously runs: probabilistic instance creation with
// Ps = 1/(Np*R); joining instances it hears about through gossip; symmetric
// push-pull averaging of interpolation points, verification points, and the
// size-estimation weight; TTL-driven termination producing an Estimate; and
// (optionally) lambda self-tuning from the instance's self-assessment.
//
// Two join policies are supported (DESIGN.md §1): the default mass-conserving
// join, under which every instance's point averages converge exactly to the
// true fractions, and the paper-literal Figure-1 rule kept for the ablation
// bench.
#pragma once

#include <deque>
#include <optional>
#include <unordered_set>

#include "core/config.hpp"
#include "core/estimate.hpp"
#include "core/instance.hpp"
#include "core/instance_store.hpp"
// The NodeAgent contract is the protocol <-> substrate boundary: host/
// defines the interface, core/ implements it. Inverting the edge would drag
// the whole contract cluster (agent, view, overlay) below core/ for no
// behavioural gain. Documented layering exception (DESIGN.md §10) — the
// only host/ surface core/ may touch is the abstract agent contract.
#include "host/agent.hpp"  // adam2-lint: allow(layering)

namespace adam2::core {

class Adam2Agent : public host::NodeAgent {
 public:
  explicit Adam2Agent(Adam2Config config);

  // -- host::NodeAgent ------------------------------------------------------
  void on_round_start(host::AgentContext& ctx) override;
  [[nodiscard]] std::span<const std::byte> make_request(
      host::AgentContext& ctx) override;
  [[nodiscard]] std::span<const std::byte> handle_request(
      host::AgentContext& ctx, std::span<const std::byte> request) override;
  void handle_response(host::AgentContext& ctx,
                       std::span<const std::byte> response) override;
  [[nodiscard]] std::vector<std::byte> make_bootstrap_request(
      host::AgentContext& ctx) override;
  [[nodiscard]] std::vector<std::byte> handle_bootstrap_request(
      host::AgentContext& ctx, std::span<const std::byte> request) override;
  bool handle_bootstrap_response(host::AgentContext& ctx,
                                 std::span<const std::byte> response) override;

  // -- host::snapshot integration (DESIGN.md §12) ---------------------------
  // The blob covers every field that influences future behaviour: live
  // lambda, the instance store in iteration order, the working estimate and
  // combine history, the finalisation tombstones, Np, sequence and epoch
  // counters. config_ itself is echoed (not restored): the factory that
  // rebuilds the agent must already agree on it, and a mismatch rejects the
  // blob instead of silently resuming under different protocol parameters.
  [[nodiscard]] bool save_state(wire::Writer& out) const override;
  [[nodiscard]] bool restore_state(wire::Reader& in) override;

  // -- Experiment control / introspection ----------------------------------

  /// Starts a new aggregation instance on this node (scripted experiments;
  /// probabilistic mode calls this internally). Returns the new instance id.
  wire::InstanceId start_instance(host::AgentContext& ctx);

  /// The node's most recent CDF estimate, if any.
  [[nodiscard]] const std::optional<Estimate>& estimate() const {
    return estimate_;
  }

  /// Current system-size estimate Np (0 = none yet).
  [[nodiscard]] double n_estimate() const { return n_estimate_; }

  [[nodiscard]] std::size_t active_instance_count() const {
    return store_.size();
  }
  /// The live state of instance `id` on this node, or nullptr. The pointer
  /// (not the point storage) is invalidated by the next instance
  /// start/join/expiry — hold it only within one inspection pass.
  [[nodiscard]] const InstanceSlot* instance(wire::InstanceId id) const {
    return store_.find(id);
  }
  [[nodiscard]] std::size_t completed_instances() const { return completed_; }

  [[nodiscard]] const Adam2Config& config() const { return config_; }

  /// Lambda that the *next* instance started here will use (changes under
  /// adaptive tuning).
  [[nodiscard]] std::size_t current_lambda() const { return lambda_; }

 protected:
  // Extension hooks (multi-value nodes override these, §IV "Multiple
  // Attribute Values per Node").

  /// This node's initial contribution for a threshold t.
  [[nodiscard]] virtual ContributionFn contribution_fn(
      const host::AgentContext& ctx) const;

  /// This node's local extreme attribute values.
  [[nodiscard]] virtual std::pair<double, double> local_extremes(
      const host::AgentContext& ctx) const;

  /// Lets extensions add bookkeeping thresholds before an instance starts.
  virtual void augment_thresholds(std::vector<double>& /*thresholds*/) const {}

  /// Lets extensions rewrite the converged points before interpolation.
  virtual void finalize_points(std::vector<stats::CdfPoint>& /*points*/,
                               std::vector<stats::CdfPoint>& /*verification*/)
      const {}

 private:
  [[nodiscard]] bool eligible(const host::AgentContext& ctx,
                              std::uint32_t start_round,
                              wire::InstanceId id) const;
  void finalize(host::AgentContext& ctx, InstanceState&& state);
  [[nodiscard]] std::vector<double> choose_thresholds(host::AgentContext& ctx);
  [[nodiscard]] std::vector<double> choose_verification(
      host::AgentContext& ctx, double lo, double hi);
  void apply_adaptive_tuning(const stats::ErrorPair& assessment);

  Adam2Config config_;
  std::size_t lambda_;  ///< Live lambda (config_.lambda + adaptive tuning).
  /// Live instances in a flat, arena-backed layout (DESIGN.md §7.5). The
  /// store preserves join/start iteration order: every traversal (TTL pass,
  /// wire emission, the unmentioned-instances reply pass) walks that order,
  /// never a hash layout — emitted payload order is part of the replay
  /// contract (adam2_lint rules `unordered-iter`, `hot-path-container`).
  InstanceStore store_;
  std::optional<Estimate> estimate_;
  /// Raw per-instance estimates kept for point combining (§VII-D); bounded
  /// by config_.combine_last_instances.
  std::deque<Estimate> history_;
  /// Tombstones of recently finalised instances. Peers finalise at slightly
  /// different moments (especially under asynchronous gossip), and a
  /// straggler's message must not resurrect an instance this node already
  /// completed — a rejoined instance would average from scratch and corrupt
  /// the estimate. Bounded FIFO memory.
  std::unordered_set<wire::InstanceId, wire::InstanceIdHash> finalized_ids_;
  std::deque<wire::InstanceId> finalized_order_;
  static constexpr std::size_t kFinalizedMemory = 128;
  double n_estimate_ = 0.0;
  std::uint32_t next_seq_ = 0;
  std::size_t completed_ = 0;
  /// Reusable encode scratch for make_request/handle_request. Grows once to
  /// the steady-state message size, then exchanges encode allocation-free.
  wire::Writer wire_scratch_;
  /// Monotone counter backing InstanceState::touched_epoch (see
  /// handle_request); bumping it invalidates all marks in O(1).
  std::uint64_t request_epoch_ = 0;
};

}  // namespace adam2::core
