// Per-peer state of one aggregation instance and its merge rules (§IV).
//
// For each threshold t_i the peer tracks the running average f_i, entered as
// the indicator [A(p) <= t_i]; the push-pull averages drive every f_i to the
// global fraction F(t_i). The same averaging runs over the weight w (1 at
// the initiator, 0 elsewhere) whose converged mean is 1/N, and over the
// verification points V. Extremes are merged with min/max instead of
// averaging.
#pragma once

#include <functional>
#include <vector>

#include "stats/cdf.hpp"
#include "wire/ids.hpp"
#include "wire/messages.hpp"

namespace adam2::core {

/// Computes a node's initial (pre-averaging) value for threshold `t`.
/// Single-value nodes contribute the indicator [A(p) <= t]; the multi-value
/// extension (§IV) contributes |{a in A(p) : a <= t}|.
using ContributionFn = std::function<double(double t)>;

/// The per-peer state of one instance is exactly what travels on the wire
/// (wire::InstancePayload: id, start_round, ttl, weight, extremes, H, V), so
/// the state *is* a payload — gossip messages are encoded straight from it
/// with no intermediate copies.
struct InstanceState : wire::InstancePayload {
  /// Initiator-side construction: weight 1, own contributions at the chosen
  /// thresholds, own extremes.
  [[nodiscard]] static InstanceState start(
      wire::InstanceId id, wire::Round round, std::uint16_t ttl,
      const std::vector<double>& thresholds,
      const std::vector<double>& verification_thresholds,
      const ContributionFn& contribution, double local_min, double local_max);

  /// Joiner-side construction from a received payload: weight 0, own
  /// contributions at the payload's thresholds, own extremes.
  [[nodiscard]] static InstanceState join(const wire::InstancePayload& payload,
                                          const ContributionFn& contribution,
                                          double local_min, double local_max);

  /// Same, straight from a zero-copy payload view (exchange hot path).
  [[nodiscard]] static InstanceState join(
      const wire::InstancePayloadView& payload,
      const ContributionFn& contribution, double local_min, double local_max);

  /// Wire view of the current state (identity — kept for readability).
  [[nodiscard]] const wire::InstancePayload& to_payload() const {
    return *this;
  }

  /// Whether `other` can be merged into this state: same instance, same
  /// number of interpolation and verification points, identical thresholds.
  /// average_with REQUIRES this. A payload that parsed but fails the check —
  /// in-flight corruption that survived framing, or a foreign restart of the
  /// same id — must be dropped by the caller; merging it would read or write
  /// out of bounds.
  [[nodiscard]] bool mergeable_with(const wire::InstancePayload& other) const;
  [[nodiscard]] bool mergeable_with(
      const wire::InstancePayloadView& other) const;

  /// The symmetric merge of §IV: element-wise averaging of every f and the
  /// weight, min/max of the extremes. The payload must belong to the same
  /// instance and carry identical thresholds (see mergeable_with).
  void average_with(const wire::InstancePayload& other);

  /// Same merge reading the peer's sequences directly off the wire buffer
  /// (no materialised vectors — the exchange hot path).
  void average_with(const wire::InstancePayloadView& other);

  /// Scratch mark used by Adam2Agent::handle_request to remember which
  /// active instances the current request mentioned, making the
  /// "instances the requester did not mention" reply pass linear instead of
  /// O(active x incoming). Not protocol state; never serialised.
  std::uint64_t touched_epoch = 0;
};

}  // namespace adam2::core
