#include "core/system.hpp"

#include <algorithm>
#include <stdexcept>

// Facade TU: builds the concrete overlay for the engine it assembles.
// Documented layering exception (DESIGN.md §10), same as system.hpp.
#include "sim/overlay.hpp"  // adam2-lint: allow(layering)

namespace adam2::core {

std::unique_ptr<host::Overlay> make_overlay(OverlayKind kind,
                                           std::size_t degree) {
  switch (kind) {
    case OverlayKind::kStaticRandom:
      return std::make_unique<sim::StaticRandomOverlay>(degree);
    case OverlayKind::kCyclon: {
      sim::CyclonConfig config;
      config.view_size = degree;
      config.shuffle_size = std::max<std::size_t>(1, degree / 2);
      return std::make_unique<sim::CyclonOverlay>(config);
    }
  }
  throw std::invalid_argument("unknown overlay kind");
}

Adam2System::Adam2System(SystemConfig config,
                         std::vector<stats::Value> attributes,
                         host::AttributeSource churn_source)
    : config_(config) {
  const Adam2Config protocol = config_.protocol;
  auto factory = [protocol](const host::AgentContext&) {
    return std::make_unique<Adam2Agent>(protocol);
  };
  auto overlay = make_overlay(config_.overlay, config_.overlay_degree);
  if (config_.engine_threads > 1) {
    engine_ = std::make_unique<sim::ParallelEngine>(
        config_.engine, config_.engine_threads, std::move(attributes),
        std::move(overlay), std::move(factory), std::move(churn_source));
  } else {
    engine_ = std::make_unique<sim::Engine>(
        config_.engine, std::move(attributes), std::move(overlay),
        std::move(factory), std::move(churn_source));
  }
}

void Adam2System::attach_recorder(obs::Recorder* recorder) {
  engine_->set_recorder(recorder);
  if (recorder == nullptr) return;
  recorder->engine_start(config_.engine_threads > 1 ? "parallel" : "serial",
                         engine_->round(), engine_->live_count());
  obs::RunManifest& manifest = recorder->manifest();
  manifest.seed = config_.engine.seed;
  manifest.threads = std::max<std::size_t>(config_.engine_threads, 1);
  manifest.set("nodes", static_cast<std::uint64_t>(engine_->live_count()));
  manifest.set("churn_rate", config_.engine.churn_rate);
  manifest.set("message_loss", config_.engine.message_loss);
  manifest.set("overlay", config_.overlay == OverlayKind::kCyclon
                              ? "cyclon"
                              : "static_random");
  manifest.set("overlay_degree",
               static_cast<std::uint64_t>(config_.overlay_degree));
  manifest.set("lambda", static_cast<std::uint64_t>(config_.protocol.lambda));
  manifest.set("instance_ttl",
               static_cast<std::uint64_t>(config_.protocol.instance_ttl));
}

Adam2Agent& Adam2System::agent_of(host::NodeId id) {
  auto* agent = dynamic_cast<Adam2Agent*>(&engine_->agent(id));
  if (agent == nullptr) throw std::logic_error("node is not running Adam2");
  return *agent;
}

stats::EmpiricalCdf Adam2System::truth() const {
  return stats::EmpiricalCdf{engine_->live_attribute_values()};
}

std::pair<host::NodeId, wire::InstanceId> Adam2System::start_instance_on(
    std::optional<host::NodeId> initiator) {
  // value_or draws eagerly, so every start consumes exactly one global draw
  // whether or not an initiator was supplied (golden-replay stability).
  const host::NodeId node = initiator.value_or(engine_->random_live_node());
  auto ctx = engine_->context_for(node);
  const wire::InstanceId id = agent_of(node).start_instance(ctx);
  if (obs::Recorder* recorder = engine_->recorder(); recorder != nullptr) {
    // InstanceId = {initiator, seq}; the event's node field carries the
    // initiator, so the sequence number alone identifies the instance.
    recorder->instance_start(engine_->round(), node, id.seq);
  }
  return {node, id};
}

wire::InstanceId Adam2System::start_instance(
    std::optional<host::NodeId> initiator) {
  return start_instance_on(initiator).second;
}

wire::InstanceId Adam2System::run_instance(
    std::optional<host::NodeId> initiator) {
  const auto [node, id] = start_instance_on(initiator);
  // ttl exchange rounds plus the round whose round-start finalises it.
  engine_->run_rounds(config_.protocol.instance_ttl + 1u);
  if (obs::Recorder* recorder = engine_->recorder(); recorder != nullptr) {
    recorder->instance_end(engine_->round(), node, id.seq);
  }
  return id;
}

PopulationErrors Adam2System::errors(const EvaluationOptions& options) const {
  return evaluate_estimates(*engine_, truth(), options);
}

}  // namespace adam2::core
