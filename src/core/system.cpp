#include "core/system.hpp"

#include <stdexcept>

// Facade TU: builds the concrete overlay for the engine it assembles.
// Documented layering exception (DESIGN.md §10), same as system.hpp.
#include "sim/overlay.hpp"  // adam2-lint: allow(layering)

namespace adam2::core {

std::unique_ptr<host::Overlay> make_overlay(OverlayKind kind,
                                           std::size_t degree) {
  switch (kind) {
    case OverlayKind::kStaticRandom:
      return std::make_unique<sim::StaticRandomOverlay>(degree);
    case OverlayKind::kCyclon: {
      sim::CyclonConfig config;
      config.view_size = degree;
      config.shuffle_size = std::max<std::size_t>(1, degree / 2);
      return std::make_unique<sim::CyclonOverlay>(config);
    }
  }
  throw std::invalid_argument("unknown overlay kind");
}

Adam2System::Adam2System(SystemConfig config,
                         std::vector<stats::Value> attributes,
                         host::AttributeSource churn_source)
    : config_(config) {
  const Adam2Config protocol = config_.protocol;
  auto factory = [protocol](const host::AgentContext&) {
    return std::make_unique<Adam2Agent>(protocol);
  };
  auto overlay = make_overlay(config_.overlay, config_.overlay_degree);
  if (config_.engine_threads > 1) {
    engine_ = std::make_unique<sim::ParallelEngine>(
        config_.engine, config_.engine_threads, std::move(attributes),
        std::move(overlay), std::move(factory), std::move(churn_source));
  } else {
    engine_ = std::make_unique<sim::Engine>(
        config_.engine, std::move(attributes), std::move(overlay),
        std::move(factory), std::move(churn_source));
  }
}

Adam2Agent& Adam2System::agent_of(host::NodeId id) {
  auto* agent = dynamic_cast<Adam2Agent*>(&engine_->agent(id));
  if (agent == nullptr) throw std::logic_error("node is not running Adam2");
  return *agent;
}

stats::EmpiricalCdf Adam2System::truth() const {
  return stats::EmpiricalCdf{engine_->live_attribute_values()};
}

wire::InstanceId Adam2System::start_instance(
    std::optional<host::NodeId> initiator) {
  const host::NodeId node = initiator.value_or(engine_->random_live_node());
  auto ctx = engine_->context_for(node);
  return agent_of(node).start_instance(ctx);
}

wire::InstanceId Adam2System::run_instance(
    std::optional<host::NodeId> initiator) {
  const wire::InstanceId id = start_instance(initiator);
  // ttl exchange rounds plus the round whose round-start finalises it.
  engine_->run_rounds(config_.protocol.instance_ttl + 1u);
  return id;
}

PopulationErrors Adam2System::errors(const EvaluationOptions& options) const {
  return evaluate_estimates(*engine_, truth(), options);
}

}  // namespace adam2::core
