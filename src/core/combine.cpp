#include "core/combine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace adam2::core {

Estimate combine_estimates(std::span<const Estimate> history) {
  assert(!history.empty());
  const Estimate& newest = history.back();
  if (history.size() == 1) return newest;

  Estimate combined = newest;
  combined.min_value = newest.min_value;
  combined.max_value = newest.max_value;

  // Collect (threshold, fraction, age) so ties resolve to the newest sample.
  struct Sample {
    double t;
    double f;
    std::size_t age;  // 0 = newest instance.
  };
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < history.size(); ++i) {
    const Estimate& est = history[history.size() - 1 - i];
    combined.min_value = std::min(combined.min_value, est.min_value);
    combined.max_value = std::max(combined.max_value, est.max_value);
    for (const stats::CdfPoint& p : est.points) {
      samples.push_back({p.t, p.f, i});
    }
  }
  std::sort(samples.begin(), samples.end(), [](const Sample& a, const Sample& b) {
    return a.t < b.t || (a.t == b.t && a.age < b.age);
  });

  const double tolerance =
      std::max((combined.max_value - combined.min_value) * 1e-9, 1e-12);
  std::vector<stats::CdfPoint> points;
  points.reserve(samples.size());
  for (const Sample& s : samples) {
    if (!points.empty() && s.t - points.back().t <= tolerance) {
      continue;  // The earlier (newer-instance) sample already covers it.
    }
    points.push_back({s.t, s.f});
  }

  combined.points = std::move(points);
  combined.cdf = stats::interpolate_with_extremes(
      combined.points, combined.min_value, combined.max_value);
  // Samples from different instances can disagree slightly (gossip noise or
  // CDF drift); repair inversions so the result is a valid CDF.
  if (!combined.cdf.is_monotone()) combined.cdf = combined.cdf.make_monotone();
  return combined;
}

}  // namespace adam2::core
