// Rank and slice derivation from a CDF estimate.
//
// §II positions Adam2 against dedicated ranking/slicing protocols [8]-[10]:
// those compute only a node's rank (1..N) or slice, while a distribution
// estimate subsumes them — rank(p) ~= F(A(p)) * N — *and* reveals skew,
// imbalance, and outliers that ranks by construction cannot. These helpers
// make the subsumption concrete: given an Estimate, any node computes its
// own rank, percentile, and slice membership locally, with zero additional
// communication.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/estimate.hpp"

namespace adam2::core {

/// A node's position in the population ordering, derived locally.
struct RankInfo {
  double percentile = 0.0;   ///< F(own value) in [0, 1].
  double rank = 0.0;         ///< percentile * N (1-based, fractional).
  double n_estimate = 0.0;   ///< The N used for the rank.
};

/// Rank of a node holding `own_value` under `estimate`.
/// Precondition: the estimate holds a CDF and a positive n_estimate.
[[nodiscard]] RankInfo rank_of(const Estimate& estimate, double own_value);

/// Equal-population slicing (the "ordered slicing" service of [9]): assigns
/// the node to one of `slices` groups of ~N/slices nodes each, ordered by
/// attribute value. Returns the 0-based slice index.
[[nodiscard]] std::size_t slice_of(const Estimate& estimate, double own_value,
                                   std::size_t slices);

/// Boundaries (attribute thresholds) of equal-population slices: the
/// (i/slices)-quantiles of the estimated CDF for i = 1..slices-1. A slice
/// leader can publish these so nodes self-assign without gossip.
[[nodiscard]] std::vector<double> slice_boundaries(const Estimate& estimate,
                                                   std::size_t slices);

/// Distribution-shape summary that rank-only protocols cannot provide
/// (the §II argument): quartiles, tail weight, and a skew indicator.
struct ShapeSummary {
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double p95 = 0.0;
  /// Bowley skewness in [-1, 1]: (q75 + q25 - 2*median) / (q75 - q25);
  /// 0 when the quartiles are symmetric around the median.
  double quartile_skew = 0.0;
  /// Fraction of the attribute *range* above the 95th population percentile
  /// — large values mean a long, thin upper tail (outlier candidates).
  double upper_tail_span = 0.0;
};

[[nodiscard]] ShapeSummary summarize_shape(const Estimate& estimate);

}  // namespace adam2::core
