// Element-wise operations on CdfPoint sequences, shared by the two
// materialisations of per-instance state: the arena-backed InstanceSlot
// (hot path, spans into stats::PointArena) and the owning InstanceState
// (cold paths, tests, and the differential reference model).
//
// `Range` is anything yielding stats::CdfPoint by value on iteration — an
// owned vector, a std::span, or the zero-copy wire::PointsView straight off
// a received buffer.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

#include "stats/cdf.hpp"

namespace adam2::core::point_ops {

/// Same element count and bitwise-identical thresholds (the
/// `mergeable_with` precondition: averaging misaligned sequences would be
/// meaningless and, with mismatched counts, out of bounds).
template <typename Range>
[[nodiscard]] bool same_thresholds(std::span<const stats::CdfPoint> mine,
                                   const Range& theirs) {
  if (mine.size() != theirs.size()) return false;
  std::size_t i = 0;
  for (const stats::CdfPoint p : theirs) {
    if (mine[i++].t != p.t) return false;
  }
  return true;
}

/// The symmetric push-pull step of §IV: f_i <- (f_i + f'_i) / 2 at every
/// threshold. Precondition: same_thresholds(mine, theirs).
template <typename Range>
void average_points(std::span<stats::CdfPoint> mine, const Range& theirs) {
  assert(mine.size() == theirs.size());
  std::size_t i = 0;
  for (const stats::CdfPoint p : theirs) {
    assert(mine[i].t == p.t);
    mine[i].f = (mine[i].f + p.f) / 2.0;
    ++i;
  }
}

}  // namespace adam2::core::point_ops
