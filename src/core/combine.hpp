// Combining interpolation points across aggregation instances (§VII-D):
// "if the CDF does not change significantly over time, nodes can combine
// interpolation points obtained over multiple aggregation instances to
// further reduce the overall estimation errors."
//
// Each instance contributes lambda very accurate (t_i, f_i) samples of the
// true CDF; as long as the CDF is static, the union of the samples from the
// last k instances is a k*lambda-point interpolation at no extra
// communication cost. Enabled through Adam2Config::combine_last_instances.
#pragma once

#include <span>

#include "core/estimate.hpp"

namespace adam2::core {

/// Merges the interpolation points of `history` (oldest to newest) into one
/// estimate. Thresholds closer than a relative tolerance are collapsed,
/// keeping the most recent instance's fraction (newer samples supersede
/// older ones if the CDF drifted). Extremes widen to the union; scalar
/// fields (n_estimate, self-assessment, instance id) come from the newest
/// estimate. Precondition: history is non-empty.
[[nodiscard]] Estimate combine_estimates(std::span<const Estimate> history);

}  // namespace adam2::core
